//! The spectrum record.
//!
//! "Spectra are [...] represented as a number of vectors such as wavelength
//! bins (min, max and center wavelength), flux, error of the measured flux
//! and flags. Latter is usually a vector of 8 or 16 bit integers. As the
//! wavelength scale can change from observation to observation [...] it is
//! necessary to store the wavelength vector of each spectrum separately."
//! (§2.2)

use sqlarray_core::{build, ArrayError, Result, SqlArray, StorageClass};

/// A 1-D spectrum: per-bin wavelength centers, flux density, flux error
/// and quality flags (0 = good, non-zero = masked), plus the object's
/// redshift.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Bin-center wavelengths, strictly increasing (Å).
    pub wavelength: Vec<f64>,
    /// Flux density per bin.
    pub flux: Vec<f64>,
    /// 1σ flux uncertainty per bin.
    pub error: Vec<f64>,
    /// Quality flags per bin; non-zero bins are excluded from fits.
    pub flags: Vec<i16>,
    /// Redshift of the source.
    pub redshift: f64,
}

impl Spectrum {
    /// Validates the vectors and builds the record.
    pub fn new(
        wavelength: Vec<f64>,
        flux: Vec<f64>,
        error: Vec<f64>,
        flags: Vec<i16>,
        redshift: f64,
    ) -> Result<Spectrum> {
        let n = wavelength.len();
        if n == 0 {
            return Err(ArrayError::Parse("empty spectrum".into()));
        }
        if flux.len() != n || error.len() != n || flags.len() != n {
            return Err(ArrayError::Parse(format!(
                "vector length mismatch: λ {n}, flux {}, error {}, flags {}",
                flux.len(),
                error.len(),
                flags.len()
            )));
        }
        if wavelength.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ArrayError::Parse(
                "wavelengths must be strictly increasing".into(),
            ));
        }
        Ok(Spectrum {
            wavelength,
            flux,
            error,
            flags,
            redshift,
        })
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.wavelength.len()
    }

    /// True when the spectrum has no bins (unconstructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.wavelength.is_empty()
    }

    /// Fraction of good (unmasked) bins.
    pub fn good_fraction(&self) -> f64 {
        let good = self.flags.iter().filter(|&&f| f == 0).count();
        good as f64 / self.len() as f64
    }

    /// Bin edges implied by the centers (midpoints; end bins mirrored).
    pub fn bin_edges(&self) -> Vec<f64> {
        let w = &self.wavelength;
        let n = w.len();
        let mut edges = Vec::with_capacity(n + 1);
        edges.push(w[0] - (w[1] - w[0]) / 2.0);
        for i in 0..n - 1 {
            edges.push((w[i] + w[i + 1]) / 2.0);
        }
        edges.push(w[n - 1] + (w[n - 1] - w[n - 2]) / 2.0);
        edges
    }

    /// Integrated flux `∫ f dλ` over all bins (flux density × bin width).
    pub fn integrated_flux(&self) -> f64 {
        let edges = self.bin_edges();
        self.flux
            .iter()
            .enumerate()
            .map(|(i, f)| f * (edges[i + 1] - edges[i]))
            .sum()
    }

    /// Serializes into the four array blobs the database stores: the
    /// wavelength/flux/error vectors as `float64` arrays and the flags as
    /// an `int16` array, picking the storage class by size.
    pub fn to_arrays(&self) -> Result<SpectrumArrays> {
        let class = |bytes: usize| {
            if bytes + 24 <= sqlarray_core::SHORT_MAX_BYTES {
                StorageClass::Short
            } else {
                StorageClass::Max
            }
        };
        let fc = class(self.len() * 8);
        let ic = class(self.len() * 2);
        Ok(SpectrumArrays {
            wavelength: build::vector(fc, &self.wavelength)?,
            flux: build::vector(fc, &self.flux)?,
            error: build::vector(fc, &self.error)?,
            flags: build::vector(ic, &self.flags)?,
            redshift: self.redshift,
        })
    }

    /// Reconstructs from the stored blobs.
    pub fn from_arrays(a: &SpectrumArrays) -> Result<Spectrum> {
        Spectrum::new(
            a.wavelength.to_vec::<f64>()?,
            a.flux.to_vec::<f64>()?,
            a.error.to_vec::<f64>()?,
            a.flags.to_vec::<i16>()?,
            a.redshift,
        )
    }
}

/// The array-blob form of a spectrum row.
#[derive(Debug, Clone)]
pub struct SpectrumArrays {
    /// Wavelength vector blob.
    pub wavelength: SqlArray,
    /// Flux vector blob.
    pub flux: SqlArray,
    /// Error vector blob.
    pub error: SqlArray,
    /// Flags vector blob (`int16`, per the paper).
    pub flags: SqlArray,
    /// Redshift scalar.
    pub redshift: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Spectrum {
        Spectrum::new(
            vec![4000.0, 4001.0, 4003.0, 4006.0],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![0.1, 0.1, 0.2, 0.2],
            vec![0, 0, 1, 0],
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Spectrum::new(vec![], vec![], vec![], vec![], 0.0).is_err());
        assert!(Spectrum::new(vec![1.0, 2.0], vec![1.0], vec![1.0, 1.0], vec![0, 0], 0.0).is_err());
        assert!(Spectrum::new(
            vec![2.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![0, 0],
            0.0
        )
        .is_err());
    }

    #[test]
    fn bin_edges_bracket_centers() {
        let s = toy();
        let e = s.bin_edges();
        assert_eq!(e.len(), 5);
        for i in 0..s.len() {
            assert!(e[i] < s.wavelength[i] && s.wavelength[i] < e[i + 1]);
        }
        // Interior edge is the midpoint.
        assert!((e[1] - 4000.5).abs() < 1e-12);
    }

    #[test]
    fn integrated_flux_positive_and_scales() {
        let s = toy();
        let f1 = s.integrated_flux();
        assert!(f1 > 0.0);
        let mut s2 = s.clone();
        for f in &mut s2.flux {
            *f *= 2.0;
        }
        assert!((s2.integrated_flux() - 2.0 * f1).abs() < 1e-12);
    }

    #[test]
    fn good_fraction_counts_flags() {
        assert!((toy().good_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn array_round_trip() {
        let s = toy();
        let a = s.to_arrays().unwrap();
        assert_eq!(a.flags.elem(), sqlarray_core::ElementType::Int16);
        let back = Spectrum::from_arrays(&a).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn long_spectra_use_max_class() {
        let n = 3000; // SDSS-like bin count: 8 B × 3000 > 8000 B
        let s = Spectrum::new(
            (0..n).map(|i| 3800.0 + i as f64).collect(),
            vec![1.0; n],
            vec![0.1; n],
            vec![0; n],
            0.1,
        )
        .unwrap();
        let a = s.to_arrays().unwrap();
        assert_eq!(a.flux.class(), StorageClass::Max);
        assert_eq!(a.flags.class(), StorageClass::Short); // 2 B × 3000 fits
    }
}
