//! # sqlarray-spectra
//!
//! The astronomical-spectrum workload of Dobos et al. (EDBT 2011, §2.2):
//! spectra stored as per-object array blobs ([`spectrum`]),
//! flux-conserving resampling to common grids ([`resample`](mod@resample)), window
//! normalization and physical corrections ([`normalize`]),
//! inverse-variance composite stacking grouped by redshift
//! ([`composite`](mod@composite)), and PCA classification with masked least-squares
//! expansion plus kd-tree similarity search ([`search`], [`kdtree`]) over
//! synthetic SDSS-like surveys ([`synth`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
pub mod kdtree;
pub mod normalize;
pub mod resample;
pub mod search;
pub mod spectrum;
pub mod synth;

pub use composite::{composite, composite_by_redshift};
pub use kdtree::{KdTree, Neighbor};
pub use resample::{linear_grid, log_grid, resample};
pub use search::SpectrumIndex;
pub use spectrum::{Spectrum, SpectrumArrays};
pub use synth::{synth_spectrum, synth_survey, SpectralClass, SynthParams};
