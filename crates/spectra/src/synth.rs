//! Synthetic spectrum generation.
//!
//! Stands in for the SDSS-style spectra of Spectrum Services (§2.2):
//! a smooth continuum, a set of emission/absorption lines whose observed
//! positions scale with `(1 + z)`, Gaussian noise, and randomly masked
//! (bad) pixels.

use crate::spectrum::Spectrum;
use sqlarray_core::rng::{Rng, SeedableRng, StdRng};

/// Parameters of the generator.
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Observed wavelength range (Å).
    pub lambda_range: (f64, f64),
    /// Number of bins.
    pub bins: usize,
    /// Continuum amplitude.
    pub continuum: f64,
    /// Relative noise level (σ as a fraction of the continuum).
    pub noise: f64,
    /// Probability that a pixel is masked.
    pub mask_prob: f64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            lambda_range: (3800.0, 9200.0),
            bins: 512,
            continuum: 10.0,
            noise: 0.02,
            mask_prob: 0.01,
        }
    }
}

/// Rest-frame template lines: (λ_rest Å, relative strength; negative =
/// absorption). A small galaxy-like line list.
pub const TEMPLATE_LINES: &[(f64, f64)] = &[
    (3727.0, 1.8),  // [OII]
    (4102.0, -0.4), // Hδ
    (4341.0, -0.5), // Hγ
    (4861.0, 1.0),  // Hβ
    (5007.0, 2.5),  // [OIII]
    (5893.0, -0.8), // Na D
    (6563.0, 3.0),  // Hα
    (6725.0, 0.9),  // [SII]
];

/// Two spectral classes with different line mixes, to give PCA something
/// to separate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectralClass {
    /// Strong emission lines, blue continuum.
    Emission,
    /// Absorption-dominated, red continuum.
    Absorption,
}

/// Generates one synthetic spectrum.
pub fn synth_spectrum(
    seed: u64,
    class: SpectralClass,
    redshift: f64,
    params: &SynthParams,
) -> Spectrum {
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = params.lambda_range;
    let n = params.bins;
    let wavelength: Vec<f64> = (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect();

    let slope = match class {
        SpectralClass::Emission => -0.6,
        SpectralClass::Absorption => 0.8,
    };
    let line_sign = match class {
        SpectralClass::Emission => 1.0,
        SpectralClass::Absorption => -0.6,
    };
    let sigma_v: f64 = 3.0 + rng.gen_range(0.0..2.0); // line width in Å (rest)

    let mut flux = Vec::with_capacity(n);
    for &w in &wavelength {
        let rest = w / (1.0 + redshift);
        // Power-law-ish continuum in rest wavelength.
        let mut f = params.continuum * (rest / 5000.0).powf(slope);
        for &(line, strength) in TEMPLATE_LINES {
            let d = (rest - line) / sigma_v;
            if d.abs() < 8.0 {
                f += line_sign * strength * params.continuum * 0.4 * (-0.5 * d * d).exp();
            }
        }
        flux.push(f);
    }

    let mut error = Vec::with_capacity(n);
    let mut flags = vec![0i16; n];
    for (i, f) in flux.iter_mut().enumerate() {
        let sigma = params.noise * params.continuum;
        // Box–Muller from two uniforms.
        let (u1, u2) = (rng.gen_range(1e-12..1.0f64), rng.gen_range(0.0..1.0f64));
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        *f += sigma * gauss;
        error.push(sigma);
        if rng.gen_bool(params.mask_prob) {
            flags[i] = 1;
            *f = -1000.0; // corrupted pixel, must be ignored by fits
        }
    }

    Spectrum::new(wavelength, flux, error, flags, redshift).expect("generated grid is valid")
}

/// Generates a survey: `count` spectra with alternating classes and
/// redshifts cycling through `redshifts`.
pub fn synth_survey(
    seed: u64,
    count: usize,
    redshifts: &[f64],
    params: &SynthParams,
) -> Vec<Spectrum> {
    (0..count)
        .map(|i| {
            let class = if i % 2 == 0 {
                SpectralClass::Emission
            } else {
                SpectralClass::Absorption
            };
            let z = redshifts[i % redshifts.len()];
            synth_spectrum(seed.wrapping_add(i as u64 * 7919), class, z, params)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let p = SynthParams::default();
        let a = synth_spectrum(1, SpectralClass::Emission, 0.1, &p);
        let b = synth_spectrum(1, SpectralClass::Emission, 0.1, &p);
        let c = synth_spectrum(2, SpectralClass::Emission, 0.1, &p);
        assert_eq!(a, b);
        assert_ne!(a.flux, c.flux);
    }

    #[test]
    fn emission_lines_appear_at_redshifted_positions() {
        let p = SynthParams {
            noise: 0.0,
            mask_prob: 0.0,
            bins: 2048,
            ..SynthParams::default()
        };
        let z = 0.2;
        let s = synth_spectrum(3, SpectralClass::Emission, z, &p);
        // Hα at 6563(1+z) ≈ 7875.6 must be a local flux peak.
        let target = 6563.0 * (1.0 + z);
        let idx = s
            .wavelength
            .iter()
            .position(|&w| w >= target)
            .expect("in range");
        let peak = s.flux[idx - 2..idx + 2]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let continuum_nearby = s.flux[idx + 40];
        assert!(
            peak > continuum_nearby * 1.5,
            "no line at {target}: peak {peak} vs continuum {continuum_nearby}"
        );
    }

    #[test]
    fn classes_differ_in_continuum_slope() {
        let p = SynthParams {
            noise: 0.0,
            mask_prob: 0.0,
            ..SynthParams::default()
        };
        let e = synth_spectrum(4, SpectralClass::Emission, 0.0, &p);
        let a = synth_spectrum(4, SpectralClass::Absorption, 0.0, &p);
        // Emission class is blue (falling), absorption red (rising).
        let ratio_e = e.flux[e.len() - 10] / e.flux[10];
        let ratio_a = a.flux[a.len() - 10] / a.flux[10];
        assert!(ratio_e < 1.0);
        assert!(ratio_a > 1.0);
    }

    #[test]
    fn masked_pixels_are_marked_and_corrupted() {
        let p = SynthParams {
            mask_prob: 0.2,
            ..SynthParams::default()
        };
        let s = synth_spectrum(5, SpectralClass::Emission, 0.05, &p);
        let masked = s.flags.iter().filter(|&&f| f != 0).count();
        assert!(masked > 0);
        for i in 0..s.len() {
            if s.flags[i] != 0 {
                assert!(s.flux[i] < -100.0, "masked pixel {i} not corrupted");
            }
        }
    }

    #[test]
    fn survey_cycles_classes_and_redshifts() {
        let p = SynthParams::default();
        let zs = [0.1, 0.3, 0.5];
        let survey = synth_survey(9, 12, &zs, &p);
        assert_eq!(survey.len(), 12);
        assert_eq!(survey[0].redshift, 0.1);
        assert_eq!(survey[4].redshift, 0.3);
        assert_eq!(survey[5].redshift, 0.5);
    }
}
