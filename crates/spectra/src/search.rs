//! PCA classification and similar-spectrum search.
//!
//! The full §2.2 pipeline: resample and normalize the spectra, fit a PCA
//! basis, expand each spectrum on the basis — with **masked least
//! squares**, because "because of the flags that mask out wrong
//! measurements bin by bin, dot product cannot be used for expanding
//! spectra on a basis but least squares fitting is necessary" — store the
//! coefficients in a kd-tree, and answer similarity queries by expanding
//! the query spectrum on the fly.

use crate::kdtree::{KdTree, Neighbor};
use crate::normalize::normalize_total;
use crate::resample::resample;
use crate::spectrum::Spectrum;
use sqlarray_core::{ArrayError, Result};
use sqlarray_linalg::{lstsq_weighted, Matrix, Pca};

/// A fitted search index over a spectrum collection.
pub struct SpectrumIndex {
    grid: Vec<f64>,
    pca: Pca,
    tree: KdTree,
    coeffs: Vec<(u64, Vec<f64>)>,
}

/// Resamples, normalizes and gap-fills one spectrum onto the index grid.
/// Returns the processed flux vector and the per-bin weights (0 = masked).
fn prepare(s: &Spectrum, grid: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
    let r = resample(s, grid)?;
    let n = normalize_total(&mask_for_normalization(&r))?;
    let weights: Vec<f64> = r
        .flags
        .iter()
        .map(|&f| if f == 0 { 1.0 } else { 0.0 })
        .collect();
    let filled = fill_masked(&n.flux, &weights);
    Ok((filled, weights))
}

/// Replaces masked flux values with zeros before integrating, so corrupted
/// pixels cannot skew the normalization.
fn mask_for_normalization(s: &Spectrum) -> Spectrum {
    let mut out = s.clone();
    for i in 0..out.len() {
        if out.flags[i] != 0 {
            out.flux[i] = 0.0;
        }
    }
    out
}

/// Linear interpolation across masked runs (PCA needs complete vectors).
fn fill_masked(flux: &[f64], weights: &[f64]) -> Vec<f64> {
    let n = flux.len();
    let mut out = flux.to_vec();
    let good: Vec<usize> = (0..n).filter(|&i| weights[i] > 0.0).collect();
    if good.is_empty() {
        return vec![0.0; n];
    }
    for i in 0..n {
        if weights[i] > 0.0 {
            continue;
        }
        let next = good.partition_point(|&g| g < i);
        out[i] = match (next.checked_sub(1).map(|p| good[p]), good.get(next)) {
            (Some(lo), Some(&hi)) => {
                let t = (i - lo) as f64 / (hi - lo) as f64;
                flux[lo] * (1.0 - t) + flux[hi] * t
            }
            (Some(lo), None) => flux[lo],
            (None, Some(&hi)) => flux[hi],
            (None, None) => 0.0,
        };
    }
    out
}

impl SpectrumIndex {
    /// Builds the index: fits a `k`-component PCA basis on the prepared
    /// spectra and stores every spectrum's masked-least-squares
    /// coefficients in a kd-tree keyed by the supplied ids.
    pub fn build(spectra: &[(u64, Spectrum)], grid: &[f64], k: usize) -> Result<SpectrumIndex> {
        if spectra.len() < 2 {
            return Err(ArrayError::Parse("need at least two spectra".into()));
        }
        let d = grid.len();
        let mut data = Matrix::zeros(spectra.len(), d);
        let mut prepared = Vec::with_capacity(spectra.len());
        for (row, (_, s)) in spectra.iter().enumerate() {
            let (flux, weights) = prepare(s, grid)?;
            for (col, &f) in flux.iter().enumerate() {
                data.set(row, col, f);
            }
            prepared.push((flux, weights));
        }
        let pca = sqlarray_linalg::pca::fit(&data, k);

        let mut coeffs = Vec::with_capacity(spectra.len());
        for ((id, _), (flux, weights)) in spectra.iter().zip(&prepared) {
            let c = expand_masked(&pca, flux, weights);
            coeffs.push((*id, c));
        }
        let tree = KdTree::build(k, coeffs.clone());
        Ok(SpectrumIndex {
            grid: grid.to_vec(),
            pca,
            tree,
            coeffs,
        })
    }

    /// The fitted basis.
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// The stored coefficients (id, coefficient vector).
    pub fn coefficients(&self) -> &[(u64, Vec<f64>)] {
        &self.coeffs
    }

    /// Expands a spectrum on the basis with masked least squares.
    pub fn expand(&self, s: &Spectrum) -> Result<Vec<f64>> {
        let (flux, weights) = prepare(s, &self.grid)?;
        Ok(expand_masked(&self.pca, &flux, &weights))
    }

    /// The `k` most similar stored spectra to the query.
    pub fn similar(&self, query: &Spectrum, k: usize) -> Result<Vec<Neighbor>> {
        let c = self.expand(query)?;
        Ok(self.tree.nearest(&c, k))
    }

    /// Reconstructs the processed flux vector from coefficients.
    pub fn reconstruct(&self, coeffs: &[f64]) -> Vec<f64> {
        self.pca.inverse_transform(coeffs)
    }
}

/// Masked least-squares expansion: solves
/// `min ‖W^{1/2}((x − μ) − C·c)‖₂` over the coefficients `c`.
fn expand_masked(pca: &Pca, flux: &[f64], weights: &[f64]) -> Vec<f64> {
    let d = flux.len();
    let k = pca.k();
    let centered: Vec<f64> = flux.iter().zip(&pca.mean).map(|(f, m)| f - m).collect();
    let basis = Matrix::from_fn(d, k, |i, j| pca.components.get(i, j));
    lstsq_weighted(&basis, &centered, weights, 1e-10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resample::linear_grid;
    use crate::synth::{synth_spectrum, synth_survey, SpectralClass, SynthParams};

    fn survey_index(count: usize, mask_prob: f64) -> (Vec<(u64, Spectrum)>, SpectrumIndex) {
        let params = SynthParams {
            noise: 0.02,
            mask_prob,
            bins: 256,
            ..SynthParams::default()
        };
        let spectra: Vec<(u64, Spectrum)> = synth_survey(7, count, &[0.1], &params)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s))
            .collect();
        let grid = linear_grid(4200.0, 8800.0, 128);
        let index = SpectrumIndex::build(&spectra, &grid, 6).unwrap();
        (spectra, index)
    }

    #[test]
    fn self_query_returns_self_first() {
        let (spectra, index) = survey_index(20, 0.0);
        for (id, s) in spectra.iter().take(6) {
            let hits = index.similar(s, 3).unwrap();
            assert_eq!(hits[0].id, *id, "self not first for {id}");
            assert!(hits[0].distance < 1e-6);
        }
    }

    #[test]
    fn neighbors_share_the_spectral_class() {
        // Even ids are emission, odd absorption (synth_survey alternates).
        let (_, index) = survey_index(40, 0.0);
        let params = SynthParams {
            noise: 0.02,
            mask_prob: 0.0,
            bins: 256,
            ..SynthParams::default()
        };
        let probe = synth_spectrum(991, SpectralClass::Emission, 0.1, &params);
        let hits = index.similar(&probe, 5).unwrap();
        let emission_hits = hits.iter().filter(|h| h.id % 2 == 0).count();
        assert!(
            emission_hits >= 4,
            "{emission_hits}/5 neighbors share the class"
        );
    }

    #[test]
    fn pca_separates_the_two_classes() {
        let (spectra, index) = survey_index(30, 0.0);
        // First coefficient should split the classes almost perfectly.
        let mut emission = Vec::new();
        let mut absorption = Vec::new();
        for (id, _) in &spectra {
            let c = &index.coefficients()[*id as usize].1;
            if id % 2 == 0 {
                emission.push(c[0]);
            } else {
                absorption.push(c[0]);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (me, ma) = (mean(&emission), mean(&absorption));
        let spread = |v: &[f64], m: f64| {
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let gap = (me - ma).abs();
        assert!(
            gap > 2.0 * (spread(&emission, me) + spread(&absorption, ma)),
            "classes overlap on PC1"
        );
    }

    #[test]
    fn masked_expansion_matches_unmasked() {
        // Same object with and without bad pixels: the masked LSQ
        // coefficients must stay close to the clean ones.
        let clean_params = SynthParams {
            noise: 0.0,
            mask_prob: 0.0,
            bins: 256,
            ..SynthParams::default()
        };
        let (_, index) = survey_index(30, 0.0);
        let clean = synth_spectrum(555, SpectralClass::Emission, 0.1, &clean_params);
        let mut damaged = clean.clone();
        for i in (20..damaged.len()).step_by(17) {
            damaged.flags[i] = 1;
            damaged.flux[i] = -1e4;
        }
        let c_clean = index.expand(&clean).unwrap();
        let c_masked = index.expand(&damaged).unwrap();
        let scale = c_clean.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (a, b) in c_clean.iter().zip(&c_masked) {
            assert!(
                (a - b).abs() < 0.15 * scale.max(1e-9),
                "coefficients diverged: {c_clean:?} vs {c_masked:?}"
            );
        }
        // The damaged spectrum must still resolve to a nearby point: far
        // closer to its clean twin than to the other class.
        let d_self: f64 = c_clean
            .iter()
            .zip(&c_masked)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(d_self < 0.3 * scale, "masked twin drifted {d_self}");
    }

    #[test]
    fn reconstruction_approximates_input() {
        let (spectra, index) = survey_index(30, 0.0);
        let grid = linear_grid(4200.0, 8800.0, 128);
        let (flux, _) = super::prepare(&spectra[0].1, &grid).unwrap();
        let c = index.expand(&spectra[0].1).unwrap();
        let rec = index.reconstruct(&c);
        let rms: f64 = (flux
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / flux.len() as f64)
            .sqrt();
        let level: f64 = (flux.iter().map(|v| v * v).sum::<f64>() / flux.len() as f64).sqrt();
        assert!(rms < 0.25 * level, "rms {rms} vs level {level}");
    }

    #[test]
    fn fill_masked_interpolates_gaps() {
        let flux = [1.0, -99.0, -99.0, 4.0, 5.0];
        let w = [1.0, 0.0, 0.0, 1.0, 1.0];
        let filled = super::fill_masked(&flux, &w);
        assert!((filled[1] - 2.0).abs() < 1e-12);
        assert!((filled[2] - 3.0).abs() < 1e-12);
        assert_eq!(filled[0], 1.0);
        // Edge extrapolation holds the nearest good value.
        let w2 = [0.0, 1.0, 1.0, 1.0, 0.0];
        let filled2 = super::fill_masked(&flux, &w2);
        assert_eq!(filled2[0], flux[1]);
        assert_eq!(filled2[4], flux[3]);
    }

    #[test]
    fn build_requires_two_spectra() {
        let grid = linear_grid(4200.0, 8800.0, 16);
        let params = SynthParams::default();
        let one = vec![(
            0u64,
            synth_spectrum(1, SpectralClass::Emission, 0.1, &params),
        )];
        assert!(SpectrumIndex::build(&one, &grid, 2).is_err());
    }
}
