//! Flux normalization and wavelength-dependent corrections.
//!
//! "Normalization of the flux vector [...] requires integration of the
//! flux in given wavelength ranges and multiplication by scalar. Certain
//! corrections of physical effects require multiplying the flux vector
//! with a number that is a function of the wavelength." (§2.2)

use crate::spectrum::Spectrum;
use sqlarray_core::{ArrayError, Result};

/// Integrates flux over `[lo, hi]` (flux density × overlap width; masked
/// bins excluded).
pub fn integrate_window(s: &Spectrum, lo: f64, hi: f64) -> f64 {
    let edges = s.bin_edges();
    let mut total = 0.0;
    for i in 0..s.len() {
        if s.flags[i] != 0 {
            continue;
        }
        let olo = edges[i].max(lo);
        let ohi = edges[i + 1].min(hi);
        if ohi > olo {
            total += s.flux[i] * (ohi - olo);
        }
    }
    total
}

/// Scales the spectrum so the integral over `[lo, hi]` becomes `target`.
/// Fails when the window integral vanishes.
pub fn normalize_window(s: &Spectrum, lo: f64, hi: f64, target: f64) -> Result<Spectrum> {
    let current = integrate_window(s, lo, hi);
    if current.abs() < 1e-300 {
        return Err(ArrayError::Parse(format!(
            "zero flux in normalization window [{lo}, {hi}]"
        )));
    }
    let k = target / current;
    let mut out = s.clone();
    for f in &mut out.flux {
        *f *= k;
    }
    for e in &mut out.error {
        *e *= k.abs();
    }
    Ok(out)
}

/// Scales the spectrum to unit total integrated flux.
pub fn normalize_total(s: &Spectrum) -> Result<Spectrum> {
    let edges = s.bin_edges();
    normalize_window(s, edges[0], *edges.last().expect("non-empty"), 1.0)
}

/// Multiplies the flux by a wavelength-dependent correction `g(λ)` —
/// extinction curves, flux calibration, and similar physical corrections.
pub fn apply_correction(s: &Spectrum, g: impl Fn(f64) -> f64) -> Spectrum {
    let mut out = s.clone();
    for i in 0..out.len() {
        let k = g(out.wavelength[i]);
        out.flux[i] *= k;
        out.error[i] *= k.abs();
    }
    out
}

/// Shifts the spectrum to its rest frame: `λ_rest = λ_obs / (1 + z)`.
pub fn to_rest_frame(s: &Spectrum) -> Result<Spectrum> {
    let z1 = 1.0 + s.redshift;
    if z1 <= 0.0 {
        return Err(ArrayError::Parse(format!("bad redshift {}", s.redshift)));
    }
    Spectrum::new(
        s.wavelength.iter().map(|w| w / z1).collect(),
        s.flux.clone(),
        s.error.clone(),
        s.flags.clone(),
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Spectrum {
        let n = 50;
        Spectrum::new(
            (0..n).map(|i| 5000.0 + 2.0 * i as f64).collect(),
            (0..n).map(|i| 1.0 + i as f64 * 0.1).collect(),
            vec![0.2; n],
            vec![0; n],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn window_integral_of_flat_region() {
        let s = Spectrum::new(
            vec![1.0, 2.0, 3.0, 4.0],
            vec![5.0; 4],
            vec![0.0; 4],
            vec![0; 4],
            0.0,
        )
        .unwrap();
        // Window exactly covering bins 1 and 2 (width 2): integral 10.
        assert!((integrate_window(&s, 1.5, 3.5) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn masked_bins_excluded_from_integral() {
        let mut s = ramp();
        let full = integrate_window(&s, 5000.0, 5100.0);
        s.flags[10] = 1;
        let masked = integrate_window(&s, 5000.0, 5100.0);
        assert!(masked < full);
    }

    #[test]
    fn normalize_window_hits_target() {
        let s = ramp();
        let r = normalize_window(&s, 5010.0, 5050.0, 3.0).unwrap();
        assert!((integrate_window(&r, 5010.0, 5050.0) - 3.0).abs() < 1e-9);
        // Errors scale with the flux.
        let k = r.flux[0] / s.flux[0];
        assert!((r.error[0] - s.error[0] * k).abs() < 1e-12);
    }

    #[test]
    fn normalize_total_gives_unit_integral() {
        let s = ramp();
        let r = normalize_total(&s).unwrap();
        assert!((r.integrated_flux() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_rejected() {
        let s = Spectrum::new(
            vec![1.0, 2.0],
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![0, 0],
            0.0,
        )
        .unwrap();
        assert!(normalize_total(&s).is_err());
    }

    #[test]
    fn correction_applies_pointwise() {
        let s = ramp();
        let c = apply_correction(&s, |w| w / 5000.0);
        for i in 0..s.len() {
            let k = s.wavelength[i] / 5000.0;
            assert!((c.flux[i] - s.flux[i] * k).abs() < 1e-12);
        }
    }

    #[test]
    fn rest_frame_divides_wavelengths() {
        let s = ramp(); // z = 1
        let r = to_rest_frame(&s).unwrap();
        assert!((r.wavelength[0] - 2500.0).abs() < 1e-12);
        assert_eq!(r.redshift, 0.0);
        let bad =
            Spectrum::new(vec![1.0, 2.0], vec![1.0; 2], vec![0.0; 2], vec![0; 2], -1.0).unwrap();
        assert!(to_rest_frame(&bad).is_err());
    }
}
