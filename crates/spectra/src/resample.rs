//! Flux-conserving resampling.
//!
//! "Resampling the spectra to a common wavelength grid is also very
//! important [...] the resampling should be done in such a way that the
//! integrated flux in any wavelength range remains the same." (§2.2)
//!
//! The spectrum is treated as a histogram: flux density is constant within
//! each source bin. A target bin receives the overlap-weighted average of
//! the source densities, which conserves `∫ f dλ` exactly over any union
//! of target bins inside the covered range.

use crate::spectrum::Spectrum;
use sqlarray_core::{ArrayError, Result};

/// Resamples onto the grid with the given bin centers. Errors propagate in
/// quadrature with the same overlap weights; a target bin is flagged if
/// any overlapping source bin is flagged, or if it has no coverage.
pub fn resample(s: &Spectrum, new_centers: &[f64]) -> Result<Spectrum> {
    if new_centers.len() < 2 {
        return Err(ArrayError::Parse("need at least two target bins".into()));
    }
    if new_centers.windows(2).any(|w| w[0] >= w[1]) {
        return Err(ArrayError::Parse(
            "target centers must be strictly increasing".into(),
        ));
    }
    let src_edges = s.bin_edges();
    let dst = Spectrum::new(
        new_centers.to_vec(),
        vec![0.0; new_centers.len()],
        vec![0.0; new_centers.len()],
        vec![0; new_centers.len()],
        s.redshift,
    )?;
    let dst_edges = dst.bin_edges();

    let mut flux = vec![0.0f64; new_centers.len()];
    let mut var = vec![0.0f64; new_centers.len()];
    let mut flags = vec![0i16; new_centers.len()];

    let mut j = 0usize; // source bin cursor
    for (t, f_out) in flux.iter_mut().enumerate() {
        let lo = dst_edges[t];
        let hi = dst_edges[t + 1];
        // Advance to the first source bin overlapping [lo, hi).
        while j < s.len() && src_edges[j + 1] <= lo {
            j += 1;
        }
        let mut k = j;
        let mut covered = 0.0f64;
        while k < s.len() && src_edges[k] < hi {
            let olo = src_edges[k].max(lo);
            let ohi = src_edges[k + 1].min(hi);
            let w = (ohi - olo).max(0.0);
            if w > 0.0 {
                *f_out += s.flux[k] * w;
                var[t] += (s.error[k] * w).powi(2);
                if s.flags[k] != 0 {
                    flags[t] = s.flags[k];
                }
                covered += w;
            }
            k += 1;
        }
        if covered > 0.0 {
            *f_out /= covered;
            var[t] = var[t].sqrt() / covered;
        } else {
            flags[t] = i16::MAX; // no coverage
        }
    }

    Spectrum::new(new_centers.to_vec(), flux, var, flags, s.redshift)
}

/// A linear wavelength grid of `n` centers spanning `[lo, hi]`.
pub fn linear_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// A log-linear grid (constant Δlog λ — the natural grid for redshifted
/// spectra).
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_spectrum(n: usize, level: f64) -> Spectrum {
        Spectrum::new(
            (0..n).map(|i| 4000.0 + i as f64).collect(),
            vec![level; n],
            vec![0.1; n],
            vec![0; n],
            0.0,
        )
        .unwrap()
    }

    #[test]
    fn flat_spectrum_stays_flat() {
        let s = flat_spectrum(100, 2.5);
        let grid = linear_grid(4010.0, 4080.0, 37);
        let r = resample(&s, &grid).unwrap();
        for f in &r.flux {
            assert!((f - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn integrated_flux_is_conserved() {
        // A bumpy spectrum resampled onto a coarser grid covering the same
        // span: total integral preserved.
        let n = 128;
        let s = Spectrum::new(
            (0..n).map(|i| 4000.0 + i as f64).collect(),
            (0..n)
                .map(|i| 1.0 + (i as f64 * 0.2).sin().powi(2) * 3.0)
                .collect(),
            vec![0.05; n],
            vec![0; n],
            0.3,
        )
        .unwrap();
        // Target grid with edges aligned to the source coverage.
        let grid = linear_grid(4001.5, 4123.5, 32);
        let r = resample(&s, &grid).unwrap();
        // Compare integrals over the common support [edge0, edgeN].
        let r_edges = r.bin_edges();
        let (lo, hi) = (r_edges[0], *r_edges.last().unwrap());
        let src_edges = s.bin_edges();
        let mut src_int = 0.0;
        for i in 0..s.len() {
            let olo = src_edges[i].max(lo);
            let ohi = src_edges[i + 1].min(hi);
            if ohi > olo {
                src_int += s.flux[i] * (ohi - olo);
            }
        }
        let dst_int = r.integrated_flux();
        assert!(
            (src_int - dst_int).abs() < 1e-9 * src_int.abs(),
            "{src_int} vs {dst_int}"
        );
    }

    #[test]
    fn upsampling_preserves_levels() {
        let s = flat_spectrum(10, 7.0);
        let grid = linear_grid(4001.0, 4008.0, 50);
        let r = resample(&s, &grid).unwrap();
        for f in &r.flux {
            assert!((f - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn flags_propagate() {
        let mut s = flat_spectrum(20, 1.0);
        s.flags[10] = 3;
        let grid = linear_grid(4005.0, 4015.0, 6);
        let r = resample(&s, &grid).unwrap();
        // The bins overlapping source bin 10 (λ≈4010) are flagged.
        assert!(r.flags.contains(&3));
        // Bins far from it are clean.
        assert_eq!(r.flags[0], 0);
    }

    #[test]
    fn no_coverage_is_flagged() {
        let s = flat_spectrum(10, 1.0); // covers ~[3999.5, 4009.5]
        let grid = linear_grid(4950.0, 5050.0, 5);
        let r = resample(&s, &grid).unwrap();
        assert!(r.flags.iter().all(|&f| f == i16::MAX));
    }

    #[test]
    fn grids_are_monotone() {
        let g = log_grid(4000.0, 9000.0, 100);
        assert_eq!(g.len(), 100);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!((g[0] - 4000.0).abs() < 1e-9);
        assert!((g[99] - 9000.0).abs() < 1e-6);
        // Log grid has constant ratio.
        let r0 = g[1] / g[0];
        let r50 = g[51] / g[50];
        assert!((r0 - r50).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_targets() {
        let s = flat_spectrum(10, 1.0);
        assert!(resample(&s, &[4000.0]).is_err());
        assert!(resample(&s, &[4001.0, 4000.0]).is_err());
    }

    #[test]
    fn errors_shrink_when_averaging_bins() {
        // Combining k source bins with equal errors reduces the error by
        // ~sqrt(k) (independent noise).
        let s = flat_spectrum(100, 1.0);
        let fine = resample(&s, &linear_grid(4010.0, 4090.0, 81)).unwrap();
        let coarse = resample(&s, &linear_grid(4010.0, 4090.0, 11)).unwrap();
        assert!(coarse.error[5] < fine.error[40]);
    }
}
