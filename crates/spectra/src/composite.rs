//! Composite (stacked) spectra.
//!
//! "Once resampled to common grid, spectra can be averaged to get
//! composites with high signal to noise ratio. [...] The averaging could
//! be very easily solved using an aggregate function. Latter would allow
//! us to group spectra by certain parameters (for example redshift of the
//! observed galaxies) so composite spectra of objects at different
//! cosmological distances could be computed with a simple SQL query."
//! (§2.2)

use crate::resample::resample;
use crate::spectrum::Spectrum;
use sqlarray_core::{ArrayError, Result};

/// Inverse-variance-weighted mean of spectra on a common grid; masked bins
/// are excluded per spectrum. The result's error is the propagated
/// `1/√Σw`, and a bin with no contributing spectrum is flagged.
pub fn composite(spectra: &[Spectrum], grid: &[f64]) -> Result<Spectrum> {
    if spectra.is_empty() {
        return Err(ArrayError::Parse("no spectra to stack".into()));
    }
    let n = grid.len();
    let mut num = vec![0.0f64; n];
    let mut wsum = vec![0.0f64; n];
    let mut mean_z = 0.0;
    for s in spectra {
        let r = resample(s, grid)?;
        for i in 0..n {
            if r.flags[i] != 0 || r.error[i] <= 0.0 {
                continue;
            }
            let w = 1.0 / (r.error[i] * r.error[i]);
            num[i] += w * r.flux[i];
            wsum[i] += w;
        }
        mean_z += s.redshift;
    }
    mean_z /= spectra.len() as f64;

    let mut flux = vec![0.0f64; n];
    let mut error = vec![0.0f64; n];
    let mut flags = vec![0i16; n];
    for i in 0..n {
        if wsum[i] > 0.0 {
            flux[i] = num[i] / wsum[i];
            error[i] = (1.0 / wsum[i]).sqrt();
        } else {
            flags[i] = i16::MAX;
        }
    }
    Spectrum::new(grid.to_vec(), flux, error, flags, mean_z)
}

/// Groups spectra into redshift bins of width `dz` and stacks each group —
/// the SQL `GROUP BY redshift` composite query in library form. Returns
/// `(bin_center, stack)` pairs ordered by redshift.
pub fn composite_by_redshift(
    spectra: &[Spectrum],
    grid: &[f64],
    dz: f64,
) -> Result<Vec<(f64, Spectrum)>> {
    if dz <= 0.0 {
        return Err(ArrayError::Parse("dz must be positive".into()));
    }
    let mut groups: std::collections::BTreeMap<i64, Vec<Spectrum>> =
        std::collections::BTreeMap::new();
    for s in spectra {
        let bin = (s.redshift / dz).floor() as i64;
        groups.entry(bin).or_default().push(s.clone());
    }
    groups
        .into_iter()
        .map(|(bin, members)| {
            let center = (bin as f64 + 0.5) * dz;
            Ok((center, composite(&members, grid)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resample::linear_grid;
    use crate::synth::{synth_survey, SynthParams};

    fn flat(level: f64, err: f64, z: f64) -> Spectrum {
        let n = 40;
        Spectrum::new(
            (0..n).map(|i| 5000.0 + 5.0 * i as f64).collect(),
            vec![level; n],
            vec![err; n],
            vec![0; n],
            z,
        )
        .unwrap()
    }

    #[test]
    fn equal_weights_give_plain_mean() {
        let grid = linear_grid(5010.0, 5180.0, 20);
        let c = composite(&[flat(1.0, 0.1, 0.0), flat(3.0, 0.1, 0.0)], &grid).unwrap();
        for f in &c.flux {
            assert!((f - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_variance_weighting_favours_precise_spectra() {
        let grid = linear_grid(5010.0, 5180.0, 20);
        // Second spectrum is 10x noisier: weight 100x smaller.
        let c = composite(&[flat(1.0, 0.1, 0.0), flat(3.0, 1.0, 0.0)], &grid).unwrap();
        let expected = (100.0 * 1.0 + 1.0 * 3.0) / 101.0;
        for f in &c.flux {
            assert!((f - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn stacking_reduces_noise() {
        let p = SynthParams {
            mask_prob: 0.0,
            noise: 0.1,
            ..SynthParams::default()
        };
        let spectra = synth_survey(33, 32, &[0.0], &p);
        let grid = linear_grid(4200.0, 8800.0, 256);
        let single = resample(&spectra[0], &grid).unwrap();
        let stack = composite(&spectra, &grid).unwrap();
        // Stacked error ~ single / sqrt(32)... compare medians.
        let med = |v: &[f64]| {
            let mut s: Vec<f64> = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(med(&stack.error) < med(&single.error) / 3.0);
    }

    #[test]
    fn masked_bins_are_skipped_not_poisoned() {
        let grid = linear_grid(5010.0, 5180.0, 20);
        let good = flat(2.0, 0.1, 0.0);
        let mut bad = flat(2.0, 0.1, 0.0);
        // Corrupt one region and flag it.
        for i in 10..15 {
            bad.flux[i] = 1e6;
            bad.flags[i] = 1;
        }
        let c = composite(&[good, bad], &grid).unwrap();
        for f in &c.flux {
            assert!((f - 2.0).abs() < 1e-6, "poisoned bin: {f}");
        }
    }

    #[test]
    fn group_by_redshift_orders_bins() {
        let grid = linear_grid(5010.0, 5180.0, 10);
        let spectra = vec![
            flat(1.0, 0.1, 0.05),
            flat(2.0, 0.1, 0.07),
            flat(3.0, 0.1, 0.31),
            flat(4.0, 0.1, 0.33),
        ];
        let groups = composite_by_redshift(&spectra, &grid, 0.1).unwrap();
        assert_eq!(groups.len(), 2);
        assert!((groups[0].0 - 0.05).abs() < 1e-12);
        assert!((groups[1].0 - 0.35).abs() < 1e-12);
        // First group stacks levels 1 and 2.
        assert!((groups[0].1.flux[3] - 1.5).abs() < 1e-9);
        assert!((groups[1].1.flux[3] - 3.5).abs() < 1e-9);
    }

    #[test]
    fn empty_input_rejected() {
        let grid = linear_grid(5010.0, 5180.0, 10);
        assert!(composite(&[], &grid).is_err());
        assert!(composite_by_redshift(&[flat(1.0, 0.1, 0.0)], &grid, 0.0).is_err());
    }
}
