//! A k-d tree over coefficient vectors.
//!
//! "One builds a kd-tree over the coefficients so nearest neighbor
//! searches can be executed very quickly. A 'query' spectrum is expanded
//! on the same basis on the fly and the nearest neighbors of its
//! coefficient vector are looked up using the kd-tree." (§2.2)

/// A static k-d tree over `dim`-dimensional points with `u64` payload ids.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    point: Vec<f64>,
    id: u64,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// One nearest-neighbour hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// Payload id of the point.
    pub id: u64,
    /// Euclidean distance to the query.
    pub distance: f64,
}

impl KdTree {
    /// Builds a balanced tree from `(id, point)` pairs (median splits).
    pub fn build(dim: usize, items: Vec<(u64, Vec<f64>)>) -> KdTree {
        assert!(dim > 0, "dimension must be positive");
        for (id, p) in &items {
            assert_eq!(p.len(), dim, "point {id} has wrong dimension");
        }
        let mut tree = KdTree {
            dim,
            nodes: Vec::with_capacity(items.len()),
            root: None,
        };
        let mut work: Vec<(u64, Vec<f64>)> = items;
        tree.root = tree.build_rec(&mut work[..], 0);
        tree
    }

    fn build_rec(&mut self, items: &mut [(u64, Vec<f64>)], depth: usize) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        let axis = depth % self.dim;
        let mid = items.len() / 2;
        items.sort_by(|a, b| {
            a.1[axis]
                .partial_cmp(&b.1[axis])
                .expect("finite coordinates")
        });
        let (id, point) = items[mid].clone();
        let idx = self.nodes.len();
        self.nodes.push(Node {
            point,
            id,
            axis,
            left: None,
            right: None,
        });
        let left = self.build_rec(&mut items[..mid], depth + 1);
        let (_, rest) = items.split_at_mut(mid + 1);
        let right = self.build_rec(rest, depth + 1);
        self.nodes[idx].left = left;
        self.nodes[idx].right = right;
        Some(idx)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty tree.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `k` nearest neighbours of `query`, ascending by distance.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim);
        if k == 0 {
            return Vec::new();
        }
        // Max-heap of current best (distance, id) kept as a sorted vec —
        // k is small in the search scenario.
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        if let Some(root) = self.root {
            self.search(root, query, k, &mut best);
        }
        best
    }

    fn search(&self, idx: usize, query: &[f64], k: usize, best: &mut Vec<Neighbor>) {
        let node = &self.nodes[idx];
        let d = dist(&node.point, query);
        let insert_at = best
            .binary_search_by(|n| n.distance.partial_cmp(&d).expect("finite"))
            .unwrap_or_else(|i| i);
        if insert_at < k {
            best.insert(
                insert_at,
                Neighbor {
                    id: node.id,
                    distance: d,
                },
            );
            best.truncate(k);
        }

        let delta = query[node.axis] - node.point[node.axis];
        let (near, far) = if delta <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.search(n, query, k, best);
        }
        // Prune the far side unless the splitting plane is closer than the
        // current k-th best.
        let worst = best.last().map(|n| n.distance).unwrap_or(f64::INFINITY);
        if best.len() < k || delta.abs() < worst {
            if let Some(f) = far {
                self.search(f, query, k, best);
            }
        }
    }

    /// All points within `radius` of `query` (unordered).
    pub fn within_radius(&self, query: &[f64], radius: f64) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim);
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_search(root, query, radius, &mut out);
        }
        out
    }

    fn range_search(&self, idx: usize, query: &[f64], radius: f64, out: &mut Vec<Neighbor>) {
        let node = &self.nodes[idx];
        let d = dist(&node.point, query);
        if d <= radius {
            out.push(Neighbor {
                id: node.id,
                distance: d,
            });
        }
        let delta = query[node.axis] - node.point[node.axis];
        if delta <= radius {
            if let Some(l) = node.left {
                self.range_search(l, query, radius, out);
            }
        }
        if -delta <= radius {
            if let Some(r) = node.right {
                self.range_search(r, query, radius, out);
            }
        }
    }
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<(u64, Vec<f64>)> {
        // 5x5 lattice with ids row*5+col.
        (0..25u64)
            .map(|i| (i, vec![(i % 5) as f64, (i / 5) as f64]))
            .collect()
    }

    fn brute_nearest(items: &[(u64, Vec<f64>)], q: &[f64], k: usize) -> Vec<u64> {
        let mut v: Vec<(f64, u64)> = items.iter().map(|(id, p)| (dist(p, q), *id)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        v.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn single_nearest_on_lattice() {
        let t = KdTree::build(2, grid_points());
        let n = t.nearest(&[2.2, 3.1], 1);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].id, 3 * 5 + 2);
    }

    #[test]
    fn knn_matches_brute_force() {
        let items: Vec<(u64, Vec<f64>)> = (0..200u64)
            .map(|i| {
                let x = (i as f64 * 0.317).sin() * 10.0;
                let y = (i as f64 * 0.711).cos() * 10.0;
                let z = (i as f64 * 0.173).sin() * (i as f64 * 0.091).cos() * 10.0;
                (i, vec![x, y, z])
            })
            .collect();
        let t = KdTree::build(3, items.clone());
        for q in [[0.0, 0.0, 0.0], [5.0, -3.0, 2.0], [-9.9, 9.9, 0.1]] {
            let got: Vec<u64> = t.nearest(&q, 7).iter().map(|n| n.id).collect();
            let want = brute_nearest(&items, &q, 7);
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn distances_are_sorted() {
        let t = KdTree::build(2, grid_points());
        let n = t.nearest(&[1.7, 1.2], 6);
        assert_eq!(n.len(), 6);
        for w in n.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn k_larger_than_size() {
        let t = KdTree::build(2, grid_points());
        let n = t.nearest(&[0.0, 0.0], 100);
        assert_eq!(n.len(), 25);
        assert!(t.nearest(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let items = grid_points();
        let t = KdTree::build(2, items.clone());
        let q = [2.0, 2.0];
        let mut got: Vec<u64> = t.within_radius(&q, 1.5).iter().map(|n| n.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|(_, p)| dist(p, &q) <= 1.5)
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(4, Vec::new());
        assert!(t.is_empty());
        assert!(t.nearest(&[0.0; 4], 3).is_empty());
        assert!(t.within_radius(&[0.0; 4], 10.0).is_empty());
    }

    #[test]
    fn exact_match_has_zero_distance() {
        let t = KdTree::build(2, grid_points());
        let n = t.nearest(&[3.0, 4.0], 1);
        assert_eq!(n[0].distance, 0.0);
        assert_eq!(n[0].id, 4 * 5 + 3);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn dimension_mismatch_panics() {
        let _ = KdTree::build(3, vec![(0, vec![1.0, 2.0])]);
    }
}
