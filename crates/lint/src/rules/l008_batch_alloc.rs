//! **L008 — no per-row heap allocation inside batch-kernel loops.**
//!
//! The whole point of the vectorized execution path is that per-row work
//! is a few arithmetic instructions over contiguous columns. One heap
//! allocation inside a batch kernel's row loop (`.to_vec()`, `.clone()`,
//! `format!`, a fresh `Vec::new()`) re-introduces exactly the per-row
//! overhead the batch refactor removed — and it hides easily, because the
//! code stays correct and only the 2–4× speedup quietly evaporates.
//!
//! Scope: the batch kernels (`core::batch`) and the engine's batch
//! compiler/evaluator (`engine::batch`). The rule walks every `for` loop
//! body in those files and flags the four allocator calls above.
//! Kernels should hoist scratch out of the loop (`clear()` + `reserve()`)
//! or borrow instead of cloning; a genuinely-needed allocation takes a
//! reasoned `lint:allow(L008, reason = "…")`.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::finding_at;
use crate::source::SourceFile;
use std::collections::HashSet;

/// File suffixes forming the batch-kernel surface.
const SCOPE_SUFFIXES: &[&str] = &["crates/core/src/batch.rs", "crates/engine/src/batch.rs"];

/// Significant-token index of the `{` opening the body of the `for` loop
/// whose keyword sits at `k`, or `None` if the header never closes. The
/// header expression may contain braces only inside parens/brackets
/// (closure bodies in iterator adapters), so the body brace is the first
/// `{` at bracket depth zero.
fn body_open(f: &SourceFile<'_>, k: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in k + 1..f.sig.len() {
        if f.kind(j) != Some(TokKind::Punct) {
            continue;
        }
        match f.text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// Significant-token index of the `}` matching the `{` at `open`.
fn body_close(f: &SourceFile<'_>, open: usize) -> usize {
    let mut depth = 0i32;
    for j in open..f.sig.len() {
        if f.kind(j) != Some(TokKind::Punct) {
            continue;
        }
        match f.text(j) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    f.sig.len()
}

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if !SCOPE_SUFFIXES.iter().any(|s| f.path.ends_with(s)) {
        return out;
    }

    // Nested loops would report the same allocation once per enclosing
    // `for`; dedup by the flagged token index.
    let mut flagged: HashSet<usize> = HashSet::new();

    for k in 0..f.sig.len() {
        if !f.is_ident(k, "for") || f.in_test(f.tok(k).start) {
            continue;
        }
        let Some(open) = body_open(f, k) else {
            continue;
        };
        let close = body_close(f, open);
        for j in open + 1..close {
            let hit = if f.is_punct(j, ".")
                && (f.is_ident(j + 1, "to_vec") || f.is_ident(j + 1, "clone"))
                && f.is_punct(j + 2, "(")
            {
                Some((j + 1, format!(".{}()", f.text(j + 1))))
            } else if f.is_ident(j, "format") && f.is_punct(j + 1, "!") && f.is_punct(j + 2, "(") {
                Some((j, "format!".to_string()))
            } else if f.is_ident(j, "Vec")
                && f.is_punct(j + 1, ":")
                && f.is_punct(j + 2, ":")
                && f.is_ident(j + 3, "new")
                && f.is_punct(j + 4, "(")
            {
                Some((j, "Vec::new()".to_string()))
            } else {
                None
            };
            if let Some((at, what)) = hit {
                if flagged.insert(at) {
                    out.push(finding_at(
                        f,
                        "L008",
                        at,
                        format!(
                            "`{what}` inside a batch-kernel `for` loop allocates per row \
                             and forfeits the vectorized path's speedup; hoist the scratch \
                             out of the loop (clear + reserve) or borrow instead"
                        ),
                    ));
                }
            }
        }
    }
    out
}
