//! **L005 — no `unwrap`/`expect` in the library code of `storage`,
//! `engine`, `core`.**
//!
//! Typed errors exist end-to-end (`StorageError`, `EngineError`,
//! `ArrayError`; PR 5's `EngineError::UnresolvedLob` set the pattern for
//! replacing silent fallbacks). An `.unwrap()`/`.expect("…")` on a
//! fallible path turns a recoverable condition — a torn page, a corrupt
//! row, a rejected LOB read — into a process abort, which a multi-session
//! server cannot afford. Library code in the database stack propagates
//! with `?`; a provably-infallible site carries a `lint:allow(L005, …)`
//! naming the invariant that guarantees it.
//!
//! Matching is syntactic: `.unwrap()` with empty parens, and `.expect(`
//! whose first argument is a string literal — which distinguishes
//! `Result::expect("msg")` from unrelated methods like the T-SQL
//! parser's `self.expect(&Tok::RParen, …)`.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// Crates whose library code must propagate typed errors.
const SCOPE: &[&str] = &["storage", "engine", "core"];

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if !SCOPE.contains(&f.crate_name()) {
        return out;
    }
    for k in 0..f.sig.len().saturating_sub(2) {
        if !f.is_punct(k, ".") || f.in_test(f.tok(k).start) {
            continue;
        }
        if f.is_ident(k + 1, "unwrap") && f.is_punct(k + 2, "(") && f.is_punct(k + 3, ")") {
            out.push(finding_at(
                f,
                "L005",
                k + 1,
                "`.unwrap()` in library code aborts on a recoverable condition; \
                 propagate the typed error with `?` (see EngineError::UnresolvedLob), \
                 or lint:allow with the invariant that makes this infallible"
                    .to_string(),
            ));
        }
        if f.is_ident(k + 1, "expect")
            && f.is_punct(k + 2, "(")
            && f.kind(k + 3) == Some(TokKind::Str)
        {
            out.push(finding_at(
                f,
                "L005",
                k + 1,
                "`.expect(\"…\")` in library code aborts on a recoverable condition; \
                 propagate the typed error with `?`, or lint:allow with the invariant \
                 that makes this infallible"
                    .to_string(),
            ));
        }
    }
    out
}
