//! **L009 — no mutex guard held across a scan fan-out in engine code.**
//!
//! The shared-engine refactor put counters behind `Mutex`es (plan-cache
//! state, scheduler state, store accounting). A `.lock()` guard that is
//! still live when the scan fans out (`scoped_map_ranges`,
//! `scoped_for_ranges_mut`, `scoped_try_for_ranges_mut`,
//! `thread::scope`) serializes every worker behind one session's guard
//! at best — and deadlocks at worst, the moment any worker touches the
//! same mutex (the store's accounting lock is taken by every reader
//! fold). The discipline is: take what you need out of the guard, drop
//! it, then fan out. The engine's `RwLock` database guard is *designed*
//! to span the fan-out (that is the read-snapshot), so only `Mutex`
//! guards (`.lock()`) are watched, not `.read()`/`.write()`.
//!
//! Mechanically: inside the `engine` crate, a `let`-bound `….lock(…)` or
//! `lock_unpoisoned(…)` guard (the [`sqlarray_core::sync`] poison-policy
//! funnel acquires the same `MutexGuard`) is live until its binding is
//! `drop(…)`ed or its enclosing block ends; reaching a fan-out call with
//! any guard live is a finding. `read_unpoisoned`/`write_unpoisoned` are
//! exempt for the same reason `.read()`/`.write()` are.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// The text of significant token `k` when it is an identifier.
fn ident_text<'a>(f: &'a SourceFile<'_>, k: usize) -> Option<&'a str> {
    if f.kind(k) == Some(TokKind::Ident) {
        Some(f.text(k))
    } else {
        None
    }
}

/// Fan-out entry points a live guard must not reach.
const FANOUTS: &[&str] = &[
    "scoped_map_ranges",
    "scoped_for_ranges_mut",
    "scoped_try_for_ranges_mut",
];

/// A live `let`-bound mutex guard.
struct Guard {
    /// The bound identifier (`let g = m.lock()…` → `g`).
    name: String,
    /// Brace depth at the binding; leaving this depth kills the guard.
    depth: usize,
}

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if f.crate_name() != "engine" {
        return out;
    }

    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut k = 0usize;
    while k < f.sig.len() {
        if f.is_punct(k, "{") {
            depth += 1;
        } else if f.is_punct(k, "}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if f.is_ident(k, "let") {
            // `let [mut] name = … .lock ( … ;` — a guard binding when the
            // statement contains a `.lock(` call before its terminating
            // semicolon.
            let mut n = k + 1;
            if f.is_ident(n, "mut") {
                n += 1;
            }
            if let Some(name) = ident_text(f, n) {
                // Stop at the first `{` as well as `;`: a `.lock()` inside
                // a nested block (`let v = { m.lock()…; *v };`) releases
                // within that block, so the outer binding is not a guard.
                let mut j = n + 1;
                while j + 2 < f.sig.len() && !f.is_punct(j, ";") && !f.is_punct(j, "{") {
                    let method_lock =
                        f.is_punct(j, ".") && f.is_ident(j + 1, "lock") && f.is_punct(j + 2, "(");
                    let funnel_lock = f.is_ident(j, "lock_unpoisoned") && f.is_punct(j + 1, "(");
                    if method_lock || funnel_lock {
                        guards.push(Guard {
                            name: name.to_string(),
                            depth,
                        });
                        break;
                    }
                    j += 1;
                }
            }
        } else if f.is_ident(k, "drop") && f.is_punct(k + 1, "(") {
            if let Some(name) = ident_text(f, k + 2) {
                guards.retain(|g| g.name != name);
            }
        } else if !f.in_test(f.tok(k).start) {
            let is_scoped = FANOUTS.iter().any(|n| f.is_ident(k, n)) && f.is_punct(k + 1, "(");
            let is_thread_scope = f.is_ident(k, "thread")
                && f.is_punct(k + 1, ":")
                && f.is_punct(k + 2, ":")
                && f.is_ident(k + 3, "scope");
            if (is_scoped || is_thread_scope) && !guards.is_empty() {
                out.push(finding_at(
                    f,
                    "L009",
                    k,
                    format!(
                        "scan fan-out `{}` reached while mutex guard `{}` is live: \
                         a guard held across the fan-out serializes (or deadlocks) \
                         every worker — copy what you need out of the guard and \
                         drop it before fanning out",
                        f.text(k),
                        guards
                            .last()
                            .map(|g| g.name.as_str())
                            .unwrap_or("<unknown>"),
                    ),
                ));
            }
        }
        k += 1;
    }
    out
}
