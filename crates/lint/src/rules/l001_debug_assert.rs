//! **L001 — correctness guards must survive release builds.**
//!
//! `debug_assert!` / `debug_assert_eq!` / `debug_assert_ne!` compile to
//! nothing in release builds. When the guarded condition is a slice
//! length, an index bound, or a structural invariant, the release binary
//! does not fail fast — it silently computes a wrong answer (PR 4:
//! `blas::dot` zip-truncated to a wrong dot product when the lengths
//! disagreed). In the database stack (`core`, `storage`, `engine`, `fft`,
//! `linalg`) every such guard must be a real `assert!` — or carry a
//! `lint:allow(L001, …)` explaining why a debug-only check is sound (e.g.
//! the very next line's slice indexing panics anyway).

use crate::diag::Finding;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// Crates forming the database stack, where a vanished guard means a
/// silent wrong answer rather than a demo glitch.
const SCOPE: &[&str] = &["core", "storage", "engine", "fft", "linalg"];

const MACROS: &[&str] = &["debug_assert", "debug_assert_eq", "debug_assert_ne"];

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if !SCOPE.contains(&f.crate_name()) {
        return out;
    }
    for k in 0..f.sig.len().saturating_sub(1) {
        let t = f.text(k);
        if MACROS.contains(&t) && f.is_punct(k + 1, "!") && !f.in_test(f.tok(k).start) {
            out.push(finding_at(
                f,
                "L001",
                k,
                format!(
                    "`{t}!` vanishes in release builds; a correctness guard here must be \
                     `{}!` (the PR 4 release-truncation class)",
                    t.trim_start_matches("debug_")
                ),
            ));
        }
    }
    out
}
