//! **L002 — real summation in aggregation paths goes through
//! `exact::ExactSum`.**
//!
//! The repo's standing invariant is that parallel execution is
//! bit-identical to serial at any DOP. Naive `f64` accumulation (`acc +=
//! v`, `.sum()`) is order-dependent under rounding, so any aggregation
//! path using it silently breaks the invariant the moment partials merge
//! in a different order (PR 5: `agg::sum` disagreed with the engine's
//! parallel `SUM` until it was moved onto the Kulisch accumulator).
//!
//! Scope: the aggregation surfaces — `core::ops::agg`, the engine's
//! aggregate/UDA merge paths, and the executor. The rule tracks
//! identifiers bound with an `f64`/`f32` type or a float literal and
//! flags `+=` on them, plus any `.sum(`/`.sum::<…>(` iterator fold.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::finding_at;
use crate::source::SourceFile;
use std::collections::HashSet;

/// File suffixes forming the aggregation surface.
const SCOPE_SUFFIXES: &[&str] = &[
    "crates/core/src/ops/agg.rs",
    "crates/engine/src/aggregate.rs",
    "crates/engine/src/exec.rs",
    "crates/engine/src/udf.rs",
];

fn float_literal(text: &str) -> bool {
    (text.contains('.') && !text.starts_with("0x"))
        || text.ends_with("f64")
        || text.ends_with("f32")
}

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if !SCOPE_SUFFIXES.iter().any(|s| f.path.ends_with(s)) {
        return out;
    }

    // Pass 1: identifiers visibly bound to floats — `x: f64` (let or
    // parameter) or `let [mut] x = <float literal>`.
    let mut floats: HashSet<&str> = HashSet::new();
    for k in 0..f.sig.len() {
        if f.kind(k) != Some(TokKind::Ident) {
            continue;
        }
        let name = f.text(k);
        if f.is_punct(k + 1, ":") && (f.is_ident(k + 2, "f64") || f.is_ident(k + 2, "f32")) {
            floats.insert(name);
        }
        if name == "let" {
            let mut j = k + 1;
            if f.is_ident(j, "mut") {
                j += 1;
            }
            if f.kind(j) == Some(TokKind::Ident)
                && f.is_punct(j + 1, "=")
                && !f.is_punct(j + 2, "=")
                && f.kind(j + 2) == Some(TokKind::Num)
                && float_literal(f.text(j + 2))
            {
                floats.insert(f.text(j));
            }
        }
    }

    // Pass 2: flag `x +=` on float-bound identifiers and `.sum(` folds.
    for k in 0..f.sig.len() {
        if f.in_test(f.tok(k).start) {
            continue;
        }
        if f.kind(k) == Some(TokKind::Ident)
            && floats.contains(f.text(k))
            && f.is_punct(k + 1, "+")
            && f.is_punct(k + 2, "=")
        {
            out.push(finding_at(
                f,
                "L002",
                k,
                format!(
                    "naive float accumulation `{} +=` in an aggregation path is \
                     order-dependent and breaks parallel-equals-serial bit-identity; \
                     accumulate through `exact::ExactSum` (the PR 5 `agg::sum` class)",
                    f.text(k)
                ),
            ));
        }
        if f.is_punct(k, ".")
            && f.is_ident(k + 1, "sum")
            && (f.is_punct(k + 2, "(") || f.is_punct(k + 2, ":"))
        {
            out.push(finding_at(
                f,
                "L002",
                k + 1,
                "iterator `.sum()` in an aggregation path folds in iteration order; \
                 accumulate through `exact::ExactSum` so parallel merges stay \
                 bit-identical to serial"
                    .to_string(),
            ));
        }
    }
    out
}
