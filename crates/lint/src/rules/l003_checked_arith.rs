//! **L003 — page/offset arithmetic in `storage` must be
//! overflow-checked.**
//!
//! Page ids, byte offsets and encoded lengths come from disk and from
//! callers; raw `+`/`*` on them wraps silently in release builds, turning
//! an out-of-range request into a *passing* bounds check and a read of
//! the wrong bytes (PR 3 hardened the sequential-read classifiers with
//! `checked_add` after exactly this class). In the `storage` crate, any
//! raw `+`, `*`, `+=` or `*=` whose operand is a sensitive identifier
//! (`*offset*`, `*page_id*`, `*encoded_len*`, …) must use `checked_*` /
//! `saturating_*` — or carry a `lint:allow(L003, …)` stating the bound
//! that makes the raw op safe.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// Identifier fragments that mark page/offset/length arithmetic.
const SENSITIVE: &[&str] = &[
    "page_id",
    "page_no",
    "byte_off",
    "offset",
    "encoded_len",
    "total_len",
    "n_pages",
];

fn sensitive(name: &str) -> bool {
    SENSITIVE.iter().any(|s| name.contains(s))
}

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if f.crate_name() != "storage" {
        return out;
    }
    for k in 1..f.sig.len() {
        if !(f.is_punct(k, "+") || f.is_punct(k, "*")) || f.in_test(f.tok(k).start) {
            continue;
        }
        // Binary use only: a `*` (deref) or unary context is preceded by
        // an operator/opening bracket, not by a value.
        let prev_kind = f.kind(k - 1);
        let value_before = match prev_kind {
            Some(TokKind::Ident) | Some(TokKind::Num) => true,
            Some(TokKind::Punct) => matches!(f.text(k - 1), ")" | "]"),
            _ => false,
        };
        if !value_before {
            continue;
        }
        // `+=` / `*=` count too (`offset += len` wraps the same way);
        // `a ++ b` does not exist in Rust, so no false positives there.
        let prev_sensitive = f.kind(k - 1) == Some(TokKind::Ident) && sensitive(f.text(k - 1));
        let next_sensitive = f.kind(k + 1) == Some(TokKind::Ident) && sensitive(f.text(k + 1));
        if prev_sensitive || next_sensitive {
            let op = f.text(k);
            let name = if prev_sensitive {
                f.text(k - 1)
            } else {
                f.text(k + 1)
            };
            let method = if op == "+" {
                "checked_add"
            } else {
                "checked_mul"
            };
            out.push(finding_at(
                f,
                "L003",
                k,
                format!(
                    "raw `{op}` on `{name}` can wrap in release builds and turn an \
                     out-of-range request into a passing bounds check; use \
                     `{method}`/`saturating_*` (the PR 3 classifier-overflow class)"
                ),
            ));
        }
    }
    out
}
