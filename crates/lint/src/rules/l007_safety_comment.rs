//! **L007 — every `unsafe` site carries a `// SAFETY:` comment.**
//!
//! The unsafe-audit companion rule: crates without unsafe code declare
//! `#![forbid(unsafe_code)]` (the compiler enforces that); the remaining
//! sites must justify themselves in a `// SAFETY:` comment within the
//! ten lines above the `unsafe` keyword, so the soundness argument lives
//! next to the code it defends.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// How far above the `unsafe` keyword a SAFETY comment may sit.
const LOOKBACK_LINES: u32 = 10;

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for k in 0..f.sig.len() {
        if !f.is_ident(k, "unsafe") || f.in_test(f.tok(k).start) {
            continue;
        }
        let line = f.tok(k).line;
        let lo = line.saturating_sub(LOOKBACK_LINES);
        let documented = f.toks.iter().any(|t| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && t.line >= lo
                && t.line <= line
                && t.text(f.src).contains("SAFETY:")
        });
        if !documented {
            out.push(finding_at(
                f,
                "L007",
                k,
                "`unsafe` without a `// SAFETY:` comment: state the invariant that \
                 makes this sound within the ten lines above the block"
                    .to_string(),
            ));
        }
    }
    out
}
