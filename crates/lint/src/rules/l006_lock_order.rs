//! **L006 — shard locks are acquired in ascending index order.**
//!
//! `ShardedLruPool` stripes one logical structure over independently
//! locked shards. Today every pool operation holds at most one shard
//! guard; the moment an operation holds two (an atomic cross-shard move,
//! a balanced eviction — things the multi-session-server roadmap item
//! will want), two threads acquiring in opposite orders deadlock. The
//! mechanical rule: inside one function, if more than one shard-lock
//! guard can be held at once (a `let`-bound `….lock()` with `shard` in
//! the receiver, followed by another shard-lock acquisition), the
//! acquisition order must be provably ascending — which the lint accepts
//! only for literal, strictly increasing indices (`shards[0]`, then
//! `shards[1]`). Anything else is flagged.

use crate::diag::Finding;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// One shard-lock acquisition site inside a function body.
struct Acq {
    /// Significant-token index of `lock`.
    k: usize,
    /// Statement starts with `let` — the guard outlives the statement.
    held: bool,
    /// Literal index if the receiver contains `shards [ <int> ]`.
    literal_index: Option<u64>,
}

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if f.crate_name() != "storage" {
        return out;
    }

    // Walk function bodies: `fn name … { … }` at any nesting.
    let mut k = 0usize;
    while k < f.sig.len() {
        if !f.is_ident(k, "fn") || f.in_test(f.tok(k).start) {
            k += 1;
            continue;
        }
        // Find the body's opening brace (skip the signature; parens and
        // angle brackets may nest, braces may not before the body).
        let mut j = k + 1;
        let mut paren = 0usize;
        while j < f.sig.len() {
            if f.is_punct(j, "(") {
                paren += 1;
            } else if f.is_punct(j, ")") {
                paren = paren.saturating_sub(1);
            } else if f.is_punct(j, "{") && paren == 0 {
                break;
            } else if f.is_punct(j, ";") && paren == 0 {
                break; // trait method declaration — no body
            }
            j += 1;
        }
        if j >= f.sig.len() || !f.is_punct(j, "{") {
            k = j;
            continue;
        }
        let body_start = j;
        let mut depth = 0usize;
        let mut end = j;
        while end < f.sig.len() {
            if f.is_punct(end, "{") {
                depth += 1;
            } else if f.is_punct(end, "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }

        let acqs = shard_acquisitions(f, body_start, end);
        let held = acqs.iter().filter(|a| a.held).count();
        if acqs.len() >= 2 && held >= 1 && !provably_ascending(&acqs) {
            let second = &acqs[1];
            out.push(finding_at(
                f,
                "L006",
                second.k,
                "multiple shard-lock acquisitions in one scope with a held guard: \
                 acquisition order across ShardedLruPool shards must be provably \
                 ascending (literal increasing indices) or the scope deadlocks \
                 against a thread locking in the opposite order"
                    .to_string(),
            ));
        }
        k = body_start + 1; // descend into nested fns too
    }
    out
}

/// Collects `….lock()` calls whose receiver statement mentions a shard.
fn shard_acquisitions(f: &SourceFile<'_>, body_start: usize, body_end: usize) -> Vec<Acq> {
    let mut acqs = Vec::new();
    for k in body_start..body_end.min(f.sig.len()) {
        if !(f.is_punct(k, ".")
            && f.is_ident(k + 1, "lock")
            && f.is_punct(k + 2, "(")
            && f.is_punct(k + 3, ")"))
        {
            continue;
        }
        // Statement start: scan back to the nearest `;`, `{` or `}`.
        let mut s = k;
        while s > body_start {
            if f.is_punct(s, ";") || f.is_punct(s, "{") || f.is_punct(s, "}") {
                s += 1;
                break;
            }
            s -= 1;
        }
        let stmt = s..=k;
        let mentions_shard = stmt
            .clone()
            .any(|i| f.is_ident(i, "shard") || f.is_ident(i, "shards"));
        if !mentions_shard {
            continue;
        }
        let held = stmt.clone().any(|i| f.is_ident(i, "let"));
        // Literal index: `shards [ <num> ]` anywhere in the statement.
        let mut literal_index = None;
        for i in stmt {
            if f.is_ident(i, "shards")
                && f.is_punct(i + 1, "[")
                && f.kind(i + 2) == Some(crate::lexer::TokKind::Num)
                && f.is_punct(i + 3, "]")
            {
                literal_index = f.text(i + 2).replace('_', "").parse::<u64>().ok();
            }
        }
        acqs.push(Acq {
            k: k + 1,
            held,
            literal_index,
        });
    }
    acqs
}

/// True when every acquisition uses a literal index and the indices
/// strictly increase in source order.
fn provably_ascending(acqs: &[Acq]) -> bool {
    let mut prev: Option<u64> = None;
    for a in acqs {
        let Some(idx) = a.literal_index else {
            return false;
        };
        if let Some(p) = prev {
            if idx <= p {
                return false;
            }
        }
        prev = Some(idx);
    }
    true
}
