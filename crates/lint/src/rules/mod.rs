//! The invariant rules. Each is derived from a bug class this repository
//! has actually shipped (see `ARCHITECTURE.md`, "Invariants & mechanical
//! enforcement"):
//!
//! | rule | invariant | incident |
//! |------|-----------|----------|
//! | L001 | correctness guards must survive release builds | PR 4: `debug_assert`-only length checks silently zip-truncated `blas::dot`/`axpy` |
//! | L002 | real summation goes through `exact::ExactSum` | PR 5: `agg::sum` diverged from parallel `SUM` bit-for-bit |
//! | L003 | page/offset arithmetic in `storage` is overflow-checked | PR 3: unchecked page arithmetic in the sequential-read classifiers |
//! | L004 | thread fan-out routes through `core::parallel` | the `SQLARRAY_DOP` / `with_serial_kernels` knobs must stay authoritative |
//! | L005 | no `unwrap`/`expect` on fallible paths in library code | PR 5: silent `<lob:…>` placeholder replaced by typed `UnresolvedLob` |
//! | L006 | shard locks are acquired in ascending index order | deadlock class a multi-session server will make real |
//! | L007 | every `unsafe` block carries a `// SAFETY:` comment | unsafe-audit companion |
//! | L008 | no per-row heap allocation inside batch-kernel loops | the vectorized path's speedup dies silently if a kernel loop allocates |
//! | L009 | no mutex guard held across a scan fan-out in engine code | the shared-engine refactor's lock discipline: guard-across-fan-out serializes or deadlocks concurrent sessions |
//! | L010 | engine scan loops must poll the query lifecycle | PR 10's cancellation contract: a scan loop without `check_interrupt` cannot be killed until its next page fault |
//!
//! Suppression: `// lint:allow(L00x, reason = "…")` on the finding's line
//! or the line above. The reason is mandatory; a malformed or reasonless
//! allow is itself reported as `L000`.

mod l001_debug_assert;
mod l002_exact_sum;
mod l003_checked_arith;
mod l004_thread_fanout;
mod l005_unwrap;
mod l006_lock_order;
mod l007_safety_comment;
mod l008_batch_alloc;
mod l009_guard_across_fanout;
mod l010_cancel_poll;

use crate::diag::Finding;
use crate::source::SourceFile;

/// Every rule id this crate knows, in order.
pub const ALL_RULES: &[&str] = &[
    "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
];

/// Builds a [`Finding`] anchored at significant token `k` of `f`.
pub(crate) fn finding_at(
    f: &SourceFile<'_>,
    rule: &'static str,
    k: usize,
    message: String,
) -> Finding {
    let tok = f.tok(k);
    Finding {
        rule,
        path: f.path.to_string(),
        line: tok.line,
        col: f.col(tok.start),
        message,
        snippet: f.line_text(tok.line).trim().to_string(),
    }
}

/// Runs every rule over one parsed file, applies `lint:allow`
/// suppressions, and appends `L000` findings for malformed allows.
pub fn run_all(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    out.extend(l001_debug_assert::check(f));
    out.extend(l002_exact_sum::check(f));
    out.extend(l003_checked_arith::check(f));
    out.extend(l004_thread_fanout::check(f));
    out.extend(l005_unwrap::check(f));
    out.extend(l006_lock_order::check(f));
    out.extend(l007_safety_comment::check(f));
    out.extend(l008_batch_alloc::check(f));
    out.extend(l009_guard_across_fanout::check(f));
    out.extend(l010_cancel_poll::check(f));
    out.retain(|d| !f.is_allowed(d.rule, d.line));
    for bad in &f.bad_allows {
        out.push(Finding {
            rule: "L000",
            path: f.path.to_string(),
            line: bad.line,
            col: 1,
            message: format!(
                "malformed lint:allow ({}); suppressions require a non-empty reason: \
                 lint:allow(L0xx, reason = \"…\")",
                bad.why
            ),
            snippet: f.line_text(bad.line).trim().to_string(),
        });
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}
