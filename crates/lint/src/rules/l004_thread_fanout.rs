//! **L004 — thread fan-out routes through `core::parallel`.**
//!
//! `SQLARRAY_DOP`, `Session::set_dop` and `with_serial_kernels` are only
//! authoritative if every fan-out takes its width from
//! `parallel::configured_dop` and its chunking from `partition_ranges`.
//! A stray `std::thread::spawn`/`scope` elsewhere silently escapes the
//! DOP budget — and inside a scan worker it nests `dop × dop` threads.
//! All uses of `thread::spawn`/`thread::scope` outside
//! `core/src/parallel.rs` (the sanctioned wrappers:
//! `scoped_map_ranges`, `scoped_for_ranges_mut`, …) are flagged.

use crate::diag::Finding;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// The one module allowed to touch `std::thread` directly.
const SANCTIONED: &str = "crates/core/src/parallel.rs";

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if f.path.ends_with(SANCTIONED) {
        return out;
    }
    for k in 0..f.sig.len().saturating_sub(3) {
        if f.is_ident(k, "thread")
            && f.is_punct(k + 1, ":")
            && f.is_punct(k + 2, ":")
            && (f.is_ident(k + 3, "spawn") || f.is_ident(k + 3, "scope"))
            && !f.in_test(f.tok(k).start)
        {
            out.push(finding_at(
                f,
                "L004",
                k + 3,
                format!(
                    "`thread::{}` outside core::parallel escapes the DOP budget \
                     (`SQLARRAY_DOP`, `with_serial_kernels`); fan out through \
                     `parallel::scoped_map_ranges`/`scoped_for_ranges_mut` instead",
                    f.text(k + 3)
                ),
            ));
        }
    }
    out
}
