//! **L010 — engine scan loops must poll the query lifecycle.**
//!
//! PR 10 made cancellation, timeouts and memory budgets a contract: a
//! statement aborts within one batch worth of work because every row/batch
//! callback the engine feeds into the storage scan drivers
//! (`scan_partition`, `scan_partition_batches`) starts with
//! `reader.check_interrupt()`. A new scan loop that forgets the poll
//! silently re-opens the unbounded-statement hole — the scan still
//! *works*, it just cannot be killed until its next page fault, which on a
//! pool-resident table is never.
//!
//! Mechanically: inside the `engine` crate, every non-test call to
//! `scan_partition(…)` / `scan_partition_batches(…)` must contain the
//! identifier `check_interrupt` somewhere in its argument region (the
//! callback body lives there). The storage crate's own leaf walk polls per
//! page read and is exempt; tests drive scans through the executor.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::rules::finding_at;
use crate::source::SourceFile;

/// Scan drivers whose engine-side callbacks must poll.
const SCAN_DRIVERS: &[&str] = &["scan_partition", "scan_partition_batches"];

pub fn check(f: &SourceFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if f.crate_name() != "engine" {
        return out;
    }

    for k in 0..f.sig.len() {
        let is_driver = SCAN_DRIVERS.iter().any(|n| f.is_ident(k, n)) && f.is_punct(k + 1, "(");
        if !is_driver || f.in_test(f.tok(k).start) {
            continue;
        }
        // A definition (`fn scan_partition(...)`) is not a call site.
        if k > 0 && f.kind(k - 1) == Some(TokKind::Ident) && f.text(k - 1) == "fn" {
            continue;
        }
        // Walk the call's argument region to the matching `)`; the
        // row/batch callback — and therefore its lifecycle poll — lives
        // inside it.
        let mut depth = 0usize;
        let mut j = k + 1;
        let mut polled = false;
        while j < f.sig.len() {
            if f.is_punct(j, "(") {
                depth += 1;
            } else if f.is_punct(j, ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if f.is_ident(j, "check_interrupt") {
                polled = true;
            }
            j += 1;
        }
        if !polled {
            out.push(finding_at(
                f,
                "L010",
                k,
                format!(
                    "scan loop `{}` does not poll the query lifecycle: the \
                     row/batch callback must call `reader.check_interrupt()` \
                     so cancellation, timeouts and kill-matrix trip points \
                     abort the statement within one batch worth of work",
                    f.text(k),
                ),
            ));
        }
    }
    out
}
