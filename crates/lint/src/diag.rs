//! Diagnostics: the finding record and its human/JSON renderings.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`L001` … `L006`, `L000` for malformed suppressions).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed, for context.
    pub snippet: String,
}

impl Finding {
    /// `path:line:col: RULE: message` plus the source line.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}\n    | {}",
            self.path, self.line, self.col, self.rule, self.message, self.snippet
        )
    }

    /// One JSON object (stable key order, fully escaped).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            self.rule,
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(&self.snippet)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn renderings_carry_location() {
        let f = Finding {
            rule: "L001",
            path: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            message: "msg".into(),
            snippet: "debug_assert!(x)".into(),
        };
        assert!(f.render_human().contains("x.rs:3:7: L001"));
        assert!(f.render_json().contains("\"line\":3"));
    }
}
