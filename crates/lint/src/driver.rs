//! Workspace walking and the CLI entry logic: finds the workspace root,
//! enumerates library sources, runs every rule, renders output.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Finding;
use crate::rules;
use crate::source::SourceFile;

/// Path components that never contain library code subject to the rules.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Options {
    /// Emit one JSON object per finding instead of human text.
    pub json: bool,
    /// Exit nonzero if any finding survives suppression.
    pub deny_all: bool,
    /// Explicit files/dirs to lint; empty means the whole workspace.
    pub paths: Vec<PathBuf>,
}

impl Options {
    /// Parses `argv[1..]`. Unknown flags are errors.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options::default();
        for a in args {
            match a.as_str() {
                "--format=json" => opts.json = true,
                "--format=human" => opts.json = false,
                "--deny-all" => opts.deny_all = true,
                "--help" | "-h" => return Err(usage()),
                f if f.starts_with('-') => return Err(format!("unknown flag `{f}`\n{}", usage())),
                p => opts.paths.push(PathBuf::from(p)),
            }
        }
        Ok(opts)
    }
}

fn usage() -> String {
    "usage: sqlarray-lint [--format=json|human] [--deny-all] [paths…]\n\
     Lints the workspace's library sources against the repo invariants \
     (L001–L010). With no paths, walks up to the workspace root and lints \
     every crate's src/ tree."
        .to_string()
}

/// Lints one in-memory source. `path_label` drives crate attribution
/// (`crates/<name>/src/…`), so tests can lint fixtures under pretend
/// paths.
pub fn lint_source(path_label: &str, src: &str) -> Vec<Finding> {
    let f = SourceFile::parse(path_label, src);
    rules::run_all(&f)
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects the `.rs` files under `root` that the rules apply to:
/// everything beneath a `src/` directory, excluding vendored code, test
/// trees, benches, examples and fixtures. Sorted for deterministic
/// output.
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") && in_src_tree(&path) {
            out.push(path);
        }
    }
}

/// True when the path has a `src` component (library code, not build
/// scripts or top-level test harnesses).
fn in_src_tree(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_string_lossy() == "src")
}

/// Path rendered workspace-relative with `/` separators, for stable
/// diagnostics across platforms.
fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for c in rel.components() {
        match c {
            std::path::Component::RootDir => out.push('/'),
            other => {
                if !out.is_empty() && !out.ends_with('/') {
                    out.push('/');
                }
                out.push_str(&other.as_os_str().to_string_lossy());
            }
        }
    }
    out
}

/// Runs the lint over the requested paths (or the whole workspace) and
/// returns (findings, files_scanned). IO failures on individual files
/// are reported to stderr and skipped, never fatal.
pub fn run(opts: &Options, cwd: &Path) -> (Vec<Finding>, usize) {
    let root = find_workspace_root(cwd).unwrap_or_else(|| cwd.to_path_buf());
    let files: Vec<PathBuf> = if opts.paths.is_empty() {
        collect_sources(&root)
    } else {
        let mut v = Vec::new();
        for p in &opts.paths {
            let p = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if p.is_dir() {
                v.extend(collect_sources(&p));
            } else {
                v.push(p);
            }
        }
        v.sort();
        v
    };
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sqlarray-lint: skipping {}: {e}", path.display());
                continue;
            }
        };
        scanned += 1;
        let label = rel_label(&root, path);
        findings.extend(lint_source(&label, &src));
    }
    (findings, scanned)
}

/// Renders findings in the requested format and returns the process exit
/// code: 1 when `--deny-all` and findings survived, 0 otherwise.
pub fn report(opts: &Options, findings: &[Finding], scanned: usize) -> i32 {
    if opts.json {
        println!("[");
        for (i, f) in findings.iter().enumerate() {
            let comma = if i + 1 == findings.len() { "" } else { "," };
            println!("  {}{}", f.render_json(), comma);
        }
        println!("]");
    } else {
        for f in findings {
            println!("{}", f.render_human());
        }
        println!(
            "sqlarray-lint: {} finding(s) across {} file(s)",
            findings.len(),
            scanned
        );
    }
    if opts.deny_all && !findings.is_empty() {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_flags_and_paths() {
        let o = Options::parse(["--format=json", "--deny-all", "crates/storage"].map(String::from))
            .unwrap();
        assert!(o.json && o.deny_all);
        assert_eq!(o.paths, vec![PathBuf::from("crates/storage")]);
        assert!(Options::parse(["--bogus".to_string()]).is_err());
    }

    #[test]
    fn src_tree_filter() {
        assert!(in_src_tree(Path::new("crates/core/src/ops/agg.rs")));
        assert!(!in_src_tree(Path::new("crates/core/build.rs")));
    }

    #[test]
    fn lint_source_applies_allows() {
        let dirty = "fn f(offset: usize, len: usize) -> usize { offset + len }";
        assert_eq!(lint_source("crates/storage/src/x.rs", dirty).len(), 1);
        let clean = "// lint:allow(L003, reason = \"sum bounded by PAGE_SIZE\")\n\
                     fn f(offset: usize, len: usize) -> usize { offset + len }";
        assert!(lint_source("crates/storage/src/x.rs", clean).is_empty());
    }
}
