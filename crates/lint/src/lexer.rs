//! A minimal Rust lexer, just faithful enough that the invariant rules
//! match **tokens**, not text.
//!
//! The rules this crate enforces are defeated the moment a pattern match
//! fires inside a string literal, a doc comment, or a `#[cfg(test)]`
//! module — so the lexer's whole job is to classify every byte of a source
//! file into comment / string / char / lifetime / number / identifier /
//! punctuation, handling the three constructs that break naive scanners:
//!
//! * raw strings `r"…"`, `r#"…"#` (any number of hashes) and their
//!   byte/C variants `br#"…"#`, `cr"…"`;
//! * nested block comments `/* a /* b */ c */`;
//! * char and byte literals (`'a'`, `'\''`, `b'\xFF'`) versus lifetime
//!   ticks (`'a`, `'_`, `'static`).
//!
//! Tokens carry byte spans that partition the input exactly:
//! concatenating `src[tok.start..tok.end]` over all tokens reproduces the
//! file byte for byte (property-tested in `tests/lexer_roundtrip.rs`).
//! Unterminated constructs extend to end of input rather than failing —
//! a lint must degrade gracefully on files mid-edit.

/// Classification of one source token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines (one token per maximal run).
    Whitespace,
    /// `// …` including doc comments, excluding the trailing newline.
    LineComment,
    /// `/* … */` with arbitrary nesting.
    BlockComment,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `cr"…"`.
    Str,
    /// Char or byte-char literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime tick: `'a`, `'_`, `'static`.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Identifier or keyword.
    Ident,
    /// A single punctuation byte (`+`, `:`, `{` …). Multi-byte operators
    /// appear as consecutive `Punct` tokens; rules match the sequence.
    Punct,
}

/// One lexed token: kind plus the byte span `[start, end)` and the
/// 1-based line of its first byte.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream whose spans partition the input
/// exactly. Never fails: unterminated strings/comments run to EOF and
/// bytes that fit no class become single-byte `Punct` tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let count_lines = |bytes: &[u8]| bytes.iter().filter(|&&c| c == b'\n').count() as u32;

    while i < n {
        let start = i;
        let start_line = line;
        let c = b[i];
        let kind = if c.is_ascii_whitespace() {
            while i < n && b[i].is_ascii_whitespace() {
                i += 1;
            }
            TokKind::Whitespace
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokKind::BlockComment
        } else if c == b'"' {
            i = scan_cooked_string(b, i + 1);
            TokKind::Str
        } else if c == b'\'' {
            // Lifetime iff the tick is followed by an identifier run that
            // is *not* closed by another tick ('a> is a lifetime, 'a' is
            // a char).
            let mut j = i + 1;
            if j < n && is_ident_start(b[j]) {
                let mut k = j + 1;
                while k < n && is_ident_continue(b[k]) {
                    k += 1;
                }
                if k < n && b[k] == b'\'' {
                    // 'x' — char literal (only single-char bodies reach
                    // here, e.g. 'a'; escapes start with backslash).
                    i = k + 1;
                    TokKind::Char
                } else {
                    i = k;
                    TokKind::Lifetime
                }
            } else {
                // Char literal with an escape or punctuation body.
                while j < n {
                    if b[j] == b'\\' {
                        j = (j + 2).min(n);
                    } else if b[j] == b'\'' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                i = j;
                TokKind::Char
            }
        } else if c.is_ascii_digit() {
            i = scan_number(b, i);
            TokKind::Num
        } else if is_ident_start(c) {
            // Could be a string prefix: r"…", r#"…"#, b"…", b'…', br/cr.
            if let Some((end, kind)) = scan_prefixed_literal(b, i) {
                i = end;
                kind
            } else {
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
        } else {
            i += 1;
            TokKind::Punct
        };
        line += count_lines(&b[start..i]);
        toks.push(Tok {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    toks
}

/// Scans a cooked (escaped) string body starting *after* the opening
/// quote; returns the offset one past the closing quote (or EOF).
fn scan_cooked_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        if b[i] == b'\\' {
            i = (i + 2).min(n);
        } else if b[i] == b'"' {
            return i + 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Scans a numeric literal starting at a digit: base prefixes, `_`
/// separators, a fractional part, exponents with signs (`1e-3`), and
/// alphanumeric type suffixes all stay in one token.
fn scan_number(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    let run = |i: &mut usize| {
        while *i < n {
            let c = b[*i];
            if c.is_ascii_alphanumeric() || c == b'_' {
                *i += 1;
            } else if (c == b'+' || c == b'-')
                && *i >= 1
                && matches!(b[*i - 1], b'e' | b'E')
                && b.get(*i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                // exponent sign: 1e-3, 2.5E+10
                *i += 1;
            } else {
                break;
            }
        }
    };
    run(&mut i);
    // Fractional part: a '.' followed by a digit (so `0..n` stays two
    // tokens and `x.method()` is untouched — numbers can't precede `.m`).
    if i < n && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
        i += 1;
        run(&mut i);
    } else if i < n
        && b[i] == b'.'
        && !b
            .get(i + 1)
            .is_some_and(|&d| d == b'.' || is_ident_start(d))
    {
        // Trailing-dot float `1.` (not a range `1..` or field access).
        i += 1;
    }
    i
}

/// If the identifier starting at `i` is actually a string/char prefix
/// (`r`, `b`, `br`, `c`, `cr` directly followed by the literal), scans the
/// whole literal and returns `(end, kind)`.
fn scan_prefixed_literal(b: &[u8], i: usize) -> Option<(usize, TokKind)> {
    let n = b.len();
    // Longest prefix first so `br` isn't read as `b` + junk.
    for prefix in [&b"br"[..], &b"cr"[..], &b"r"[..], &b"b"[..], &b"c"[..]] {
        if b[i..].starts_with(prefix) {
            let j = i + prefix.len();
            let raw = prefix.ends_with(b"r");
            if raw {
                // r"…" or r#…#"…"#…#
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == b'"' {
                    k += 1;
                    // Scan for `"` followed by `hashes` hashes.
                    while k < n {
                        if b[k] == b'"'
                            && b[k + 1..].len() >= hashes
                            && b[k + 1..k + 1 + hashes].iter().all(|&h| h == b'#')
                        {
                            return Some((k + 1 + hashes, TokKind::Str));
                        }
                        k += 1;
                    }
                    return Some((n, TokKind::Str));
                }
            } else if j < n && b[j] == b'"' {
                return Some((scan_cooked_string(b, j + 1), TokKind::Str));
            } else if j < n && b[j] == b'\'' && prefix == b"b" {
                // b'x' byte literal.
                let mut k = j + 1;
                while k < n {
                    if b[k] == b'\\' {
                        k = (k + 2).min(n);
                    } else if b[k] == b'\'' {
                        return Some((k + 1, TokKind::Char));
                    } else {
                        k += 1;
                    }
                }
                return Some((n, TokKind::Char));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn spans_partition_the_input() {
        let src = "fn f(x: u8) -> u8 { x + 1 } // done";
        let toks = lex(src);
        let mut cat = String::new();
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {t:?}");
            cat.push_str(t.text(src));
            pos = t.end;
        }
        assert_eq!(cat, src);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r####"let s = r#"a "quoted" // not a comment"# ; x"####;
        let k = kinds(src);
        assert!(k
            .iter()
            .any(|(kk, t)| *kk == TokKind::Str && t.contains("not a comment")));
        assert!(k.iter().any(|(kk, t)| *kk == TokKind::Ident && *t == "x"));
        assert!(!k.iter().any(|(kk, _)| *kk == TokKind::LineComment));
    }

    #[test]
    fn nested_block_comments_close_at_depth_zero() {
        let src = "a /* x /* y */ z */ b";
        let k = kinds(src);
        assert_eq!(k[0], (TokKind::Ident, "a"));
        assert_eq!(k[1].0, TokKind::BlockComment);
        assert_eq!(k[2], (TokKind::Ident, "b"));
    }

    #[test]
    fn chars_versus_lifetimes() {
        let k = kinds("'a' 'x 'static '_ '\\'' b'q'");
        let want = [
            (TokKind::Char, "'a'"),
            (TokKind::Lifetime, "'x"),
            (TokKind::Lifetime, "'static"),
            (TokKind::Lifetime, "'_"),
            (TokKind::Char, "'\\''"),
            (TokKind::Char, "b'q'"),
        ];
        assert_eq!(k, want);
    }

    #[test]
    fn numbers_keep_ranges_and_exponents_apart() {
        let k = kinds("0..n 1.5e-3 0xFFu64 1_000");
        assert_eq!(k[0], (TokKind::Num, "0"));
        assert_eq!(k[1], (TokKind::Punct, "."));
        assert_eq!(k[2], (TokKind::Punct, "."));
        assert_eq!(k[3], (TokKind::Ident, "n"));
        assert_eq!(k[4], (TokKind::Num, "1.5e-3"));
        assert_eq!(k[5], (TokKind::Num, "0xFFu64"));
        assert_eq!(k[6], (TokKind::Num, "1_000"));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb";
        let toks: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // comment starts on line 2
        assert_eq!(toks[2].line, 4); // b
    }
}
