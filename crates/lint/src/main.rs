//! CLI entry point. See `driver` for the flag set.

use std::process::ExitCode;

use sqlarray_lint::driver::{self, Options};

fn main() -> ExitCode {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sqlarray-lint: cannot determine cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let (findings, scanned) = driver::run(&opts, &cwd);
    ExitCode::from(driver::report(&opts, &findings, scanned) as u8)
}
