//! `sqlarray-lint` — the repo-invariant static-analysis pass.
//!
//! The workspace's correctness story rests on a handful of invariants
//! that ordinary tests exercise but cannot *enforce*: parallel kernels
//! stay bit-identical to serial at any DOP, real summation routes
//! through the exactly-rounded accumulator, release builds keep their
//! correctness guards, and storage arithmetic never wraps. Each of those
//! has been violated once (see `rules` for the incident table); this
//! crate makes the whole class mechanical.
//!
//! It is deliberately dependency-free: a small hand-rolled lexer
//! ([`lexer`]) that understands raw strings, nested block comments and
//! char-vs-lifetime ticks; a per-file context ([`source`]) that strips
//! `#[cfg(test)]` regions and parses `// lint:allow(L0xx, reason = "…")`
//! suppressions; token-pattern rules ([`rules`]); and a workspace walker
//! ([`driver`]).
//!
//! ```text
//! cargo run -p sqlarray-lint -- --deny-all            # CI gate
//! cargo run -p sqlarray-lint -- --format=json path…   # tooling
//! ```

#![forbid(unsafe_code)]

pub mod diag;
pub mod driver;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::Finding;
pub use driver::{lint_source, Options};
pub use source::SourceFile;
