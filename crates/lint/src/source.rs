//! Per-file analysis context shared by every rule: the lexed token
//! stream, a significant-token view (comments and whitespace stripped,
//! with back-pointers into the raw stream), `#[cfg(test)]` regions, and
//! parsed `// lint:allow(...)` suppressions.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed `lint:allow` suppression comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids the comment suppresses (e.g. `["L003", "L005"]`).
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line of the comment. The allow covers findings on this
    /// line and the line immediately below (comment-above style).
    pub line: u32,
}

/// A malformed suppression (missing or empty reason, unparseable list).
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What was wrong.
    pub why: String,
}

/// Everything a rule needs to scan one file.
pub struct SourceFile<'a> {
    /// Path label used for crate attribution and diagnostics. Uses `/`
    /// separators regardless of platform.
    pub path: &'a str,
    /// Raw file contents.
    pub src: &'a str,
    /// Full token stream (spans partition `src`).
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-whitespace, non-comment tokens.
    pub sig: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]`-gated items.
    pub test_regions: Vec<(usize, usize)>,
    /// Well-formed suppressions.
    pub allows: Vec<Allow>,
    /// Malformed suppressions (each becomes an `L000` finding).
    pub bad_allows: Vec<BadAllow>,
}

impl<'a> SourceFile<'a> {
    /// Lexes and pre-analyzes one file.
    pub fn parse(path: &'a str, src: &'a str) -> SourceFile<'a> {
        let toks = lex(src);
        let sig: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let test_regions = find_test_regions(src, &toks, &sig);
        let (allows, bad_allows) = parse_allows(src, &toks);
        SourceFile {
            path,
            src,
            toks,
            sig,
            test_regions,
            allows,
            bad_allows,
        }
    }

    /// The crate a workspace path belongs to: `crates/storage/src/x.rs`
    /// → `"storage"`; the root facade (`src/lib.rs`) → `"sqlarray"`.
    pub fn crate_name(&self) -> &str {
        if let Some(rest) = self.path.split("crates/").nth(1) {
            rest.split('/').next().unwrap_or("sqlarray")
        } else {
            "sqlarray"
        }
    }

    /// Kind of significant token `k` (index into `self.sig`).
    pub fn kind(&self, k: usize) -> Option<TokKind> {
        self.sig.get(k).map(|&i| self.toks[i].kind)
    }

    /// Text of significant token `k`.
    pub fn text(&self, k: usize) -> &str {
        self.toks[self.sig[k]].text(self.src)
    }

    /// The raw token behind significant index `k`.
    pub fn tok(&self, k: usize) -> &Tok {
        &self.toks[self.sig[k]]
    }

    /// True if significant token `k` is a `Punct` with exactly this text.
    pub fn is_punct(&self, k: usize, p: &str) -> bool {
        self.kind(k) == Some(TokKind::Punct) && self.text(k) == p
    }

    /// True if significant token `k` is an `Ident` with exactly this text.
    pub fn is_ident(&self, k: usize, id: &str) -> bool {
        self.kind(k) == Some(TokKind::Ident) && self.text(k) == id
    }

    /// True when the byte offset falls inside a `#[cfg(test)]` region.
    pub fn in_test(&self, byte: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| byte >= s && byte < e)
    }

    /// True when `rule` is suppressed at `line` by a well-formed allow on
    /// the same line or the line above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }

    /// Column (1-based, in bytes) of a byte offset.
    pub fn col(&self, byte: usize) -> u32 {
        let line_start = self.src[..byte].rfind('\n').map_or(0, |p| p + 1);
        (byte - line_start) as u32 + 1
    }

    /// The full source line (1-based) containing `line`, for diagnostics.
    pub fn line_text(&self, line: u32) -> &str {
        self.src.lines().nth(line as usize - 1).unwrap_or("")
    }
}

/// Finds items gated behind `#[cfg(test)]` (or `#[cfg(all(test, …))]`):
/// the attribute plus the item it decorates — through any further
/// attributes, up to the end of the item's `{ … }` block or terminating
/// `;`. Returns byte ranges.
fn find_test_regions(src: &str, toks: &[Tok], sig: &[usize]) -> Vec<(usize, usize)> {
    let text = |k: usize| toks[sig[k]].text(src);
    let is_p = |k: usize, p: &str| toks[sig[k]].kind == TokKind::Punct && text(k) == p;
    let mut out = Vec::new();
    let mut k = 0usize;
    while k + 1 < sig.len() {
        if !(is_p(k, "#") && is_p(k + 1, "[")) {
            k += 1;
            continue;
        }
        let attr_start_byte = toks[sig[k]].start;
        // Find the matching `]`, tracking bracket depth.
        let mut j = k + 2;
        let mut depth = 1usize;
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut first_ident = true;
        while j < sig.len() && depth > 0 {
            if is_p(j, "[") {
                depth += 1;
            } else if is_p(j, "]") {
                depth -= 1;
            } else if toks[sig[j]].kind == TokKind::Ident {
                if first_ident {
                    saw_cfg = text(j) == "cfg";
                    first_ident = false;
                } else if text(j) == "test" {
                    saw_test = true;
                }
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            k = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < sig.len() && is_p(j, "#") && is_p(j + 1, "[") {
            let mut d = 1usize;
            j += 2;
            while j < sig.len() && d > 0 {
                if is_p(j, "[") {
                    d += 1;
                } else if is_p(j, "]") {
                    d -= 1;
                }
                j += 1;
            }
        }
        // Skip the item: to a top-level `;`, or through a `{ … }` block.
        let mut brace = 0usize;
        let mut entered = false;
        while j < sig.len() {
            if is_p(j, "{") {
                brace += 1;
                entered = true;
            } else if is_p(j, "}") {
                brace = brace.saturating_sub(1);
                if entered && brace == 0 {
                    j += 1;
                    break;
                }
            } else if is_p(j, ";") && !entered {
                j += 1;
                break;
            }
            j += 1;
        }
        let end_byte = if j == 0 || j >= sig.len() {
            src.len()
        } else {
            toks[sig[j - 1]].end
        };
        out.push((attr_start_byte, end_byte));
        k = j;
    }
    out
}

/// Parses every `lint:allow(RULES, reason = "…")` comment in the file.
fn parse_allows(src: &str, toks: &[Tok]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // A directive must LEAD the comment (`// lint:allow(...)`); a
        // `lint:allow` mentioned mid-prose — doc comments describing the
        // mechanism — is not a suppression and is not policed.
        let body = t.text(src).trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        match parse_allow_body(rest) {
            Ok((rules, reason)) => ok.push(Allow {
                rules,
                reason,
                line: t.line,
            }),
            Err(why) => bad.push(BadAllow { line: t.line, why }),
        }
    }
    (ok, bad)
}

/// Parses `(L00x[, L00y…], reason = "…")` after the `lint:allow` marker.
fn parse_allow_body(rest: &str) -> Result<(Vec<String>, String), String> {
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        return Err("expected `(` after lint:allow".into());
    };
    let Some(close) = inner.rfind(')') else {
        return Err("unclosed lint:allow(...)".into());
    };
    let inner = &inner[..close];
    let Some(reason_at) = inner.find("reason") else {
        return Err("missing mandatory `reason = \"…\"`".into());
    };
    let (rule_part, reason_part) = inner.split_at(reason_at);
    let mut rules = Vec::new();
    for item in rule_part.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let valid = item.len() == 4
            && item.starts_with('L')
            && item[1..].bytes().all(|b| b.is_ascii_digit());
        if !valid {
            return Err(format!("`{item}` is not a rule id (expected L0xx)"));
        }
        rules.push(item.to_string());
    }
    if rules.is_empty() {
        return Err("no rule ids listed".into());
    }
    let after = reason_part["reason".len()..].trim_start();
    let Some(after_eq) = after.strip_prefix('=') else {
        return Err("expected `=` after `reason`".into());
    };
    let after_eq = after_eq.trim_start();
    let Some(q) = after_eq.strip_prefix('"') else {
        return Err("reason must be a quoted string".into());
    };
    let Some(endq) = q.find('"') else {
        return Err("unterminated reason string".into());
    };
    let reason = q[..endq].trim().to_string();
    if reason.is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        let f = SourceFile::parse("crates/storage/src/blob.rs", "fn x() {}");
        assert_eq!(f.crate_name(), "storage");
        let r = SourceFile::parse("src/lib.rs", "fn x() {}");
        assert_eq!(r.crate_name(), "sqlarray");
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn after() {}";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.test_regions.len(), 1);
        let live = src.find("live").unwrap();
        let t = src.find("fn t").unwrap();
        let after = src.find("after").unwrap();
        assert!(!f.in_test(live));
        assert!(f.in_test(t));
        assert!(!f.in_test(after));
    }

    #[test]
    fn cfg_all_test_counts_too() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { fn t() {} }";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.in_test(src.find("fn t").unwrap()));
    }

    #[test]
    fn cfg_not_test_items_stay_live() {
        let src = "#[cfg(unix)]\nfn live() {}";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn allow_parsing_happy_path() {
        let src = "// lint:allow(L003, L005, reason = \"bounded above\")\nlet x = offset + 1;";
        let f = SourceFile::parse("crates/storage/src/x.rs", src);
        assert_eq!(f.bad_allows.len(), 0);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rules, vec!["L003", "L005"]);
        assert!(f.is_allowed("L003", 2)); // line below the comment
        assert!(f.is_allowed("L005", 1)); // the comment's own line
        assert!(!f.is_allowed("L001", 2));
        assert!(!f.is_allowed("L003", 3));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        for bad in [
            "// lint:allow(L003)",
            "// lint:allow(L003, reason = \"\")",
            "// lint:allow(reason = \"no rules\")",
            "// lint:allow(L3, reason = \"bad id\")",
        ] {
            let f = SourceFile::parse("crates/storage/src/x.rs", bad);
            assert_eq!(f.allows.len(), 0, "{bad}");
            assert_eq!(f.bad_allows.len(), 1, "{bad}");
        }
    }

    #[test]
    fn allow_inside_string_is_ignored() {
        let src = "let s = \"lint:allow(L001, reason = \\\"nope\\\")\";";
        let f = SourceFile::parse("crates/storage/src/x.rs", src);
        assert!(f.allows.is_empty() && f.bad_allows.is_empty());
    }
}
