//! L010 negative fixture: scan loops that poll, and the places the rule
//! must not fire — test code and callbacks that poll through `?`.

fn row_scan_with_poll(table: &Table, reader: &mut Reader, part: &Part) -> u64 {
    let mut rows = 0u64;
    table
        .scan_partition(reader, part, |reader, _key, _bytes| {
            reader.check_interrupt()?;
            rows += 1;
            Ok(true)
        })
        .unwrap_or_else(|_| ());
    rows
}

fn batch_scan_with_poll(table: &Table, reader: &mut Reader, part: &Part) -> u64 {
    let mut batches = 0u64;
    table
        .scan_partition_batches(reader, part, opts(), &mut batch(), |reader, _b| {
            reader.check_interrupt()?;
            batches += 1;
            Ok(true)
        })
        .unwrap_or_else(|_| ());
    batches
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_scan_without_polling() {
        let mut rows = 0u64;
        table()
            .scan_partition(reader(), part(), |_reader, _key, _bytes| {
                rows += 1;
                Ok(true)
            })
            .unwrap();
    }
}
