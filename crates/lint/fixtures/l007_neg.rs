// Negative fixture for L007: the SAFETY comment sits within the ten
// lines above the unsafe keyword.

pub fn view(payload: &[u8]) -> &[f64] {
    // SAFETY: payload is produced by Array::to_bytes, which writes
    // little-endian f64 words at 8-byte alignment; align_to's head and
    // tail are rejected by the caller when non-empty.
    let (_, mid, _) = unsafe { payload.align_to::<f64>() };
    mid
}
