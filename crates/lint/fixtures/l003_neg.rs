// Negative fixture for L003: checked/saturating arithmetic, arithmetic
// on non-sensitive names, and a bounded allow are all clean.

pub fn in_range(offset: u64, len: u64, total_len: u64) -> bool {
    offset
        .checked_add(len)
        .is_some_and(|end| end <= total_len)
}

pub fn scale(x: u64, y: u64) -> u64 {
    x * y
}

pub fn chunk_no(offset: u64, chunk: u64) -> u64 {
    // lint:allow(L003, reason = "offset <= total checked above; cannot wrap")
    (offset + chunk - 1) / chunk
}
