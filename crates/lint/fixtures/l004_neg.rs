// Negative fixture for L004: fan-out through the sanctioned helpers is
// clean, and test code may spawn freely.

pub fn fan_out(total: usize, parts: usize) -> Vec<u64> {
    scoped_map_ranges(total, parts, |r| r.end as u64 - r.start as u64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn races() {
        std::thread::scope(|s| {
            s.spawn(|| {});
        });
    }
}
