// Negative fixture for L005: `?`-propagation, a parser method that
// happens to be named `expect` (non-string first argument), test code,
// and a justified allow are all clean.

pub fn read_page(store: &PageStore, id: u64) -> Result<Page, StorageError> {
    store.read(id)
}

impl Parser {
    fn eat(&mut self) -> Result<(), ParseError> {
        self.expect(&Tok::RParen, "closing paren")
    }
}

pub fn poisoned(m: &std::sync::Mutex<u32>) -> u32 {
    // lint:allow(L005, reason = "lock poisoning is unrecoverable corruption")
    *m.lock().expect("shard poisoned")
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Result<u32, ()> = Ok(1);
        v.unwrap();
    }
}
