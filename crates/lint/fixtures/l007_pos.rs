// Positive fixture for L007: an unsafe block with no SAFETY comment.

pub fn view(payload: &[u8]) -> &[f64] {
    let (_, mid, _) = unsafe { payload.align_to::<f64>() };
    mid
}
