// Positive fixture for L004: direct std::thread fan-out outside
// core::parallel. Linted under the pretend path crates/engine/src/fixture.rs.

pub fn fan_out(parts: usize) {
    std::thread::scope(|s| {
        for _ in 0..parts {
            s.spawn(|| {});
        }
    });
}

pub fn detach() {
    std::thread::spawn(|| {});
}
