// Fixture for L000: suppressions without a reason are themselves
// findings, and do not suppress anything.

pub fn in_range(offset: u64, len: u64, total_len: u64) -> bool {
    // lint:allow(L003)
    offset + len <= total_len
}
