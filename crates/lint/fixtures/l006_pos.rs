// Positive fixture for L006: two shard guards held with a data-dependent
// acquisition order. Linted under crates/storage/src/fixture.rs.

pub fn move_entry(&self, from: usize, to: usize, key: u64) {
    let src = self.shards[from].lock().unwrap();
    let dst = self.shards[to].lock().unwrap();
    dst.insert(key, src.remove(key));
}
