// Negative fixture for L001: always-on asserts, test-only debug_asserts,
// and an allowed hot-loop guard are all clean.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub fn hot(idx: usize, n: usize) {
    // lint:allow(L001, reason = "caller-validated in bulk_build; re-check only")
    debug_assert!(idx < n);
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        debug_assert!(1 + 1 == 2);
    }
}
