// Negative fixture for L002: ExactSum-backed accumulation and integer
// counters are clean; so is float `+=` outside the aggregation paths.

pub fn sum(values: &[f64]) -> f64 {
    let mut acc = ExactSum::new();
    for &v in values {
        acc.add(v);
    }
    acc.value()
}

pub fn count(values: &[f64]) -> u64 {
    let mut n: u64 = 0;
    for _ in values {
        n += 1;
    }
    n
}
