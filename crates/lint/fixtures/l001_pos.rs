// Positive fixture for L001: a release-vanishing guard in kernel code.
// Linted under the pretend path crates/linalg/src/fixture.rs.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub fn get(data: &[f64], rows: usize, i: usize, j: usize) -> f64 {
    debug_assert!(i < rows);
    data[j * rows + i]
}
