// Positive fixture for L008: per-row heap allocation inside batch-kernel
// loops. Linted under the pretend path crates/core/src/batch.rs.

pub fn gather_bytes(rows: &[Vec<u8>], sel: &[u32], out: &mut Vec<Vec<u8>>) {
    for &i in sel {
        // Allocates once per selected row.
        out.push(rows[i as usize].to_vec());
    }
}

pub fn clone_per_row(keys: &[String], out: &mut Vec<String>) {
    for k in keys {
        out.push(k.clone());
    }
}

pub fn label_rows(n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(format!("row {i}"));
    }
    out
}

pub fn scratch_inside(batches: &[Vec<i64>]) -> usize {
    let mut total = 0;
    for b in batches.iter().map(|b| { b }) {
        let mut scratch = Vec::new();
        scratch.extend_from_slice(b);
        total += scratch.len();
    }
    total
}
