//! L009 positive fixture: mutex guards live across scan fan-outs.

fn guard_held_across_scoped_fanout(state: &std::sync::Mutex<u64>, parts: usize) {
    let st = state.lock().unwrap_or_else(|e| e.into_inner());
    // The guard is still live here: every worker that touches `state`
    // blocks behind this session.
    scoped_map_ranges(parts, parts, |r| r.count());
    drop(st);
}

fn guard_held_across_thread_scope(state: &std::sync::Mutex<u64>) {
    let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
    *st += 1;
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
}

fn funnel_guard_held_across_fanout(state: &std::sync::Mutex<u64>, parts: usize) {
    // The poison-policy funnel acquires the same MutexGuard as `.lock()`.
    let st = sqlarray_core::sync::lock_unpoisoned(state);
    scoped_map_ranges(parts, parts, |r| r.count());
    drop(st);
}
