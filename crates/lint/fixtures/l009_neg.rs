//! L009 negative fixture: guards dropped, scoped out, or released before
//! the fan-out; RwLock read guards (the snapshot) are exempt by design.

fn guard_dropped_before_fanout(state: &std::sync::Mutex<u64>, parts: usize) {
    let st = state.lock().unwrap_or_else(|e| e.into_inner());
    let snapshot = *st;
    drop(st);
    scoped_map_ranges(parts, parts, |r| r.count() + snapshot as usize);
}

fn guard_scoped_out_before_fanout(state: &std::sync::Mutex<u64>, parts: usize) {
    let snapshot = {
        let st = state.lock().unwrap_or_else(|e| e.into_inner());
        *st
    };
    scoped_map_ranges(parts, parts, |r| r.count() + snapshot as usize);
}

fn funnel_guard_dropped_before_fanout(state: &std::sync::Mutex<u64>, parts: usize) {
    let st = sqlarray_core::sync::lock_unpoisoned(state);
    let snapshot = *st;
    drop(st);
    scoped_map_ranges(parts, parts, |r| r.count() + snapshot as usize);
}

fn rwlock_read_guard_is_the_snapshot(db: &std::sync::RwLock<u64>, parts: usize) {
    // The database read guard is *designed* to span the fan-out.
    let guard = db.read().unwrap_or_else(|e| e.into_inner());
    scoped_map_ranges(parts, parts, |r| r.count() + *guard as usize);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_hold_guards_across_fanouts() {
        let m = std::sync::Mutex::new(0u64);
        let g = m.lock().unwrap();
        scoped_map_ranges(1, 1, |r| r.count() + *g as usize);
    }
}
