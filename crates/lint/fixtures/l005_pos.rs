// Positive fixture for L005: unwrap/expect on fallible paths in library
// code. Linted under the pretend path crates/storage/src/fixture.rs.

pub fn read_page(store: &PageStore, id: u64) -> Page {
    store.read(id).unwrap()
}

pub fn open_page(bytes: Vec<u8>) -> SlottedPage {
    SlottedPage::open(bytes).expect("page header corrupt")
}
