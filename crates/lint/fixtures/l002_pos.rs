// Positive fixture for L002: raw f64 accumulation in an aggregation
// path. Linted under the pretend path crates/core/src/ops/agg.rs.

pub fn sum(values: &[f64]) -> f64 {
    let mut total = 0.0;
    for &v in values {
        total += v;
    }
    total
}

pub fn sum_iter(values: &[f64]) -> f64 {
    values.iter().copied().sum()
}
