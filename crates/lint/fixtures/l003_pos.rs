// Positive fixture for L003: raw arithmetic on offsets/lengths in
// storage. Linted under the pretend path crates/storage/src/fixture.rs.

pub fn in_range(offset: u64, len: u64, total_len: u64) -> bool {
    offset + len <= total_len
}

pub fn advance(byte_off: &mut u64, encoded_len: u64) {
    *byte_off += encoded_len;
}

pub fn page_byte(page_id: u64, page_size: u64) -> u64 {
    page_id * page_size
}
