//! L010 positive fixture: engine scan loops that never poll the query
//! lifecycle — they cannot be cancelled until their next page fault.

fn row_scan_without_poll(table: &Table, reader: &mut Reader, part: &Part) -> u64 {
    let mut rows = 0u64;
    table
        .scan_partition(reader, part, |_reader, _key, _bytes| {
            rows += 1;
            Ok(true)
        })
        .unwrap_or_else(|_| ());
    rows
}

fn batch_scan_without_poll(table: &Table, reader: &mut Reader, part: &Part) -> u64 {
    let mut batches = 0u64;
    table
        .scan_partition_batches(reader, part, opts(), &mut batch(), |_reader, _b| {
            batches += 1;
            Ok(true)
        })
        .unwrap_or_else(|_| ());
    batches
}
