// Negative fixture for L006: one guard at a time (re-acquired per loop
// iteration) and literal ascending acquisition are both clean.

pub fn touch_each(&self) {
    for shard in &self.shards {
        let g = shard.lock().unwrap();
        g.touch();
    }
}

pub fn drain_first_two(&self) {
    let a = self.shards[0].lock().unwrap();
    let b = self.shards[1].lock().unwrap();
    a.drain();
    b.drain();
}
