// Negative fixture for L008: hoisted scratch, borrows, allocation
// outside the loop, reasoned allows, and test code are all clean.

pub fn gather_bytes(rows: &[Vec<u8>], sel: &[u32], out: &mut Vec<u8>) {
    // Allocation-free: the scratch buffer is reused across calls.
    out.clear();
    out.reserve(sel.len());
    for &i in sel {
        out.extend_from_slice(&rows[i as usize]);
    }
}

pub fn borrow_per_row<'a>(keys: &'a [String], out: &mut Vec<&'a str>) {
    for k in keys {
        out.push(k.as_str());
    }
}

pub fn alloc_outside(batches: &[Vec<i64>]) -> usize {
    let mut scratch = Vec::new();
    let mut total = 0;
    for b in batches {
        scratch.clear();
        scratch.extend_from_slice(b);
        total += scratch.len();
    }
    total
}

pub fn allowed_clone(keys: &[String], out: &mut Vec<String>) {
    for k in keys {
        // lint:allow(L008, reason = "cold error path, runs at most once per query")
        out.push(k.clone());
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_allocate() {
        let mut v = Vec::new();
        for i in 0..4 {
            v.push(format!("case {i}"));
        }
        assert_eq!(v.len(), 4);
    }
}
