//! Property test: lexing any input and re-concatenating the token spans
//! reproduces the input byte-for-byte — the lexer partitions its input,
//! whatever it is fed.

use proptest::collection;
use proptest::prelude::*;
use sqlarray_lint::lexer::lex;

/// Reassembles a source string from its token spans.
fn reassemble(src: &str) -> String {
    lex(src).iter().map(|t| t.text(src)).collect()
}

fn assert_partitions(src: &str) {
    let toks = lex(src);
    let mut at = 0usize;
    for t in &toks {
        assert_eq!(
            t.start, at,
            "gap/overlap before token at byte {at} in {src:?}"
        );
        assert!(t.end > t.start, "empty token at byte {at} in {src:?}");
        at = t.end;
    }
    assert_eq!(at, src.len(), "trailing bytes unlexed in {src:?}");
    assert_eq!(reassemble(src), src);
}

/// Fragments covering every tricky lexical corner: raw strings with
/// hashes, nested block comments, byte/char literals, lifetime ticks,
/// exponent numbers, range punctuation.
const FRAGMENTS: &[&str] = &[
    "r#\"raw \\ no-escape \"inner\" \"#",
    "br##\"bytes \"# still going\"##",
    "/* outer /* nested */ still comment */",
    "// line comment with \"quote\" and /* opener\n",
    "'a'",
    "'\\n'",
    "'\\''",
    "b'x'",
    "&'static str",
    "<'a, 'b>",
    "1e-3",
    "2.5E+10",
    "0x_ff_u64",
    "0..n",
    "3.",
    "1_000_000",
    "\"cooked \\\" escape\"",
    "c\"cstr\"",
    "ident_0",
    "fn f() -> Result<(), E> { Ok(()) }",
    "#[cfg(test)]",
    "x+=1;",
    "\n",
    " ",
    "\t",
];

#[test]
fn fragments_roundtrip_individually() {
    for frag in FRAGMENTS {
        assert_partitions(frag);
    }
}

#[test]
fn pathological_hand_picked_inputs_roundtrip() {
    for src in [
        "",
        "'",                  // lone tick at EOF
        "r#\"unterminated",   // unterminated raw string
        "/* unterminated /*", // unterminated nested comment
        "\"unterminated",     // unterminated cooked string
        "1e",                 // exponent marker with no digits
        "b'",                 // unterminated byte char
        "𝕏 = π;",             // multi-byte identifiers stay intact
        "let s = \"//not a comment\"; // real comment",
    ] {
        assert_partitions(src);
    }
}

proptest! {
    #[test]
    fn random_fragment_concatenations_roundtrip(
        picks in collection::vec(0usize..FRAGMENTS.len(), 0..40usize),
        seps in collection::vec(0usize..4usize, 0..40usize),
    ) {
        let mut src = String::new();
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(FRAGMENTS[p]);
            match seps.get(i) {
                Some(0) => src.push(' '),
                Some(1) => src.push('\n'),
                Some(2) => src.push(';'),
                _ => {}
            }
        }
        let toks = lex(&src);
        let mut at = 0usize;
        for t in &toks {
            prop_assert_eq!(t.start, at);
            at = t.end;
        }
        prop_assert_eq!(at, src.len());
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    #[test]
    fn random_ascii_soup_roundtrips(
        bytes in collection::vec(32u8..127u8, 0..200usize),
    ) {
        let src: String = bytes.iter().map(|&b| b as char).collect();
        let rebuilt = reassemble(&src);
        prop_assert_eq!(rebuilt, src);
    }
}
