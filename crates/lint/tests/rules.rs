//! Fixture tests: one positive (rule fires) and one negative (rule stays
//! silent) source per rule, linted under pretend workspace paths so
//! crate-scoped rules attribute them correctly.

use sqlarray_lint::lint_source;

/// Rules that fired, in report order.
fn rules(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src).iter().map(|f| f.rule).collect()
}

fn count(path: &str, src: &str, rule: &str) -> usize {
    rules(path, src).iter().filter(|r| **r == rule).count()
}

#[test]
fn l001_flags_debug_assert_in_kernel_code() {
    let pos = include_str!("../fixtures/l001_pos.rs");
    assert_eq!(count("crates/linalg/src/fixture.rs", pos, "L001"), 2);
}

#[test]
fn l001_silent_on_asserts_tests_and_allows() {
    let neg = include_str!("../fixtures/l001_neg.rs");
    assert_eq!(count("crates/linalg/src/fixture.rs", neg, "L001"), 0);
}

#[test]
fn l001_out_of_scope_crates_are_exempt() {
    let pos = include_str!("../fixtures/l001_pos.rs");
    assert_eq!(count("crates/turbulence/src/fixture.rs", pos, "L001"), 0);
}

#[test]
fn l002_flags_raw_float_accumulation_in_agg() {
    let pos = include_str!("../fixtures/l002_pos.rs");
    // `total += v` and `.sum()`.
    assert_eq!(count("crates/core/src/ops/agg.rs", pos, "L002"), 2);
}

#[test]
fn l002_silent_on_exactsum_and_integer_counters() {
    let neg = include_str!("../fixtures/l002_neg.rs");
    assert_eq!(count("crates/core/src/ops/agg.rs", neg, "L002"), 0);
}

#[test]
fn l002_only_watches_aggregation_paths() {
    let pos = include_str!("../fixtures/l002_pos.rs");
    assert_eq!(count("crates/core/src/ops/elementwise.rs", pos, "L002"), 0);
}

#[test]
fn l003_flags_raw_offset_arithmetic_in_storage() {
    let pos = include_str!("../fixtures/l003_pos.rs");
    // `offset + len`, `*byte_off += encoded_len`, `page_id * page_size`.
    assert_eq!(count("crates/storage/src/fixture.rs", pos, "L003"), 3);
}

#[test]
fn l003_silent_on_checked_math_and_allows() {
    let neg = include_str!("../fixtures/l003_neg.rs");
    assert_eq!(count("crates/storage/src/fixture.rs", neg, "L003"), 0);
}

#[test]
fn l003_only_applies_to_storage() {
    let pos = include_str!("../fixtures/l003_pos.rs");
    assert_eq!(count("crates/engine/src/fixture.rs", pos, "L003"), 0);
}

#[test]
fn l004_flags_direct_thread_fanout() {
    let pos = include_str!("../fixtures/l004_pos.rs");
    assert_eq!(count("crates/engine/src/fixture.rs", pos, "L004"), 2);
}

#[test]
fn l004_silent_on_parallel_helpers_and_tests() {
    let neg = include_str!("../fixtures/l004_neg.rs");
    assert_eq!(count("crates/engine/src/fixture.rs", neg, "L004"), 0);
}

#[test]
fn l004_core_parallel_is_sanctioned() {
    let pos = include_str!("../fixtures/l004_pos.rs");
    assert_eq!(count("crates/core/src/parallel.rs", pos, "L004"), 0);
}

#[test]
fn l005_flags_unwrap_and_expect_in_library_code() {
    let pos = include_str!("../fixtures/l005_pos.rs");
    assert_eq!(count("crates/storage/src/fixture.rs", pos, "L005"), 2);
}

#[test]
fn l005_silent_on_propagation_parser_expect_and_allows() {
    let neg = include_str!("../fixtures/l005_neg.rs");
    assert_eq!(count("crates/storage/src/fixture.rs", neg, "L005"), 0);
}

#[test]
fn l005_app_tier_crates_are_exempt() {
    let pos = include_str!("../fixtures/l005_pos.rs");
    assert_eq!(count("crates/turbulence/src/fixture.rs", pos, "L005"), 0);
}

#[test]
fn l006_flags_unordered_held_shard_guards() {
    let pos = include_str!("../fixtures/l006_pos.rs");
    assert_eq!(count("crates/storage/src/fixture.rs", pos, "L006"), 1);
}

#[test]
fn l006_silent_on_single_guard_and_literal_ascending() {
    let neg = include_str!("../fixtures/l006_neg.rs");
    assert_eq!(count("crates/storage/src/fixture.rs", neg, "L006"), 0);
}

#[test]
fn l007_flags_undocumented_unsafe() {
    let pos = include_str!("../fixtures/l007_pos.rs");
    assert_eq!(count("crates/core/src/fixture.rs", pos, "L007"), 1);
}

#[test]
fn l007_silent_when_safety_comment_present() {
    let neg = include_str!("../fixtures/l007_neg.rs");
    assert_eq!(count("crates/core/src/fixture.rs", neg, "L007"), 0);
}

#[test]
fn l008_flags_per_row_allocation_in_batch_loops() {
    let pos = include_str!("../fixtures/l008_pos.rs");
    // `.to_vec()`, `.clone()`, `format!`, `Vec::new()` — one each.
    assert_eq!(count("crates/core/src/batch.rs", pos, "L008"), 4);
    assert_eq!(count("crates/engine/src/batch.rs", pos, "L008"), 4);
}

#[test]
fn l008_silent_on_hoisted_scratch_borrows_allows_and_tests() {
    let neg = include_str!("../fixtures/l008_neg.rs");
    assert_eq!(count("crates/core/src/batch.rs", neg, "L008"), 0);
}

#[test]
fn l008_only_watches_the_batch_kernels() {
    let pos = include_str!("../fixtures/l008_pos.rs");
    assert_eq!(count("crates/engine/src/exec.rs", pos, "L008"), 0);
}

#[test]
fn l009_flags_mutex_guard_held_across_fanout() {
    let pos = include_str!("../fixtures/l009_pos.rs");
    // One `scoped_map_ranges` and one `thread::scope` under `.lock()`
    // guards, plus one `scoped_map_ranges` under a `lock_unpoisoned`
    // funnel guard.
    assert_eq!(count("crates/engine/src/fixture.rs", pos, "L009"), 3);
}

#[test]
fn l009_silent_on_dropped_scoped_rwlock_and_test_guards() {
    let neg = include_str!("../fixtures/l009_neg.rs");
    assert_eq!(count("crates/engine/src/fixture.rs", neg, "L009"), 0);
}

#[test]
fn l009_only_applies_to_the_engine_crate() {
    let pos = include_str!("../fixtures/l009_pos.rs");
    assert_eq!(count("crates/storage/src/fixture.rs", pos, "L009"), 0);
}

#[test]
fn l010_flags_scan_loops_without_lifecycle_poll() {
    let pos = include_str!("../fixtures/l010_pos.rs");
    // One unpolled `scan_partition`, one unpolled `scan_partition_batches`.
    assert_eq!(count("crates/engine/src/fixture.rs", pos, "L010"), 2);
}

#[test]
fn l010_silent_on_polling_callbacks_and_tests() {
    let neg = include_str!("../fixtures/l010_neg.rs");
    assert_eq!(count("crates/engine/src/fixture.rs", neg, "L010"), 0);
}

#[test]
fn l010_only_applies_to_the_engine_crate() {
    // The storage crate owns the scan drivers (its leaf walk polls per
    // page read) — the callback rule watches engine call sites only.
    let pos = include_str!("../fixtures/l010_pos.rs");
    assert_eq!(count("crates/storage/src/table.rs", pos, "L010"), 0);
}

#[test]
fn l000_reasonless_allow_is_reported_and_does_not_suppress() {
    let src = include_str!("../fixtures/l000_bad_allow.rs");
    let got = rules("crates/storage/src/fixture.rs", src);
    assert!(got.contains(&"L000"), "{got:?}");
    assert!(got.contains(&"L003"), "{got:?}");
}

#[test]
fn findings_carry_location_and_snippet() {
    let pos = include_str!("../fixtures/l003_pos.rs");
    let f = &lint_source("crates/storage/src/fixture.rs", pos)[0];
    assert_eq!(f.path, "crates/storage/src/fixture.rs");
    assert!(f.line > 0 && f.col > 0);
    assert!(f.snippet.contains("offset + len"), "{}", f.snippet);
    assert!(f.render_human().contains("fixture.rs"));
    assert!(f.render_json().starts_with("{\"rule\":\"L003\""));
}

#[test]
fn allow_covers_same_line_and_line_below_only() {
    let same_line =
        "fn f(offset: u64) -> u64 { offset + 1 } // lint:allow(L003, reason = \"bounded\")";
    assert_eq!(count("crates/storage/src/x.rs", same_line, "L003"), 0);
    let too_far =
        "// lint:allow(L003, reason = \"bounded\")\n\nfn f(offset: u64) -> u64 { offset + 1 }";
    assert_eq!(count("crates/storage/src/x.rs", too_far, "L003"), 1);
}
