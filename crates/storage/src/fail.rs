//! Deterministic fault injection for crash-recovery testing.
//!
//! [`FailStore`] wraps a [`PageStore`] and models the whole crash
//! lifecycle the crash-matrix suites drive:
//!
//! 1. **Arm** a [`FailPlan`] — the store accepts exactly N more durable
//!    WAL appends, then silently "loses power" (later appends are
//!    dropped, the first dropped record can leave a torn prefix). The
//!    in-process state keeps mutating, so the victim operation succeeds
//!    from the caller's point of view — exactly like an OS that buffered
//!    the writes the platter never saw.
//! 2. **Crash** — take the [`DiskImage`] that survived: checkpoint base
//!    pages + the cut log.
//! 3. Optionally **corrupt** the image like failing media would:
//!    [`tear_final_page`] (a partial sector write), [`corrupt_image_byte`]
//!    (a silent bit flip), [`tear_wal`] (an arbitrary mid-record cut).
//! 4. **Reboot** via [`PageStore::open`] and assert the recovered state
//!    is byte-for-byte the last committed snapshot.
//!
//! Injection points are enumerated from a clean run: every WAL append is
//! counted in [`crate::stats::IoStats::wal_records`] whether or not it
//! reaches the durable log, so `stats().wal_records` after an unfailed
//! victim run is the exact number of distinct crash points to test.

use crate::errors::Result;
use crate::page::PageId;
use crate::store::{DiskImage, FailPlan, PageRead, PageStore};

/// A [`PageStore`] wrapper that kills the process-model at the N-th
/// durable write. Derefs to the store, so tables/B-trees/blobs run on it
/// unchanged.
#[derive(Debug)]
pub struct FailStore {
    store: PageStore,
}

impl FailStore {
    /// Wraps a store (usually freshly built and committed).
    pub fn new(store: PageStore) -> FailStore {
        FailStore { store }
    }

    /// Arms the crash: `allow` more WAL appends reach the disk, then
    /// power is lost; the first dropped record leaves `torn_bytes` bytes
    /// of torn prefix (0 = clean cut).
    pub fn kill_at_write(&mut self, allow: u64, torn_bytes: usize) {
        self.store.arm_fail(FailPlan {
            allow_records: allow,
            torn_bytes,
        });
    }

    /// "Pulls the plug": consumes the wrapper and returns what the disk
    /// actually holds at this instant.
    pub fn crash(self) -> DiskImage {
        self.store.crash_image()
    }

    /// The wrapped store.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The wrapped store, mutably.
    pub fn store_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }
}

impl std::ops::Deref for FailStore {
    type Target = PageStore;
    fn deref(&self) -> &PageStore {
        &self.store
    }
}

impl std::ops::DerefMut for FailStore {
    fn deref_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }
}

impl PageRead for FailStore {
    fn read_page(&mut self, id: PageId) -> Result<&[u8]> {
        self.store.read(id)
    }
}

/// Truncates the image's final page to `keep` bytes — a torn (partial)
/// page write. Recovery refuses the image with
/// [`crate::errors::StorageError::PageCorrupt`] for that page.
pub fn tear_final_page(image: &mut DiskImage, keep: usize) {
    if let Some(last) = image.pages.last_mut() {
        let keep = keep.min(last.len().saturating_sub(1));
        *last = last[..keep].to_vec().into_boxed_slice();
    }
}

/// Flips one bit of a base page without fixing its checksum — silent
/// media corruption recovery must detect.
pub fn corrupt_image_byte(image: &mut DiskImage, page: PageId, off: usize) {
    image.pages[page as usize][off] ^= 0x01;
}

/// Cuts the image's log to its first `keep` bytes — an arbitrary
/// (possibly mid-record) tail loss beyond what the armed plan produced.
pub fn tear_wal(image: &mut DiskImage, keep: usize) {
    image.wal.truncate(keep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::StorageError;

    /// A tiny scripted workload: two committed pages, then a victim write.
    fn committed_store() -> PageStore {
        let mut s = PageStore::new();
        let a = s.allocate();
        let b = s.allocate();
        s.write(a, |p| p[0..4].copy_from_slice(b"AAAA")).unwrap();
        s.write(b, |p| p[0..4].copy_from_slice(b"BBBB")).unwrap();
        s.commit(b"catalog-v1");
        s
    }

    #[test]
    fn crash_before_any_victim_write_recovers_the_commit() {
        let mut f = FailStore::new(committed_store());
        f.kill_at_write(0, 0);
        f.write(0, |p| p[0..4].copy_from_slice(b"XXXX")).unwrap();
        let image = f.crash();
        let rec = PageStore::open(&image).unwrap();
        assert_eq!(&rec.store.raw_page(0).unwrap()[0..4], b"AAAA");
        assert_eq!(rec.catalog.as_deref(), Some(&b"catalog-v1"[..]));
    }

    #[test]
    fn torn_page_is_refused() {
        let s = committed_store();
        let mut image = s.crash_image();
        // Materialize a base image so there is a final page to tear.
        let rec = PageStore::open(&image).unwrap();
        image = rec.store.crash_image();
        tear_final_page(&mut image, 100);
        assert!(matches!(
            PageStore::open(&image),
            Err(StorageError::PageCorrupt { page: 1, .. })
        ));
    }

    #[test]
    fn flipped_bit_in_base_image_is_refused() {
        let s = committed_store();
        let rec = PageStore::open(&s.crash_image()).unwrap();
        let mut image = rec.store.crash_image();
        corrupt_image_byte(&mut image, 0, 3);
        assert!(matches!(
            PageStore::open(&image),
            Err(StorageError::PageCorrupt { page: 0, .. })
        ));
    }

    #[test]
    fn wal_cut_past_last_commit_only_loses_uncommitted_work() {
        let mut s = committed_store();
        s.write(1, |p| p[0..4].copy_from_slice(b"CCCC")).unwrap(); // uncommitted
        let mut image = s.crash_image();
        let cut = image.wal.len() - 3;
        tear_wal(&mut image, cut);
        let rec = PageStore::open(&image).unwrap();
        assert_eq!(&rec.store.raw_page(1).unwrap()[0..4], b"BBBB");
        assert!(rec.discarded_bytes > 0);
    }
}
