//! Z-order (Morton) space-filling curve keys.
//!
//! Both flagship workloads cluster multidimensional data on disk along a
//! space-filling curve: the turbulence database partitions its grid "along
//! a space filling curve (z-index)" (§2.1) and the N-body design computes
//! its octree "from a space filling curve index" (§2.3). Clustering the
//! B-tree on the Morton key makes spatially close blobs adjacent on disk,
//! which is what turns neighborhood fetches into sequential I/O.

/// Bits of each coordinate that participate in a 3-D Morton key
/// (3 × 21 = 63 bits fits `i64`).
pub const MORTON3_BITS: u32 = 21;

/// Spreads the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn spread3(v: u64) -> u64 {
    let mut x = v & ((1 << MORTON3_BITS) - 1);
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Collapses bits spread 3 apart back into the low 21 bits.
#[inline]
fn compact3(v: u64) -> u64 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & ((1 << MORTON3_BITS) - 1);
    x
}

/// Interleaves three coordinates into a Morton key. Coordinates must fit
/// 21 bits (≤ 2²¹−1 = 2,097,151 grid cells per axis).
#[inline]
pub fn morton3_encode(x: u64, y: u64, z: u64) -> u64 {
    assert!(x < (1 << MORTON3_BITS));
    assert!(y < (1 << MORTON3_BITS));
    assert!(z < (1 << MORTON3_BITS));
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Inverse of [`morton3_encode`].
#[inline]
pub fn morton3_decode(key: u64) -> (u64, u64, u64) {
    (compact3(key), compact3(key >> 1), compact3(key >> 2))
}

/// 2-D Morton key (up to 31 bits per coordinate).
#[inline]
pub fn morton2_encode(x: u64, y: u64) -> u64 {
    spread2(x) | (spread2(y) << 1)
}

/// Inverse of [`morton2_encode`].
#[inline]
pub fn morton2_decode(key: u64) -> (u64, u64) {
    (compact2(key), compact2(key >> 1))
}

#[inline]
fn spread2(v: u64) -> u64 {
    let mut x = v & 0x7FFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

#[inline]
fn compact2(v: u64) -> u64 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_3d() {
        let cases = [
            (0u64, 0u64, 0u64),
            (1, 2, 3),
            (255, 0, 255),
            (1 << 20, (1 << 21) - 1, 12345),
        ];
        for (x, y, z) in cases {
            let key = morton3_encode(x, y, z);
            assert_eq!(morton3_decode(key), (x, y, z));
        }
    }

    #[test]
    fn exhaustive_small_cube_is_a_bijection() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u64 {
            for y in 0..8 {
                for z in 0..8 {
                    let key = morton3_encode(x, y, z);
                    assert!(seen.insert(key), "collision at ({x},{y},{z})");
                    assert_eq!(morton3_decode(key), (x, y, z));
                }
            }
        }
        // 8³ cells map exactly onto keys 0..512.
        assert_eq!(seen.len(), 512);
        assert!(seen.iter().all(|&k| k < 512));
    }

    #[test]
    fn unit_steps_flip_expected_bits() {
        // Incrementing x flips the lowest interleaved bit.
        assert_eq!(morton3_encode(1, 0, 0), 1);
        assert_eq!(morton3_encode(0, 1, 0), 2);
        assert_eq!(morton3_encode(0, 0, 1), 4);
        assert_eq!(morton3_encode(2, 0, 0), 8);
    }

    #[test]
    fn locality_octants_are_contiguous() {
        // All cells of the low octant (coords < 4 within an 8-cube) come
        // before any cell of the high octant on the curve.
        let max_low = (0..4u64)
            .flat_map(|x| (0..4).flat_map(move |y| (0..4).map(move |z| (x, y, z))))
            .map(|(x, y, z)| morton3_encode(x, y, z))
            .max()
            .unwrap();
        let min_high = morton3_encode(4, 4, 4);
        assert!(max_low < min_high);
    }

    #[test]
    fn round_trip_2d() {
        for (x, y) in [(0u64, 0u64), (3, 5), (1000, 1), ((1 << 30) - 1, 77)] {
            let key = morton2_encode(x, y);
            assert_eq!(morton2_decode(key), (x, y));
        }
        assert_eq!(morton2_encode(1, 0), 1);
        assert_eq!(morton2_encode(0, 1), 2);
    }

    #[test]
    fn monotone_in_each_octant_bit() {
        // Keys respect the hierarchical octant ordering: the top bit
        // triple partitions space.
        let a = morton3_encode(100, 200, 300);
        let b = morton3_encode(100, 200, 301);
        assert_ne!(a, b);
    }
}
