//! I/O accounting and the simulated disk cost model.
//!
//! The paper reports execution time, CPU load and I/O throughput for each
//! query on a testbed "yielding above 1 GB/s sequential read throughput"
//! (§6.1). To keep the reproduction hardware-independent, the page store
//! counts every logical and physical page access, classifies physical reads
//! as sequential or random, and a [`DiskProfile`] converts the counts into
//! simulated I/O seconds. Benchmarks report both real wall-clock CPU time
//! and the simulated I/O time.

/// Counters accumulated by the page store.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Page reads served from the buffer pool.
    pub cache_hits: u64,
    /// Page reads that went to "disk".
    pub pages_read: u64,
    /// Physical reads that continued the previous physical read position.
    pub sequential_reads: u64,
    /// Physical reads that required a seek.
    pub random_reads: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Write-ahead log records appended.
    pub wal_records: u64,
    /// Write-ahead log bytes appended (record framing included).
    pub wal_bytes: u64,
    /// Transient read faults absorbed by the bounded retry path in the
    /// pool reader (each count is one retried physical-read attempt).
    pub transient_retries: u64,
}

impl IoStats {
    /// Bytes fetched from disk.
    pub fn bytes_read(&self) -> u64 {
        self.pages_read * crate::page::PAGE_SIZE as u64
    }

    /// Bytes written to disk.
    pub fn bytes_written(&self) -> u64 {
        self.pages_written * crate::page::PAGE_SIZE as u64
    }

    /// Total logical reads (cache hits + physical reads).
    pub fn logical_reads(&self) -> u64 {
        self.cache_hits + self.pages_read
    }

    /// Buffer-pool hit ratio in `[0, 1]`; `1.0` for an untouched store.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.logical_reads();
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Adds another counter set into this one — used to fold the
    /// per-worker [`IoStats`] of a parallel scan back into the store's
    /// global counters.
    pub fn merge(&mut self, other: &IoStats) {
        self.cache_hits += other.cache_hits;
        self.pages_read += other.pages_read;
        self.sequential_reads += other.sequential_reads;
        self.random_reads += other.random_reads;
        self.pages_written += other.pages_written;
        self.wal_records += other.wal_records;
        self.wal_bytes += other.wal_bytes;
        self.transient_retries += other.transient_retries;
    }

    /// Differences of two snapshots (`self` after, `before` earlier).
    pub fn since(&self, before: &IoStats) -> IoStats {
        IoStats {
            cache_hits: self.cache_hits - before.cache_hits,
            pages_read: self.pages_read - before.pages_read,
            sequential_reads: self.sequential_reads - before.sequential_reads,
            random_reads: self.random_reads - before.random_reads,
            pages_written: self.pages_written - before.pages_written,
            wal_records: self.wal_records - before.wal_records,
            wal_bytes: self.wal_bytes - before.wal_bytes,
            transient_retries: self.transient_retries - before.transient_retries,
        }
    }
}

/// The synthetic disk the simulated timings are computed against.
///
/// Defaults match the paper's testbed: ~1150 MB/s sequential scans
/// (Table 1 reports 1150 MB/s for the I/O-bound queries) and a
/// direct-attached-RAID-class random read rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Sequential read throughput, bytes per second.
    pub seq_read_bytes_per_sec: f64,
    /// Random page reads per second (seek-bound IOPS).
    pub random_read_iops: f64,
    /// Write throughput, bytes per second.
    pub write_bytes_per_sec: f64,
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile {
            seq_read_bytes_per_sec: 1150.0 * 1024.0 * 1024.0,
            random_read_iops: 20_000.0,
            write_bytes_per_sec: 500.0 * 1024.0 * 1024.0,
        }
    }
}

impl DiskProfile {
    /// Simulated seconds of disk time implied by `stats`.
    pub fn io_seconds(&self, stats: &IoStats) -> f64 {
        let page = crate::page::PAGE_SIZE as f64;
        let seq = stats.sequential_reads as f64 * page / self.seq_read_bytes_per_sec;
        let rnd = stats.random_reads as f64 / self.random_read_iops;
        let wr = stats.pages_written as f64 * page / self.write_bytes_per_sec;
        // Log appends are sequential by construction, so they are charged
        // at the sequential write rate; zero for any workload that never
        // touches the WAL, leaving historical timings unchanged.
        let wal = stats.wal_bytes as f64 / self.write_bytes_per_sec;
        seq + rnd + wr + wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_follow_page_size() {
        let s = IoStats {
            pages_read: 3,
            ..Default::default()
        };
        assert_eq!(s.bytes_read(), 3 * 8192);
    }

    #[test]
    fn hit_ratio_bounds() {
        let mut s = IoStats::default();
        assert_eq!(s.hit_ratio(), 1.0);
        s.pages_read = 1;
        assert_eq!(s.hit_ratio(), 0.0);
        s.cache_hits = 3;
        assert_eq!(s.hit_ratio(), 0.75);
    }

    #[test]
    fn since_subtracts() {
        let before = IoStats {
            pages_read: 5,
            cache_hits: 2,
            ..Default::default()
        };
        let after = IoStats {
            pages_read: 9,
            cache_hits: 10,
            ..Default::default()
        };
        let d = after.since(&before);
        assert_eq!(d.pages_read, 4);
        assert_eq!(d.cache_hits, 8);
    }

    #[test]
    fn io_seconds_scale_linearly() {
        let p = DiskProfile {
            seq_read_bytes_per_sec: 8192.0, // 1 page per second
            random_read_iops: 2.0,
            write_bytes_per_sec: 8192.0,
        };
        let s = IoStats {
            sequential_reads: 3,
            random_reads: 4,
            pages_written: 1,
            pages_read: 7,
            ..Default::default()
        };
        assert!((p.io_seconds(&s) - (3.0 + 2.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn default_profile_matches_paper_testbed() {
        let p = DiskProfile::default();
        let gb = 1024.0 * 1024.0 * 1024.0;
        assert!(p.seq_read_bytes_per_sec > gb, "paper: above 1 GB/s");
    }
}
