//! A fixed-capacity LRU set over page ids: the simple, sequential
//! arrival-ordered reference implementation.
//!
//! Implemented as a slab-backed doubly linked list plus a hash map, giving
//! O(1) touch/insert/evict. Only membership is tracked — page bytes live in
//! the page file — which is all the cost model needs to decide whether a
//! logical read hits the pool or goes to disk.
//!
//! The live buffer pool in [`crate::store::PageStore`] is the concurrent,
//! stamp-ordered [`crate::pool::ShardedLruPool`]; `LruSet` stays as the
//! single-threaded building block for anything that needs plain recency
//! semantics (and as the behavioral reference the pool's model tests are
//! written against).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU set of `u64` keys.
#[derive(Debug)]
pub struct LruSet {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl LruSet {
    /// Creates a set that holds at most `capacity` keys (≥ 1).
    pub fn new(capacity: usize) -> LruSet {
        let capacity = capacity.max(1);
        LruSet {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of resident keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// If `key` is resident, marks it most-recently-used and returns true.
    pub fn touch(&mut self, key: u64) -> bool {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                true
            }
            None => false,
        }
    }

    /// Inserts a key, returning the evicted key if the set was full.
    ///
    /// Inserting a key that is already resident degrades to a
    /// [`touch`](LruSet::touch): the key is promoted to most-recently-used
    /// and nothing is evicted. (Before this was defined behavior, a
    /// duplicate insert in a release build corrupted the intrusive list —
    /// the map kept a stale node index and the old node stayed linked.)
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        if self.touch(key) {
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let victim = self.tail;
            assert_ne!(victim, NIL);
            let victim_key = self.nodes[victim].key;
            self.unlink(victim);
            self.map.remove(&victim_key);
            self.free.push(victim);
            Some(victim_key)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Removes a specific key if resident.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.map.remove(&key) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Empties the set (the `DBCC DROPCLEANBUFFERS` of the model: the paper
    /// clears the server cache before every measured run).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently used (for tests/debugging).
    pub fn keys_mru_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.nodes[cur].key);
            cur = self.nodes[cur].next;
        }
        out
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_until_capacity_then_evicts_lru() {
        let mut lru = LruSet::new(3);
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), None);
        assert_eq!(lru.insert(3), None);
        assert_eq!(lru.len(), 3);
        // 1 is the least recently used.
        assert_eq!(lru.insert(4), Some(1));
        assert_eq!(lru.keys_mru_order(), vec![4, 3, 2]);
    }

    #[test]
    fn touch_promotes() {
        let mut lru = LruSet::new(3);
        lru.insert(1);
        lru.insert(2);
        lru.insert(3);
        assert!(lru.touch(1)); // 1 becomes MRU; 2 is now LRU
        assert_eq!(lru.insert(4), Some(2));
        assert!(lru.touch(1));
        assert!(!lru.touch(2));
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut lru = LruSet::new(2);
        lru.insert(10);
        lru.insert(20);
        assert!(lru.remove(10));
        assert!(!lru.remove(10));
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.insert(30), None); // free slot reused, no eviction
        assert_eq!(lru.keys_mru_order(), vec![30, 20]);
    }

    #[test]
    fn clear_empties() {
        let mut lru = LruSet::new(4);
        for k in 0..4 {
            lru.insert(k);
        }
        lru.clear();
        assert!(lru.is_empty());
        assert!(!lru.touch(2));
        assert_eq!(lru.insert(9), None);
    }

    #[test]
    fn capacity_one_always_replaces() {
        let mut lru = LruSet::new(1);
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.insert(2), Some(1));
        assert_eq!(lru.insert(3), Some(2));
        assert_eq!(lru.keys_mru_order(), vec![3]);
    }

    #[test]
    fn duplicate_insert_degrades_to_touch() {
        let mut lru = LruSet::new(3);
        lru.insert(1);
        lru.insert(2);
        lru.insert(3);
        // 1 is LRU; re-inserting it must promote, not corrupt or evict.
        assert_eq!(lru.insert(1), None);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.keys_mru_order(), vec![1, 3, 2]);
        // The next eviction claims 2, proving the list stayed coherent.
        assert_eq!(lru.insert(4), Some(2));
        assert_eq!(lru.keys_mru_order(), vec![4, 1, 3]);
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut lru = LruSet::new(64);
        for round in 0..10u64 {
            for k in 0..256u64 {
                let key = (k * 7 + round) % 512;
                // Blind insert (no touch-first protocol): duplicates must
                // degrade to touches without corrupting the list.
                lru.insert(key);
                assert!(lru.len() <= 64);
            }
        }
        // The MRU listing must contain exactly len() unique keys.
        let keys = lru.keys_mru_order();
        assert_eq!(keys.len(), lru.len());
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }
}
