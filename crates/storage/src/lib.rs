//! # sqlarray-storage
//!
//! A compact storage-engine substrate reproducing the parts of Microsoft
//! SQL Server 2008 that the array library's design depends on (Dobos et
//! al., EDBT 2011, §3.3):
//!
//! * 8192-byte slotted pages ([`page`]);
//! * a live, concurrent buffer pool — a lock-striped sharded LRU ordered
//!   by deterministic logical stamps ([`pool`]) — with complete I/O
//!   accounting, including a sequential/random classification and a
//!   simulated disk cost model ([`store`], [`stats`]);
//! * clustered B+trees with append-optimized splits and a parallel
//!   bulk-build path ([`btree`]);
//! * in-row vs out-of-page blob storage with a streamed, partial-read LOB
//!   interface that plugs straight into `sqlarray_core::stream` ([`blob`]),
//!   including a vectored run reader ([`blob::read_blob_runs`]) generic
//!   over [`store::PageRead`] so parallel-scan workers resolve LOB ranges
//!   through the live pool;
//! * schema-driven row encoding and clustered tables ([`row`], [`table`]).
//!
//! Everything reads and writes through [`store::PageStore`], so benchmark
//! harnesses can replay the paper's measurement protocol: clear the cache,
//! run the query, report bytes moved and simulated disk seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;
pub mod btree;
pub mod errors;
pub mod fail;
pub mod lru;
pub mod page;
pub mod pool;
pub mod row;
pub mod stats;
pub mod store;
pub mod table;
pub mod wal;
pub mod zorder;

pub use blob::{BlobId, BlobStream, ByteRun};
pub use btree::BTree;
pub use errors::{Result, StorageError};
pub use fail::FailStore;
pub use page::{PageId, PAGE_SIZE};
pub use pool::ShardedLruPool;
pub use row::{ColType, Column, RowValue, Schema, INLINE_BLOB_LIMIT};
pub use stats::{DiskProfile, IoStats};
pub use store::{
    DiskImage, FailPlan, PageRead, PageStore, PartitionReader, Recovery, ScanCtx, ScanIo,
    MAX_READ_RETRIES,
};
pub use table::{BatchScanOpts, ScanPartition, Table};
