//! The live, concurrent buffer pool: a lock-striped sharded LRU over page
//! ids, replacing the old replayed-after-the-fact [`crate::lru::LruSet`]
//! wrapper in [`crate::store::PageStore`].
//!
//! ## Why recency is a *logical timestamp*, not arrival order
//!
//! A classic LRU list orders pages by wall-clock arrival, which makes the
//! end-of-scan pool state depend on thread scheduling the moment two scan
//! workers share a shard. This pool instead orders every resident page by
//! a **logical stamp** assigned deterministically by the access plan:
//!
//! * serial accesses stamp with a monotonically increasing epoch;
//! * a parallel scan takes *one* epoch and stamps each touch with
//!   `(epoch, partition, sequence-within-partition)` — exactly the order
//!   a serial scan over the same partitions would have touched the pages.
//!
//! Eviction always removes the minimum-stamp page of the full shard. With
//! that rule the survivor set of a shard is the top-`capacity` stamps of
//! everything inserted, *regardless of arrival order* (an eviction can
//! never claim a page while any lower-stamped page is resident), so pool
//! residency — and the recency order itself — after a parallel scan is
//! bit-identical to the serial run at every DOP, with no post-hoc replay.
//!
//! Shards are selected by `page_id % shards`; each shard is an
//! independently locked stamp-ordered set, so concurrent readers and
//! writers (scan workers, the parallel bulk loader) contend only when
//! they touch the same stripe.

use crate::page::PageId;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;

/// Shard count for pools large enough to stripe. Pools smaller than
/// [`MIN_CAPACITY_TO_SHARD`] pages use a single shard so tiny test pools
/// keep exact global-LRU semantics.
pub const POOL_SHARDS: usize = 16;

/// Pools below this capacity collapse to one shard.
pub const MIN_CAPACITY_TO_SHARD: usize = 64;

/// A deterministic recency stamp: higher = more recently used.
///
/// Layout: `epoch << 64 | partition << 32 | sequence`. Serial accesses use
/// `(epoch, 0, 0)` with a fresh epoch per touch; one parallel scan shares
/// a single epoch across its workers and orders touches by
/// `(partition, sequence)` — the serial visit order.
pub type PoolStamp = u128;

/// Builds a [`PoolStamp`] from its three components.
#[inline]
pub fn pool_stamp(epoch: u64, partition: u32, seq: u32) -> PoolStamp {
    ((epoch as u128) << 64) | ((partition as u128) << 32) | seq as u128
}

/// One lock stripe: membership plus the stamp order, both O(log n).
#[derive(Debug, Default)]
struct PoolShard {
    /// Page → its current stamp.
    stamps: HashMap<PageId, PoolStamp>,
    /// Stamp → page, ordered; the first entry is the eviction victim.
    by_stamp: BTreeMap<PoolStamp, PageId>,
    capacity: usize,
}

impl PoolShard {
    fn touch(&mut self, id: PageId, stamp: PoolStamp) -> bool {
        match self.stamps.get_mut(&id) {
            Some(cur) => {
                // A stale stamp (older than the page's current one) must
                // not demote the page: under concurrent touches the
                // maximum stamp wins, matching the serial outcome where
                // the latest touch is the one that sticks.
                if stamp > *cur {
                    let old = *cur;
                    *cur = stamp;
                    self.by_stamp.remove(&old);
                    self.by_stamp.insert(stamp, id);
                }
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, id: PageId, stamp: PoolStamp) -> Option<PageId> {
        // lint:allow(L001, reason = "insert is only reachable after touch() missed on the same shard guard; an always-on probe would double the hash lookups on the page-miss path")
        debug_assert!(!self.stamps.contains_key(&id));
        let evicted = if self.stamps.len() >= self.capacity {
            let (&victim_stamp, &victim) = self
                .by_stamp
                .iter()
                .next()
                // lint:allow(L005, reason = "stamps and by_stamp are mutated in lockstep under the same guard, and stamps.len() >= capacity >= 1 here, so by_stamp is non-empty")
                .expect("full shard has a minimum stamp");
            if stamp < victim_stamp {
                // The newcomer is already the least-recently-used entry:
                // in serial stamp order it would have been inserted first
                // and evicted by now. Rejecting it (it "evicts itself")
                // keeps the survivor set equal to the top-`capacity`
                // stamps regardless of arrival order — the property that
                // makes the live pool DOP-invariant.
                return Some(id);
            }
            self.by_stamp.remove(&victim_stamp);
            self.stamps.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.stamps.insert(id, stamp);
        self.by_stamp.insert(stamp, id);
        evicted
    }
}

/// Locks one pool shard, funneling every acquisition through a single
/// annotated site. Poison recovery (the repo-wide policy in
/// [`sqlarray_core::sync`]) is sound here because the pool is pure cache
/// accounting: scan-worker panics are caught at the fan-out boundary
/// before they can unwind through pool code, and even a stripe whose
/// recency bookkeeping was torn by a panic inside the pool itself can
/// only mis-prioritize evictions, never corrupt page data.
fn lock_shard(m: &Mutex<PoolShard>) -> std::sync::MutexGuard<'_, PoolShard> {
    sqlarray_core::sync::lock_unpoisoned(m)
}

/// A fixed-capacity, lock-striped, stamp-ordered LRU set of pages — the
/// live buffer pool shared by the serial path and all scan workers.
#[derive(Debug)]
pub struct ShardedLruPool {
    shards: Vec<Mutex<PoolShard>>,
    capacity: usize,
}

impl ShardedLruPool {
    /// Creates a pool holding at most `capacity` pages (≥ 1), striped over
    /// [`POOL_SHARDS`] shards when the capacity is large enough for each
    /// stripe to hold a meaningful number of pages.
    pub fn new(capacity: usize) -> ShardedLruPool {
        let capacity = capacity.max(1);
        let n = if capacity >= MIN_CAPACITY_TO_SHARD {
            POOL_SHARDS
        } else {
            1
        };
        let shards = (0..n)
            .map(|i| {
                // Distribute the capacity as evenly as page-id striping
                // distributes the pages: the first `capacity % n` shards
                // take one extra slot.
                let cap = capacity / n + usize::from(i < capacity % n);
                Mutex::new(PoolShard {
                    capacity: cap.max(1),
                    ..PoolShard::default()
                })
            })
            .collect();
        ShardedLruPool { shards, capacity }
    }

    fn shard(&self, id: PageId) -> &Mutex<PoolShard> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident pages (sums the shards; a racing snapshot under
    /// concurrent access, exact when quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).stamps.len()).sum()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// If `id` is resident, refreshes its stamp (keeping the newer of the
    /// current and offered stamps) and returns `true`.
    pub fn touch(&self, id: PageId, stamp: PoolStamp) -> bool {
        lock_shard(self.shard(id)).touch(id, stamp)
    }

    /// Touches `id` if resident, inserts it otherwise — one lock round
    /// trip for the fault-in path. Returns `true` when the page was
    /// already resident.
    pub fn touch_or_insert(&self, id: PageId, stamp: PoolStamp) -> bool {
        let mut shard = lock_shard(self.shard(id));
        if shard.touch(id, stamp) {
            true
        } else {
            shard.insert(id, stamp);
            false
        }
    }

    /// True when `id` is resident (no stamp refresh).
    pub fn contains(&self, id: PageId) -> bool {
        lock_shard(self.shard(id)).stamps.contains_key(&id)
    }

    /// Removes every resident page (`DBCC DROPCLEANBUFFERS`).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = lock_shard(s);
            s.stamps.clear();
            s.by_stamp.clear();
        }
    }

    /// The set of resident pages.
    pub fn resident_set(&self) -> HashSet<PageId> {
        let mut out = HashSet::with_capacity(self.len());
        for s in &self.shards {
            out.extend(lock_shard(s).stamps.keys().copied());
        }
        out
    }

    /// Resident pages from most- to least-recently stamped, merged across
    /// shards — the deterministic global recency order (for tests and the
    /// DOP-invariance property test).
    pub fn keys_mru_order(&self) -> Vec<PageId> {
        let mut all: Vec<(PoolStamp, PageId)> = Vec::with_capacity(self.len());
        for s in &self.shards {
            all.extend(lock_shard(s).by_stamp.iter().map(|(&st, &id)| (st, id)));
        }
        all.sort_unstable_by_key(|&(stamp, _)| std::cmp::Reverse(stamp));
        all.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_stamps() -> impl FnMut() -> PoolStamp {
        let mut e = 0u64;
        move || {
            e += 1;
            pool_stamp(e, 0, 0)
        }
    }

    #[test]
    fn small_pool_behaves_like_one_lru() {
        let pool = ShardedLruPool::new(3);
        assert_eq!(pool.shard_count(), 1);
        let mut next = serial_stamps();
        for id in 1..=3 {
            assert!(!pool.touch_or_insert(id, next()));
        }
        assert!(pool.touch(1, next())); // 1 becomes MRU, 2 is LRU
        assert!(!pool.touch_or_insert(4, next())); // evicts 2
        assert!(!pool.contains(2));
        assert_eq!(pool.keys_mru_order(), vec![4, 1, 3]);
    }

    #[test]
    fn large_pool_stripes() {
        let pool = ShardedLruPool::new(1024);
        assert_eq!(pool.shard_count(), POOL_SHARDS);
        let mut next = serial_stamps();
        for id in 0..512u64 {
            pool.touch_or_insert(id, next());
        }
        assert_eq!(pool.len(), 512);
        assert!(pool.contains(17));
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn capacity_distributes_across_shards() {
        // 100 pages over 16 shards: 4 shards of 7, 12 of 6.
        let pool = ShardedLruPool::new(100);
        let mut next = serial_stamps();
        for id in 0..10_000u64 {
            pool.touch_or_insert(id, next());
        }
        assert_eq!(pool.len(), 100);
    }

    #[test]
    fn survivors_are_stamp_order_invariant() {
        // Insert the same stamped pages in two different arrival orders;
        // the survivor set and recency order must be identical — the
        // property the parallel scan path relies on.
        let stamps: Vec<(PageId, PoolStamp)> = (0..200u64)
            .map(|i| (i * 16, pool_stamp(7, 0, i as u32))) // one shard
            .collect();
        let forward = ShardedLruPool::new(32);
        for &(id, st) in &stamps {
            forward.touch_or_insert(id, st);
        }
        let shuffled = ShardedLruPool::new(32);
        // Deterministic shuffle: stride through the list.
        for k in 0..stamps.len() {
            let (id, st) = stamps[(k * 67) % stamps.len()];
            shuffled.touch_or_insert(id, st);
        }
        assert_eq!(forward.keys_mru_order(), shuffled.keys_mru_order());
    }

    #[test]
    fn stale_stamp_does_not_demote() {
        let pool = ShardedLruPool::new(8);
        pool.touch_or_insert(1, pool_stamp(5, 0, 0));
        // An older stamp arriving late must not roll recency back.
        assert!(pool.touch(1, pool_stamp(3, 0, 0)));
        pool.touch_or_insert(2, pool_stamp(4, 0, 0));
        assert_eq!(pool.keys_mru_order(), vec![1, 2]);
    }

    #[test]
    fn concurrent_touches_converge() {
        let pool = ShardedLruPool::new(256);
        std::thread::scope(|s| {
            for part in 0..4u32 {
                let pool = &pool;
                s.spawn(move || {
                    for seq in 0..64u32 {
                        let id = (part as u64) * 64 + seq as u64;
                        pool.touch_or_insert(id, pool_stamp(1, part, seq));
                    }
                });
            }
        });
        assert_eq!(pool.len(), 256);
        // Recency order is by (partition, seq) regardless of scheduling.
        let mru = pool.keys_mru_order();
        assert_eq!(mru[0], 255);
        assert_eq!(*mru.last().unwrap(), 0);
    }
}
