//! A page-based B+tree keyed by `i64` — the clustered index.
//!
//! Every table in the engine is clustered: rows live in the leaf level in
//! key order (the test tables of §6.2 use "an ID (Int64, clustered index)").
//! Leaves are chained for ordered scans, internal nodes hold separator keys.
//!
//! Record formats:
//! * leaf: `key i64 | payload bytes`
//! * internal: `key i64 | child u64` (the leftmost child — subtree with
//!   keys below the first separator — is stored in the page's link field)
//!
//! Splits are 50/50 by bytes, except the classic append optimization: an
//! insert past the last key of the rightmost leaf starts a fresh page, so
//! monotonically increasing bulk loads (the paper's 357 M-row `IDENTITY`
//! style load) leave near-full pages.

use crate::errors::{Result, StorageError};
use crate::page::{page_type, PageId, SlottedPage, SlottedRead, PAGE_SIZE};
use crate::store::PageStore;

/// Largest payload storable in a leaf record (key bytes deducted). Rows
/// beyond this move their blobs out of page — see `sqlarray-storage::row`.
pub const MAX_PAYLOAD: usize = SlottedPage::max_record() - 8;

/// Leaves built per parallel round of [`BTree::bulk_build`]: bounds the
/// transient page-image memory to ~8 MiB per round while keeping each
/// worker's run long enough to amortize the thread spawn.
pub const BULK_BUILD_BATCH_LEAVES: usize = 1024;

/// A clustered B+tree.
#[derive(Debug, Clone)]
pub struct BTree {
    root: PageId,
    first_leaf: PageId,
    len: u64,
    depth: u32,
}

fn leaf_key(rec: &[u8]) -> i64 {
    sqlarray_core::le::i64_at(rec, 0)
}

fn internal_entry(rec: &[u8]) -> (i64, PageId) {
    (
        sqlarray_core::le::i64_at(rec, 0),
        sqlarray_core::le::u64_at(rec, 8),
    )
}

/// The leftmost-child link of an internal node; a corrupt page without
/// one surfaces as a typed error instead of a panic.
fn leftmost_child(v: &SlottedRead<'_>) -> Result<PageId> {
    v.next_page().ok_or_else(|| {
        StorageError::RowCorrupt("internal node missing its leftmost-child link".into())
    })
}

/// Re-opens a page for writing after the caller's `SlottedRead::open` of
/// the same page (under the same store borrow) already verified the type
/// byte.
fn open_verified<'a>(bytes: &'a mut [u8], ptype: u8, page: PageId) -> SlottedPage<'a> {
    // lint:allow(L005, reason = "the caller read-opened the same page under the same store borrow and the type byte cannot change in between, so the Err arm is unreachable")
    SlottedPage::open(bytes, ptype, page).expect("page type verified by the preceding read")
}

/// Pushes a record the surrounding split/fill arithmetic already sized to
/// fit. `store.write` closures cannot propagate `?`, and a failure here
/// would be a split-arithmetic bug, not a runtime condition.
fn push_sized(p: &mut SlottedPage<'_>, rec: &[u8]) {
    // lint:allow(L005, reason = "every caller just established room on the page (fresh page, 50/50 split, greedy fill, or an explicit free-space check); failure would be a split-arithmetic bug, not a runtime condition")
    let _slot = p.push_record(rec).expect("sized to fit by the caller");
}

/// Inserts a record at `pos` after the caller's explicit free-space check.
fn insert_sized(p: &mut SlottedPage<'_>, pos: usize, rec: &[u8]) {
    let res = p.insert_record(pos, rec);
    // lint:allow(L005, reason = "both callers compared free_space_of(bytes) against the record size immediately before taking the write borrow")
    res.expect("caller verified free space");
}

/// Replaces record `pos` after the caller's explicit size/free-space check.
fn replace_sized(p: &mut SlottedPage<'_>, pos: usize, rec: &[u8]) {
    let res = p.replace_record(pos, rec);
    // lint:allow(L005, reason = "the caller compared the new record size against the old record / page free space immediately before taking the write borrow")
    res.expect("caller verified replacement fits");
}

/// Removes slot `pos` that the caller's read of the same page just proved
/// present.
fn remove_sized(p: &mut SlottedPage<'_>, pos: usize) {
    let res = p.remove_slot(pos);
    // lint:allow(L005, reason = "the caller located pos < slot_count under the same store borrow; the page cannot change in between")
    res.expect("caller located the slot");
}

fn encode_leaf(key: i64, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&key.to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

fn encode_internal(key: i64, child: PageId) -> [u8; 16] {
    let mut rec = [0u8; 16];
    rec[..8].copy_from_slice(&key.to_le_bytes());
    rec[8..].copy_from_slice(&child.to_le_bytes());
    rec
}

/// Result of inserting into a subtree: one `(separator, new right
/// sibling)` pair per page the child split off, in ascending key order
/// (empty when the insert fit in place). A leaf holding records close to
/// [`MAX_PAYLOAD`] can be forced into a three-way split — no single
/// boundary leaves both halves under a page — so this is a `Vec`, not an
/// `Option`.
type SplitInfo = Vec<(i64, PageId)>;

/// Validates the bulk-load key contract (strictly increasing) — shared by
/// [`BTree::bulk_build`] and `Table::bulk_load`, which must check *before*
/// its LOB spill pre-pass mutates the store.
pub(crate) fn validate_bulk_key_order(keys: impl Iterator<Item = i64>) -> Result<()> {
    let mut prev: Option<i64> = None;
    for key in keys {
        if let Some(p) = prev {
            if key <= p {
                return Err(StorageError::BulkLoad(format!(
                    "keys must be strictly increasing (key {key} follows {p})"
                )));
            }
        }
        prev = Some(key);
    }
    Ok(())
}

impl BTree {
    /// Creates an empty tree (a single empty leaf).
    pub fn create(store: &mut PageStore) -> Result<BTree> {
        let root = store.allocate();
        store.write(root, |bytes| {
            SlottedPage::init(bytes, page_type::BTREE_LEAF);
        })?;
        Ok(BTree {
            root,
            first_leaf: root,
            len: 0,
            depth: 1,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root page (for diagnostics).
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// The tree's persistent identity, as serialized into commit-record
    /// catalogs: `(root, first_leaf, len, depth)`.
    pub fn parts(&self) -> (PageId, PageId, u64, u32) {
        (self.root, self.first_leaf, self.len, self.depth)
    }

    /// Rebuilds the in-memory descriptor from catalog parts — the inverse
    /// of [`parts`](Self::parts), used by crash recovery. The pages the
    /// parts point at must already exist in the store (they do after
    /// replay: the catalog rode in the same commit record as the last
    /// logged page state).
    pub fn from_parts(root: PageId, first_leaf: PageId, len: u64, depth: u32) -> BTree {
        BTree {
            root,
            first_leaf,
            len,
            depth,
        }
    }

    /// Locates the leaf holding `key`'s position: `(leaf page, slot, hit)`
    /// where `hit` says the key is actually present at that slot.
    fn locate_leaf(&self, store: &mut PageStore, key: i64) -> Result<(PageId, usize, bool)> {
        let mut page = self.root;
        loop {
            let bytes = store.read(page)?;
            match bytes[0] {
                page_type::BTREE_INTERNAL => {
                    let v = SlottedRead::open(bytes, page_type::BTREE_INTERNAL, page)?;
                    let (child, _) = descend(&v, key)?;
                    page = child;
                }
                page_type::BTREE_LEAF => {
                    let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, page)?;
                    let pos = leaf_lower_bound(&v, key)?;
                    let hit = pos < v.slot_count() && leaf_key(v.record(pos)?) == key;
                    return Ok((page, pos, hit));
                }
                other => {
                    return Err(StorageError::PageTypeMismatch {
                        page,
                        expected: page_type::BTREE_LEAF,
                        got: other,
                    })
                }
            }
        }
    }

    /// Deletes `key`, returning its payload. Leaf-local maintenance only:
    /// the slot is removed and later slots shift; a leaf emptied by
    /// deletes stays in the sibling chain (scans skip zero-slot pages for
    /// free), matching the lazy-reclamation behavior of a real clustered
    /// index without rebalancing.
    pub fn delete(&mut self, store: &mut PageStore, key: i64) -> Result<Vec<u8>> {
        let (page, pos, hit) = self.locate_leaf(store, key)?;
        if !hit {
            return Err(StorageError::KeyNotFound { key });
        }
        let old = {
            let bytes = store.read(page)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, page)?;
            v.record(pos)?[8..].to_vec()
        };
        store.write(page, |bytes| {
            let mut p = open_verified(bytes, page_type::BTREE_LEAF, page);
            remove_sized(&mut p, pos);
        })?;
        self.len -= 1;
        Ok(old)
    }

    /// Replaces `key`'s payload in place, returning the old payload.
    ///
    /// Three escalation tiers, each bounded to the touched leaf:
    /// 1. the new record fits the old slot or the page's free tail —
    ///    [`SlottedPage::replace_record`], one page write;
    /// 2. it fits after compacting the page's dead space — reset and
    ///    re-push, still one page write;
    /// 3. it genuinely outgrows the leaf — delete + insert, which may
    ///    split exactly like any insert.
    pub fn update(&mut self, store: &mut PageStore, key: i64, payload: &[u8]) -> Result<Vec<u8>> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                bytes: payload.len(),
                limit: MAX_PAYLOAD,
            });
        }
        let (page, pos, hit) = self.locate_leaf(store, key)?;
        if !hit {
            return Err(StorageError::KeyNotFound { key });
        }
        let rec = encode_leaf(key, payload);
        enum Tier {
            InPlace,
            Compact,
            Reinsert,
        }
        let (old, tier) = {
            let bytes = store.read(page)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, page)?;
            let old_rec = v.record(pos)?;
            let old = old_rec[8..].to_vec();
            let tier = if rec.len() <= old_rec.len() || rec.len() <= free_space_of(bytes) + 4 {
                // `+ 4`: replacement reuses the existing slot entry, so the
                // admission rule is free bytes only, not bytes + slot.
                Tier::InPlace
            } else {
                // Would the record fit if the dead space were compacted
                // away? Live bytes = all records with `pos` swapped out.
                let live: usize = (0..v.slot_count())
                    .map(|i| {
                        v.record(i).map(|r| {
                            let len = if i == pos { rec.len() } else { r.len() };
                            len + crate::page::SLOT_LEN
                        })
                    })
                    .sum::<Result<usize>>()?;
                if live <= PAGE_SIZE - crate::page::PAGE_HEADER_LEN {
                    Tier::Compact
                } else {
                    Tier::Reinsert
                }
            };
            (old, tier)
        };
        match tier {
            Tier::InPlace => {
                store.write(page, |bytes| {
                    let mut p = open_verified(bytes, page_type::BTREE_LEAF, page);
                    replace_sized(&mut p, pos, &rec);
                })?;
            }
            Tier::Compact => {
                let mut records = {
                    let bytes = store.read(page)?;
                    let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, page)?;
                    (0..v.slot_count())
                        .map(|i| v.record(i).map(|r| r.to_vec()))
                        .collect::<Result<Vec<_>>>()?
                };
                records[pos] = rec;
                store.write(page, |bytes| {
                    let mut p = open_verified(bytes, page_type::BTREE_LEAF, page);
                    p.reset();
                    for r in &records {
                        push_sized(&mut p, r);
                    }
                })?;
            }
            Tier::Reinsert => {
                self.delete(store, key)?;
                self.insert(store, key, payload)?;
            }
        }
        Ok(old)
    }

    /// Inserts a key/payload pair; duplicate keys are rejected (clustered
    /// primary key semantics).
    pub fn insert(&mut self, store: &mut PageStore, key: i64, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                bytes: payload.len(),
                limit: MAX_PAYLOAD,
            });
        }
        let splits = self.insert_rec(store, self.root, key, payload)?;
        if !splits.is_empty() {
            // Root split: grow the tree by one level. A leaf root can
            // split into up to three pages (two separators); the new
            // internal root trivially holds them.
            let new_root = store.allocate();
            let old_root = self.root;
            store.write(new_root, |bytes| {
                let mut p = SlottedPage::init(bytes, page_type::BTREE_INTERNAL);
                p.set_next_page(Some(old_root)); // leftmost child
                for &(sep, right) in &splits {
                    push_sized(&mut p, &encode_internal(sep, right));
                }
            })?;
            self.root = new_root;
            self.depth += 1;
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        &mut self,
        store: &mut PageStore,
        page: PageId,
        key: i64,
        payload: &[u8],
    ) -> Result<SplitInfo> {
        let ptype = store.read(page)?[0];
        match ptype {
            page_type::BTREE_LEAF => self.insert_leaf(store, page, key, payload),
            page_type::BTREE_INTERNAL => {
                let (child, child_slot) = {
                    let bytes = store.read(page)?;
                    let v = SlottedRead::open(bytes, page_type::BTREE_INTERNAL, page)?;
                    descend(&v, key)?
                };
                let splits = self.insert_rec(store, child, key, payload)?;
                if splits.is_empty() {
                    Ok(Vec::new())
                } else {
                    self.insert_internal(store, page, child_slot, &splits)
                }
            }
            other => Err(StorageError::PageTypeMismatch {
                page,
                expected: page_type::BTREE_LEAF,
                got: other,
            }),
        }
    }

    fn insert_leaf(
        &mut self,
        store: &mut PageStore,
        page: PageId,
        key: i64,
        payload: &[u8],
    ) -> Result<SplitInfo> {
        // Find the slot position and detect duplicates.
        let (pos, count, fits, at_end_of_chain) = {
            let bytes = store.read(page)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, page)?;
            let count = v.slot_count();
            let pos = leaf_lower_bound(&v, key)?;
            if pos < count && leaf_key(v.record(pos)?) == key {
                return Err(StorageError::DuplicateKey { key });
            }
            let need = 8 + payload.len();
            let free = free_space_of(bytes);
            (pos, count, need <= free, v.next_page().is_none())
        };

        let rec = encode_leaf(key, payload);
        if fits {
            store.write(page, |bytes| {
                let mut p = open_verified(bytes, page_type::BTREE_LEAF, page);
                insert_sized(&mut p, pos, &rec);
            })?;
            return Ok(Vec::new());
        }

        // Split. Append optimization: a brand-new rightmost key gets a
        // fresh page of its own.
        if pos == count && at_end_of_chain {
            let right = store.allocate();
            store.write(right, |bytes| {
                let mut p = SlottedPage::init(bytes, page_type::BTREE_LEAF);
                push_sized(&mut p, &rec);
            })?;
            store.write(page, |bytes| {
                let mut p = open_verified(bytes, page_type::BTREE_LEAF, page);
                p.set_next_page(Some(right));
            })?;
            return Ok(vec![(key, right)]);
        }

        // General split by bytes: aim for 50/50, but never hand either
        // side more than a page can hold. Records run up to a full page
        // ([`MAX_PAYLOAD`]), so the balanced boundary can overflow one
        // side — and when a page-wide record sits between page-wide
        // neighbours, *no* two-way boundary exists and the leaf splits
        // three ways.
        let (mut records, old_next) = {
            let bytes = store.read(page)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, page)?;
            let recs: Vec<Vec<u8>> = (0..v.slot_count())
                .map(|i| v.record(i).map(|r| r.to_vec()))
                .collect::<Result<_>>()?;
            (recs, v.next_page())
        };
        records.insert(pos, rec);
        let usable = PAGE_SIZE - crate::page::PAGE_HEADER_LEN;
        let sizes: Vec<usize> = records
            .iter()
            .map(|r| r.len() + crate::page::SLOT_LEN)
            .collect();
        let total: usize = sizes.iter().sum();
        let mut left_bytes = 0usize;
        let mut split_at = records.len();
        for (i, s) in sizes.iter().enumerate() {
            if left_bytes + s > total / 2 && i > 0 {
                split_at = i;
                break;
            }
            left_bytes += s;
        }
        let prefix = |i: usize| sizes[..i].iter().sum::<usize>();
        let both_fit = |i: usize| prefix(i) <= usable && total - prefix(i) <= usable;
        if !both_fit(split_at) {
            // The balanced boundary overflows one side; take the valid
            // boundary closest to it — `0` is the no-boundary sentinel.
            split_at = (1..records.len())
                .filter(|&i| both_fit(i))
                .min_by_key(|&i| prefix(i).abs_diff(total / 2))
                .unwrap_or(0);
        }
        let groups: Vec<Vec<Vec<u8>>> = if split_at > 0 {
            let tail = records.split_off(split_at);
            vec![records, tail]
        } else {
            // No two-way boundary fits both sides; pack greedily. The
            // page held at most one page's worth and gained one record,
            // so this yields exactly three groups.
            let mut gs: Vec<Vec<Vec<u8>>> = Vec::new();
            let mut cur: Vec<Vec<u8>> = Vec::new();
            let mut cur_bytes = 0usize;
            for r in records {
                let s = r.len() + crate::page::SLOT_LEN;
                if cur_bytes + s > usable && !cur.is_empty() {
                    gs.push(std::mem::take(&mut cur));
                    cur_bytes = 0;
                }
                cur_bytes += s;
                cur.push(r);
            }
            gs.push(cur);
            gs
        };

        let mut iter = groups.into_iter();
        let first = iter.next().unwrap_or_default();
        let rest: Vec<Vec<Vec<u8>>> = iter.collect();
        let pages: Vec<PageId> = rest.iter().map(|_| store.allocate()).collect();
        let splits: Vec<(i64, PageId)> = rest
            .iter()
            .zip(&pages)
            .map(|(g, &pid)| (leaf_key(&g[0]), pid))
            .collect();
        store.write(page, |bytes| {
            let mut p = open_verified(bytes, page_type::BTREE_LEAF, page);
            p.reset();
            for r in &first {
                push_sized(&mut p, r);
            }
            p.set_next_page(pages.first().copied().or(old_next));
        })?;
        for (gi, (g, &pid)) in rest.iter().zip(&pages).enumerate() {
            let next = pages.get(gi + 1).copied().or(old_next);
            store.write(pid, |bytes| {
                let mut p = SlottedPage::init(bytes, page_type::BTREE_LEAF);
                for r in g {
                    push_sized(&mut p, r);
                }
                p.set_next_page(next);
            })?;
        }
        Ok(splits)
    }

    fn insert_internal(
        &mut self,
        store: &mut PageStore,
        page: PageId,
        child_slot: InternalPos,
        seps: &[(i64, PageId)],
    ) -> Result<SplitInfo> {
        // The new separators go immediately after the slot we descended
        // through, in the (ascending) order the child produced them.
        let insert_pos = match child_slot {
            InternalPos::Leftmost => 0,
            InternalPos::Slot(i) => i + 1,
        };
        let recs: Vec<[u8; 16]> = seps
            .iter()
            .map(|&(sep, child)| encode_internal(sep, child))
            .collect();
        let fits = {
            let bytes = store.read(page)?;
            // `free_space_of` already budgets one slot; each extra
            // record needs its record bytes plus its own slot.
            let need: usize = recs.iter().map(|r| r.len()).sum::<usize>()
                + (recs.len() - 1) * crate::page::SLOT_LEN;
            free_space_of(bytes) >= need
        };
        if fits {
            store.write(page, |bytes| {
                let mut p = open_verified(bytes, page_type::BTREE_INTERNAL, page);
                for (i, rec) in recs.iter().enumerate() {
                    insert_sized(&mut p, insert_pos + i, rec);
                }
            })?;
            return Ok(Vec::new());
        }

        // Split the internal node: middle key moves up. Entries are 16
        // bytes each, so (unlike leaves) a two-way split always fits.
        let (mut entries, leftmost) = {
            let bytes = store.read(page)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_INTERNAL, page)?;
            let es: Vec<(i64, PageId)> = (0..v.slot_count())
                .map(|i| v.record(i).map(internal_entry))
                .collect::<Result<_>>()?;
            (es, leftmost_child(&v)?)
        };
        for (i, &e) in seps.iter().enumerate() {
            entries.insert(insert_pos + i, e);
        }
        let mid = entries.len() / 2;
        let (up_key, up_child) = entries[mid];
        let right_entries: Vec<(i64, PageId)> = entries[mid + 1..].to_vec();
        let left_entries: Vec<(i64, PageId)> = entries[..mid].to_vec();

        let right = store.allocate();
        store.write(page, |bytes| {
            let mut p = open_verified(bytes, page_type::BTREE_INTERNAL, page);
            p.reset();
            p.set_next_page(Some(leftmost));
            for &(k, c) in &left_entries {
                push_sized(&mut p, &encode_internal(k, c));
            }
        })?;
        store.write(right, |bytes| {
            let mut p = SlottedPage::init(bytes, page_type::BTREE_INTERNAL);
            p.set_next_page(Some(up_child)); // leftmost child of the right node
            for &(k, c) in &right_entries {
                push_sized(&mut p, &encode_internal(k, c));
            }
        })?;
        Ok(vec![(up_key, right)])
    }

    /// Builds a clustered tree bottom-up from pre-encoded leaf records
    /// with strictly increasing keys — the bulk-load fast path.
    ///
    /// Page breaks are computed with the same greedy fill rule the
    /// append-optimized insert path converges to, so a bulk-built tree
    /// packs its leaves like a monotone `IDENTITY` load. Leaf page
    /// *images* are then built on up to `dop` worker threads (contiguous
    /// leaf ranges, pure CPU — no store access), appended to the store in
    /// page order, and the internal levels are assembled on top. Because
    /// the images and the append order are fully determined by the
    /// entries, the resulting file layout, page bytes, pool state and
    /// [`crate::IoStats`] are **identical at every `dop`**.
    ///
    /// `recycle_first_leaf` lets the caller donate an existing page to
    /// serve as the first leaf instead of allocating a fresh one —
    /// `Table::bulk_load` passes the empty table's root leaf so no page is
    /// orphaned; leaves 1.. are still appended contiguously at the end of
    /// the file.
    pub fn bulk_build(
        store: &mut PageStore,
        entries: &[(i64, Vec<u8>)],
        dop: usize,
        recycle_first_leaf: Option<PageId>,
    ) -> Result<BTree> {
        validate_bulk_key_order(entries.iter().map(|(k, _)| *k))?;
        BTree::bulk_build_prevalidated(store, entries, dop, recycle_first_leaf)
    }

    /// [`bulk_build`](Self::bulk_build) minus the key-order pass, for
    /// callers that already validated (`Table::bulk_load` checks keys
    /// *before* its LOB spill pre-pass mutates the store; re-checking here
    /// would make every ingest scan the key column twice).
    pub(crate) fn bulk_build_prevalidated(
        store: &mut PageStore,
        entries: &[(i64, Vec<u8>)],
        dop: usize,
        recycle_first_leaf: Option<PageId>,
    ) -> Result<BTree> {
        if entries.is_empty() {
            return BTree::create(store);
        }
        // lint:allow(L001, reason = "O(n) re-check of the key-order contract the public bulk_build entry point already validated and rejected with a typed error")
        debug_assert!(validate_bulk_key_order(entries.iter().map(|(k, _)| *k)).is_ok());
        // Greedy page breaks: a record of `len` payload bytes costs
        // 8 (key) + len record bytes + 4 slot bytes out of the
        // PAGE_SIZE − PAGE_HEADER_LEN byte budget — exactly the
        // `SlottedPage::free_space` admission rule.
        let budget = PAGE_SIZE - crate::page::PAGE_HEADER_LEN;
        let mut leaf_ranges: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        let mut used = 0usize;
        for (i, (_, payload)) in entries.iter().enumerate() {
            if payload.len() > MAX_PAYLOAD {
                return Err(StorageError::RecordTooLarge {
                    bytes: payload.len(),
                    limit: MAX_PAYLOAD,
                });
            }
            let cost = 8 + payload.len() + crate::page::SLOT_LEN;
            if used + cost > budget {
                leaf_ranges.push(start..i);
                start = i;
                used = 0;
            }
            used += cost;
        }
        leaf_ranges.push(start..entries.len());

        // Build the leaf page images in parallel and append them in page
        // order. Building proceeds in bounded *batches* of leaves so the
        // transient image memory is O(batch), not O(table); within a
        // batch, each worker owns a contiguous run of leaves and writes
        // every image into its own buffer. Batching changes neither the
        // image bytes nor the append order, so the layout stays identical
        // at every `dop` (and to an unbatched build).
        let n_leaves = leaf_ranges.len();
        let base = store.page_count();
        // Page id of leaf `i`: the recycled page (if any) is leaf 0, the
        // rest append contiguously at the end of the file.
        let leaf_page = move |i: usize| -> PageId {
            match recycle_first_leaf {
                Some(r) if i == 0 => r,
                Some(_) => base + i as PageId - 1,
                None => base + i as PageId,
            }
        };
        let first_leaf = leaf_page(0);
        let build_leaf = |leaf_idx: usize| -> Box<[u8]> {
            let mut bytes = vec![0u8; PAGE_SIZE].into_boxed_slice();
            let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
            for (key, payload) in &entries[leaf_ranges[leaf_idx].clone()] {
                push_sized(&mut p, &encode_leaf(*key, payload));
            }
            if leaf_idx + 1 < n_leaves {
                p.set_next_page(Some(leaf_page(leaf_idx + 1)));
            }
            bytes
        };
        for batch_start in (0..n_leaves).step_by(BULK_BUILD_BATCH_LEAVES) {
            let batch_len = BULK_BUILD_BATCH_LEAVES.min(n_leaves - batch_start);
            let images: Vec<Box<[u8]>> =
                sqlarray_core::parallel::scoped_map_ranges(batch_len, dop.max(1), |r| {
                    (batch_start + r.start..batch_start + r.end)
                        .map(&build_leaf)
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            // Append (counts one write per page, all pool-resident like
            // any freshly produced page).
            for (offset, image) in images.into_iter().enumerate() {
                // lint:allow(L003, reason = "offset is an enumerate index over one in-memory leaf batch, bounded far below usize::MAX by the batch allocation itself")
                let leaf_idx = batch_start + offset;
                let id = match recycle_first_leaf {
                    Some(r) if leaf_idx == 0 => r,
                    _ => store.allocate(),
                };
                assert_eq!(id, leaf_page(leaf_idx));
                store.write(id, |bytes| bytes.copy_from_slice(&image))?;
            }
        }

        // Assemble the internal levels bottom-up. Each internal record
        // costs 16 + 4 slot bytes; the leftmost child rides in the link.
        let children_per_internal = 1 + budget / (16 + crate::page::SLOT_LEN);
        let mut level: Vec<(i64, PageId)> = leaf_ranges
            .iter()
            .enumerate()
            .map(|(i, r)| (entries[r.start].0, leaf_page(i)))
            .collect();
        let mut depth = 1u32;
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len() / children_per_internal + 1);
            for run in level.chunks(children_per_internal) {
                let id = store.allocate();
                store.write(id, |bytes| {
                    let mut p = SlottedPage::init(bytes, page_type::BTREE_INTERNAL);
                    p.set_next_page(Some(run[0].1)); // leftmost child
                    for &(key, child) in &run[1..] {
                        push_sized(&mut p, &encode_internal(key, child));
                    }
                })?;
                next_level.push((run[0].0, id));
            }
            level = next_level;
            depth += 1;
        }
        Ok(BTree {
            root: level[0].1,
            first_leaf,
            len: entries.len() as u64,
            depth,
        })
    }

    /// Point lookup; returns the payload when the key exists.
    pub fn get(&self, store: &mut PageStore, key: i64) -> Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            let bytes = store.read(page)?;
            match bytes[0] {
                page_type::BTREE_INTERNAL => {
                    let v = SlottedRead::open(bytes, page_type::BTREE_INTERNAL, page)?;
                    let (child, _) = descend(&v, key)?;
                    page = child;
                }
                page_type::BTREE_LEAF => {
                    let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, page)?;
                    let pos = leaf_lower_bound(&v, key)?;
                    if pos < v.slot_count() {
                        let rec = v.record(pos)?;
                        if leaf_key(rec) == key {
                            return Ok(Some(rec[8..].to_vec()));
                        }
                    }
                    return Ok(None);
                }
                other => {
                    return Err(StorageError::PageTypeMismatch {
                        page,
                        expected: page_type::BTREE_LEAF,
                        got: other,
                    })
                }
            }
        }
    }

    /// Full ordered scan. `f` receives `(key, payload)` for every entry in
    /// key order and returns `true` to continue, `false` to stop early.
    /// The payload slice borrows the page — zero copies on the scan path,
    /// exactly like an in-process clustered index scan.
    pub fn scan(
        &self,
        store: &mut PageStore,
        mut f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        let mut page = Some(self.first_leaf);
        while let Some(pid) = page {
            let bytes = store.read(pid)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, pid)?;
            for i in 0..v.slot_count() {
                let rec = v.record(i)?;
                if !f(leaf_key(rec), &rec[8..])? {
                    return Ok(());
                }
            }
            page = v.next_page();
        }
        Ok(())
    }

    /// Range scan over `[lo, hi]` inclusive, in key order.
    pub fn scan_range(
        &self,
        store: &mut PageStore,
        lo: i64,
        hi: i64,
        mut f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        // Descend to the leaf containing lo.
        let mut page = self.root;
        loop {
            let bytes = store.read(page)?;
            if bytes[0] == page_type::BTREE_LEAF {
                break;
            }
            let v = SlottedRead::open(bytes, page_type::BTREE_INTERNAL, page)?;
            let (child, _) = descend(&v, lo)?;
            page = child;
        }
        let mut cur = Some(page);
        while let Some(pid) = cur {
            let bytes = store.read(pid)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, pid)?;
            for i in 0..v.slot_count() {
                let rec = v.record(i)?;
                let k = leaf_key(rec);
                if k < lo {
                    continue;
                }
                if k > hi {
                    return Ok(());
                }
                if !f(k, &rec[8..])? {
                    return Ok(());
                }
            }
            cur = v.next_page();
        }
        Ok(())
    }

    /// All leaf page ids in key (chain) order, collected by walking the
    /// internal levels only — the scan partitioner needs the leaf list
    /// without paying a full leaf-level read, exactly as a real engine
    /// derives parallel range boundaries from the index upper levels.
    /// Cost: one read per *internal* page (a few hundredths of the leaf
    /// count at normal fan-outs).
    ///
    /// Generic over [`PageRead`](crate::store::PageRead) so the walk can
    /// run either through the serial `&mut PageStore` path or through a
    /// scan worker's [`PartitionReader`](crate::store::PartitionReader) —
    /// the latter is how `Table::partition` enumerates leaves over a
    /// *shared* store reference when many sessions scan concurrently.
    pub fn leaf_page_ids<R: crate::store::PageRead>(&self, store: &mut R) -> Result<Vec<PageId>> {
        // Knowing the depth up front lets the walk stop one level above
        // the leaves: a depth-`d` tree's level-`d−1` entries *are* leaf
        // ids, so no leaf page is ever faulted in.
        let mut out = Vec::new();
        self.collect_leaves(store, self.root, self.depth, &mut out)?;
        Ok(out)
    }

    fn collect_leaves<R: crate::store::PageRead>(
        &self,
        store: &mut R,
        page: PageId,
        levels_to_leaf: u32,
        out: &mut Vec<PageId>,
    ) -> Result<()> {
        if levels_to_leaf == 1 {
            out.push(page);
            return Ok(());
        }
        let children = {
            let bytes = store.read_page(page)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_INTERNAL, page)?;
            let mut cs = vec![leftmost_child(&v)?];
            for i in 0..v.slot_count() {
                cs.push(internal_entry(v.record(i)?).1);
            }
            cs
        };
        for child in children {
            self.collect_leaves(store, child, levels_to_leaf - 1, out)?;
        }
        Ok(())
    }

    /// Number of leaf pages (for storage accounting).
    pub fn leaf_pages(&self, store: &mut PageStore) -> Result<u64> {
        let mut n = 0;
        let mut page = Some(self.first_leaf);
        while let Some(pid) = page {
            n += 1;
            let bytes = store.read(pid)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, pid)?;
            page = v.next_page();
        }
        Ok(n)
    }

    /// Tree depth (1 = root is a leaf).
    pub fn depth(&self, store: &mut PageStore) -> Result<u32> {
        let mut d = 1;
        let mut page = self.root;
        loop {
            let bytes = store.read(page)?;
            if bytes[0] == page_type::BTREE_LEAF {
                return Ok(d);
            }
            let v = SlottedRead::open(bytes, page_type::BTREE_INTERNAL, page)?;
            page = leftmost_child(&v)?;
            d += 1;
        }
    }
}

/// Which internal slot the descent went through.
#[derive(Debug, Clone, Copy, PartialEq)]
enum InternalPos {
    /// Went through the leftmost-child link.
    Leftmost,
    /// Went through separator slot `i`.
    Slot(usize),
}

/// Binary search an internal node for the child covering `key`.
fn descend(v: &SlottedRead<'_>, key: i64) -> Result<(PageId, InternalPos)> {
    let count = v.slot_count();
    // Find the last separator <= key.
    let mut lo = 0usize;
    let mut hi = count; // exclusive
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (k, _) = internal_entry(v.record(mid)?);
        if k <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        Ok((leftmost_child(v)?, InternalPos::Leftmost))
    } else {
        let (_, child) = internal_entry(v.record(lo - 1)?);
        Ok((child, InternalPos::Slot(lo - 1)))
    }
}

/// Binary search a leaf for the first slot with key >= `key`.
fn leaf_lower_bound(v: &SlottedRead<'_>, key: i64) -> Result<usize> {
    let mut lo = 0usize;
    let mut hi = v.slot_count();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_key(v.record(mid)?) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

fn free_space_of(bytes: &[u8]) -> usize {
    let slot_count = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
    let free_off = u16::from_le_bytes([bytes[4], bytes[5]]) as usize;
    (PAGE_SIZE - slot_count * crate::page::SLOT_LEN)
        .saturating_sub(free_off)
        .saturating_sub(crate::page::SLOT_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(n: i64, payload_len: usize) -> (PageStore, BTree) {
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        let payload = vec![0xCD; payload_len];
        for k in 0..n {
            t.insert(&mut store, k, &payload).unwrap();
        }
        (store, t)
    }

    #[test]
    fn insert_and_get() {
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        t.insert(&mut store, 5, b"five").unwrap();
        t.insert(&mut store, 3, b"three").unwrap();
        t.insert(&mut store, 9, b"nine").unwrap();
        assert_eq!(t.get(&mut store, 3).unwrap().unwrap(), b"three");
        assert_eq!(t.get(&mut store, 5).unwrap().unwrap(), b"five");
        assert_eq!(t.get(&mut store, 9).unwrap().unwrap(), b"nine");
        assert_eq!(t.get(&mut store, 4).unwrap(), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        t.insert(&mut store, 1, b"a").unwrap();
        assert!(matches!(
            t.insert(&mut store, 1, b"b"),
            Err(StorageError::DuplicateKey { key: 1 })
        ));
    }

    #[test]
    fn sequential_load_scans_in_order() {
        let (mut store, t) = tree_with(10_000, 40);
        let mut seen = Vec::new();
        t.scan(&mut store, |k, payload| {
            assert_eq!(payload.len(), 40);
            seen.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen.len(), 10_000);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert!(t.depth(&mut store).unwrap() >= 2);
    }

    #[test]
    fn random_order_load_scans_sorted() {
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        // Deterministic shuffle of 0..4000 via multiplication by a unit
        // mod 2^k.
        let n = 4000i64;
        for i in 0..n {
            let k = (i * 2654435761 % 4096) * 100000 + i;
            t.insert(&mut store, k, &k.to_le_bytes()).unwrap();
        }
        let mut last = i64::MIN;
        let mut count = 0;
        t.scan(&mut store, |k, payload| {
            assert!(k > last);
            assert_eq!(payload, &k.to_le_bytes());
            last = k;
            count += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(count, n);
    }

    #[test]
    fn point_lookups_after_splits() {
        let (mut store, t) = tree_with(5000, 100);
        for k in [0i64, 1, 499, 2500, 4998, 4999] {
            assert!(t.get(&mut store, k).unwrap().is_some(), "key {k}");
        }
        assert_eq!(t.get(&mut store, 5000).unwrap(), None);
        assert_eq!(t.get(&mut store, -1).unwrap(), None);
    }

    #[test]
    fn append_optimization_fills_pages() {
        // With 40-byte payloads (48-byte records + 4-byte slots), a page
        // fits ~157 records. Sequential load should approach that, far
        // above the ~78 a 50/50 split regime would leave.
        let (mut store, t) = tree_with(10_000, 40);
        let leaves = t.leaf_pages(&mut store).unwrap();
        let per_page = 10_000.0 / leaves as f64;
        assert!(
            per_page > 140.0,
            "append-optimized load left only {per_page:.0} rows/page"
        );
    }

    #[test]
    fn scan_early_stop() {
        let (mut store, t) = tree_with(1000, 16);
        let mut n = 0;
        t.scan(&mut store, |_, _| {
            n += 1;
            Ok(n < 10)
        })
        .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn range_scan_bounds_inclusive() {
        let (mut store, t) = tree_with(2000, 16);
        let mut seen = Vec::new();
        t.scan_range(&mut store, 995, 1005, |k, _| {
            seen.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, (995..=1005).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_empty_window() {
        let (mut store, t) = tree_with(100, 8);
        let mut n = 0;
        t.scan_range(&mut store, 200, 300, |_, _| {
            n += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn big_payloads_split_correctly() {
        // 4000-byte payloads: two records per page at most.
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        for k in 0..100 {
            let payload = vec![k as u8; 4000];
            t.insert(&mut store, k, &payload).unwrap();
        }
        for k in 0..100 {
            let got = t.get(&mut store, k).unwrap().unwrap();
            assert_eq!(got.len(), 4000);
            assert!(got.iter().all(|&b| b == k as u8));
        }
    }

    #[test]
    fn wide_record_split_keeps_both_sides_on_a_page() {
        // Records wider than half a page: the 50/50 byte boundary would
        // hand the right side two of them (> PAGE_SIZE); the split must
        // shift the boundary so both sides fit.
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        t.insert(&mut store, 0, &[0u8; 60]).unwrap();
        t.insert(&mut store, 2, &vec![2u8; 7000]).unwrap();
        // Out-of-order so the append optimization can't kick in.
        t.insert(&mut store, 1, &vec![1u8; 7000]).unwrap();
        for k in 0..3 {
            let got = t.get(&mut store, k).unwrap().unwrap();
            assert!(got.iter().all(|&b| b == k as u8));
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn page_wide_record_between_wide_neighbours_splits_three_ways() {
        // Adversarial: two records filling a page exactly, then a
        // MAX_PAYLOAD record between them. No two-way boundary leaves
        // both sides under a page, so the leaf must split three ways.
        let half = (PAGE_SIZE - crate::page::PAGE_HEADER_LEN) / 2 - 12;
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        t.insert(&mut store, 0, &vec![7u8; half]).unwrap();
        t.insert(&mut store, 2, &vec![9u8; half]).unwrap();
        t.insert(&mut store, 1, &vec![8u8; MAX_PAYLOAD]).unwrap();
        assert_eq!(t.get(&mut store, 0).unwrap().unwrap(), vec![7u8; half]);
        assert_eq!(
            t.get(&mut store, 1).unwrap().unwrap(),
            vec![8u8; MAX_PAYLOAD]
        );
        assert_eq!(t.get(&mut store, 2).unwrap().unwrap(), vec![9u8; half]);
        // The leaf chain must still visit every key in order.
        let mut seen = Vec::new();
        t.scan(&mut store, |k, _| {
            seen.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn reinsert_update_with_wide_records_survives_splits() {
        // Regression: `update` (Reinsert tier) of near-page-wide inline
        // rows used to panic in the leaf split when one side overflowed.
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        for k in 0..6 {
            t.insert(&mut store, k, &[k as u8; 68]).unwrap();
        }
        for k in 0..6 {
            t.update(&mut store, k, &vec![k as u8; 7300]).unwrap();
        }
        for k in (0..6).rev() {
            t.update(&mut store, k, &vec![k as u8; 6900]).unwrap();
        }
        for k in 0..6 {
            let got = t.get(&mut store, k).unwrap().unwrap();
            assert_eq!(got.len(), 6900);
            assert!(got.iter().all(|&b| b == k as u8));
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        let too_big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            t.insert(&mut store, 0, &too_big),
            Err(StorageError::RecordTooLarge { .. })
        ));
        let just_fits = vec![0u8; MAX_PAYLOAD];
        t.insert(&mut store, 0, &just_fits).unwrap();
        assert_eq!(t.get(&mut store, 0).unwrap().unwrap().len(), MAX_PAYLOAD);
    }

    #[test]
    fn reverse_order_insert() {
        let mut store = PageStore::new();
        let mut t = BTree::create(&mut store).unwrap();
        for k in (0..3000).rev() {
            t.insert(&mut store, k, &(k as i32).to_le_bytes()).unwrap();
        }
        let mut expected = 0i64;
        t.scan(&mut store, |k, _| {
            assert_eq!(k, expected);
            expected += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(expected, 3000);
    }

    #[test]
    fn delete_removes_and_reports_missing() {
        let (mut store, mut t) = tree_with(5000, 40);
        assert_eq!(t.delete(&mut store, 2500).unwrap(), vec![0xCD; 40]);
        assert_eq!(t.len(), 4999);
        assert_eq!(t.get(&mut store, 2500).unwrap(), None);
        assert_eq!(t.get(&mut store, 2499).unwrap().unwrap(), vec![0xCD; 40]);
        assert!(matches!(
            t.delete(&mut store, 2500),
            Err(StorageError::KeyNotFound { key: 2500 })
        ));
        // Draining a whole leaf's key range leaves scans consistent.
        for k in 0..400 {
            t.delete(&mut store, k).unwrap();
        }
        let mut seen = 0u64;
        let mut last = i64::MIN;
        t.scan(&mut store, |k, _| {
            assert!(k > last && k >= 400 && k != 2500);
            last = k;
            seen += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, t.len());
    }

    #[test]
    fn update_tiers_preserve_scan_order() {
        let (mut store, mut t) = tree_with(3000, 40);
        // Tier 1: same-size in-place.
        assert_eq!(t.update(&mut store, 7, &[1u8; 40]).unwrap(), vec![0xCD; 40]);
        assert_eq!(t.get(&mut store, 7).unwrap().unwrap(), vec![1u8; 40]);
        // Tier 1: shrink.
        t.update(&mut store, 8, &[2u8; 5]).unwrap();
        assert_eq!(t.get(&mut store, 8).unwrap().unwrap(), vec![2u8; 5]);
        // Tier 2/3: grow well past the page's free space — full pages from
        // a sequential load force compaction or reinsert.
        t.update(&mut store, 9, &[3u8; 4000]).unwrap();
        assert_eq!(t.get(&mut store, 9).unwrap().unwrap(), vec![3u8; 4000]);
        assert_eq!(t.len(), 3000);
        let mut last = i64::MIN;
        let mut n = 0;
        t.scan(&mut store, |k, _| {
            assert!(k > last);
            last = k;
            n += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(n, 3000);
        // Typed errors.
        assert!(matches!(
            t.update(&mut store, -1, b"x"),
            Err(StorageError::KeyNotFound { key: -1 })
        ));
        assert!(matches!(
            t.update(&mut store, 7, &vec![0u8; MAX_PAYLOAD + 1]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn parts_round_trip_preserves_tree() {
        let (mut store, t) = tree_with(2000, 30);
        let (root, first, len, depth) = t.parts();
        let t2 = BTree::from_parts(root, first, len, depth);
        assert_eq!(t2.len(), t.len());
        assert_eq!(
            t2.get(&mut store, 1234).unwrap(),
            t.get(&mut store, 1234).unwrap()
        );
        let mut n = 0;
        t2.scan(&mut store, |_, _| {
            n += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(n, 2000);
    }

    #[test]
    fn leaf_page_ids_match_chain_order() {
        for n in [0i64, 1, 5, 5000] {
            let (mut store, t) = tree_with(n, 40);
            let ids = t.leaf_page_ids(&mut store).unwrap();
            assert_eq!(ids.len() as u64, t.leaf_pages(&mut store).unwrap());
            // The tracked depth must agree with the walked depth.
            assert_eq!(t.depth, t.depth(&mut store).unwrap());
            // Walk the chain and compare.
            let mut chain = Vec::new();
            let mut page = Some(t.first_leaf);
            while let Some(pid) = page {
                chain.push(pid);
                let bytes = store.read(pid).unwrap();
                let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, pid).unwrap();
                page = v.next_page();
            }
            assert_eq!(ids, chain, "n = {n}");
        }
    }

    #[test]
    fn leaf_page_ids_read_only_internal_pages_when_warm() {
        let (mut store, t) = tree_with(20_000, 40);
        let leaves = t.leaf_pages(&mut store).unwrap();
        store.clear_cache();
        let before = store.stats();
        t.leaf_page_ids(&mut store).unwrap();
        let d = store.stats().since(&before);
        // Collecting the leaf list must not read the leaf level itself.
        assert!(
            d.pages_read + d.cache_hits < leaves / 10,
            "partitioning touched {} pages for {leaves} leaves",
            d.pages_read + d.cache_hits
        );
    }

    #[test]
    fn scan_is_sequential_io_after_sequential_load() {
        let (mut store, t) = tree_with(20_000, 40);
        store.clear_cache();
        store.reset_stats();
        t.scan(&mut store, |_, _| Ok(true)).unwrap();
        let st = store.stats();
        // Leaf chain allocation order is ascending for sequential loads, so
        // the scan should be dominated by sequential page reads.
        assert!(
            st.sequential_reads as f64 >= 0.9 * st.pages_read as f64,
            "scan was not sequential: {st:?}"
        );
    }
}
