//! Row format: schema-driven encoding of heterogeneous column values.
//!
//! Mirrors the two test tables of §6.2: `Tscalar` stores a vector as five
//! scalar `float` columns; `Tvector` stores it as one binary column holding
//! an array blob. Blob columns follow SQL Server's in-row rule: payloads up
//! to [`INLINE_BLOB_LIMIT`] bytes stay in the row, larger ones move to the
//! LOB store and leave a 16-byte pointer behind.

use crate::blob::{self, BlobId};
use crate::errors::{Result, StorageError};
use crate::store::PageStore;
use sqlarray_core::batch::{Batch, BytesVec, ColVec};

/// Largest blob stored inside the row — the `VARBINARY(8000)` budget that
/// also caps short arrays.
pub const INLINE_BLOB_LIMIT: usize = 8000;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// `bigint`.
    I64,
    /// `int`.
    I32,
    /// `float`.
    F64,
    /// `real`.
    F32,
    /// Binary payload: in-row when ≤ [`INLINE_BLOB_LIMIT`] bytes,
    /// out-of-page LOB otherwise (`VARBINARY(MAX)` semantics).
    Blob,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (case-insensitive lookups in the engine).
    pub name: String,
    /// Data type.
    pub ctype: ColType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: &str, ctype: ColType) -> Column {
        Column {
            name: name.to_string(),
            ctype,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// The columns, in storage order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(cols: &[(&str, ColType)]) -> Schema {
        Schema {
            columns: cols.iter().map(|&(n, t)| Column::new(n, t)).collect(),
        }
    }

    /// Index of a column by case-insensitive name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// A single column value.
#[derive(Debug, Clone, PartialEq)]
pub enum RowValue {
    /// `bigint` value.
    I64(i64),
    /// `int` value.
    I32(i32),
    /// `float` value.
    F64(f64),
    /// `real` value.
    F32(f32),
    /// Blob payload held in the row.
    Bytes(Vec<u8>),
    /// Blob moved out of page: LOB id and byte length.
    LobRef(BlobId, u64),
}

impl RowValue {
    /// Fetches the full payload of a blob-typed value, reading through the
    /// LOB store when out of page.
    pub fn blob_bytes(&self, store: &mut PageStore) -> Result<Vec<u8>> {
        match self {
            RowValue::Bytes(b) => Ok(b.clone()),
            RowValue::LobRef(id, _) => blob::read_blob(store, *id),
            other => Err(StorageError::SchemaMismatch(format!(
                "value {other:?} is not a blob"
            ))),
        }
    }
}

/// A borrowed view of one decoded column value — the zero-copy sibling of
/// [`RowValue`] for callers that only inspect a value (predicates, LOB-ref
/// checks) and would otherwise pay a heap copy per inline blob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowValueRef<'a> {
    /// `bigint` value.
    I64(i64),
    /// `int` value.
    I32(i32),
    /// `float` value.
    F64(f64),
    /// `real` value.
    F32(f32),
    /// Blob payload held in the row, borrowed from the encoded bytes.
    Bytes(&'a [u8]),
    /// Blob moved out of page: LOB id and byte length.
    LobRef(BlobId, u64),
}

// Value tags inside encoded blob columns.
const BLOB_INLINE: u8 = 0;
const BLOB_LOB: u8 = 1;

/// Encodes a row. Blob values larger than the in-row limit are written to
/// the LOB store as a side effect.
pub fn encode_row(store: &mut PageStore, schema: &Schema, values: &[RowValue]) -> Result<Vec<u8>> {
    encode_row_impl(Some(store), schema, values)
}

/// Encodes a row **without** touching the store — the pure-CPU path the
/// parallel bulk loader fans out over worker threads. Oversized blob
/// values are an error here; [`Table::bulk_load`](crate::Table::bulk_load)
/// spills them to the LOB store in a serial pre-pass (replacing them with
/// [`RowValue::LobRef`]) before handing rows to the workers.
pub fn encode_row_inline(schema: &Schema, values: &[RowValue]) -> Result<Vec<u8>> {
    encode_row_impl(None, schema, values)
}

/// Computes the encoded length of a row **without encoding it** (and
/// without touching any store), validating arity and column types along
/// the way. Oversized blob values are costed as LOB pointers (17 bytes),
/// matching what [`encode_row`] produces after spilling — this is the
/// bulk loader's pre-flight check, run before any store mutation.
///
/// Kept adjacent to `encode_row_impl` because the two must agree
/// byte-for-byte; `encoded_len_matches_encoding` pins that.
pub fn encoded_len(schema: &Schema, values: &[RowValue]) -> Result<usize> {
    if values.len() != schema.columns.len() {
        return Err(StorageError::SchemaMismatch(format!(
            "row has {} values, schema has {} columns",
            values.len(),
            schema.columns.len()
        )));
    }
    let mut len = 0usize;
    for (col, val) in schema.columns.iter().zip(values) {
        len += match (col.ctype, val) {
            (ColType::I64, RowValue::I64(_)) | (ColType::F64, RowValue::F64(_)) => 8,
            (ColType::I32, RowValue::I32(_)) | (ColType::F32, RowValue::F32(_)) => 4,
            (ColType::Blob, RowValue::Bytes(b)) => {
                if b.len() <= INLINE_BLOB_LIMIT {
                    3 + b.len()
                } else {
                    17
                }
            }
            (ColType::Blob, RowValue::LobRef(..)) => 17,
            (t, v) => {
                return Err(StorageError::SchemaMismatch(format!(
                    "column `{}` of type {t:?} cannot store {v:?}",
                    col.name
                )))
            }
        };
    }
    Ok(len)
}

fn encode_row_impl(
    mut store: Option<&mut PageStore>,
    schema: &Schema,
    values: &[RowValue],
) -> Result<Vec<u8>> {
    if values.len() != schema.columns.len() {
        return Err(StorageError::SchemaMismatch(format!(
            "row has {} values, schema has {} columns",
            values.len(),
            schema.columns.len()
        )));
    }
    let mut out = Vec::with_capacity(64);
    for (col, val) in schema.columns.iter().zip(values) {
        match (col.ctype, val) {
            (ColType::I64, RowValue::I64(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (ColType::I32, RowValue::I32(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (ColType::F64, RowValue::F64(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (ColType::F32, RowValue::F32(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (ColType::Blob, RowValue::Bytes(b)) => {
                if b.len() <= INLINE_BLOB_LIMIT {
                    out.push(BLOB_INLINE);
                    out.extend_from_slice(&(b.len() as u16).to_le_bytes());
                    out.extend_from_slice(b);
                } else {
                    let Some(store) = store.as_deref_mut() else {
                        return Err(StorageError::SchemaMismatch(format!(
                            "column `{}`: {}-byte blob exceeds the in-row limit and no \
                             LOB store is available on this encoding path",
                            col.name,
                            b.len()
                        )));
                    };
                    let id = blob::write_blob(store, b)?;
                    out.push(BLOB_LOB);
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
                }
            }
            (ColType::Blob, RowValue::LobRef(id, len)) => {
                out.push(BLOB_LOB);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            (t, v) => {
                return Err(StorageError::SchemaMismatch(format!(
                    "column `{}` of type {t:?} cannot store {v:?}",
                    col.name
                )))
            }
        }
    }
    Ok(out)
}

/// Decodes a whole row.
pub fn decode_row(schema: &Schema, bytes: &[u8]) -> Result<Vec<RowValue>> {
    let mut out = Vec::with_capacity(schema.columns.len());
    let mut off = 0usize;
    for col in &schema.columns {
        let (v, next) = decode_value(col.ctype, bytes, off, &col.name)?;
        out.push(v);
        off = next;
    }
    if off != bytes.len() {
        return Err(StorageError::RowCorrupt(format!(
            "{} trailing bytes after last column",
            bytes.len() - off
        )));
    }
    Ok(out)
}

/// Decodes a single column without materializing the others (the scan
/// projections of queries 3–5 touch exactly one column per row).
pub fn decode_col(schema: &Schema, bytes: &[u8], col_idx: usize) -> Result<RowValue> {
    if col_idx >= schema.columns.len() {
        return Err(StorageError::SchemaMismatch(format!(
            "column index {col_idx} out of range"
        )));
    }
    let mut off = 0usize;
    for (i, col) in schema.columns.iter().enumerate() {
        if i == col_idx {
            let (v, _) = decode_value(col.ctype, bytes, off, &col.name)?;
            return Ok(v);
        }
        off = skip_value(col.ctype, bytes, off, &col.name)?;
    }
    unreachable!("col_idx checked above")
}

/// Like [`decode_col`] but borrows inline blob payloads from the encoded
/// row instead of copying them.
pub fn decode_col_ref<'a>(
    schema: &Schema,
    bytes: &'a [u8],
    col_idx: usize,
) -> Result<RowValueRef<'a>> {
    if col_idx >= schema.columns.len() {
        return Err(StorageError::SchemaMismatch(format!(
            "column index {col_idx} out of range"
        )));
    }
    let mut off = 0usize;
    for (i, col) in schema.columns.iter().enumerate() {
        if i == col_idx {
            let (v, _) = decode_value_ref(col.ctype, bytes, off, &col.name)?;
            return Ok(v);
        }
        off = skip_value(col.ctype, bytes, off, &col.name)?;
    }
    unreachable!("col_idx checked above")
}

/// Appends the LOB ids a row references to `out`, without materializing any
/// inline payloads. `UPDATE`/`DELETE` walk old and new images through this
/// to free orphaned blobs.
pub fn lob_refs(schema: &Schema, bytes: &[u8], out: &mut Vec<BlobId>) -> Result<()> {
    let mut off = 0usize;
    for col in &schema.columns {
        if col.ctype == ColType::Blob {
            let (v, next) = decode_value_ref(col.ctype, bytes, off, &col.name)?;
            if let RowValueRef::LobRef(id, _) = v {
                out.push(id);
            }
            off = next;
        } else {
            off = skip_value(col.ctype, bytes, off, &col.name)?;
        }
    }
    Ok(())
}

/// Builds an empty [`Batch`] with one column vector per requested schema
/// column (`cols` gives the schema indices, in batch-column order).
pub fn new_batch(schema: &Schema, cols: &[usize]) -> Result<Batch> {
    let mut out = Vec::with_capacity(cols.len());
    for &idx in cols {
        let col = schema.columns.get(idx).ok_or_else(|| {
            StorageError::SchemaMismatch(format!("column index {idx} out of range"))
        })?;
        out.push(match col.ctype {
            ColType::I64 => ColVec::I64(Vec::new()),
            ColType::I32 => ColVec::I32(Vec::new()),
            ColType::F64 => ColVec::F64(Vec::new()),
            ColType::F32 => ColVec::F32(Vec::new()),
            ColType::Blob => ColVec::Blob {
                bytes: BytesVec::new(),
                lob: Vec::new(),
            },
        });
    }
    Ok(Batch::new(out))
}

/// Decodes the projected columns of encoded rows straight into a batch's
/// column vectors, amortizing the per-row schema walk: the directory maps
/// schema index → batch column position once, and decoding stops at the
/// last projected column instead of walking the full row.
#[derive(Debug, Clone)]
pub struct BatchDecoder {
    /// `dir[schema_idx]` = batch column position, if projected.
    dir: Vec<Option<usize>>,
    /// Last projected schema index; columns past it are never touched.
    last: Option<usize>,
}

impl BatchDecoder {
    /// Builds a decoder for the given projected schema indices (`cols` must
    /// match the column order used for [`new_batch`]).
    pub fn new(schema: &Schema, cols: &[usize]) -> Result<BatchDecoder> {
        let mut dir = vec![None; schema.columns.len()];
        let mut last = None;
        for (pos, &idx) in cols.iter().enumerate() {
            if idx >= schema.columns.len() {
                return Err(StorageError::SchemaMismatch(format!(
                    "column index {idx} out of range"
                )));
            }
            if dir[idx].is_some() {
                return Err(StorageError::SchemaMismatch(format!(
                    "column index {idx} projected twice"
                )));
            }
            dir[idx] = Some(pos);
            last = Some(last.map_or(idx, |l: usize| l.max(idx)));
        }
        Ok(BatchDecoder { dir, last })
    }

    /// Appends one encoded row's projected columns to `out` (one push per
    /// projected column; inline blob payloads are copied once, directly
    /// into the batch's packed cell storage).
    pub fn decode_row_into(&self, schema: &Schema, bytes: &[u8], out: &mut [ColVec]) -> Result<()> {
        let Some(last) = self.last else {
            return Ok(());
        };
        let mut off = 0usize;
        for (i, col) in schema.columns.iter().enumerate().take(last + 1) {
            let Some(pos) = self.dir[i] else {
                off = skip_value(col.ctype, bytes, off, &col.name)?;
                continue;
            };
            match (col.ctype, &mut out[pos]) {
                (ColType::I64, ColVec::I64(v)) => {
                    need(bytes, off, 8, &col.name)?;
                    v.push(sqlarray_core::le::i64_at(bytes, off));
                    off += 8;
                }
                (ColType::I32, ColVec::I32(v)) => {
                    need(bytes, off, 4, &col.name)?;
                    v.push(sqlarray_core::le::i32_at(bytes, off));
                    off += 4;
                }
                (ColType::F64, ColVec::F64(v)) => {
                    need(bytes, off, 8, &col.name)?;
                    v.push(sqlarray_core::le::f64_at(bytes, off));
                    off += 8;
                }
                (ColType::F32, ColVec::F32(v)) => {
                    need(bytes, off, 4, &col.name)?;
                    v.push(sqlarray_core::le::f32_at(bytes, off));
                    off += 4;
                }
                (ColType::Blob, ColVec::Blob { bytes: cells, lob }) => {
                    need(bytes, off, 1, &col.name)?;
                    match bytes[off] {
                        BLOB_INLINE => {
                            need(bytes, off + 1, 2, &col.name)?;
                            let len = sqlarray_core::le::u16_at(bytes, off + 1) as usize;
                            need(bytes, off + 3, len, &col.name)?;
                            cells.push(&bytes[off + 3..off + 3 + len]);
                            lob.push(None);
                            off += 3 + len;
                        }
                        BLOB_LOB => {
                            need(bytes, off + 1, 16, &col.name)?;
                            let id = sqlarray_core::le::u64_at(bytes, off + 1);
                            let len = sqlarray_core::le::u64_at(bytes, off + 9);
                            cells.push(&[]);
                            lob.push(Some((id, len)));
                            off += 17;
                        }
                        tag => {
                            return Err(StorageError::RowCorrupt(format!(
                                "unknown blob tag {tag} in column `{}`",
                                col.name
                            )))
                        }
                    }
                }
                (t, _) => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "batch column {pos} does not match schema type {t:?} of `{}`",
                        col.name
                    )))
                }
            }
        }
        Ok(())
    }
}

fn need(bytes: &[u8], off: usize, n: usize, name: &str) -> Result<()> {
    if off + n > bytes.len() {
        return Err(StorageError::RowCorrupt(format!(
            "row truncated in column `{name}`"
        )));
    }
    Ok(())
}

fn decode_value(ctype: ColType, bytes: &[u8], off: usize, name: &str) -> Result<(RowValue, usize)> {
    let (v, next) = decode_value_ref(ctype, bytes, off, name)?;
    let owned = match v {
        RowValueRef::I64(x) => RowValue::I64(x),
        RowValueRef::I32(x) => RowValue::I32(x),
        RowValueRef::F64(x) => RowValue::F64(x),
        RowValueRef::F32(x) => RowValue::F32(x),
        RowValueRef::Bytes(b) => RowValue::Bytes(b.to_vec()),
        RowValueRef::LobRef(id, len) => RowValue::LobRef(id, len),
    };
    Ok((owned, next))
}

fn decode_value_ref<'a>(
    ctype: ColType,
    bytes: &'a [u8],
    off: usize,
    name: &str,
) -> Result<(RowValueRef<'a>, usize)> {
    match ctype {
        ColType::I64 => {
            need(bytes, off, 8, name)?;
            let v = sqlarray_core::le::i64_at(bytes, off);
            Ok((RowValueRef::I64(v), off + 8))
        }
        ColType::I32 => {
            need(bytes, off, 4, name)?;
            let v = sqlarray_core::le::i32_at(bytes, off);
            Ok((RowValueRef::I32(v), off + 4))
        }
        ColType::F64 => {
            need(bytes, off, 8, name)?;
            let v = sqlarray_core::le::f64_at(bytes, off);
            Ok((RowValueRef::F64(v), off + 8))
        }
        ColType::F32 => {
            need(bytes, off, 4, name)?;
            let v = sqlarray_core::le::f32_at(bytes, off);
            Ok((RowValueRef::F32(v), off + 4))
        }
        ColType::Blob => {
            need(bytes, off, 1, name)?;
            match bytes[off] {
                BLOB_INLINE => {
                    need(bytes, off + 1, 2, name)?;
                    let len = sqlarray_core::le::u16_at(bytes, off + 1) as usize;
                    need(bytes, off + 3, len, name)?;
                    Ok((
                        RowValueRef::Bytes(&bytes[off + 3..off + 3 + len]),
                        off + 3 + len,
                    ))
                }
                BLOB_LOB => {
                    need(bytes, off + 1, 16, name)?;
                    let id = sqlarray_core::le::u64_at(bytes, off + 1);
                    let len = sqlarray_core::le::u64_at(bytes, off + 9);
                    Ok((RowValueRef::LobRef(id, len), off + 17))
                }
                tag => Err(StorageError::RowCorrupt(format!(
                    "unknown blob tag {tag} in column `{name}`"
                ))),
            }
        }
    }
}

fn skip_value(ctype: ColType, bytes: &[u8], off: usize, name: &str) -> Result<usize> {
    match ctype {
        ColType::I64 | ColType::F64 => {
            need(bytes, off, 8, name)?;
            Ok(off + 8)
        }
        ColType::I32 | ColType::F32 => {
            need(bytes, off, 4, name)?;
            Ok(off + 4)
        }
        ColType::Blob => {
            need(bytes, off, 1, name)?;
            match bytes[off] {
                BLOB_INLINE => {
                    need(bytes, off + 1, 2, name)?;
                    let len = sqlarray_core::le::u16_at(bytes, off + 1) as usize;
                    need(bytes, off + 3, len, name)?;
                    Ok(off + 3 + len)
                }
                BLOB_LOB => {
                    need(bytes, off + 1, 16, name)?;
                    Ok(off + 17)
                }
                tag => Err(StorageError::RowCorrupt(format!(
                    "unknown blob tag {tag} in column `{name}`"
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_schema() -> Schema {
        Schema::new(&[
            ("id", ColType::I64),
            ("x", ColType::F64),
            ("v", ColType::Blob),
            ("n", ColType::I32),
        ])
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let mut store = PageStore::new();
        let schema = test_schema();
        for blob_len in [0usize, 3, INLINE_BLOB_LIMIT, INLINE_BLOB_LIMIT + 1, 20_000] {
            let row = vec![
                RowValue::I64(42),
                RowValue::F64(2.5),
                RowValue::Bytes(vec![7; blob_len]),
                RowValue::I32(-7),
            ];
            let predicted = encoded_len(&schema, &row).unwrap();
            let bytes = encode_row(&mut store, &schema, &row).unwrap();
            assert_eq!(predicted, bytes.len(), "blob_len {blob_len}");
        }
        // Arity and type mismatches are caught without a store.
        assert!(encoded_len(&schema, &[RowValue::I64(1)]).is_err());
        assert!(encoded_len(
            &schema,
            &[
                RowValue::F64(1.0),
                RowValue::F64(1.0),
                RowValue::Bytes(vec![]),
                RowValue::I32(0),
            ],
        )
        .is_err());
    }

    #[test]
    fn round_trip_inline() {
        let mut store = PageStore::new();
        let schema = test_schema();
        let row = vec![
            RowValue::I64(42),
            RowValue::F64(2.5),
            RowValue::Bytes(vec![1, 2, 3]),
            RowValue::I32(-7),
        ];
        let bytes = encode_row(&mut store, &schema, &row).unwrap();
        assert_eq!(decode_row(&schema, &bytes).unwrap(), row);
    }

    #[test]
    fn big_blob_moves_out_of_page() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("v", ColType::Blob)]);
        let payload = vec![0x5A; 20_000];
        let bytes = encode_row(&mut store, &schema, &[RowValue::Bytes(payload.clone())]).unwrap();
        // The row itself stays tiny.
        assert!(bytes.len() < 32);
        match &decode_row(&schema, &bytes).unwrap()[0] {
            RowValue::LobRef(id, len) => {
                assert_eq!(*len, 20_000);
                assert_eq!(blob::read_blob(&mut store, *id).unwrap(), payload);
            }
            other => panic!("expected LobRef, got {other:?}"),
        }
    }

    #[test]
    fn inline_limit_is_8000() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("v", ColType::Blob)]);
        let at_limit = encode_row(&mut store, &schema, &[RowValue::Bytes(vec![0; 8000])]).unwrap();
        assert_eq!(at_limit[8], BLOB_INLINE); // tag after nothing: offset 0 is the tag
        assert_eq!(at_limit[0], BLOB_INLINE);
        let over = encode_row(&mut store, &schema, &[RowValue::Bytes(vec![0; 8001])]).unwrap();
        assert_eq!(over[0], BLOB_LOB);
    }

    #[test]
    fn blob_bytes_unifies_inline_and_lob() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("v", ColType::Blob)]);
        for len in [100usize, 9000] {
            let payload = vec![7u8; len];
            let bytes =
                encode_row(&mut store, &schema, &[RowValue::Bytes(payload.clone())]).unwrap();
            let v = decode_row(&schema, &bytes).unwrap().remove(0);
            assert_eq!(v.blob_bytes(&mut store).unwrap(), payload);
        }
        assert!(RowValue::I64(1).blob_bytes(&mut store).is_err());
    }

    #[test]
    fn decode_col_skips_correctly() {
        let mut store = PageStore::new();
        let schema = test_schema();
        let row = vec![
            RowValue::I64(1),
            RowValue::F64(3.25),
            RowValue::Bytes(vec![9; 50]),
            RowValue::I32(11),
        ];
        let bytes = encode_row(&mut store, &schema, &row).unwrap();
        assert_eq!(decode_col(&schema, &bytes, 0).unwrap(), RowValue::I64(1));
        assert_eq!(decode_col(&schema, &bytes, 1).unwrap(), RowValue::F64(3.25));
        assert_eq!(decode_col(&schema, &bytes, 3).unwrap(), RowValue::I32(11));
        assert!(decode_col(&schema, &bytes, 4).is_err());
    }

    #[test]
    fn schema_mismatch_detected() {
        let mut store = PageStore::new();
        let schema = test_schema();
        let wrong_arity = vec![RowValue::I64(1)];
        assert!(encode_row(&mut store, &schema, &wrong_arity).is_err());
        let wrong_type = vec![
            RowValue::F64(1.0),
            RowValue::F64(1.0),
            RowValue::Bytes(vec![]),
            RowValue::I32(0),
        ];
        assert!(encode_row(&mut store, &schema, &wrong_type).is_err());
    }

    #[test]
    fn corrupt_rows_detected() {
        let schema = test_schema();
        assert!(decode_row(&schema, &[0u8; 3]).is_err()); // truncated
        let mut store = PageStore::new();
        let row = vec![
            RowValue::I64(1),
            RowValue::F64(1.0),
            RowValue::Bytes(vec![1]),
            RowValue::I32(0),
        ];
        let mut bytes = encode_row(&mut store, &schema, &row).unwrap();
        bytes.push(0xFF); // trailing garbage
        assert!(decode_row(&schema, &bytes).is_err());
        bytes.pop();
        bytes[16] = 9; // invalid blob tag
        assert!(decode_row(&schema, &bytes).is_err());
    }

    #[test]
    fn decode_col_ref_borrows_inline_blobs() {
        let mut store = PageStore::new();
        let schema = test_schema();
        let row = vec![
            RowValue::I64(1),
            RowValue::F64(3.25),
            RowValue::Bytes(vec![9; 50]),
            RowValue::I32(11),
        ];
        let bytes = encode_row(&mut store, &schema, &row).unwrap();
        assert_eq!(
            decode_col_ref(&schema, &bytes, 0).unwrap(),
            RowValueRef::I64(1)
        );
        match decode_col_ref(&schema, &bytes, 2).unwrap() {
            RowValueRef::Bytes(b) => assert_eq!(b, &[9u8; 50][..]),
            other => panic!("expected borrowed bytes, got {other:?}"),
        }
        assert_eq!(
            decode_col_ref(&schema, &bytes, 3).unwrap(),
            RowValueRef::I32(11)
        );
        assert!(decode_col_ref(&schema, &bytes, 4).is_err());
    }

    #[test]
    fn lob_refs_finds_out_of_row_blobs_only() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[
            ("a", ColType::Blob),
            ("n", ColType::I64),
            ("b", ColType::Blob),
        ]);
        let row = vec![
            RowValue::Bytes(vec![1; 10]),
            RowValue::I64(5),
            RowValue::Bytes(vec![2; 9000]),
        ];
        let bytes = encode_row(&mut store, &schema, &row).unwrap();
        let mut ids = Vec::new();
        lob_refs(&schema, &bytes, &mut ids).unwrap();
        assert_eq!(ids.len(), 1);
        match &decode_row(&schema, &bytes).unwrap()[2] {
            RowValue::LobRef(id, _) => assert_eq!(ids[0], *id),
            other => panic!("expected LobRef, got {other:?}"),
        }
    }

    #[test]
    fn batch_decoder_round_trip() {
        let mut store = PageStore::new();
        let schema = test_schema();
        // Project a subset, out of schema order: n (3), v (2), id (0).
        let cols = [3usize, 2, 0];
        let mut batch = new_batch(&schema, &cols).unwrap();
        let dec = BatchDecoder::new(&schema, &cols).unwrap();
        let rows = vec![
            vec![
                RowValue::I64(1),
                RowValue::F64(0.5),
                RowValue::Bytes(vec![7; 3]),
                RowValue::I32(-1),
            ],
            vec![
                RowValue::I64(2),
                RowValue::F64(1.5),
                RowValue::Bytes(vec![8; 9000]),
                RowValue::I32(-2),
            ],
        ];
        for r in &rows {
            let bytes = encode_row(&mut store, &schema, r).unwrap();
            batch.keys.push(match r[0] {
                RowValue::I64(k) => k,
                _ => unreachable!(),
            });
            dec.decode_row_into(&schema, &bytes, &mut batch.cols)
                .unwrap();
        }
        assert_eq!(batch.keys, vec![1, 2]);
        assert!(matches!(&batch.cols[0], ColVec::I32(v) if *v == vec![-1, -2]));
        match &batch.cols[1] {
            ColVec::Blob { bytes, lob } => {
                assert_eq!(bytes.get(0), &[7u8; 3][..]);
                assert_eq!(bytes.get(1), b"");
                assert!(lob[0].is_none());
                let (_, len) = lob[1].expect("big blob should be a LOB ref");
                assert_eq!(len, 9000);
            }
            other => panic!("expected blob column, got {other:?}"),
        }
        assert!(matches!(&batch.cols[2], ColVec::I64(v) if *v == vec![1, 2]));

        // Invalid projections are rejected up front.
        assert!(BatchDecoder::new(&schema, &[4]).is_err());
        assert!(BatchDecoder::new(&schema, &[0, 0]).is_err());
        assert!(new_batch(&schema, &[9]).is_err());
        // Empty projection decodes nothing but still validates keys-only scans.
        let empty = BatchDecoder::new(&schema, &[]).unwrap();
        let bytes = encode_row(&mut store, &schema, &rows[0]).unwrap();
        empty.decode_row_into(&schema, &bytes, &mut []).unwrap();
    }

    #[test]
    fn col_index_is_case_insensitive() {
        let schema = test_schema();
        assert_eq!(schema.col_index("ID"), Some(0));
        assert_eq!(schema.col_index("V"), Some(2));
        assert_eq!(schema.col_index("nope"), None);
    }
}
