//! Slotted-page layout.
//!
//! Every page is [`PAGE_SIZE`] = 8192 bytes, the SQL Server data-page size
//! that drives the short/max array split ("blobs smaller than 8 kB are
//! stored on-page, as they fit into the 8 kB storage engine data pages",
//! §3.3). Record pages use the classic slotted layout:
//!
//! ```text
//! 0                16                          free              8192
//! +----------------+---------------------------+----//----+------+
//! | page header    | records (grow upward)     |   free   | slot |
//! |                |                           |          | dir  |
//! +----------------+---------------------------+----//----+------+
//! ```
//!
//! Header: `type u8 | reserved u8 | slot_count u16 | free_off u16 |
//! next_page u64 | pad`. The slot directory at the page tail stores
//! `(offset u16, len u16)` per record, growing downward.

use crate::errors::{Result, StorageError};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Identifier of a page within the store.
pub type PageId = u64;

/// Byte offset where record data starts.
pub const PAGE_HEADER_LEN: usize = 16;
/// Bytes per slot-directory entry.
pub const SLOT_LEN: usize = 4;

/// Page type tags (first header byte).
pub mod page_type {
    /// B-tree leaf page.
    pub const BTREE_LEAF: u8 = 1;
    /// B-tree internal page.
    pub const BTREE_INTERNAL: u8 = 2;
    /// Blob root (LOB descriptor) page.
    pub const BLOB_ROOT: u8 = 3;
    /// Blob data chunk page.
    pub const BLOB_CHUNK: u8 = 4;
    /// Blob chunk-id continuation page.
    pub const BLOB_INDEX: u8 = 5;
}

/// In-place view over a page's bytes implementing the slotted layout.
///
/// `SlottedPage` borrows the raw bytes; it holds no state of its own, so a
/// page can be re-viewed freely after round-tripping through the store.
pub struct SlottedPage<'a> {
    bytes: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Initializes the slotted structure on zeroed bytes.
    pub fn init(bytes: &'a mut [u8], ptype: u8) -> SlottedPage<'a> {
        assert_eq!(bytes.len(), PAGE_SIZE);
        bytes[0] = ptype;
        bytes[1] = 0;
        bytes[2..4].copy_from_slice(&0u16.to_le_bytes());
        bytes[4..6].copy_from_slice(&(PAGE_HEADER_LEN as u16).to_le_bytes());
        bytes[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        SlottedPage { bytes }
    }

    /// Views existing page bytes, checking the type tag.
    pub fn open(bytes: &'a mut [u8], expect_type: u8, page: PageId) -> Result<SlottedPage<'a>> {
        if bytes[0] != expect_type {
            return Err(StorageError::PageTypeMismatch {
                page,
                expected: expect_type,
                got: bytes[0],
            });
        }
        Ok(SlottedPage { bytes })
    }

    /// The page type byte.
    pub fn page_type(&self) -> u8 {
        self.bytes[0]
    }

    /// Number of records.
    pub fn slot_count(&self) -> usize {
        u16::from_le_bytes([self.bytes[2], self.bytes[3]]) as usize
    }

    fn free_off(&self) -> usize {
        u16::from_le_bytes([self.bytes[4], self.bytes[5]]) as usize
    }

    fn set_slot_count(&mut self, n: usize) {
        self.bytes[2..4].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn set_free_off(&mut self, off: usize) {
        self.bytes[4..6].copy_from_slice(&(off as u16).to_le_bytes());
    }

    /// Sibling link (next leaf in key order); `u64::MAX` means none.
    pub fn next_page(&self) -> Option<PageId> {
        let v = sqlarray_core::le::u64_at(self.bytes, 6);
        (v != u64::MAX).then_some(v)
    }

    /// Sets the sibling link.
    pub fn set_next_page(&mut self, next: Option<PageId>) {
        let v = next.unwrap_or(u64::MAX);
        self.bytes[6..14].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_dir_start(&self) -> usize {
        PAGE_SIZE - self.slot_count() * SLOT_LEN
    }

    /// Free bytes available for one more record (slot entry included).
    pub fn free_space(&self) -> usize {
        self.slot_dir_start()
            .saturating_sub(self.free_off())
            .saturating_sub(SLOT_LEN)
    }

    /// Largest record this layout can ever hold in one page.
    pub const fn max_record() -> usize {
        PAGE_SIZE - PAGE_HEADER_LEN - SLOT_LEN
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = PAGE_SIZE - (i + 1) * SLOT_LEN;
        let off = u16::from_le_bytes([self.bytes[base], self.bytes[base + 1]]) as usize;
        let len = u16::from_le_bytes([self.bytes[base + 2], self.bytes[base + 3]]) as usize;
        (off, len)
    }

    fn write_slot(&mut self, i: usize, off: usize, len: usize) {
        let base = PAGE_SIZE - (i + 1) * SLOT_LEN;
        self.bytes[base..base + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.bytes[base + 2..base + 4].copy_from_slice(&(len as u16).to_le_bytes());
    }

    /// Returns record `i`.
    pub fn record(&self, i: usize) -> Result<&[u8]> {
        if i >= self.slot_count() {
            return Err(StorageError::BadSlot {
                slot: i,
                count: self.slot_count(),
            });
        }
        let (off, len) = self.slot(i);
        Ok(&self.bytes[off..off + len])
    }

    /// Inserts a record at slot position `i`, shifting later slots down.
    /// Record bytes always append at the free offset; only the 4-byte slot
    /// directory entries move.
    pub fn insert_record(&mut self, i: usize, rec: &[u8]) -> Result<()> {
        let count = self.slot_count();
        if i > count {
            return Err(StorageError::BadSlot { slot: i, count });
        }
        if rec.len() > self.free_space() {
            return Err(StorageError::RecordTooLarge {
                bytes: rec.len(),
                limit: self.free_space(),
            });
        }
        let off = self.free_off();
        self.bytes[off..off + rec.len()].copy_from_slice(rec);
        // Shift slots [i, count) one position toward the page start
        // (their directory entries move 4 bytes down).
        for j in (i..count).rev() {
            let (o, l) = self.slot(j);
            self.write_slot(j + 1, o, l);
        }
        self.write_slot(i, off, rec.len());
        self.set_slot_count(count + 1);
        self.set_free_off(off + rec.len());
        Ok(())
    }

    /// Appends a record after the last slot.
    pub fn push_record(&mut self, rec: &[u8]) -> Result<usize> {
        let i = self.slot_count();
        self.insert_record(i, rec)?;
        Ok(i)
    }

    /// Replaces record `i` in place. A record that shrank (or kept its
    /// size) overwrites its own bytes; one that grew is appended at the
    /// free offset and the slot repointed (the old bytes become dead space
    /// until the page is compacted). Fails with
    /// [`StorageError::RecordTooLarge`] when the grown record does not fit
    /// the remaining free space — the caller compacts or splits then.
    pub fn replace_record(&mut self, i: usize, rec: &[u8]) -> Result<()> {
        let count = self.slot_count();
        if i >= count {
            return Err(StorageError::BadSlot { slot: i, count });
        }
        let (off, len) = self.slot(i);
        if rec.len() <= len {
            self.bytes[off..off + rec.len()].copy_from_slice(rec);
            self.write_slot(i, off, rec.len());
            return Ok(());
        }
        // Growing: the slot entry itself is already paid for, so the only
        // cost is the new record bytes.
        let free = self.slot_dir_start().saturating_sub(self.free_off());
        if rec.len() > free {
            return Err(StorageError::RecordTooLarge {
                bytes: rec.len(),
                limit: free,
            });
        }
        let new_off = self.free_off();
        self.bytes[new_off..new_off + rec.len()].copy_from_slice(rec);
        self.write_slot(i, new_off, rec.len());
        self.set_free_off(new_off + rec.len());
        Ok(())
    }

    /// Removes slot `i` (the record bytes become dead space until the page
    /// is compacted by a split).
    pub fn remove_slot(&mut self, i: usize) -> Result<()> {
        let count = self.slot_count();
        if i >= count {
            return Err(StorageError::BadSlot { slot: i, count });
        }
        for j in i + 1..count {
            let (o, l) = self.slot(j);
            self.write_slot(j - 1, o, l);
        }
        self.set_slot_count(count - 1);
        Ok(())
    }

    /// Copies all records out (used when splitting/compacting).
    pub fn all_records(&self) -> Vec<Vec<u8>> {
        (0..self.slot_count())
            // lint:allow(L005, reason = "i ranges over 0..slot_count(), exactly the domain record() validates; the Err arm is unreachable")
            .map(|i| self.record(i).expect("slot in range").to_vec())
            .collect()
    }

    /// Clears the page back to an empty slotted page of the same type,
    /// keeping the sibling link.
    pub fn reset(&mut self) {
        let t = self.page_type();
        let next = self.next_page();
        for b in self.bytes[..PAGE_HEADER_LEN].iter_mut() {
            *b = 0;
        }
        self.bytes[0] = t;
        self.set_slot_count(0);
        self.set_free_off(PAGE_HEADER_LEN);
        self.set_next_page(next);
    }
}

/// Read-only view over a slotted page (for scans that must not copy).
pub struct SlottedRead<'a> {
    bytes: &'a [u8],
}

impl<'a> SlottedRead<'a> {
    /// Views existing page bytes, checking the type tag.
    pub fn open(bytes: &'a [u8], expect_type: u8, page: PageId) -> Result<SlottedRead<'a>> {
        if bytes[0] != expect_type {
            return Err(StorageError::PageTypeMismatch {
                page,
                expected: expect_type,
                got: bytes[0],
            });
        }
        Ok(SlottedRead { bytes })
    }

    /// Number of records.
    pub fn slot_count(&self) -> usize {
        u16::from_le_bytes([self.bytes[2], self.bytes[3]]) as usize
    }

    /// Sibling link; `None` when this is the last page in the chain.
    pub fn next_page(&self) -> Option<PageId> {
        let v = sqlarray_core::le::u64_at(self.bytes, 6);
        (v != u64::MAX).then_some(v)
    }

    /// Returns record `i`.
    pub fn record(&self, i: usize) -> Result<&'a [u8]> {
        if i >= self.slot_count() {
            return Err(StorageError::BadSlot {
                slot: i,
                count: self.slot_count(),
            });
        }
        let base = PAGE_SIZE - (i + 1) * SLOT_LEN;
        let off = u16::from_le_bytes([self.bytes[base], self.bytes[base + 1]]) as usize;
        let len = u16::from_le_bytes([self.bytes[base + 2], self.bytes[base + 3]]) as usize;
        Ok(&self.bytes[off..off + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        vec![0u8; PAGE_SIZE]
    }

    #[test]
    fn read_view_matches_writer() {
        let mut bytes = fresh();
        {
            let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
            p.push_record(b"alpha").unwrap();
            p.push_record(b"beta").unwrap();
            p.set_next_page(Some(9));
        }
        let v = SlottedRead::open(&bytes, page_type::BTREE_LEAF, 0).unwrap();
        assert_eq!(v.slot_count(), 2);
        assert_eq!(v.record(0).unwrap(), b"alpha");
        assert_eq!(v.record(1).unwrap(), b"beta");
        assert_eq!(v.next_page(), Some(9));
        assert!(v.record(2).is_err());
        assert!(SlottedRead::open(&bytes, page_type::BLOB_ROOT, 0).is_err());
    }

    #[test]
    fn init_and_open() {
        let mut bytes = fresh();
        SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        let p = SlottedPage::open(&mut bytes, page_type::BTREE_LEAF, 0).unwrap();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.next_page(), None);
        assert!(SlottedPage::open(&mut bytes, page_type::BLOB_ROOT, 0).is_err());
    }

    #[test]
    fn push_and_read_records() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        let a = p.push_record(b"hello").unwrap();
        let b = p.push_record(b"world!").unwrap();
        assert_eq!(p.record(a).unwrap(), b"hello");
        assert_eq!(p.record(b).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
        assert!(p.record(2).is_err());
    }

    #[test]
    fn insert_in_middle_keeps_order() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        p.push_record(b"a").unwrap();
        p.push_record(b"c").unwrap();
        p.insert_record(1, b"b").unwrap();
        let recs = p.all_records();
        assert_eq!(recs, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn remove_slot_shifts() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        for r in [b"x" as &[u8], b"y", b"z"] {
            p.push_record(r).unwrap();
        }
        p.remove_slot(1).unwrap();
        assert_eq!(p.all_records(), vec![b"x".to_vec(), b"z".to_vec()]);
        assert!(p.remove_slot(5).is_err());
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        let rec = [0u8; 100];
        let mut n = 0;
        while p.free_space() >= rec.len() {
            p.push_record(&rec).unwrap();
            n += 1;
        }
        // 8192 - 16 = 8176 usable; each record costs 104 bytes.
        assert_eq!(n, 8176 / 104);
        assert!(matches!(
            p.push_record(&rec),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        let rec = vec![0xEE; SlottedPage::max_record()];
        p.push_record(&rec).unwrap();
        assert_eq!(p.record(0).unwrap().len(), SlottedPage::max_record());
        assert_eq!(p.free_space(), 0);
    }

    #[test]
    fn replace_record_in_place_and_grown() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        p.push_record(b"aaaa").unwrap();
        p.push_record(b"bbbb").unwrap();
        // Shrink in place: same offset, shorter len.
        p.replace_record(0, b"xy").unwrap();
        assert_eq!(p.record(0).unwrap(), b"xy");
        assert_eq!(p.record(1).unwrap(), b"bbbb");
        // Grow: repointed past the current free offset.
        p.replace_record(0, b"longer-than-before").unwrap();
        assert_eq!(p.record(0).unwrap(), b"longer-than-before");
        assert_eq!(p.record(1).unwrap(), b"bbbb");
        assert!(p.replace_record(5, b"z").is_err());
        // Growing past the free space fails typed.
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.replace_record(0, &huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn sibling_link_round_trip() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
        p.set_next_page(Some(42));
        assert_eq!(p.next_page(), Some(42));
        p.set_next_page(None);
        assert_eq!(p.next_page(), None);
    }

    #[test]
    fn reset_keeps_type_and_link() {
        let mut bytes = fresh();
        let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_INTERNAL);
        p.push_record(b"junk").unwrap();
        p.set_next_page(Some(7));
        p.reset();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.page_type(), page_type::BTREE_INTERNAL);
        assert_eq!(p.next_page(), Some(7));
        assert_eq!(p.free_space(), PAGE_SIZE - PAGE_HEADER_LEN - SLOT_LEN);
    }

    #[test]
    fn survives_byte_round_trip() {
        let mut bytes = fresh();
        {
            let mut p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
            p.push_record(b"persisted").unwrap();
        }
        let copy = bytes.clone();
        let mut copy2 = copy.clone();
        let p = SlottedPage::open(&mut copy2, page_type::BTREE_LEAF, 3).unwrap();
        assert_eq!(p.record(0).unwrap(), b"persisted");
    }
}
