//! Storage-engine error type.

use sqlarray_core::lifecycle::Interrupt;
use std::fmt;

/// Errors raised by the page store, B-trees, blob store and tables.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum StorageError {
    /// A page id beyond the end of the file.
    PageOutOfRange { page: u64, max: u64 },
    /// A record does not fit in a page even after a split.
    RecordTooLarge { bytes: usize, limit: usize },
    /// A slotted-page slot index beyond the slot count.
    BadSlot { slot: usize, count: usize },
    /// Key already present in a unique index.
    DuplicateKey { key: i64 },
    /// Key not found.
    KeyNotFound { key: i64 },
    /// A page's type byte does not match the structure reading it.
    PageTypeMismatch { page: u64, expected: u8, got: u8 },
    /// Blob byte range outside the stored length.
    BlobRangeOutOfBounds {
        offset: usize,
        len: usize,
        total: usize,
    },
    /// Row bytes do not decode against the table schema.
    RowCorrupt(String),
    /// Bulk-load precondition violated (unsorted keys, non-empty target).
    BulkLoad(String),
    /// Schema/value arity or type mismatch on insert.
    SchemaMismatch(String),
    /// A page's stored checksum did not match its contents on a cold read.
    PageCorrupt {
        page: u64,
        stored: u32,
        computed: u32,
    },
    /// The write-ahead log ends in an incomplete or checksum-failing
    /// record at the given byte offset.
    WalTorn { offset: usize },
    /// A write-ahead log record decoded to an impossible state (page id
    /// beyond the replayed file, byte range outside a page); `offset` is
    /// the record's index in the replayed log.
    WalCorrupt { offset: usize, msg: String },
    /// The serialized catalog image in a commit record failed to decode.
    CatalogCorrupt(String),
    /// The statement driving this read was interrupted (cancellation,
    /// deadline, or memory budget) — carried typed so the engine can map
    /// it back to its own `Cancelled`/`Timeout`/`ResourceExhausted`
    /// variants without string matching.
    Interrupted(Interrupt),
    /// A (simulated) transient read fault persisted past the bounded
    /// retry budget ([`crate::store::MAX_READ_RETRIES`]).
    ReadFaulted { page: u64, attempts: u32 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfRange { page, max } => {
                write!(f, "page {page} out of range (file has {max} pages)")
            }
            StorageError::RecordTooLarge { bytes, limit } => {
                write!(
                    f,
                    "record of {bytes} bytes exceeds the page limit of {limit}"
                )
            }
            StorageError::BadSlot { slot, count } => {
                write!(f, "slot {slot} out of range ({count} slots)")
            }
            StorageError::DuplicateKey { key } => write!(f, "duplicate key {key}"),
            StorageError::KeyNotFound { key } => write!(f, "key {key} not found"),
            StorageError::PageTypeMismatch {
                page,
                expected,
                got,
            } => write!(f, "page {page} has type {got:#x}, expected {expected:#x}"),
            StorageError::BlobRangeOutOfBounds { offset, len, total } => write!(
                f,
                "blob read [{offset}, {offset}+{len}) exceeds blob of {total} bytes"
            ),
            StorageError::RowCorrupt(msg) => write!(f, "row corrupt: {msg}"),
            StorageError::BulkLoad(msg) => write!(f, "bulk load: {msg}"),
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::PageCorrupt {
                page,
                stored,
                computed,
            } => write!(
                f,
                "page {page} corrupt: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            StorageError::WalTorn { offset } => {
                write!(f, "write-ahead log torn at byte offset {offset}")
            }
            StorageError::WalCorrupt { offset, msg } => {
                write!(f, "write-ahead log corrupt at record {offset}: {msg}")
            }
            StorageError::CatalogCorrupt(msg) => write!(f, "catalog corrupt: {msg}"),
            StorageError::Interrupted(i) => write!(f, "{i}"),
            StorageError::ReadFaulted { page, attempts } => write!(
                f,
                "transient read fault on page {page} persisted through {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Whether retrying the same operation, unchanged, may succeed — the
    /// per-statement half of the taxonomy a serving layer needs to decide
    /// between "retry the statement" and "the data is damaged". The match
    /// is exhaustive on purpose: adding a variant forces a classification.
    pub fn is_retryable(&self) -> bool {
        match self {
            // Transient by construction: the fault injector (or a real
            // flaky device) may not fire next time.
            StorageError::ReadFaulted { .. } => true,
            // Interrupts answer to the statement's own limits; a fresh
            // statement gets fresh limits.
            StorageError::Interrupted(_) => true,
            // Persistent state or caller mistakes: retrying changes nothing.
            StorageError::PageOutOfRange { .. }
            | StorageError::RecordTooLarge { .. }
            | StorageError::BadSlot { .. }
            | StorageError::DuplicateKey { .. }
            | StorageError::KeyNotFound { .. }
            | StorageError::PageTypeMismatch { .. }
            | StorageError::BlobRangeOutOfBounds { .. }
            | StorageError::RowCorrupt(_)
            | StorageError::BulkLoad(_)
            | StorageError::SchemaMismatch(_)
            | StorageError::PageCorrupt { .. }
            | StorageError::WalTorn { .. }
            | StorageError::WalCorrupt { .. }
            | StorageError::CatalogCorrupt(_) => false,
        }
    }

    /// Whether the error is the *caller's* (bad key, bad schema, its own
    /// cancellation) rather than the store's. User errors are
    /// per-statement: the connection and the database stay healthy.
    pub fn is_user_error(&self) -> bool {
        match self {
            StorageError::DuplicateKey { .. }
            | StorageError::KeyNotFound { .. }
            | StorageError::BlobRangeOutOfBounds { .. }
            | StorageError::SchemaMismatch(_)
            | StorageError::BulkLoad(_)
            | StorageError::Interrupted(_) => true,
            StorageError::PageOutOfRange { .. }
            | StorageError::RecordTooLarge { .. }
            | StorageError::BadSlot { .. }
            | StorageError::PageTypeMismatch { .. }
            | StorageError::RowCorrupt(_)
            | StorageError::PageCorrupt { .. }
            | StorageError::WalTorn { .. }
            | StorageError::WalCorrupt { .. }
            | StorageError::CatalogCorrupt(_)
            | StorageError::ReadFaulted { .. } => false,
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;

impl From<StorageError> for sqlarray_core::ArrayError {
    fn from(e: StorageError) -> Self {
        sqlarray_core::ArrayError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = StorageError::BlobRangeOutOfBounds {
            offset: 10,
            len: 20,
            total: 15,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("20") && s.contains("15"));
    }

    #[test]
    fn converts_to_array_error() {
        let e: sqlarray_core::ArrayError = StorageError::KeyNotFound { key: 7 }.into();
        assert!(matches!(e, sqlarray_core::ArrayError::Io(_)));
    }
}
