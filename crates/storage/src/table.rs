//! Clustered tables: schema + B-tree + blob store, with storage accounting.

use crate::btree::BTree;
use crate::errors::{Result, StorageError};
use crate::row::{self, RowValue, Schema};
use crate::store::PageStore;

/// A clustered table. Rows are stored in the leaf level of a B+tree in key
/// order; blob columns spill to the LOB store past the in-row limit.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    tree: BTree,
}

impl Table {
    /// Creates an empty table.
    pub fn create(store: &mut PageStore, name: &str, schema: Schema) -> Result<Table> {
        Ok(Table {
            name: name.to_string(),
            schema,
            tree: BTree::create(store)?,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.tree.len()
    }

    /// Inserts a row under the clustered key.
    pub fn insert(&mut self, store: &mut PageStore, key: i64, values: &[RowValue]) -> Result<()> {
        let bytes = row::encode_row(store, &self.schema, values)?;
        self.tree.insert(store, key, &bytes)
    }

    /// Point lookup by clustered key, decoding the full row.
    pub fn get(&self, store: &mut PageStore, key: i64) -> Result<Option<Vec<RowValue>>> {
        match self.tree.get(store, key)? {
            Some(bytes) => Ok(Some(row::decode_row(&self.schema, &bytes)?)),
            None => Ok(None),
        }
    }

    /// Point lookup of one column.
    pub fn get_col(&self, store: &mut PageStore, key: i64, col: usize) -> Result<Option<RowValue>> {
        match self.tree.get(store, key)? {
            Some(bytes) => Ok(Some(row::decode_col(&self.schema, &bytes, col)?)),
            None => Ok(None),
        }
    }

    /// Clustered index scan: `f` receives the key and the *encoded* row and
    /// returns `true` to keep scanning. Decoding is the caller's choice —
    /// the engine's projections decode only the columns an expression
    /// touches, like a real scan operator.
    pub fn scan_raw(
        &self,
        store: &mut PageStore,
        f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        self.tree.scan(store, f)
    }

    /// Range scan over `[lo, hi]` (inclusive) with encoded rows.
    pub fn scan_range_raw(
        &self,
        store: &mut PageStore,
        lo: i64,
        hi: i64,
        f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        self.tree.scan_range(store, lo, hi, f)
    }

    /// Convenience scan with fully decoded rows.
    pub fn scan(
        &self,
        store: &mut PageStore,
        mut f: impl FnMut(i64, Vec<RowValue>) -> Result<bool>,
    ) -> Result<()> {
        let schema = self.schema.clone();
        self.tree.scan(store, |key, bytes| {
            let values = row::decode_row(&schema, bytes)?;
            f(key, values)
        })
    }

    /// Number of leaf (data) pages.
    pub fn data_pages(&self, store: &mut PageStore) -> Result<u64> {
        self.tree.leaf_pages(store)
    }

    /// Data size in bytes (leaf pages × page size) — what a clustered index
    /// scan must read. LOB pages are *not* included, matching how the
    /// paper's Table 1 scans touch only in-row data.
    pub fn data_bytes(&self, store: &mut PageStore) -> Result<u64> {
        Ok(self.data_pages(store)? * crate::page::PAGE_SIZE as u64)
    }

    /// Average stored bytes per row, including page overheads.
    pub fn bytes_per_row(&self, store: &mut PageStore) -> Result<f64> {
        if self.row_count() == 0 {
            return Ok(0.0);
        }
        Ok(self.data_bytes(store)? as f64 / self.row_count() as f64)
    }

    /// B-tree depth, for diagnostics.
    pub fn index_depth(&self, store: &mut PageStore) -> Result<u32> {
        self.tree.depth(store)
    }

    /// Looks up a column index by name, with a schema-style error.
    pub fn require_col(&self, name: &str) -> Result<usize> {
        self.schema.col_index(name).ok_or_else(|| {
            StorageError::SchemaMismatch(format!("table `{}` has no column `{name}`", self.name))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::ColType;

    fn vector_table(store: &mut PageStore, rows: i64, dim: usize) -> Table {
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(store, "Tvector", schema).unwrap();
        for k in 0..rows {
            let data: Vec<f64> = (0..dim).map(|i| (k as f64) + i as f64 * 0.1).collect();
            let arr = sqlarray_core::build::short_vector(&data).unwrap();
            t.insert(
                store,
                k,
                &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_get_scan() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        for k in 0..100 {
            t.insert(
                &mut store,
                k,
                &[RowValue::I64(k), RowValue::F64(k as f64 * 0.5)],
            )
            .unwrap();
        }
        assert_eq!(t.row_count(), 100);
        let row = t.get(&mut store, 7).unwrap().unwrap();
        assert_eq!(row, vec![RowValue::I64(7), RowValue::F64(3.5)]);
        assert_eq!(t.get(&mut store, 100).unwrap(), None);

        let mut sum = 0.0;
        t.scan(&mut store, |_, vals| {
            if let RowValue::F64(x) = vals[1] {
                sum += x;
            }
            Ok(true)
        })
        .unwrap();
        assert_eq!(sum, (0..100).map(|k| k as f64 * 0.5).sum::<f64>());
    }

    #[test]
    fn array_blob_column_round_trip() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 50, 5);
        let row = t.get(&mut store, 10).unwrap().unwrap();
        let blob = row[1].blob_bytes(&mut store).unwrap();
        let arr = sqlarray_core::SqlArray::from_blob(blob).unwrap();
        assert_eq!(arr.dims(), &[5]);
        assert_eq!(arr.item(&[0]).unwrap(), sqlarray_core::Scalar::F64(10.0));
    }

    #[test]
    fn get_col_matches_full_decode() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 20, 3);
        let full = t.get(&mut store, 5).unwrap().unwrap();
        let col = t.get_col(&mut store, 5, 1).unwrap().unwrap();
        assert_eq!(full[1], col);
    }

    #[test]
    fn storage_accounting_tracks_growth() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 2000, 5);
        let pages = t.data_pages(&mut store).unwrap();
        assert!(pages > 10);
        let bpr = t.bytes_per_row(&mut store).unwrap();
        // Row: 8 key + 8 id + (1 + 2 + 64) blob = 83 bytes + 4 slot ≈ 87;
        // plus page slack. Must be in a sane band.
        assert!((83.0..140.0).contains(&bpr), "bytes/row = {bpr}");
    }

    #[test]
    fn vector_table_is_wider_than_scalar_table() {
        // The §6.2 storage comparison: the 24-byte array header makes
        // Tvector ~43 % bigger than Tscalar.
        let mut store = PageStore::new();
        let scalar_schema = Schema::new(&[
            ("id", ColType::I64),
            ("v1", ColType::F64),
            ("v2", ColType::F64),
            ("v3", ColType::F64),
            ("v4", ColType::F64),
            ("v5", ColType::F64),
        ]);
        let mut ts = Table::create(&mut store, "Tscalar", scalar_schema).unwrap();
        for k in 0..5000 {
            let v: Vec<RowValue> = std::iter::once(RowValue::I64(k))
                .chain((0..5).map(|i| RowValue::F64(k as f64 + i as f64)))
                .collect();
            ts.insert(&mut store, k, &v).unwrap();
        }
        let tv = vector_table(&mut store, 5000, 5);
        let scalar_bpr = ts.bytes_per_row(&mut store).unwrap();
        let vector_bpr = tv.bytes_per_row(&mut store).unwrap();
        let ratio = vector_bpr / scalar_bpr;
        assert!(
            (1.2..1.7).contains(&ratio),
            "vector/scalar storage ratio {ratio:.2} outside the expected band"
        );
    }

    #[test]
    fn big_blobs_leave_thin_rows() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "Tlob", schema).unwrap();
        let big = vec![0xAB; 100_000];
        for k in 0..20 {
            t.insert(
                &mut store,
                k,
                &[RowValue::I64(k), RowValue::Bytes(big.clone())],
            )
            .unwrap();
        }
        // 20 rows of ~33 bytes each fit in a single data page; the
        // megabytes live in LOB pages.
        assert_eq!(t.data_pages(&mut store).unwrap(), 1);
        let row = t.get(&mut store, 3).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), big);
    }

    #[test]
    fn require_col_errors_on_missing() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 1, 2);
        assert_eq!(t.require_col("V").unwrap(), 1);
        assert!(t.require_col("w").is_err());
    }

    #[test]
    fn range_scan_decodes() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 100, 2);
        let mut keys = Vec::new();
        t.scan_range_raw(&mut store, 10, 14, |k, _| {
            keys.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(keys, vec![10, 11, 12, 13, 14]);
    }
}
