//! Clustered tables: schema + B-tree + blob store, with storage accounting.

use crate::blob;
use crate::btree::BTree;
use crate::errors::{Result, StorageError};
use crate::page::{page_type, PageId, SlottedRead};
use crate::row::{self, RowValue, Schema, INLINE_BLOB_LIMIT};
use crate::store::{PageStore, PartitionReader};
use std::collections::HashMap;

/// One contiguous chunk of a clustered-index scan: a run of leaf pages in
/// key order, produced by [`Table::partition`] and consumed by
/// [`Table::scan_partition`]. Partitions of one table are disjoint and
/// concatenate (in production order) to the full leaf chain, so scanning
/// them in order — serially or on parallel workers — visits exactly the
/// rows of a full scan, in the same order.
#[derive(Debug, Clone)]
pub struct ScanPartition {
    leaves: Vec<PageId>,
}

impl ScanPartition {
    /// The leaf pages of this partition, in key order.
    pub fn leaves(&self) -> &[PageId] {
        &self.leaves
    }

    /// True when the partition covers no pages (empty table).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

/// Options for [`Table::scan_partition_batches`].
#[derive(Debug, Clone, Copy)]
pub struct BatchScanOpts<'a> {
    /// Schema column indices to decode, in batch-column order.
    pub cols: &'a [usize],
    /// Flush the batch to the callback once it holds this many rows
    /// (clamped to ≥ 1), even mid-leaf.
    pub rows_cap: usize,
    /// Additionally flush at every leaf-page boundary, so callers that
    /// resolve out-of-row LOB values per batch keep the page-read
    /// interleaving identical to the row-at-a-time scan.
    pub leaf_aligned: bool,
}

/// A clustered table. Rows are stored in the leaf level of a B+tree in key
/// order; blob columns spill to the LOB store past the in-row limit.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    tree: BTree,
}

impl Table {
    /// Creates an empty table.
    pub fn create(store: &mut PageStore, name: &str, schema: Schema) -> Result<Table> {
        Ok(Table {
            name: name.to_string(),
            schema,
            tree: BTree::create(store)?,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.tree.len()
    }

    /// Inserts a row under the clustered key.
    pub fn insert(&mut self, store: &mut PageStore, key: i64, values: &[RowValue]) -> Result<()> {
        let bytes = row::encode_row(store, &self.schema, values)?;
        self.tree.insert(store, key, &bytes)
    }

    /// Bulk-loads an **empty** table from rows sorted by strictly
    /// increasing key — the parallel ingest path.
    ///
    /// The pipeline has four stages:
    /// 1. *LOB pre-pass* (serial): blob values over the in-row limit are
    ///    spilled to the LOB store in row order, exactly as row-at-a-time
    ///    inserts would have written them;
    /// 2. *row encoding* (parallel, `dop` lanes): each worker encodes a
    ///    contiguous row range with [`row::encode_row_inline`] — pure CPU,
    ///    no store access;
    /// 3. *leaf building* (parallel): [`BTree::bulk_build`] packs the
    ///    encoded rows into leaf page images on worker threads;
    /// 4. *append + index build* (serial): images land in the file in page
    ///    order and the internal levels are assembled on top.
    ///
    /// Stages 2–3 are the hot part of an ingest and scale with `dop`;
    /// stages 1 and 4 mutate the store and stay serial, so the resulting
    /// layout, pool state and [`crate::IoStats`] are identical at every
    /// `dop`.
    pub fn bulk_load(
        &mut self,
        store: &mut PageStore,
        rows: &[(i64, Vec<RowValue>)],
        dop: usize,
    ) -> Result<()> {
        if !self.tree.is_empty() {
            return Err(StorageError::BulkLoad(format!(
                "table `{}` is not empty ({} rows)",
                self.name,
                self.tree.len()
            )));
        }
        if rows.is_empty() {
            return Ok(()); // keep the existing (empty) root leaf
        }
        // Pre-flight validation, before anything touches the store: a
        // rejected load must not leave orphaned LOB pages, a warmed pool,
        // or drifted I/O counters behind. Key order, arity, column types,
        // and the post-spill record size are all checkable without
        // encoding a byte.
        crate::btree::validate_bulk_key_order(rows.iter().map(|(k, _)| *k))?;
        for (_, values) in rows {
            let len = row::encoded_len(&self.schema, values)?;
            if len > crate::btree::MAX_PAYLOAD {
                return Err(StorageError::RecordTooLarge {
                    bytes: len,
                    limit: crate::btree::MAX_PAYLOAD,
                });
            }
        }

        // Stage 1: spill oversized blobs serially (store mutation), so the
        // parallel encoders never need the store.
        let oversized =
            |v: &RowValue| matches!(v, RowValue::Bytes(b) if b.len() > INLINE_BLOB_LIMIT);
        let mut spilled: HashMap<usize, Vec<RowValue>> = HashMap::new();
        for (i, (_, values)) in rows.iter().enumerate() {
            if values.iter().any(oversized) {
                let mut replaced = values.clone();
                for v in replaced.iter_mut() {
                    if oversized(v) {
                        let RowValue::Bytes(b) = &*v else {
                            unreachable!()
                        };
                        let len = b.len() as u64;
                        let id = blob::write_blob(store, b)?;
                        *v = RowValue::LobRef(id, len);
                    }
                }
                spilled.insert(i, replaced);
            }
        }

        // Stage 2: encode rows in parallel.
        let schema = &self.schema;
        let encode = |i: usize| -> Result<Vec<u8>> {
            let values = spilled.get(&i).map(Vec::as_slice).unwrap_or(&rows[i].1);
            row::encode_row_inline(schema, values)
        };
        let chunks = sqlarray_core::parallel::scoped_map_ranges(rows.len(), dop.max(1), |r| {
            r.map(encode).collect::<Result<Vec<_>>>()
        });
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(rows.len());
        for chunk in chunks {
            payloads.extend(chunk?);
        }

        // Stages 3–4: build the clustered index, recycling the empty
        // table's root leaf as the first data leaf so no page is orphaned.
        // Keys were validated above, before the LOB pre-pass.
        let entries: Vec<(i64, Vec<u8>)> = rows.iter().map(|(k, _)| *k).zip(payloads).collect();
        self.tree =
            BTree::bulk_build_prevalidated(store, &entries, dop, Some(self.tree.root_page()))?;
        Ok(())
    }

    /// Replaces the row at `key` with `values`, freeing any out-of-page
    /// LOB chains the new row no longer references. Returns `false` when
    /// the key does not exist (nothing is written, no blob is spilled).
    ///
    /// New oversized blob values spill through the same LOB writer as
    /// inserts; the pages of the replaced value come back through
    /// [`blob::free_blob`], so repeated UPDATEs recycle pages instead of
    /// growing the file.
    pub fn update(&mut self, store: &mut PageStore, key: i64, values: &[RowValue]) -> Result<bool> {
        let Some(old) = self.tree.get(store, key)? else {
            return Ok(false);
        };
        // Collect LOB ids from the encoded images directly — decoding the
        // full rows here would copy every inline blob payload twice per
        // updated row just to throw the bytes away.
        let mut old_ids: Vec<blob::BlobId> = Vec::new();
        row::lob_refs(&self.schema, &old, &mut old_ids)?;
        let bytes = row::encode_row(store, &self.schema, values)?;
        self.tree.update(store, key, &bytes)?;
        // Free LOB chains the new row stopped referencing (a pass-through
        // `LobRef` keeps its chain — the engine's in-place array-update
        // path relies on that).
        let mut kept: Vec<blob::BlobId> = Vec::new();
        row::lob_refs(&self.schema, &bytes, &mut kept)?;
        for id in old_ids {
            if !kept.contains(&id) {
                blob::free_blob(store, id)?;
            }
        }
        Ok(true)
    }

    /// Deletes the row at `key`, freeing its out-of-page LOB chains.
    /// Returns `false` when the key does not exist.
    pub fn delete(&mut self, store: &mut PageStore, key: i64) -> Result<bool> {
        let old = match self.tree.delete(store, key) {
            Ok(bytes) => bytes,
            Err(StorageError::KeyNotFound { .. }) => return Ok(false),
            Err(e) => return Err(e),
        };
        let mut ids: Vec<blob::BlobId> = Vec::new();
        row::lob_refs(&self.schema, &old, &mut ids)?;
        for id in ids {
            blob::free_blob(store, id)?;
        }
        Ok(true)
    }

    /// Overwrites `data.len()` bytes of the blob column `col` of row `key`
    /// starting at byte `offset` — the storage path of the paper's
    /// `ArrayUpdate`. For an out-of-page value only the intersecting chunk
    /// pages are rewritten (the leaf row is untouched: id and length are
    /// unchanged); an in-row value is spliced and the row re-stored.
    /// Returns the number of pages written.
    pub fn update_col_blob_range(
        &mut self,
        store: &mut PageStore,
        key: i64,
        col: usize,
        offset: usize,
        data: &[u8],
    ) -> Result<u64> {
        let Some(bytes) = self.tree.get(store, key)? else {
            return Err(StorageError::KeyNotFound { key });
        };
        match row::decode_col(&self.schema, &bytes, col)? {
            RowValue::LobRef(id, _) => blob::update_blob_range(store, id, offset, data),
            RowValue::Bytes(mut b) => {
                // checked_add: a wrapping `offset + len` must not pass.
                let end = offset
                    .checked_add(data.len())
                    .filter(|&end| end <= b.len())
                    .ok_or(StorageError::BlobRangeOutOfBounds {
                        offset,
                        len: data.len(),
                        total: b.len(),
                    })?;
                b[offset..end].copy_from_slice(data);
                let mut vals = row::decode_row(&self.schema, &bytes)?;
                vals[col] = RowValue::Bytes(b);
                let enc = row::encode_row(store, &self.schema, &vals)?;
                self.tree.update(store, key, &enc)?;
                Ok(1)
            }
            other => Err(StorageError::SchemaMismatch(format!(
                "column {col} of table `{}` holds {other:?}, not a blob",
                self.name
            ))),
        }
    }

    /// The tree geometry needed to re-open this table from a catalog:
    /// `(root, first leaf, row count, depth)`.
    pub fn tree_parts(&self) -> (PageId, PageId, u64, u32) {
        self.tree.parts()
    }

    /// Reconstructs a table from its catalog entry — the inverse of
    /// ([`Self::name`], [`Self::schema`], [`Self::tree_parts`]).
    pub fn from_parts(name: String, schema: Schema, parts: (PageId, PageId, u64, u32)) -> Table {
        Table {
            name,
            schema,
            tree: BTree::from_parts(parts.0, parts.1, parts.2, parts.3),
        }
    }

    /// Point lookup by clustered key, decoding the full row.
    pub fn get(&self, store: &mut PageStore, key: i64) -> Result<Option<Vec<RowValue>>> {
        match self.tree.get(store, key)? {
            Some(bytes) => Ok(Some(row::decode_row(&self.schema, &bytes)?)),
            None => Ok(None),
        }
    }

    /// Point lookup of one column.
    pub fn get_col(&self, store: &mut PageStore, key: i64, col: usize) -> Result<Option<RowValue>> {
        match self.tree.get(store, key)? {
            Some(bytes) => Ok(Some(row::decode_col(&self.schema, &bytes, col)?)),
            None => Ok(None),
        }
    }

    /// Clustered index scan: `f` receives the key and the *encoded* row and
    /// returns `true` to keep scanning. Decoding is the caller's choice —
    /// the engine's projections decode only the columns an expression
    /// touches, like a real scan operator.
    pub fn scan_raw(
        &self,
        store: &mut PageStore,
        f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        self.tree.scan(store, f)
    }

    /// Splits the clustered index into at most `dop` contiguous
    /// [`ScanPartition`]s of near-equal page count, in key order. The leaf
    /// list comes from the index upper levels (cheap — no leaf reads); the
    /// same `dop` always produces the same boundaries, and any `dop`
    /// produces partitions that concatenate to the full scan. There is
    /// always at least one partition (an empty table yields one partition
    /// holding the empty root leaf).
    ///
    /// Takes `&PageStore`: the internal-level walk runs through its own
    /// one-partition scan (snapshot-classified [`PartitionReader`], folded
    /// back via `finish_scan`), which produces byte-identical accounting
    /// to the old serial `&mut` path while letting concurrent sessions
    /// partition the same table under a shared read lock.
    pub fn partition(&self, store: &PageStore, dop: usize) -> Result<Vec<ScanPartition>> {
        let scan = store.begin_scan();
        let mut r = store.reader(&scan, 0);
        let leaves = self.tree.leaf_page_ids(&mut r)?;
        let io = r.finish();
        store.finish_scan([&io]);
        // A tree always has at least one leaf (possibly empty), so this
        // always yields at least one partition.
        let ranges = sqlarray_core::parallel::partition_ranges(leaves.len(), dop.max(1));
        Ok(ranges
            .into_iter()
            .map(|r| ScanPartition {
                leaves: leaves[r].to_vec(),
            })
            .collect())
    }

    /// Scans one partition through a worker's [`PartitionReader`]. `f`
    /// sees `(reader, key, encoded row)` in key order, exactly like
    /// [`scan_raw`](Self::scan_raw) restricted to the partition, and
    /// returns `true` to keep scanning.
    ///
    /// The reader is handed *into* the callback (leaf-page bytes borrow
    /// the page file, not the reader) so a row visitor can resolve the
    /// row's out-of-row LOB values through the same live-pool, snapshot-
    /// classified read path as the leaf pages — interleaved exactly as a
    /// serial scan would interleave them.
    pub fn scan_partition(
        &self,
        reader: &mut PartitionReader<'_>,
        part: &ScanPartition,
        mut f: impl FnMut(&mut PartitionReader<'_>, i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        for &pid in &part.leaves {
            let bytes = reader.read(pid)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, pid)?;
            for i in 0..v.slot_count() {
                let rec = v.record(i)?;
                if rec.len() < 8 {
                    return Err(StorageError::RowCorrupt(format!(
                        "leaf record on page {pid} shorter than its 8-byte key"
                    )));
                }
                let key = sqlarray_core::le::i64_at(rec, 0);
                if !f(reader, key, &rec[8..])? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Batch variant of [`scan_partition`](Self::scan_partition): decodes
    /// leaf records straight into the column vectors of `batch` (only the
    /// schema columns named by `cols`, in that order) and hands the filled
    /// batch to `f`, which returns `true` to keep scanning.
    ///
    /// Batching amortizes the per-row schema walk and LE decoding and
    /// replaces the per-row callback with one call per ~`rows_cap` rows.
    /// The batch flushes as soon as it reaches `rows_cap` rows — even in
    /// the middle of a leaf, so a caller that stops early (`TOP`) never
    /// decodes more than one cap past its limit — and additionally at
    /// *every* leaf boundary when `leaf_aligned` is set, which callers
    /// that resolve out-of-row LOB values per batch use to keep the
    /// page-read interleaving (leaf, then that leaf's LOB pages)
    /// identical to the row-at-a-time scan at any DOP. (A mid-leaf flush
    /// preserves that order too: the leaf page is already read, and the
    /// flushed rows resolve in row order.) The same `batch` is reused
    /// across flushes, so column buffers are allocated once per
    /// partition, not per batch.
    pub fn scan_partition_batches(
        &self,
        reader: &mut PartitionReader<'_>,
        part: &ScanPartition,
        opts: BatchScanOpts<'_>,
        batch: &mut sqlarray_core::batch::Batch,
        mut f: impl FnMut(&mut PartitionReader<'_>, &sqlarray_core::batch::Batch) -> Result<bool>,
    ) -> Result<()> {
        let BatchScanOpts {
            cols,
            rows_cap,
            leaf_aligned,
        } = opts;
        let dec = row::BatchDecoder::new(&self.schema, cols)?;
        let rows_cap = rows_cap.max(1);
        batch.clear();
        for &pid in &part.leaves {
            let bytes = reader.read(pid)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, pid)?;
            for i in 0..v.slot_count() {
                let rec = v.record(i)?;
                if rec.len() < 8 {
                    return Err(StorageError::RowCorrupt(format!(
                        "leaf record on page {pid} shorter than its 8-byte key"
                    )));
                }
                batch.keys.push(sqlarray_core::le::i64_at(rec, 0));
                dec.decode_row_into(&self.schema, &rec[8..], &mut batch.cols)?;
                if batch.len() >= rows_cap {
                    let keep_going = f(reader, batch)?;
                    batch.clear();
                    if !keep_going {
                        return Ok(());
                    }
                }
            }
            if leaf_aligned && !batch.is_empty() {
                let keep_going = f(reader, batch)?;
                batch.clear();
                if !keep_going {
                    return Ok(());
                }
            }
        }
        if !batch.is_empty() {
            f(reader, batch)?;
            batch.clear();
        }
        Ok(())
    }

    /// Range scan over `[lo, hi]` (inclusive) with encoded rows.
    pub fn scan_range_raw(
        &self,
        store: &mut PageStore,
        lo: i64,
        hi: i64,
        f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        self.tree.scan_range(store, lo, hi, f)
    }

    /// Convenience scan with fully decoded rows.
    pub fn scan(
        &self,
        store: &mut PageStore,
        mut f: impl FnMut(i64, Vec<RowValue>) -> Result<bool>,
    ) -> Result<()> {
        let schema = self.schema.clone();
        self.tree.scan(store, |key, bytes| {
            let values = row::decode_row(&schema, bytes)?;
            f(key, values)
        })
    }

    /// Number of leaf (data) pages.
    pub fn data_pages(&self, store: &mut PageStore) -> Result<u64> {
        self.tree.leaf_pages(store)
    }

    /// Data size in bytes (leaf pages × page size) — what a clustered index
    /// scan must read. LOB pages are *not* included, matching how the
    /// paper's Table 1 scans touch only in-row data.
    pub fn data_bytes(&self, store: &mut PageStore) -> Result<u64> {
        Ok(self.data_pages(store)? * crate::page::PAGE_SIZE as u64)
    }

    /// Average stored bytes per row, including page overheads.
    pub fn bytes_per_row(&self, store: &mut PageStore) -> Result<f64> {
        if self.row_count() == 0 {
            return Ok(0.0);
        }
        Ok(self.data_bytes(store)? as f64 / self.row_count() as f64)
    }

    /// B-tree depth, for diagnostics.
    pub fn index_depth(&self, store: &mut PageStore) -> Result<u32> {
        self.tree.depth(store)
    }

    /// Looks up a column index by name, with a schema-style error.
    pub fn require_col(&self, name: &str) -> Result<usize> {
        self.schema.col_index(name).ok_or_else(|| {
            StorageError::SchemaMismatch(format!("table `{}` has no column `{name}`", self.name))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::ColType;

    fn vector_table(store: &mut PageStore, rows: i64, dim: usize) -> Table {
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(store, "Tvector", schema).unwrap();
        for k in 0..rows {
            let data: Vec<f64> = (0..dim).map(|i| (k as f64) + i as f64 * 0.1).collect();
            let arr = sqlarray_core::build::short_vector(&data).unwrap();
            t.insert(
                store,
                k,
                &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_get_scan() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        for k in 0..100 {
            t.insert(
                &mut store,
                k,
                &[RowValue::I64(k), RowValue::F64(k as f64 * 0.5)],
            )
            .unwrap();
        }
        assert_eq!(t.row_count(), 100);
        let row = t.get(&mut store, 7).unwrap().unwrap();
        assert_eq!(row, vec![RowValue::I64(7), RowValue::F64(3.5)]);
        assert_eq!(t.get(&mut store, 100).unwrap(), None);

        let mut sum = 0.0;
        t.scan(&mut store, |_, vals| {
            if let RowValue::F64(x) = vals[1] {
                sum += x;
            }
            Ok(true)
        })
        .unwrap();
        assert_eq!(sum, (0..100).map(|k| k as f64 * 0.5).sum::<f64>());
    }

    #[test]
    fn array_blob_column_round_trip() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 50, 5);
        let row = t.get(&mut store, 10).unwrap().unwrap();
        let blob = row[1].blob_bytes(&mut store).unwrap();
        let arr = sqlarray_core::SqlArray::from_blob(blob).unwrap();
        assert_eq!(arr.dims(), &[5]);
        assert_eq!(arr.item(&[0]).unwrap(), sqlarray_core::Scalar::F64(10.0));
    }

    #[test]
    fn get_col_matches_full_decode() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 20, 3);
        let full = t.get(&mut store, 5).unwrap().unwrap();
        let col = t.get_col(&mut store, 5, 1).unwrap().unwrap();
        assert_eq!(full[1], col);
    }

    #[test]
    fn storage_accounting_tracks_growth() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 2000, 5);
        let pages = t.data_pages(&mut store).unwrap();
        assert!(pages > 10);
        let bpr = t.bytes_per_row(&mut store).unwrap();
        // Row: 8 key + 8 id + (1 + 2 + 64) blob = 83 bytes + 4 slot ≈ 87;
        // plus page slack. Must be in a sane band.
        assert!((83.0..140.0).contains(&bpr), "bytes/row = {bpr}");
    }

    #[test]
    fn vector_table_is_wider_than_scalar_table() {
        // The §6.2 storage comparison: the 24-byte array header makes
        // Tvector ~43 % bigger than Tscalar.
        let mut store = PageStore::new();
        let scalar_schema = Schema::new(&[
            ("id", ColType::I64),
            ("v1", ColType::F64),
            ("v2", ColType::F64),
            ("v3", ColType::F64),
            ("v4", ColType::F64),
            ("v5", ColType::F64),
        ]);
        let mut ts = Table::create(&mut store, "Tscalar", scalar_schema).unwrap();
        for k in 0..5000 {
            let v: Vec<RowValue> = std::iter::once(RowValue::I64(k))
                .chain((0..5).map(|i| RowValue::F64(k as f64 + i as f64)))
                .collect();
            ts.insert(&mut store, k, &v).unwrap();
        }
        let tv = vector_table(&mut store, 5000, 5);
        let scalar_bpr = ts.bytes_per_row(&mut store).unwrap();
        let vector_bpr = tv.bytes_per_row(&mut store).unwrap();
        let ratio = vector_bpr / scalar_bpr;
        assert!(
            (1.2..1.7).contains(&ratio),
            "vector/scalar storage ratio {ratio:.2} outside the expected band"
        );
    }

    #[test]
    fn big_blobs_leave_thin_rows() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "Tlob", schema).unwrap();
        let big = vec![0xAB; 100_000];
        for k in 0..20 {
            t.insert(
                &mut store,
                k,
                &[RowValue::I64(k), RowValue::Bytes(big.clone())],
            )
            .unwrap();
        }
        // 20 rows of ~33 bytes each fit in a single data page; the
        // megabytes live in LOB pages.
        assert_eq!(t.data_pages(&mut store).unwrap(), 1);
        let row = t.get(&mut store, 3).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), big);
    }

    #[test]
    fn require_col_errors_on_missing() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 1, 2);
        assert_eq!(t.require_col("V").unwrap(), 1);
        assert!(t.require_col("w").is_err());
    }

    #[test]
    fn partitions_concatenate_to_the_full_scan() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 3000, 5);
        let mut full = Vec::new();
        t.scan_raw(&mut store, |k, _| {
            full.push(k);
            Ok(true)
        })
        .unwrap();
        for dop in [1usize, 2, 3, 7, 64] {
            let parts = t.partition(&store, dop).unwrap();
            assert!(!parts.is_empty() && parts.len() <= dop);
            let scan = store.begin_scan();
            let mut seen = Vec::new();
            for (pi, p) in parts.iter().enumerate() {
                let mut r = store.reader(&scan, pi as u32);
                t.scan_partition(&mut r, p, |_, k, _| {
                    seen.push(k);
                    Ok(true)
                })
                .unwrap();
            }
            assert_eq!(seen, full, "dop {dop}");
        }
    }

    #[test]
    fn batch_scan_matches_row_scan() {
        use sqlarray_core::batch::ColVec;
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 3000, 5);
        let mut row_keys = Vec::new();
        let mut row_blobs: Vec<RowValue> = Vec::new();
        t.scan_raw(&mut store, |k, bytes| {
            row_keys.push(k);
            row_blobs.push(row::decode_col(t.schema(), bytes, 1)?);
            Ok(true)
        })
        .unwrap();
        for (dop, cap, aligned) in [(1usize, 1024usize, false), (3, 7, false), (2, 256, true)] {
            let parts = t.partition(&store, dop).unwrap();
            let scan = store.begin_scan();
            let mut keys = Vec::new();
            let mut blobs: Vec<RowValue> = Vec::new();
            let mut per_part_fills = Vec::new();
            for (pi, p) in parts.iter().enumerate() {
                let mut r = store.reader(&scan, pi as u32);
                let mut batch = row::new_batch(t.schema(), &[1]).unwrap();
                let mut fills = Vec::new();
                t.scan_partition_batches(
                    &mut r,
                    p,
                    BatchScanOpts {
                        cols: &[1],
                        rows_cap: cap,
                        leaf_aligned: aligned,
                    },
                    &mut batch,
                    |_, b| {
                        fills.push(b.len());
                        keys.extend_from_slice(&b.keys);
                        let ColVec::Blob { bytes, lob } = &b.cols[0] else {
                            panic!("expected blob column");
                        };
                        for (i, l) in lob.iter().enumerate() {
                            blobs.push(match *l {
                                Some((id, len)) => RowValue::LobRef(id, len),
                                None => RowValue::Bytes(bytes.get(i).to_vec()),
                            });
                        }
                        Ok(true)
                    },
                )
                .unwrap();
                per_part_fills.push(fills);
            }
            assert_eq!(keys, row_keys, "dop {dop} cap {cap}");
            assert_eq!(blobs, row_blobs, "dop {dop} cap {cap}");
            for fills in &per_part_fills {
                assert!(fills.iter().all(|&n| n > 0));
                if !aligned {
                    // Within a partition, every flush except the last is
                    // exactly `cap` rows (mid-leaf flushing); only the
                    // remainder runs short.
                    assert!(fills[..fills.len() - 1].iter().all(|&n| n == cap));
                }
            }
        }
    }

    #[test]
    fn batch_scan_early_stop_and_empty_table() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 500, 5);
        let parts = t.partition(&store, 1).unwrap();
        let scan = store.begin_scan();
        let mut r = store.reader(&scan, 0);
        let mut batch = row::new_batch(t.schema(), &[0]).unwrap();
        let mut calls = 0;
        t.scan_partition_batches(
            &mut r,
            &parts[0],
            BatchScanOpts {
                cols: &[0],
                rows_cap: 64,
                leaf_aligned: false,
            },
            &mut batch,
            |_, _| {
                calls += 1;
                Ok(false)
            },
        )
        .unwrap();
        assert_eq!(calls, 1, "early stop halts after the first batch");
        assert!(batch.is_empty(), "batch is left cleared");
        drop(r);
        drop(scan);

        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let empty = Table::create(&mut store, "E2", schema).unwrap();
        let parts = empty.partition(&store, 4).unwrap();
        let scan = store.begin_scan();
        let mut r = store.reader(&scan, 0);
        let mut batch = row::new_batch(empty.schema(), &[1]).unwrap();
        let mut calls = 0;
        empty
            .scan_partition_batches(
                &mut r,
                &parts[0],
                BatchScanOpts {
                    cols: &[1],
                    rows_cap: 64,
                    leaf_aligned: false,
                },
                &mut batch,
                |_, _| {
                    calls += 1;
                    Ok(true)
                },
            )
            .unwrap();
        assert_eq!(calls, 0, "empty table produces no batches");
    }

    #[test]
    fn partition_workers_scan_concurrently() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 5000, 5);
        store.clear_cache();
        let parts = t.partition(&store, 4).unwrap();
        assert_eq!(parts.len(), 4);
        let scan = store.begin_scan();
        let shared = &store;
        let table = &t;
        let scan_ref = &scan;
        let mut results: Vec<(Vec<i64>, crate::store::ScanIo)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .enumerate()
                .map(|(pi, p)| {
                    s.spawn(move || {
                        let mut r = shared.reader(scan_ref, pi as u32);
                        let mut keys = Vec::new();
                        table
                            .scan_partition(&mut r, p, |_, k, _| {
                                keys.push(k);
                                Ok(true)
                            })
                            .unwrap();
                        (keys, r.finish())
                    })
                })
                .collect();
            results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        let merged: Vec<i64> = results.iter().flat_map(|(k, _)| k.clone()).collect();
        assert_eq!(merged, (0..5000).collect::<Vec<_>>());
        // Per-worker I/O merges to the cold full-scan cost: every leaf
        // page read exactly once, almost all sequentially.
        drop(scan);
        let ios: Vec<crate::store::ScanIo> = results.iter().map(|(_, io)| *io).collect();
        let io = store.finish_scan(ios.iter());
        assert_eq!(io.pages_read, t.data_pages(&mut store).unwrap());
        assert_eq!(io.cache_hits, 0);
        // The boundary stitching in `finish_scan` removes the per-worker
        // seeks; only genuine chain gaps remain.
        assert!(
            io.sequential_reads as f64 >= 0.85 * io.pages_read as f64,
            "parallel scan was not sequential: {io:?}"
        );
    }

    #[test]
    fn live_pool_is_warm_after_a_parallel_scan() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 2000, 5);
        store.clear_cache();
        let parts = t.partition(&store, 3).unwrap();
        let scan = store.begin_scan();
        let mut ios = Vec::new();
        for (pi, p) in parts.iter().enumerate() {
            let mut r = store.reader(&scan, pi as u32);
            t.scan_partition(&mut r, p, |_, _, _| Ok(true)).unwrap();
            ios.push(r.finish());
        }
        drop(scan);
        store.finish_scan(ios.iter());
        // Workers touched the live pool as they read — no replay step —
        // so a second pass over the same partitions is fully cached.
        let scan = store.begin_scan();
        let mut rescan = crate::stats::IoStats::default();
        for (pi, p) in parts.iter().enumerate() {
            let mut r = store.reader(&scan, pi as u32);
            t.scan_partition(&mut r, p, |_, _, _| Ok(true)).unwrap();
            rescan.merge(&r.finish().io);
        }
        assert_eq!(rescan.pages_read, 0);
        assert!(rescan.cache_hits > 0);
    }

    #[test]
    fn empty_and_tiny_tables_partition_sanely() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let empty = Table::create(&mut store, "E", schema.clone()).unwrap();
        let parts = empty.partition(&store, 8).unwrap();
        assert_eq!(parts.len(), 1);
        let scan = store.begin_scan();
        let mut n = 0;
        let mut r = store.reader(&scan, 0);
        empty
            .scan_partition(&mut r, &parts[0], |_, _, _| {
                n += 1;
                Ok(true)
            })
            .unwrap();
        assert_eq!(n, 0);
        drop(r);
        drop(scan);

        let mut one = Table::create(&mut store, "O", schema).unwrap();
        one.insert(&mut store, 42, &[RowValue::I64(42), RowValue::F64(1.0)])
            .unwrap();
        let parts = one.partition(&store, 8).unwrap();
        assert_eq!(parts.len(), 1, "1 row < DOP collapses to one partition");
        let scan = store.begin_scan();
        let mut keys = Vec::new();
        let mut r = store.reader(&scan, 0);
        one.scan_partition(&mut r, &parts[0], |_, k, _| {
            keys.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(keys, vec![42]);
    }

    fn sample_rows(n: i64, dim: usize) -> Vec<(i64, Vec<RowValue>)> {
        (0..n)
            .map(|k| {
                let data: Vec<f64> = (0..dim).map(|i| (k as f64) + i as f64 * 0.1).collect();
                let arr = sqlarray_core::build::short_vector(&data).unwrap();
                (k, vec![RowValue::I64(k), RowValue::Bytes(arr.into_blob())])
            })
            .collect()
    }

    #[test]
    fn bulk_load_matches_row_at_a_time_inserts() {
        let rows = sample_rows(3000, 5);
        let mut store_a = PageStore::new();
        let inserted = vector_table(&mut store_a, 3000, 5);

        let mut store_b = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut bulk = Table::create(&mut store_b, "Tvector", schema).unwrap();
        bulk.bulk_load(&mut store_b, &rows, 3).unwrap();

        assert_eq!(bulk.row_count(), inserted.row_count());
        // The greedy bulk packing equals the append-optimized insert
        // packing: same leaf count, hence same bytes/row.
        assert_eq!(
            bulk.data_pages(&mut store_b).unwrap(),
            inserted.data_pages(&mut store_a).unwrap()
        );
        let mut a = Vec::new();
        inserted
            .scan_raw(&mut store_a, |k, bytes| {
                a.push((k, bytes.to_vec()));
                Ok(true)
            })
            .unwrap();
        let mut b = Vec::new();
        bulk.scan_raw(&mut store_b, |k, bytes| {
            b.push((k, bytes.to_vec()));
            Ok(true)
        })
        .unwrap();
        assert_eq!(a, b);
        // Point lookups work through the bulk-built internal levels.
        for k in [0i64, 1, 1499, 2999] {
            assert_eq!(
                bulk.get(&mut store_b, k).unwrap(),
                inserted.get(&mut store_a, k).unwrap()
            );
        }
        assert_eq!(bulk.get(&mut store_b, 3000).unwrap(), None);
    }

    #[test]
    fn bulk_load_layout_and_io_are_dop_invariant() {
        let rows = sample_rows(4000, 5);
        let build = |dop: usize| {
            let mut store = PageStore::new();
            let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
            let mut t = Table::create(&mut store, "T", schema).unwrap();
            t.bulk_load(&mut store, &rows, dop).unwrap();
            let pages = t.data_pages(&mut store).unwrap();
            let depth = t.index_depth(&mut store).unwrap();
            (
                store.page_count(),
                pages,
                depth,
                store.stats(),
                store.seek_position(),
                store.pool().keys_mru_order(),
            )
        };
        let serial = build(1);
        for dop in [2usize, 4, 8] {
            assert_eq!(build(dop), serial, "dop {dop}");
        }
    }

    #[test]
    fn bulk_load_spills_oversized_blobs() {
        let big = vec![0xCD; 50_000];
        let rows: Vec<(i64, Vec<RowValue>)> = (0..30)
            .map(|k| (k, vec![RowValue::I64(k), RowValue::Bytes(big.clone())]))
            .collect();
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "Tlob", schema).unwrap();
        t.bulk_load(&mut store, &rows, 4).unwrap();
        assert_eq!(t.data_pages(&mut store).unwrap(), 1);
        let row = t.get(&mut store, 7).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), big);
    }

    #[test]
    fn bulk_load_rejects_bad_inputs() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        let unsorted = vec![
            (2i64, vec![RowValue::I64(2), RowValue::F64(0.0)]),
            (1i64, vec![RowValue::I64(1), RowValue::F64(0.0)]),
        ];
        assert!(matches!(
            t.bulk_load(&mut store, &unsorted, 2),
            Err(StorageError::BulkLoad(_))
        ));
        // Loading into a non-empty table is refused.
        t.insert(&mut store, 9, &[RowValue::I64(9), RowValue::F64(1.0)])
            .unwrap();
        let sorted = vec![(10i64, vec![RowValue::I64(10), RowValue::F64(0.0)])];
        assert!(matches!(
            t.bulk_load(&mut store, &sorted, 2),
            Err(StorageError::BulkLoad(_))
        ));
    }

    #[test]
    fn rejected_bulk_load_leaves_the_store_untouched() {
        // A batch mixing a LOB-spilling row with a later row whose inline
        // encoding exceeds the leaf-record limit must fail *before* the
        // spill pre-pass writes anything: no orphan LOB pages, no counter
        // drift.
        let mut store = PageStore::new();
        let schema = Schema::new(&[
            ("id", ColType::I64),
            ("a", ColType::Blob),
            ("b", ColType::Blob),
        ]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        let spilling = vec![
            RowValue::I64(0),
            RowValue::Bytes(vec![1; 50_000]), // > inline limit: would spill
            RowValue::Bytes(vec![2; 8]),
        ];
        let oversized_inline = vec![
            RowValue::I64(1),
            // Both blobs inline (≤ 8000) but together past MAX_PAYLOAD.
            RowValue::Bytes(vec![3; 8000]),
            RowValue::Bytes(vec![4; 8000]),
        ];
        let rows = vec![(0i64, spilling), (1i64, oversized_inline)];
        let pages_before = store.page_count();
        let stats_before = store.stats();
        assert!(matches!(
            t.bulk_load(&mut store, &rows, 2),
            Err(StorageError::RecordTooLarge { .. })
        ));
        assert_eq!(store.page_count(), pages_before);
        assert_eq!(store.stats(), stats_before);
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn bulk_load_empty_rows_is_a_noop() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        t.bulk_load(&mut store, &[], 4).unwrap();
        assert_eq!(t.row_count(), 0);
        let mut n = 0;
        t.scan_raw(&mut store, |_, _| {
            n += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn delete_removes_rows_and_frees_lob_chains() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        let big = vec![0xEE; 60_000];
        for k in 0..10 {
            t.insert(
                &mut store,
                k,
                &[RowValue::I64(k), RowValue::Bytes(big.clone())],
            )
            .unwrap();
        }
        assert!(store.free_pages().is_empty());
        assert!(t.delete(&mut store, 4).unwrap());
        assert_eq!(t.row_count(), 9);
        assert_eq!(t.get(&mut store, 4).unwrap(), None);
        // The deleted row's LOB chain (root + 8 chunks) is on the free list.
        assert_eq!(store.free_pages().len(), 9);
        // Deleting a missing key reports false and frees nothing.
        assert!(!t.delete(&mut store, 4).unwrap());
        assert_eq!(store.free_pages().len(), 9);
        // Remaining rows are intact.
        let row = t.get(&mut store, 5).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), big);
    }

    #[test]
    fn update_recycles_lob_pages() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        let big = vec![0x11; 60_000];
        t.insert(&mut store, 1, &[RowValue::I64(1), RowValue::Bytes(big)])
            .unwrap();
        // Replace the LOB with a same-size value. The new chain is written
        // before the old one is freed (crash safety), so the first UPDATE
        // grows the file by one chain — and every later one recycles it.
        let newer = vec![0x22; 60_000];
        assert!(t
            .update(
                &mut store,
                1,
                &[RowValue::I64(1), RowValue::Bytes(newer.clone())]
            )
            .unwrap());
        let steady = store.page_count();
        for _ in 0..3 {
            assert!(t
                .update(
                    &mut store,
                    1,
                    &[RowValue::I64(1), RowValue::Bytes(newer.clone())]
                )
                .unwrap());
        }
        assert_eq!(store.page_count(), steady);
        let row = t.get(&mut store, 1).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), newer);
        // Updating a missing key writes nothing.
        assert!(!t
            .update(
                &mut store,
                2,
                &[RowValue::I64(2), RowValue::Bytes(vec![1; 9000])]
            )
            .unwrap());
        assert_eq!(store.page_count(), steady);
    }

    #[test]
    fn update_shrinks_lob_to_inline_and_back() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        t.insert(
            &mut store,
            1,
            &[RowValue::I64(1), RowValue::Bytes(vec![9; 40_000])],
        )
        .unwrap();
        // LOB → inline: the chain is freed.
        let small = vec![5u8; 100];
        assert!(t
            .update(
                &mut store,
                1,
                &[RowValue::I64(1), RowValue::Bytes(small.clone())]
            )
            .unwrap());
        assert!(!store.free_pages().is_empty());
        assert_eq!(
            t.get(&mut store, 1).unwrap().unwrap()[1],
            RowValue::Bytes(small)
        );
        // Inline → LOB again: freed pages are recycled.
        let grown = vec![6u8; 40_000];
        let pages = store.page_count();
        assert!(t
            .update(
                &mut store,
                1,
                &[RowValue::I64(1), RowValue::Bytes(grown.clone())]
            )
            .unwrap());
        assert_eq!(store.page_count(), pages);
        let row = t.get(&mut store, 1).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), grown);
    }

    #[test]
    fn blob_range_update_touches_only_intersecting_pages() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        let mut big: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        t.insert(
            &mut store,
            1,
            &[RowValue::I64(1), RowValue::Bytes(big.clone())],
        )
        .unwrap();
        let before = store.stats();
        let patch = vec![0xF0u8; 1000];
        let touched = t
            .update_col_blob_range(&mut store, 1, 1, 10_000, &patch)
            .unwrap();
        assert!(touched <= 2, "1000-byte patch touched {touched} pages");
        assert_eq!(store.stats().since(&before).pages_written, touched);
        big[10_000..11_000].copy_from_slice(&patch);
        let row = t.get(&mut store, 1).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), big);
        // The leaf row is untouched: same LobRef id and length.
        assert!(matches!(row[1], RowValue::LobRef(_, 200_000)));
    }

    #[test]
    fn blob_range_update_splices_inline_values() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        let mut small = vec![1u8; 500];
        t.insert(
            &mut store,
            1,
            &[RowValue::I64(1), RowValue::Bytes(small.clone())],
        )
        .unwrap();
        t.update_col_blob_range(&mut store, 1, 1, 100, &[9u8; 50])
            .unwrap();
        small[100..150].copy_from_slice(&[9u8; 50]);
        assert_eq!(
            t.get(&mut store, 1).unwrap().unwrap()[1],
            RowValue::Bytes(small.clone())
        );
        // Out-of-bounds and type errors are typed.
        assert!(matches!(
            t.update_col_blob_range(&mut store, 1, 1, 499, &[0; 2]),
            Err(StorageError::BlobRangeOutOfBounds { .. })
        ));
        assert!(matches!(
            t.update_col_blob_range(&mut store, 1, 0, 0, &[0; 2]),
            Err(StorageError::SchemaMismatch(_))
        ));
        assert!(matches!(
            t.update_col_blob_range(&mut store, 99, 1, 0, &[0; 2]),
            Err(StorageError::KeyNotFound { key: 99 })
        ));
    }

    #[test]
    fn table_from_parts_reopens_the_tree() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 500, 4);
        let reopened = Table::from_parts(t.name().to_string(), t.schema().clone(), t.tree_parts());
        assert_eq!(reopened.row_count(), 500);
        assert_eq!(
            reopened.get(&mut store, 123).unwrap(),
            t.get(&mut store, 123).unwrap()
        );
        let mut keys = Vec::new();
        reopened
            .scan_raw(&mut store, |k, _| {
                keys.push(k);
                Ok(true)
            })
            .unwrap();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn range_scan_decodes() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 100, 2);
        let mut keys = Vec::new();
        t.scan_range_raw(&mut store, 10, 14, |k, _| {
            keys.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(keys, vec![10, 11, 12, 13, 14]);
    }
}
