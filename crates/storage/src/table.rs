//! Clustered tables: schema + B-tree + blob store, with storage accounting.

use crate::btree::BTree;
use crate::errors::{Result, StorageError};
use crate::page::{page_type, PageId, SlottedRead};
use crate::row::{self, RowValue, Schema};
use crate::store::{PageStore, PartitionReader};

/// One contiguous chunk of a clustered-index scan: a run of leaf pages in
/// key order, produced by [`Table::partition`] and consumed by
/// [`Table::scan_partition`]. Partitions of one table are disjoint and
/// concatenate (in production order) to the full leaf chain, so scanning
/// them in order — serially or on parallel workers — visits exactly the
/// rows of a full scan, in the same order.
#[derive(Debug, Clone)]
pub struct ScanPartition {
    leaves: Vec<PageId>,
}

impl ScanPartition {
    /// The leaf pages of this partition, in key order.
    pub fn leaves(&self) -> &[PageId] {
        &self.leaves
    }

    /// True when the partition covers no pages (empty table).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

/// A clustered table. Rows are stored in the leaf level of a B+tree in key
/// order; blob columns spill to the LOB store past the in-row limit.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    tree: BTree,
}

impl Table {
    /// Creates an empty table.
    pub fn create(store: &mut PageStore, name: &str, schema: Schema) -> Result<Table> {
        Ok(Table {
            name: name.to_string(),
            schema,
            tree: BTree::create(store)?,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.tree.len()
    }

    /// Inserts a row under the clustered key.
    pub fn insert(&mut self, store: &mut PageStore, key: i64, values: &[RowValue]) -> Result<()> {
        let bytes = row::encode_row(store, &self.schema, values)?;
        self.tree.insert(store, key, &bytes)
    }

    /// Point lookup by clustered key, decoding the full row.
    pub fn get(&self, store: &mut PageStore, key: i64) -> Result<Option<Vec<RowValue>>> {
        match self.tree.get(store, key)? {
            Some(bytes) => Ok(Some(row::decode_row(&self.schema, &bytes)?)),
            None => Ok(None),
        }
    }

    /// Point lookup of one column.
    pub fn get_col(&self, store: &mut PageStore, key: i64, col: usize) -> Result<Option<RowValue>> {
        match self.tree.get(store, key)? {
            Some(bytes) => Ok(Some(row::decode_col(&self.schema, &bytes, col)?)),
            None => Ok(None),
        }
    }

    /// Clustered index scan: `f` receives the key and the *encoded* row and
    /// returns `true` to keep scanning. Decoding is the caller's choice —
    /// the engine's projections decode only the columns an expression
    /// touches, like a real scan operator.
    pub fn scan_raw(
        &self,
        store: &mut PageStore,
        f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        self.tree.scan(store, f)
    }

    /// Splits the clustered index into at most `dop` contiguous
    /// [`ScanPartition`]s of near-equal page count, in key order. The leaf
    /// list comes from the index upper levels (cheap — no leaf reads); the
    /// same `dop` always produces the same boundaries, and any `dop`
    /// produces partitions that concatenate to the full scan. There is
    /// always at least one partition (an empty table yields one partition
    /// holding the empty root leaf).
    pub fn partition(&self, store: &mut PageStore, dop: usize) -> Result<Vec<ScanPartition>> {
        let leaves = self.tree.leaf_page_ids(store)?;
        // A tree always has at least one leaf (possibly empty), so this
        // always yields at least one partition.
        let ranges = sqlarray_core::parallel::partition_ranges(leaves.len(), dop.max(1));
        Ok(ranges
            .into_iter()
            .map(|r| ScanPartition {
                leaves: leaves[r].to_vec(),
            })
            .collect())
    }

    /// Scans one partition through a worker's [`PartitionReader`]. `f`
    /// sees `(key, encoded row)` in key order, exactly like
    /// [`scan_raw`](Self::scan_raw) restricted to the partition, and
    /// returns `true` to keep scanning.
    pub fn scan_partition(
        &self,
        reader: &mut PartitionReader<'_>,
        part: &ScanPartition,
        mut f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        for &pid in &part.leaves {
            let bytes = reader.read(pid)?;
            let v = SlottedRead::open(bytes, page_type::BTREE_LEAF, pid)?;
            for i in 0..v.slot_count() {
                let rec = v.record(i)?;
                let key = i64::from_le_bytes(rec[..8].try_into().expect("leaf record has a key"));
                if !f(key, &rec[8..])? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Range scan over `[lo, hi]` (inclusive) with encoded rows.
    pub fn scan_range_raw(
        &self,
        store: &mut PageStore,
        lo: i64,
        hi: i64,
        f: impl FnMut(i64, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        self.tree.scan_range(store, lo, hi, f)
    }

    /// Convenience scan with fully decoded rows.
    pub fn scan(
        &self,
        store: &mut PageStore,
        mut f: impl FnMut(i64, Vec<RowValue>) -> Result<bool>,
    ) -> Result<()> {
        let schema = self.schema.clone();
        self.tree.scan(store, |key, bytes| {
            let values = row::decode_row(&schema, bytes)?;
            f(key, values)
        })
    }

    /// Number of leaf (data) pages.
    pub fn data_pages(&self, store: &mut PageStore) -> Result<u64> {
        self.tree.leaf_pages(store)
    }

    /// Data size in bytes (leaf pages × page size) — what a clustered index
    /// scan must read. LOB pages are *not* included, matching how the
    /// paper's Table 1 scans touch only in-row data.
    pub fn data_bytes(&self, store: &mut PageStore) -> Result<u64> {
        Ok(self.data_pages(store)? * crate::page::PAGE_SIZE as u64)
    }

    /// Average stored bytes per row, including page overheads.
    pub fn bytes_per_row(&self, store: &mut PageStore) -> Result<f64> {
        if self.row_count() == 0 {
            return Ok(0.0);
        }
        Ok(self.data_bytes(store)? as f64 / self.row_count() as f64)
    }

    /// B-tree depth, for diagnostics.
    pub fn index_depth(&self, store: &mut PageStore) -> Result<u32> {
        self.tree.depth(store)
    }

    /// Looks up a column index by name, with a schema-style error.
    pub fn require_col(&self, name: &str) -> Result<usize> {
        self.schema.col_index(name).ok_or_else(|| {
            StorageError::SchemaMismatch(format!("table `{}` has no column `{name}`", self.name))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::ColType;

    fn vector_table(store: &mut PageStore, rows: i64, dim: usize) -> Table {
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(store, "Tvector", schema).unwrap();
        for k in 0..rows {
            let data: Vec<f64> = (0..dim).map(|i| (k as f64) + i as f64 * 0.1).collect();
            let arr = sqlarray_core::build::short_vector(&data).unwrap();
            t.insert(
                store,
                k,
                &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_get_scan() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        for k in 0..100 {
            t.insert(
                &mut store,
                k,
                &[RowValue::I64(k), RowValue::F64(k as f64 * 0.5)],
            )
            .unwrap();
        }
        assert_eq!(t.row_count(), 100);
        let row = t.get(&mut store, 7).unwrap().unwrap();
        assert_eq!(row, vec![RowValue::I64(7), RowValue::F64(3.5)]);
        assert_eq!(t.get(&mut store, 100).unwrap(), None);

        let mut sum = 0.0;
        t.scan(&mut store, |_, vals| {
            if let RowValue::F64(x) = vals[1] {
                sum += x;
            }
            Ok(true)
        })
        .unwrap();
        assert_eq!(sum, (0..100).map(|k| k as f64 * 0.5).sum::<f64>());
    }

    #[test]
    fn array_blob_column_round_trip() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 50, 5);
        let row = t.get(&mut store, 10).unwrap().unwrap();
        let blob = row[1].blob_bytes(&mut store).unwrap();
        let arr = sqlarray_core::SqlArray::from_blob(blob).unwrap();
        assert_eq!(arr.dims(), &[5]);
        assert_eq!(arr.item(&[0]).unwrap(), sqlarray_core::Scalar::F64(10.0));
    }

    #[test]
    fn get_col_matches_full_decode() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 20, 3);
        let full = t.get(&mut store, 5).unwrap().unwrap();
        let col = t.get_col(&mut store, 5, 1).unwrap().unwrap();
        assert_eq!(full[1], col);
    }

    #[test]
    fn storage_accounting_tracks_growth() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 2000, 5);
        let pages = t.data_pages(&mut store).unwrap();
        assert!(pages > 10);
        let bpr = t.bytes_per_row(&mut store).unwrap();
        // Row: 8 key + 8 id + (1 + 2 + 64) blob = 83 bytes + 4 slot ≈ 87;
        // plus page slack. Must be in a sane band.
        assert!((83.0..140.0).contains(&bpr), "bytes/row = {bpr}");
    }

    #[test]
    fn vector_table_is_wider_than_scalar_table() {
        // The §6.2 storage comparison: the 24-byte array header makes
        // Tvector ~43 % bigger than Tscalar.
        let mut store = PageStore::new();
        let scalar_schema = Schema::new(&[
            ("id", ColType::I64),
            ("v1", ColType::F64),
            ("v2", ColType::F64),
            ("v3", ColType::F64),
            ("v4", ColType::F64),
            ("v5", ColType::F64),
        ]);
        let mut ts = Table::create(&mut store, "Tscalar", scalar_schema).unwrap();
        for k in 0..5000 {
            let v: Vec<RowValue> = std::iter::once(RowValue::I64(k))
                .chain((0..5).map(|i| RowValue::F64(k as f64 + i as f64)))
                .collect();
            ts.insert(&mut store, k, &v).unwrap();
        }
        let tv = vector_table(&mut store, 5000, 5);
        let scalar_bpr = ts.bytes_per_row(&mut store).unwrap();
        let vector_bpr = tv.bytes_per_row(&mut store).unwrap();
        let ratio = vector_bpr / scalar_bpr;
        assert!(
            (1.2..1.7).contains(&ratio),
            "vector/scalar storage ratio {ratio:.2} outside the expected band"
        );
    }

    #[test]
    fn big_blobs_leave_thin_rows() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
        let mut t = Table::create(&mut store, "Tlob", schema).unwrap();
        let big = vec![0xAB; 100_000];
        for k in 0..20 {
            t.insert(
                &mut store,
                k,
                &[RowValue::I64(k), RowValue::Bytes(big.clone())],
            )
            .unwrap();
        }
        // 20 rows of ~33 bytes each fit in a single data page; the
        // megabytes live in LOB pages.
        assert_eq!(t.data_pages(&mut store).unwrap(), 1);
        let row = t.get(&mut store, 3).unwrap().unwrap();
        assert_eq!(row[1].blob_bytes(&mut store).unwrap(), big);
    }

    #[test]
    fn require_col_errors_on_missing() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 1, 2);
        assert_eq!(t.require_col("V").unwrap(), 1);
        assert!(t.require_col("w").is_err());
    }

    #[test]
    fn partitions_concatenate_to_the_full_scan() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 3000, 5);
        let mut full = Vec::new();
        t.scan_raw(&mut store, |k, _| {
            full.push(k);
            Ok(true)
        })
        .unwrap();
        for dop in [1usize, 2, 3, 7, 64] {
            let parts = t.partition(&mut store, dop).unwrap();
            assert!(!parts.is_empty() && parts.len() <= dop);
            let resident = store.resident_snapshot();
            let mut seen = Vec::new();
            for p in &parts {
                let mut r = store.reader(&resident);
                t.scan_partition(&mut r, p, |k, _| {
                    seen.push(k);
                    Ok(true)
                })
                .unwrap();
            }
            assert_eq!(seen, full, "dop {dop}");
        }
    }

    #[test]
    fn partition_workers_scan_concurrently() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 5000, 5);
        store.clear_cache();
        let parts = t.partition(&mut store, 4).unwrap();
        assert_eq!(parts.len(), 4);
        let resident = store.resident_snapshot();
        let shared = &store;
        let table = &t;
        let resident_ref = &resident;
        let mut results: Vec<(Vec<i64>, crate::stats::IoStats, Vec<u64>)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|p| {
                    s.spawn(move || {
                        let mut r = shared.reader(resident_ref);
                        let mut keys = Vec::new();
                        table
                            .scan_partition(&mut r, p, |k, _| {
                                keys.push(k);
                                Ok(true)
                            })
                            .unwrap();
                        let (stats, touched) = r.finish();
                        (keys, stats, touched)
                    })
                })
                .collect();
            results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        let merged: Vec<i64> = results.iter().flat_map(|(k, _, _)| k.clone()).collect();
        assert_eq!(merged, (0..5000).collect::<Vec<_>>());
        // Per-worker I/O merges to the cold full-scan cost: every leaf
        // page read exactly once, almost all sequentially.
        let mut io = crate::stats::IoStats::default();
        for (_, st, _) in &results {
            io.merge(st);
        }
        assert_eq!(io.pages_read, t.data_pages(&mut store).unwrap());
        assert_eq!(io.cache_hits, 0);
        // Each worker seeks once to the start of its partition (and the
        // chain has occasional gaps where internal pages were allocated),
        // but the scan must stay sequential-dominated.
        assert!(
            io.sequential_reads as f64 >= 0.85 * io.pages_read as f64,
            "parallel scan was not sequential: {io:?}"
        );
    }

    #[test]
    fn absorb_scan_warms_the_pool_like_a_serial_scan() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 2000, 5);
        store.clear_cache();
        let parts = t.partition(&mut store, 3).unwrap();
        let resident = store.resident_snapshot();
        let mut all_stats = crate::stats::IoStats::default();
        let mut all_touched = Vec::new();
        for p in &parts {
            let mut r = store.reader(&resident);
            t.scan_partition(&mut r, p, |_, _| Ok(true)).unwrap();
            let (st, touched) = r.finish();
            all_stats.merge(&st);
            all_touched.extend(touched);
        }
        store.absorb_scan(&all_stats, &all_touched);
        // Second pass over the same partitions is now fully cached.
        let resident = store.resident_snapshot();
        let mut rescan = crate::stats::IoStats::default();
        for p in &parts {
            let mut r = store.reader(&resident);
            t.scan_partition(&mut r, p, |_, _| Ok(true)).unwrap();
            rescan.merge(&r.finish().0);
        }
        assert_eq!(rescan.pages_read, 0);
        assert!(rescan.cache_hits > 0);
    }

    #[test]
    fn empty_and_tiny_tables_partition_sanely() {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let empty = Table::create(&mut store, "E", schema.clone()).unwrap();
        let parts = empty.partition(&mut store, 8).unwrap();
        assert_eq!(parts.len(), 1);
        let resident = store.resident_snapshot();
        let mut n = 0;
        let mut r = store.reader(&resident);
        empty
            .scan_partition(&mut r, &parts[0], |_, _| {
                n += 1;
                Ok(true)
            })
            .unwrap();
        assert_eq!(n, 0);

        let mut one = Table::create(&mut store, "O", schema).unwrap();
        one.insert(&mut store, 42, &[RowValue::I64(42), RowValue::F64(1.0)])
            .unwrap();
        let parts = one.partition(&mut store, 8).unwrap();
        assert_eq!(parts.len(), 1, "1 row < DOP collapses to one partition");
        let resident = store.resident_snapshot();
        let mut keys = Vec::new();
        let mut r = store.reader(&resident);
        one.scan_partition(&mut r, &parts[0], |k, _| {
            keys.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(keys, vec![42]);
    }

    #[test]
    fn range_scan_decodes() {
        let mut store = PageStore::new();
        let t = vector_table(&mut store, 100, 2);
        let mut keys = Vec::new();
        t.scan_range_raw(&mut store, 10, 14, |k, _| {
            keys.push(k);
            Ok(true)
        })
        .unwrap();
        assert_eq!(keys, vec![10, 11, 12, 13, 14]);
    }
}
