//! Write-ahead log: checksummed, LSN-stamped physiological records.
//!
//! Every mutation of a [`crate::store::PageStore`] — page allocation (fresh
//! or reused from the free list), page free, and page write — appends one
//! record here *before* the in-memory "disk" state is considered durable.
//! Page writes are **physiological**: the record carries the page id plus
//! the minimal contiguous byte range that changed, not the whole 8 KiB
//! image, so a B-tree slot update logs tens of bytes and a blob-chunk
//! rewrite logs only the chunk payload.
//!
//! A transaction becomes durable with a [`WalRecord::Commit`] marker, which
//! carries the serialized catalog (table name → schema → B-tree roots) as
//! its payload. Recovery ([`crate::store::PageStore::open`]) replays the log
//! from the last checkpoint image **up to the last complete commit record**
//! and discards everything after it — including a torn final record, which
//! the frame checksum detects.
//!
//! ## Frame format
//!
//! ```text
//! magic  u8   = 0xA7
//! kind   u8   (1 = alloc, 2 = free, 3 = write, 4 = commit)
//! lsn    u64  LE, strictly increasing from 1
//! len    u32  LE, payload byte count
//! payload     (kind-specific, see below)
//! check  u32  LE, checksum32 over magic..payload
//! ```
//!
//! Payloads: `alloc`/`free` are `page u64`; `write` is
//! `page u64 | off u32 | bytes…` (the changed range, `off` relative to the
//! page start); `commit` is the opaque catalog image.
//!
//! Because every store mutation happens on `&mut PageStore` (parallel scans
//! only read), the byte stream of the log is a pure function of the logical
//! operation sequence — identical at any DOP. That is what lets the
//! crash-matrix tests enumerate injection points once and assert the count
//! is the same at DOP 1/2/4/8.

use crate::errors::{Result, StorageError};
use sqlarray_core::le;

/// First byte of every WAL frame.
pub const WAL_MAGIC: u8 = 0xA7;

/// Fixed framing overhead per record: magic + kind + lsn + len + check.
pub const FRAME_OVERHEAD: usize = 1 + 1 + 8 + 4 + 4;

const KIND_ALLOC: u8 = 1;
const KIND_FREE: u8 = 2;
const KIND_WRITE: u8 = 3;
const KIND_COMMIT: u8 = 4;

/// A fast non-cryptographic 32-bit checksum (an xorshift-multiply mix over
/// 8-byte lanes, folded to 32 bits). Used both for WAL frame integrity and
/// for the store's per-page checksums verified on cold reads — cheap enough
/// to run on every pool miss.
pub fn checksum32(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let mut lane = [0u8; 8];
        lane.copy_from_slice(c);
        h ^= u64::from_le_bytes(lane);
        h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= h >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut lane = [0u8; 8];
        lane[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(lane);
        h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= h >> 29;
    }
    (h ^ (h >> 32)) as u32
}

/// One decoded write-ahead log record (payload borrowed from the log).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord<'a> {
    /// A page entered the file: appended at the end (`page == page_count`)
    /// or reclaimed from the free list (`page < page_count`).
    Alloc {
        /// The allocated page id.
        page: u64,
    },
    /// A page was returned to the free list.
    Free {
        /// The freed page id.
        page: u64,
    },
    /// A contiguous byte range of a page changed.
    Write {
        /// The written page id.
        page: u64,
        /// Byte offset of the changed range within the page.
        off: u32,
        /// The new bytes of the changed range.
        bytes: &'a [u8],
    },
    /// Transaction boundary; payload is the serialized catalog at commit.
    Commit {
        /// Opaque catalog image (decoded by the engine, not the store).
        catalog: &'a [u8],
    },
}

impl WalRecord<'_> {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Alloc { .. } => KIND_ALLOC,
            WalRecord::Free { .. } => KIND_FREE,
            WalRecord::Write { .. } => KIND_WRITE,
            WalRecord::Commit { .. } => KIND_COMMIT,
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            WalRecord::Alloc { .. } | WalRecord::Free { .. } => 8,
            WalRecord::Write { bytes, .. } => 12 + bytes.len(),
            WalRecord::Commit { catalog } => catalog.len(),
        }
    }
}

/// Appends one framed record to `log`, returning the frame's byte length.
pub fn append_record(log: &mut Vec<u8>, lsn: u64, rec: &WalRecord<'_>) -> usize {
    let start = log.len();
    log.push(WAL_MAGIC);
    log.push(rec.kind());
    le::push_u64(log, lsn);
    le::push_u32(log, rec.payload_len() as u32);
    match rec {
        WalRecord::Alloc { page } | WalRecord::Free { page } => le::push_u64(log, *page),
        WalRecord::Write { page, off, bytes } => {
            le::push_u64(log, *page);
            le::push_u32(log, *off);
            log.extend_from_slice(bytes);
        }
        WalRecord::Commit { catalog } => log.extend_from_slice(catalog),
    }
    let check = checksum32(&log[start..]);
    le::push_u32(log, check);
    log.len() - start
}

/// The result of walking a (possibly torn) log buffer.
#[derive(Debug)]
pub struct WalScan<'a> {
    /// Complete, checksum-verified records in log order, with their LSNs.
    pub records: Vec<(u64, WalRecord<'a>)>,
    /// Frame-end byte offset of each record in `records` — `ends[i]` is
    /// where record `i + 1` starts, which recovery uses to report how many
    /// trailing bytes it discarded past the last complete commit.
    pub ends: Vec<usize>,
    /// Byte length of the clean prefix (everything before the tear).
    pub clean_len: usize,
    /// Byte offset of the torn/corrupt tail, if the buffer did not end
    /// exactly on a record boundary.
    pub tear: Option<usize>,
}

/// Walks `buf` from the front, decoding records until the buffer ends or a
/// frame fails to verify (short frame, bad magic, checksum mismatch). A
/// failing frame is reported as a tear, never an error — a torn tail is
/// the *expected* state after a crash.
pub fn scan(buf: &[u8]) -> WalScan<'_> {
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off < buf.len() {
        match decode_frame(buf, off) {
            Some((lsn, rec, next)) => {
                records.push((lsn, rec));
                ends.push(next);
                off = next;
            }
            None => {
                return WalScan {
                    records,
                    ends,
                    clean_len: off,
                    tear: Some(off),
                }
            }
        }
    }
    WalScan {
        records,
        ends,
        clean_len: off,
        tear: None,
    }
}

/// Like [`scan`] but a torn tail is a typed error: the caller wants the
/// log to be whole (integrity checks, tests) rather than crash-tolerant.
pub fn scan_strict(buf: &[u8]) -> Result<Vec<(u64, WalRecord<'_>)>> {
    let s = scan(buf);
    match s.tear {
        Some(offset) => Err(StorageError::WalTorn { offset }),
        None => Ok(s.records),
    }
}

/// Decodes the frame starting at `off`; `None` if it is incomplete,
/// has a bad magic/kind, or fails its checksum.
fn decode_frame(buf: &[u8], off: usize) -> Option<(u64, WalRecord<'_>, usize)> {
    let header_end = off.checked_add(14)?;
    if header_end > buf.len() {
        return None;
    }
    if buf[off] != WAL_MAGIC {
        return None;
    }
    let kind = buf[off + 1];
    let lsn = le::u64_at(buf, off + 2);
    let payload_len = le::u32_at(buf, off + 10) as usize;
    let payload_end = header_end.checked_add(payload_len)?;
    let frame_end = payload_end.checked_add(4)?;
    if frame_end > buf.len() {
        return None;
    }
    let stored = le::u32_at(buf, payload_end);
    if checksum32(&buf[off..payload_end]) != stored {
        return None;
    }
    let payload = &buf[header_end..payload_end];
    let rec = match kind {
        KIND_ALLOC if payload_len == 8 => WalRecord::Alloc {
            page: le::u64_at(payload, 0),
        },
        KIND_FREE if payload_len == 8 => WalRecord::Free {
            page: le::u64_at(payload, 0),
        },
        KIND_WRITE if payload_len >= 12 => WalRecord::Write {
            page: le::u64_at(payload, 0),
            off: le::u32_at(payload, 8),
            bytes: &payload[12..],
        },
        KIND_COMMIT => WalRecord::Commit { catalog: payload },
        _ => return None,
    };
    Some((lsn, rec, frame_end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> (Vec<u8>, usize) {
        let mut log = Vec::new();
        append_record(&mut log, 1, &WalRecord::Alloc { page: 0 });
        append_record(
            &mut log,
            2,
            &WalRecord::Write {
                page: 0,
                off: 16,
                bytes: &[1, 2, 3],
            },
        );
        append_record(&mut log, 3, &WalRecord::Free { page: 0 });
        let commit_at = log.len();
        append_record(&mut log, 4, &WalRecord::Commit { catalog: b"cat" });
        (log, commit_at)
    }

    #[test]
    fn round_trips_every_kind() {
        let (log, _) = sample_log();
        let recs = scan_strict(&log).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0], (1, WalRecord::Alloc { page: 0 }));
        assert_eq!(
            recs[1],
            (
                2,
                WalRecord::Write {
                    page: 0,
                    off: 16,
                    bytes: &[1, 2, 3]
                }
            )
        );
        assert_eq!(recs[2], (3, WalRecord::Free { page: 0 }));
        assert_eq!(recs[3], (4, WalRecord::Commit { catalog: b"cat" }));
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_whole_record() {
        let (log, commit_at) = sample_log();
        // Cut mid-way through the commit frame.
        let torn = &log[..commit_at + 5];
        let s = scan(torn);
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.clean_len, commit_at);
        assert_eq!(s.tear, Some(commit_at));
        assert_eq!(
            scan_strict(torn),
            Err(StorageError::WalTorn { offset: commit_at })
        );
    }

    #[test]
    fn every_truncation_point_yields_a_prefix_of_records() {
        let (log, _) = sample_log();
        let whole = scan_strict(&log).unwrap();
        for cut in 0..log.len() {
            let s = scan(&log[..cut]);
            assert!(s.records.len() <= whole.len());
            assert_eq!(s.records, whole[..s.records.len()]);
            assert!(s.clean_len <= cut);
        }
    }

    #[test]
    fn corrupt_byte_fails_the_checksum() {
        let (mut log, _) = sample_log();
        let mid = log.len() / 2;
        log[mid] ^= 0x40;
        let s = scan(&log);
        assert!(s.tear.is_some(), "flipped bit must be detected");
    }

    #[test]
    fn checksum_is_sensitive_to_position_and_length() {
        assert_ne!(checksum32(&[0, 1]), checksum32(&[1, 0]));
        assert_ne!(checksum32(&[0]), checksum32(&[0, 0]));
        assert_eq!(checksum32(b"abc"), checksum32(b"abc"));
    }
}
