//! Out-of-page blob storage — the `VARBINARY(MAX)` LOB structure.
//!
//! "Blobs larger than 8 kB are stored out-of-page as B-trees. Access to
//! out-of-page data is significantly slower than on-page data because (a)
//! traversing B-trees is more expensive than simply addressing on-page
//! data, and (b) out-of-page data has to go through the [...] binary stream
//! wrapper" — which, crucially, "supports reading only parts of the binary
//! data if the whole array is not required" (§3.3).
//!
//! Layout (inode-style tree):
//! * **root page** (`BLOB_ROOT`): `type u8 | pad[3] | total_len u64 |
//!   n_chunks u32 | chunk ids u64...`. Up to [`ROOT_DIRECT`] direct chunk
//!   ids; larger blobs store [`ROOT_DIRECT`]−1 direct ids plus a
//!   continuation id in the last slot.
//! * **index page** (`BLOB_INDEX`): `type u8 | pad[3] | count u32 |
//!   next u64 | chunk ids u64...` — a chain holding the remaining ids.
//! * **chunk page** (`BLOB_CHUNK`): `type u8 | pad[15] | data...` with
//!   [`CHUNK_DATA`] payload bytes.

use crate::errors::{Result, StorageError};
use crate::page::{page_type, PageId, PAGE_SIZE};
use crate::store::PageStore;

/// Identifier of a blob: its root page.
pub type BlobId = PageId;

/// Payload bytes per chunk page.
pub const CHUNK_DATA: usize = PAGE_SIZE - 16;
/// Chunk-id slots in the root page.
pub const ROOT_DIRECT: usize = (PAGE_SIZE - 16) / 8;
/// Chunk-id slots in one index page.
pub const INDEX_IDS: usize = (PAGE_SIZE - 16) / 8;

/// Writes a blob, returning its id. Zero-length blobs are valid.
pub fn write_blob(store: &mut PageStore, data: &[u8]) -> Result<BlobId> {
    let n_chunks = data.len().div_ceil(CHUNK_DATA);

    // Write the chunks.
    let mut chunk_ids = Vec::with_capacity(n_chunks);
    for c in 0..n_chunks {
        let id = store.allocate();
        let start = c * CHUNK_DATA;
        let end = ((c + 1) * CHUNK_DATA).min(data.len());
        store.write(id, |bytes| {
            bytes[0] = page_type::BLOB_CHUNK;
            bytes[16..16 + (end - start)].copy_from_slice(&data[start..end]);
        })?;
        chunk_ids.push(id);
    }

    // Build the continuation chain for ids that do not fit the root.
    let direct = if n_chunks <= ROOT_DIRECT {
        n_chunks
    } else {
        ROOT_DIRECT - 1
    };
    let mut continuation: Option<PageId> = None;
    if n_chunks > direct {
        // Chain pages are built back to front so each can point at the next.
        let overflow: Vec<PageId> = chunk_ids[direct..].to_vec();
        let mut next: Option<PageId> = None;
        for chunk_slice in overflow.chunks(INDEX_IDS).rev() {
            let id = store.allocate();
            let next_val = next.unwrap_or(u64::MAX);
            store.write(id, |bytes| {
                bytes[0] = page_type::BLOB_INDEX;
                bytes[4..8].copy_from_slice(&(chunk_slice.len() as u32).to_le_bytes());
                bytes[8..16].copy_from_slice(&next_val.to_le_bytes());
                for (i, &cid) in chunk_slice.iter().enumerate() {
                    bytes[16 + 8 * i..24 + 8 * i].copy_from_slice(&cid.to_le_bytes());
                }
            })?;
            next = Some(id);
        }
        continuation = next;
    }

    // Root last, so the blob becomes visible atomically.
    let root = store.allocate();
    store.write(root, |bytes| {
        bytes[0] = page_type::BLOB_ROOT;
        bytes[4..12].copy_from_slice(&(data.len() as u64).to_le_bytes());
        bytes[12..16].copy_from_slice(&(n_chunks as u32).to_le_bytes());
        for (i, &cid) in chunk_ids[..direct].iter().enumerate() {
            bytes[16 + 8 * i..24 + 8 * i].copy_from_slice(&cid.to_le_bytes());
        }
        if let Some(cont) = continuation {
            let slot = ROOT_DIRECT - 1;
            bytes[16 + 8 * slot..24 + 8 * slot].copy_from_slice(&cont.to_le_bytes());
        }
    })?;
    Ok(root)
}

/// Total length of a blob in bytes.
pub fn blob_len(store: &mut PageStore, id: BlobId) -> Result<usize> {
    let bytes = store.read(id)?;
    if bytes[0] != page_type::BLOB_ROOT {
        return Err(StorageError::PageTypeMismatch {
            page: id,
            expected: page_type::BLOB_ROOT,
            got: bytes[0],
        });
    }
    Ok(u64::from_le_bytes(bytes[4..12].try_into().unwrap()) as usize)
}

/// Number of pages a blob occupies (root + index chain + chunks), for
/// storage accounting.
pub fn blob_pages(store: &mut PageStore, id: BlobId) -> Result<u64> {
    let (total_len, n_chunks) = root_info(store, id)?;
    let _ = total_len;
    let mut pages = 1 + n_chunks as u64;
    if n_chunks > ROOT_DIRECT {
        let overflow = n_chunks - (ROOT_DIRECT - 1);
        pages += overflow.div_ceil(INDEX_IDS) as u64;
    }
    Ok(pages)
}

fn root_info(store: &mut PageStore, id: BlobId) -> Result<(usize, usize)> {
    let bytes = store.read(id)?;
    if bytes[0] != page_type::BLOB_ROOT {
        return Err(StorageError::PageTypeMismatch {
            page: id,
            expected: page_type::BLOB_ROOT,
            got: bytes[0],
        });
    }
    let total = u64::from_le_bytes(bytes[4..12].try_into().unwrap()) as usize;
    let n_chunks = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    Ok((total, n_chunks))
}

/// Resolves the page id of chunk `index`, traversing the continuation chain
/// when needed. Chain pages read through the buffer pool, so repeated
/// resolution of nearby chunks is cheap (cache hits), mirroring a pinned
/// LOB root.
fn chunk_page(store: &mut PageStore, id: BlobId, index: usize) -> Result<PageId> {
    let (_, n_chunks) = root_info(store, id)?;
    debug_assert!(index < n_chunks);
    let direct = if n_chunks <= ROOT_DIRECT {
        n_chunks
    } else {
        ROOT_DIRECT - 1
    };
    if index < direct {
        let bytes = store.read(id)?;
        return Ok(u64::from_le_bytes(
            bytes[16 + 8 * index..24 + 8 * index].try_into().unwrap(),
        ));
    }
    // Walk the continuation chain.
    let mut rel = index - direct;
    let mut page = {
        let bytes = store.read(id)?;
        let slot = ROOT_DIRECT - 1;
        u64::from_le_bytes(bytes[16 + 8 * slot..24 + 8 * slot].try_into().unwrap())
    };
    loop {
        let bytes = store.read(page)?;
        if bytes[0] != page_type::BLOB_INDEX {
            return Err(StorageError::PageTypeMismatch {
                page,
                expected: page_type::BLOB_INDEX,
                got: bytes[0],
            });
        }
        let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        if rel < count {
            return Ok(u64::from_le_bytes(
                bytes[16 + 8 * rel..24 + 8 * rel].try_into().unwrap(),
            ));
        }
        rel -= count;
        let next = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if next == u64::MAX {
            return Err(StorageError::RowCorrupt(
                "blob index chain shorter than chunk count".into(),
            ));
        }
        page = next;
    }
}

/// Reads `buf.len()` bytes starting at `offset` — the partial-read path.
/// Only the chunk pages covering the range are touched.
pub fn read_blob_range(
    store: &mut PageStore,
    id: BlobId,
    offset: usize,
    buf: &mut [u8],
) -> Result<()> {
    let (total, _) = root_info(store, id)?;
    if offset + buf.len() > total {
        return Err(StorageError::BlobRangeOutOfBounds {
            offset,
            len: buf.len(),
            total,
        });
    }
    if buf.is_empty() {
        return Ok(());
    }
    let first = offset / CHUNK_DATA;
    let last = (offset + buf.len() - 1) / CHUNK_DATA;
    let mut written = 0usize;
    for c in first..=last {
        let page = chunk_page(store, id, c)?;
        let chunk_start = c * CHUNK_DATA;
        let lo = offset.max(chunk_start) - chunk_start;
        let hi = (offset + buf.len()).min(chunk_start + CHUNK_DATA) - chunk_start;
        let bytes = store.read(page)?;
        if bytes[0] != page_type::BLOB_CHUNK {
            return Err(StorageError::PageTypeMismatch {
                page,
                expected: page_type::BLOB_CHUNK,
                got: bytes[0],
            });
        }
        buf[written..written + (hi - lo)].copy_from_slice(&bytes[16 + lo..16 + hi]);
        written += hi - lo;
    }
    debug_assert_eq!(written, buf.len());
    Ok(())
}

/// Reads the entire blob.
pub fn read_blob(store: &mut PageStore, id: BlobId) -> Result<Vec<u8>> {
    let len = blob_len(store, id)?;
    let mut out = vec![0u8; len];
    read_blob_range(store, id, 0, &mut out)?;
    Ok(out)
}

/// A streamed view over one blob, implementing the array crate's
/// [`ArraySource`](sqlarray_core::stream::ArraySource) so that
/// `ArrayReader` can subset max arrays straight off the page store.
pub struct BlobStream<'a> {
    store: &'a mut PageStore,
    id: BlobId,
    len: usize,
}

impl<'a> BlobStream<'a> {
    /// Opens a stream over blob `id`.
    pub fn open(store: &'a mut PageStore, id: BlobId) -> Result<BlobStream<'a>> {
        let len = blob_len(store, id)?;
        Ok(BlobStream { store, id, len })
    }
}

impl sqlarray_core::stream::ArraySource for BlobStream<'_> {
    fn blob_len(&self) -> usize {
        self.len
    }

    fn read_at(&mut self, offset: usize, buf: &mut [u8]) -> sqlarray_core::Result<()> {
        read_blob_range(self.store, self.id, offset, buf)
            .map_err(|e| sqlarray_core::ArrayError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn small_blob_round_trip() {
        let mut store = PageStore::new();
        let data = pattern(100);
        let id = write_blob(&mut store, &data).unwrap();
        assert_eq!(blob_len(&mut store, id).unwrap(), 100);
        assert_eq!(read_blob(&mut store, id).unwrap(), data);
        assert_eq!(blob_pages(&mut store, id).unwrap(), 2); // root + 1 chunk
    }

    #[test]
    fn empty_blob() {
        let mut store = PageStore::new();
        let id = write_blob(&mut store, &[]).unwrap();
        assert_eq!(blob_len(&mut store, id).unwrap(), 0);
        assert_eq!(read_blob(&mut store, id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn exact_chunk_boundary() {
        let mut store = PageStore::new();
        for len in [CHUNK_DATA - 1, CHUNK_DATA, CHUNK_DATA + 1, 3 * CHUNK_DATA] {
            let data = pattern(len);
            let id = write_blob(&mut store, &data).unwrap();
            assert_eq!(read_blob(&mut store, id).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn six_megabyte_blob_round_trip() {
        // The turbulence use case's 6 MB velocity blobs (§2.1).
        let mut store = PageStore::new();
        let data = pattern(6 * 1024 * 1024);
        let id = write_blob(&mut store, &data).unwrap();
        assert_eq!(read_blob(&mut store, id).unwrap(), data);
    }

    #[test]
    fn range_reads_match_full_read() {
        let mut store = PageStore::new();
        let data = pattern(5 * CHUNK_DATA + 123);
        let id = write_blob(&mut store, &data).unwrap();
        for (off, len) in [
            (0usize, 10usize),
            (CHUNK_DATA - 5, 10),         // straddles a chunk boundary
            (2 * CHUNK_DATA, CHUNK_DATA), // exactly one chunk
            (data.len() - 7, 7),          // tail
            (1234, 3 * CHUNK_DATA),       // multi-chunk middle
        ] {
            let mut buf = vec![0u8; len];
            read_blob_range(&mut store, id, off, &mut buf).unwrap();
            assert_eq!(buf, &data[off..off + len], "range ({off}, {len})");
        }
    }

    #[test]
    fn out_of_bounds_range_rejected() {
        let mut store = PageStore::new();
        let id = write_blob(&mut store, &pattern(100)).unwrap();
        let mut buf = vec![0u8; 10];
        assert!(matches!(
            read_blob_range(&mut store, id, 95, &mut buf),
            Err(StorageError::BlobRangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn partial_read_touches_fewer_pages() {
        let mut store = PageStore::new();
        let data = pattern(768 * CHUNK_DATA); // ~6 MB, 768 chunks
        let id = write_blob(&mut store, &data).unwrap();
        store.clear_cache();
        store.reset_stats();
        let mut buf = vec![0u8; 64];
        read_blob_range(&mut store, id, 100 * CHUNK_DATA, &mut buf).unwrap();
        let partial_pages = store.stats().pages_read;
        assert!(
            partial_pages <= 3,
            "partial read touched {partial_pages} pages"
        );

        store.clear_cache();
        store.reset_stats();
        let _ = read_blob(&mut store, id).unwrap();
        assert!(store.stats().pages_read >= 768);
    }

    #[test]
    fn huge_blob_uses_index_chain() {
        // > ROOT_DIRECT chunks forces the continuation chain:
        // 1200 chunks ≈ 9.4 MB.
        let mut store = PageStore::new();
        let data = pattern(1200 * CHUNK_DATA);
        let id = write_blob(&mut store, &data).unwrap();
        const _: () = assert!(1200 > ROOT_DIRECT);
        assert_eq!(read_blob(&mut store, id).unwrap(), data);
        // Check a read that lands entirely in the chained region.
        let off = 1100 * CHUNK_DATA + 17;
        let mut buf = vec![0u8; 100];
        read_blob_range(&mut store, id, off, &mut buf).unwrap();
        assert_eq!(buf, &data[off..off + 100]);
        let pages = blob_pages(&mut store, id).unwrap();
        assert_eq!(pages, 1 + 1200 + 1); // root + chunks + one index page
    }

    #[test]
    fn blob_stream_feeds_array_reader() {
        use sqlarray_core::prelude::*;
        let mut store = PageStore::new();
        // A 64³ float64 max array: 2 MB payload, comfortably out-of-page.
        let a = SqlArray::from_fn(StorageClass::Max, &[64, 64, 64], |idx| {
            (idx[0] + 64 * idx[1] + 4096 * idx[2]) as f64
        })
        .unwrap();
        let id = write_blob(&mut store, a.as_blob()).unwrap();

        store.clear_cache();
        store.reset_stats();
        let stream = BlobStream::open(&mut store, id).unwrap();
        let mut reader = ArrayReader::open(stream).unwrap();
        let sub = reader.subarray(&[10, 20, 30], &[8, 8, 8], false).unwrap();
        assert_eq!(sub.dims(), &[8, 8, 8]);
        assert_eq!(
            sub.item(&[0, 0, 0]).unwrap(),
            Scalar::F64((10 + 64 * 20 + 4096 * 30) as f64)
        );
        // The 8³ kernel subset must touch far fewer pages than the 256-page
        // full blob.
        let pages = store.stats().pages_read;
        assert!(pages < 80, "streamed subarray touched {pages} pages");
    }

    #[test]
    fn wrong_page_type_detected() {
        let mut store = PageStore::new();
        let data_page = store.allocate();
        assert!(matches!(
            blob_len(&mut store, data_page),
            Err(StorageError::PageTypeMismatch { .. })
        ));
    }
}
