//! Out-of-page blob storage — the `VARBINARY(MAX)` LOB structure.
//!
//! "Blobs larger than 8 kB are stored out-of-page as B-trees. Access to
//! out-of-page data is significantly slower than on-page data because (a)
//! traversing B-trees is more expensive than simply addressing on-page
//! data, and (b) out-of-page data has to go through the [...] binary stream
//! wrapper" — which, crucially, "supports reading only parts of the binary
//! data if the whole array is not required" (§3.3).
//!
//! Layout (inode-style tree):
//! * **root page** (`BLOB_ROOT`): `type u8 | pad[3] | total_len u64 |
//!   n_chunks u32 | chunk ids u64...`. Up to [`ROOT_DIRECT`] direct chunk
//!   ids; larger blobs store [`ROOT_DIRECT`]−1 direct ids plus a
//!   continuation id in the last slot.
//! * **index page** (`BLOB_INDEX`): `type u8 | pad[3] | count u32 |
//!   next u64 | chunk ids u64...` — a chain holding the remaining ids.
//! * **chunk page** (`BLOB_CHUNK`): `type u8 | pad[15] | data...` with
//!   [`CHUNK_DATA`] payload bytes.

use crate::errors::{Result, StorageError};
use crate::page::{page_type, PageId, PAGE_SIZE};
use crate::store::{PageRead, PageStore};

/// Identifier of a blob: its root page.
pub type BlobId = PageId;

/// One byte range of a blob payload: `(offset, len)`.
pub type ByteRun = (usize, usize);

/// Payload bytes per chunk page.
pub const CHUNK_DATA: usize = PAGE_SIZE - 16;
/// Chunk-id slots in the root page.
pub const ROOT_DIRECT: usize = (PAGE_SIZE - 16) / 8;
/// Chunk-id slots in one index page.
pub const INDEX_IDS: usize = (PAGE_SIZE - 16) / 8;

/// Writes a blob, returning its id. Zero-length blobs are valid.
///
/// Pages come from [`PageStore::allocate_reuse`], so the chunk chain of a
/// previously [`free_blob`]-ed value is recycled before the file grows —
/// UPDATE churn on LOB columns stays bounded.
pub fn write_blob(store: &mut PageStore, data: &[u8]) -> Result<BlobId> {
    let n_chunks = data.len().div_ceil(CHUNK_DATA);

    // Write the chunks.
    let mut chunk_ids = Vec::with_capacity(n_chunks);
    for c in 0..n_chunks {
        let id = store.allocate_reuse();
        let start = c * CHUNK_DATA;
        let end = ((c + 1) * CHUNK_DATA).min(data.len());
        store.write(id, |bytes| {
            bytes[0] = page_type::BLOB_CHUNK;
            bytes[16..16 + (end - start)].copy_from_slice(&data[start..end]);
        })?;
        chunk_ids.push(id);
    }

    // Build the continuation chain for ids that do not fit the root.
    let direct = if n_chunks <= ROOT_DIRECT {
        n_chunks
    } else {
        ROOT_DIRECT - 1
    };
    let mut continuation: Option<PageId> = None;
    if n_chunks > direct {
        // Chain pages are built back to front so each can point at the next.
        let overflow: Vec<PageId> = chunk_ids[direct..].to_vec();
        let mut next: Option<PageId> = None;
        for chunk_slice in overflow.chunks(INDEX_IDS).rev() {
            let id = store.allocate_reuse();
            let next_val = next.unwrap_or(u64::MAX);
            store.write(id, |bytes| {
                bytes[0] = page_type::BLOB_INDEX;
                bytes[4..8].copy_from_slice(&(chunk_slice.len() as u32).to_le_bytes());
                bytes[8..16].copy_from_slice(&next_val.to_le_bytes());
                for (i, &cid) in chunk_slice.iter().enumerate() {
                    bytes[16 + 8 * i..24 + 8 * i].copy_from_slice(&cid.to_le_bytes());
                }
            })?;
            next = Some(id);
        }
        continuation = next;
    }

    // Root last, so the blob becomes visible atomically.
    let root = store.allocate_reuse();
    store.write(root, |bytes| {
        bytes[0] = page_type::BLOB_ROOT;
        bytes[4..12].copy_from_slice(&(data.len() as u64).to_le_bytes());
        bytes[12..16].copy_from_slice(&(n_chunks as u32).to_le_bytes());
        for (i, &cid) in chunk_ids[..direct].iter().enumerate() {
            bytes[16 + 8 * i..24 + 8 * i].copy_from_slice(&cid.to_le_bytes());
        }
        if let Some(cont) = continuation {
            let slot = ROOT_DIRECT - 1;
            bytes[16 + 8 * slot..24 + 8 * slot].copy_from_slice(&cont.to_le_bytes());
        }
    })?;
    Ok(root)
}

/// Total length of a blob in bytes.
///
/// Generic over [`PageRead`], so both the serial store and a parallel
/// scan worker's reader can resolve LOB lengths.
pub fn blob_len<R: PageRead + ?Sized>(reader: &mut R, id: BlobId) -> Result<usize> {
    Ok(root_info(reader, id)?.0)
}

/// Number of pages a blob occupies (root + index chain + chunks), for
/// storage accounting.
pub fn blob_pages(store: &mut PageStore, id: BlobId) -> Result<u64> {
    let (total_len, n_chunks) = root_info(store, id)?;
    let _ = total_len;
    let mut pages = 1 + n_chunks as u64;
    if n_chunks > ROOT_DIRECT {
        let overflow = n_chunks - (ROOT_DIRECT - 1);
        pages += overflow.div_ceil(INDEX_IDS) as u64;
    }
    Ok(pages)
}

/// Overwrites `data.len()` bytes of blob `id` starting at `offset`,
/// touching only the chunk pages the range intersects — the storage half
/// of the paper's `ArrayUpdate`: a small slice update of a multi-megabyte
/// array costs a handful of page writes, never a full rewrite.
///
/// The blob's length is unchanged and the root page is not rewritten;
/// ranges past the end are rejected with
/// [`StorageError::BlobRangeOutOfBounds`]. Returns the number of chunk
/// pages written.
pub fn update_blob_range(
    store: &mut PageStore,
    id: BlobId,
    offset: usize,
    data: &[u8],
) -> Result<u64> {
    let (total, n_chunks) = root_info(store, id)?;
    // checked_add: `offset + len` could wrap and pass a naive bounds check.
    if offset
        .checked_add(data.len())
        .map_or(true, |end| end > total)
    {
        return Err(StorageError::BlobRangeOutOfBounds {
            offset,
            len: data.len(),
            total,
        });
    }
    if data.is_empty() {
        return Ok(0);
    }
    // lint:allow(L003, reason = "offset + data.len() was bounds-checked against total with checked_add above and data is non-empty here, so offset + data.len() - 1 cannot wrap")
    let end = offset + data.len();
    let needed: Vec<usize> = (offset / CHUNK_DATA..=(end - 1) / CHUNK_DATA).collect();
    let pages = resolve_chunk_pages(store, id, n_chunks, &needed)?;
    for (&c, &pid) in needed.iter().zip(&pages) {
        {
            let bytes = store.read(pid)?;
            if bytes[0] != page_type::BLOB_CHUNK {
                return Err(StorageError::PageTypeMismatch {
                    page: pid,
                    expected: page_type::BLOB_CHUNK,
                    got: bytes[0],
                });
            }
        }
        let chunk_start = c * CHUNK_DATA;
        // The overlap of [offset, end) with this chunk, chunk-relative.
        let lo = offset.max(chunk_start) - chunk_start;
        let hi = end.min(chunk_start + CHUNK_DATA) - chunk_start;
        let src = chunk_start + lo - offset;
        store.write(pid, |bytes| {
            bytes[16 + lo..16 + hi].copy_from_slice(&data[src..src + (hi - lo)]);
        })?;
    }
    Ok(needed.len() as u64)
}

/// Frees every page of a blob — chunks, then the index chain, then the
/// root — returning the number of pages released to the store's free
/// list. Freed pages are recycled by [`PageStore::allocate_reuse`], so
/// UPDATE/DELETE churn on LOB columns does not grow the file.
pub fn free_blob(store: &mut PageStore, id: BlobId) -> Result<u64> {
    let (_, n_chunks) = root_info(store, id)?;
    let direct = direct_count(n_chunks);
    let mut chunks: Vec<PageId> = Vec::with_capacity(n_chunks);
    let mut continuation: Option<PageId> = None;
    {
        let bytes = store.read(id)?;
        for c in 0..direct {
            chunks.push(sqlarray_core::le::u64_at(bytes, 16 + 8 * c));
        }
        if n_chunks > direct {
            let slot = ROOT_DIRECT - 1;
            continuation = Some(sqlarray_core::le::u64_at(bytes, 16 + 8 * slot));
        }
    }
    let mut index_pages: Vec<PageId> = Vec::new();
    let mut page = continuation;
    while chunks.len() < n_chunks {
        let Some(pid) = page else {
            return Err(StorageError::RowCorrupt(
                "blob index chain shorter than chunk count".into(),
            ));
        };
        let bytes = store.read(pid)?;
        if bytes[0] != page_type::BLOB_INDEX {
            return Err(StorageError::PageTypeMismatch {
                page: pid,
                expected: page_type::BLOB_INDEX,
                got: bytes[0],
            });
        }
        let count = sqlarray_core::le::u32_at(bytes, 4) as usize;
        let take = count.min(n_chunks - chunks.len());
        for i in 0..take {
            chunks.push(sqlarray_core::le::u64_at(bytes, 16 + 8 * i));
        }
        let next = sqlarray_core::le::u64_at(bytes, 8);
        index_pages.push(pid);
        page = if next == u64::MAX { None } else { Some(next) };
    }
    // Chunks first, then the chain, root last: `allocate_reuse` is LIFO,
    // so the next `write_blob` grabs the root page first.
    let mut freed = 0u64;
    for pid in chunks.into_iter().chain(index_pages).chain([id]) {
        store.free_page(pid)?;
        freed += 1;
    }
    Ok(freed)
}

fn root_info<R: PageRead + ?Sized>(reader: &mut R, id: BlobId) -> Result<(usize, usize)> {
    let bytes = reader.read_page(id)?;
    if bytes[0] != page_type::BLOB_ROOT {
        return Err(StorageError::PageTypeMismatch {
            page: id,
            expected: page_type::BLOB_ROOT,
            got: bytes[0],
        });
    }
    let total = sqlarray_core::le::u64_at(bytes, 4) as usize;
    let n_chunks = sqlarray_core::le::u32_at(bytes, 12) as usize;
    Ok((total, n_chunks))
}

/// Number of directly rooted chunk ids for a blob of `n_chunks` chunks.
fn direct_count(n_chunks: usize) -> usize {
    if n_chunks <= ROOT_DIRECT {
        n_chunks
    } else {
        ROOT_DIRECT - 1
    }
}

/// Resolves the page ids of the (ascending, distinct) chunk indices in
/// `needed`, returning them in the same order. The root page is read once
/// and the continuation chain is walked **at most once**, so resolving a
/// whole region costs `1 + ⌈chained-span/INDEX_IDS⌉` index-page touches
/// instead of one chain walk per chunk.
fn resolve_chunk_pages<R: PageRead + ?Sized>(
    reader: &mut R,
    id: BlobId,
    n_chunks: usize,
    needed: &[usize],
) -> Result<Vec<PageId>> {
    assert!(needed.windows(2).all(|w| w[0] < w[1]));
    assert!(needed.last().map_or(true, |&c| c < n_chunks));
    let direct = direct_count(n_chunks);
    let mut out = Vec::with_capacity(needed.len());
    let mut continuation: Option<PageId> = None;
    {
        let bytes = reader.read_page(id)?;
        if bytes[0] != page_type::BLOB_ROOT {
            return Err(StorageError::PageTypeMismatch {
                page: id,
                expected: page_type::BLOB_ROOT,
                got: bytes[0],
            });
        }
        for &c in needed.iter().take_while(|&&c| c < direct) {
            out.push(sqlarray_core::le::u64_at(bytes, 16 + 8 * c));
        }
        if needed.last().is_some_and(|&c| c >= direct) {
            let slot = ROOT_DIRECT - 1;
            continuation = Some(sqlarray_core::le::u64_at(bytes, 16 + 8 * slot));
        }
    }
    // Walk the continuation chain once for the rest.
    let mut rest = needed.iter().copied().filter(|&c| c >= direct).peekable();
    let mut base = direct; // first chunk index covered by the current page
    let mut page = continuation;
    while rest.peek().is_some() {
        let Some(pid) = page else {
            return Err(StorageError::RowCorrupt(
                "blob index chain shorter than chunk count".into(),
            ));
        };
        let bytes = reader.read_page(pid)?;
        if bytes[0] != page_type::BLOB_INDEX {
            return Err(StorageError::PageTypeMismatch {
                page: pid,
                expected: page_type::BLOB_INDEX,
                got: bytes[0],
            });
        }
        let count = sqlarray_core::le::u32_at(bytes, 4) as usize;
        while let Some(&c) = rest.peek() {
            if c >= base + count {
                break;
            }
            let rel = c - base;
            out.push(sqlarray_core::le::u64_at(bytes, 16 + 8 * rel));
            rest.next();
        }
        let next = sqlarray_core::le::u64_at(bytes, 8);
        base += count;
        page = if next == u64::MAX { None } else { Some(next) };
    }
    Ok(out)
}

/// Reads `buf.len()` bytes starting at `offset` — the partial-read path.
/// Only the chunk pages covering the range are touched. Generic over
/// [`PageRead`]: scan workers read LOB ranges through their live-pool
/// [`crate::PartitionReader`] exactly like the serial store path.
pub fn read_blob_range<R: PageRead + ?Sized>(
    reader: &mut R,
    id: BlobId,
    offset: usize,
    buf: &mut [u8],
) -> Result<()> {
    let len = buf.len();
    read_blob_runs(reader, id, &[(offset, len)], buf)
}

/// Vectored partial read: fetches a set of byte runs into `out` (which
/// must be exactly the runs' total length), run after run.
///
/// This is the page-ranged backbone of `Subarray` pushdown: byte-adjacent
/// runs are coalesced, the run set is mapped to the minimal set of chunk
/// pages (root read once, continuation chain walked at most once), and
/// every page touch goes through `reader` — so the touches land in the
/// live pool with the caller's stamps and classify into its
/// [`crate::IoStats`] just like leaf-page reads, keeping parallel scans
/// bit-identical to serial.
pub fn read_blob_runs<R: PageRead + ?Sized>(
    reader: &mut R,
    id: BlobId,
    runs: &[ByteRun],
    out: &mut [u8],
) -> Result<()> {
    let (total, n_chunks) = root_info(reader, id)?;
    let mut need_len = 0usize;
    for &(offset, len) in runs {
        // checked_add: `offset + len` could wrap for a corrupt run and
        // turn an out-of-range request into a passing bounds check.
        if offset.checked_add(len).map_or(true, |end| end > total) {
            return Err(StorageError::BlobRangeOutOfBounds { offset, len, total });
        }
        need_len += len;
    }
    if need_len != out.len() {
        return Err(StorageError::RowCorrupt(format!(
            "vectored blob read plans {need_len} bytes into a {}-byte buffer",
            out.len()
        )));
    }
    if need_len == 0 {
        return Ok(());
    }

    // Coalesce byte-adjacent runs: the region planner emits runs in
    // ascending order, and neighbouring rows of a region often abut.
    let mut segments: Vec<ByteRun> = Vec::with_capacity(runs.len());
    for &(offset, len) in runs {
        if len == 0 {
            continue;
        }
        match segments.last_mut() {
            Some((seg_off, seg_len)) if *seg_off + *seg_len == offset => *seg_len += len,
            _ => segments.push((offset, len)),
        }
    }

    // Distinct chunk indices, ascending, then one batched id resolution.
    let mut needed: Vec<usize> = Vec::new();
    for &(offset, len) in &segments {
        // lint:allow(L003, reason = "segments merge runs already bounds-checked against total with checked_add above, and len > 0 here, so offset + len - 1 < total cannot wrap")
        for c in offset / CHUNK_DATA..=(offset + len - 1) / CHUNK_DATA {
            match needed.binary_search(&c) {
                Ok(_) => {}
                Err(pos) => needed.insert(pos, c),
            }
        }
    }
    let pages = resolve_chunk_pages(reader, id, n_chunks, &needed)?;
    // lint:allow(L005, reason = "the planning loop above inserted every chunk index each segment touches into `needed`, so the closure only ever looks up planned chunks")
    let page_of = |c: usize| pages[needed.binary_search(&c).expect("chunk was planned")];

    let mut cursor = 0usize;
    for &(offset, len) in &segments {
        let mut pos = offset;
        let mut remaining = len;
        while remaining > 0 {
            let c = pos / CHUNK_DATA;
            let lo = pos - c * CHUNK_DATA;
            let take = (CHUNK_DATA - lo).min(remaining);
            let page = page_of(c);
            let bytes = reader.read_page(page)?;
            if bytes[0] != page_type::BLOB_CHUNK {
                return Err(StorageError::PageTypeMismatch {
                    page,
                    expected: page_type::BLOB_CHUNK,
                    got: bytes[0],
                });
            }
            out[cursor..cursor + take].copy_from_slice(&bytes[16 + lo..16 + lo + take]);
            cursor += take;
            pos += take;
            remaining -= take;
        }
    }
    assert_eq!(cursor, out.len());
    Ok(())
}

/// Reads the entire blob.
pub fn read_blob<R: PageRead + ?Sized>(reader: &mut R, id: BlobId) -> Result<Vec<u8>> {
    let len = blob_len(reader, id)?;
    let mut out = vec![0u8; len];
    read_blob_range(reader, id, 0, &mut out)?;
    Ok(out)
}

/// A streamed view over one blob, implementing the array crate's
/// [`ArraySource`](sqlarray_core::stream::ArraySource) so that
/// `ArrayReader` can subset max arrays straight off the page store.
///
/// Generic over [`PageRead`]: `BlobStream::open(&mut store, id)` serves
/// the serial path, `BlobStream::open(&mut partition_reader, id)` gives a
/// parallel-scan worker the same lazy view through the live pool. The
/// [`read_runs`](sqlarray_core::stream::ArraySource::read_runs) override
/// routes a planned region through the vectored [`read_blob_runs`], so a
/// `Subarray` touches the minimal set of chunk pages.
pub struct BlobStream<'a, R: PageRead + ?Sized = PageStore> {
    reader: &'a mut R,
    id: BlobId,
    len: usize,
}

impl<'a, R: PageRead + ?Sized> BlobStream<'a, R> {
    /// Opens a stream over blob `id` (one root-page read).
    pub fn open(reader: &'a mut R, id: BlobId) -> Result<BlobStream<'a, R>> {
        let len = blob_len(reader, id)?;
        Ok(BlobStream { reader, id, len })
    }
}

impl<R: PageRead + ?Sized> sqlarray_core::stream::ArraySource for BlobStream<'_, R> {
    fn blob_len(&self) -> usize {
        self.len
    }

    fn read_at(&mut self, offset: usize, buf: &mut [u8]) -> sqlarray_core::Result<()> {
        read_blob_range(self.reader, self.id, offset, buf)
            .map_err(|e| sqlarray_core::ArrayError::Io(e.to_string()))
    }

    fn read_runs(&mut self, runs: &[(usize, usize)], out: &mut [u8]) -> sqlarray_core::Result<()> {
        read_blob_runs(self.reader, self.id, runs, out)
            .map_err(|e| sqlarray_core::ArrayError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn small_blob_round_trip() {
        let mut store = PageStore::new();
        let data = pattern(100);
        let id = write_blob(&mut store, &data).unwrap();
        assert_eq!(blob_len(&mut store, id).unwrap(), 100);
        assert_eq!(read_blob(&mut store, id).unwrap(), data);
        assert_eq!(blob_pages(&mut store, id).unwrap(), 2); // root + 1 chunk
    }

    #[test]
    fn empty_blob() {
        let mut store = PageStore::new();
        let id = write_blob(&mut store, &[]).unwrap();
        assert_eq!(blob_len(&mut store, id).unwrap(), 0);
        assert_eq!(read_blob(&mut store, id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn exact_chunk_boundary() {
        let mut store = PageStore::new();
        for len in [CHUNK_DATA - 1, CHUNK_DATA, CHUNK_DATA + 1, 3 * CHUNK_DATA] {
            let data = pattern(len);
            let id = write_blob(&mut store, &data).unwrap();
            assert_eq!(read_blob(&mut store, id).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn six_megabyte_blob_round_trip() {
        // The turbulence use case's 6 MB velocity blobs (§2.1).
        let mut store = PageStore::new();
        let data = pattern(6 * 1024 * 1024);
        let id = write_blob(&mut store, &data).unwrap();
        assert_eq!(read_blob(&mut store, id).unwrap(), data);
    }

    #[test]
    fn range_reads_match_full_read() {
        let mut store = PageStore::new();
        let data = pattern(5 * CHUNK_DATA + 123);
        let id = write_blob(&mut store, &data).unwrap();
        for (off, len) in [
            (0usize, 10usize),
            (CHUNK_DATA - 5, 10),         // straddles a chunk boundary
            (2 * CHUNK_DATA, CHUNK_DATA), // exactly one chunk
            (data.len() - 7, 7),          // tail
            (1234, 3 * CHUNK_DATA),       // multi-chunk middle
        ] {
            let mut buf = vec![0u8; len];
            read_blob_range(&mut store, id, off, &mut buf).unwrap();
            assert_eq!(buf, &data[off..off + len], "range ({off}, {len})");
        }
    }

    #[test]
    fn out_of_bounds_range_rejected() {
        let mut store = PageStore::new();
        let id = write_blob(&mut store, &pattern(100)).unwrap();
        let mut buf = vec![0u8; 10];
        assert!(matches!(
            read_blob_range(&mut store, id, 95, &mut buf),
            Err(StorageError::BlobRangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn partial_read_touches_fewer_pages() {
        let mut store = PageStore::new();
        let data = pattern(768 * CHUNK_DATA); // ~6 MB, 768 chunks
        let id = write_blob(&mut store, &data).unwrap();
        store.clear_cache();
        store.reset_stats();
        let mut buf = vec![0u8; 64];
        read_blob_range(&mut store, id, 100 * CHUNK_DATA, &mut buf).unwrap();
        let partial_pages = store.stats().pages_read;
        assert!(
            partial_pages <= 3,
            "partial read touched {partial_pages} pages"
        );

        store.clear_cache();
        store.reset_stats();
        let _ = read_blob(&mut store, id).unwrap();
        assert!(store.stats().pages_read >= 768);
    }

    #[test]
    fn huge_blob_uses_index_chain() {
        // > ROOT_DIRECT chunks forces the continuation chain:
        // 1200 chunks ≈ 9.4 MB.
        let mut store = PageStore::new();
        let data = pattern(1200 * CHUNK_DATA);
        let id = write_blob(&mut store, &data).unwrap();
        const _: () = assert!(1200 > ROOT_DIRECT);
        assert_eq!(read_blob(&mut store, id).unwrap(), data);
        // Check a read that lands entirely in the chained region.
        let off = 1100 * CHUNK_DATA + 17;
        let mut buf = vec![0u8; 100];
        read_blob_range(&mut store, id, off, &mut buf).unwrap();
        assert_eq!(buf, &data[off..off + 100]);
        let pages = blob_pages(&mut store, id).unwrap();
        assert_eq!(pages, 1 + 1200 + 1); // root + chunks + one index page
    }

    #[test]
    fn blob_stream_feeds_array_reader() {
        use sqlarray_core::prelude::*;
        let mut store = PageStore::new();
        // A 64³ float64 max array: 2 MB payload, comfortably out-of-page.
        let a = SqlArray::from_fn(StorageClass::Max, &[64, 64, 64], |idx| {
            (idx[0] + 64 * idx[1] + 4096 * idx[2]) as f64
        })
        .unwrap();
        let id = write_blob(&mut store, a.as_blob()).unwrap();

        store.clear_cache();
        store.reset_stats();
        let stream = BlobStream::open(&mut store, id).unwrap();
        let mut reader = ArrayReader::open(stream).unwrap();
        let sub = reader.subarray(&[10, 20, 30], &[8, 8, 8], false).unwrap();
        assert_eq!(sub.dims(), &[8, 8, 8]);
        assert_eq!(
            sub.item(&[0, 0, 0]).unwrap(),
            Scalar::F64((10 + 64 * 20 + 4096 * 30) as f64)
        );
        // The 8³ kernel subset must touch far fewer pages than the 256-page
        // full blob.
        let pages = store.stats().pages_read;
        assert!(pages < 80, "streamed subarray touched {pages} pages");
    }

    #[test]
    fn vectored_runs_match_scalar_ranges() {
        let mut store = PageStore::new();
        let data = pattern(10 * CHUNK_DATA + 77);
        let id = write_blob(&mut store, &data).unwrap();
        let runs = [
            (5usize, 100usize),
            (105, 50), // adjacent to the previous run: coalesces
            (CHUNK_DATA - 3, 10),
            (3 * CHUNK_DATA, 2 * CHUNK_DATA),
            (data.len() - 9, 9),
        ];
        let total: usize = runs.iter().map(|r| r.1).sum();
        let mut out = vec![0u8; total];
        read_blob_runs(&mut store, id, &runs, &mut out).unwrap();
        let mut expect = Vec::new();
        for &(o, l) in &runs {
            expect.extend_from_slice(&data[o..o + l]);
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn vectored_runs_touch_minimal_pages() {
        let mut store = PageStore::new();
        let data = pattern(1300 * CHUNK_DATA); // > ROOT_DIRECT: chained
        let id = write_blob(&mut store, &data).unwrap();
        store.clear_cache();
        store.reset_stats();
        // 32 scattered 40-byte runs, one per chunk, in the chained region.
        let runs: Vec<ByteRun> = (0..32)
            .map(|i| ((1250 + i) * CHUNK_DATA + 11, 40))
            .collect();
        let mut out = vec![0u8; 32 * 40];
        read_blob_runs(&mut store, id, &runs, &mut out).unwrap();
        let st = store.stats();
        // 32 chunk pages + root + the index chain (≤ 2 pages).
        assert!(st.pages_read <= 32 + 3, "touched {st:?}");
        for (i, &(o, _)) in runs.iter().enumerate() {
            assert_eq!(&out[i * 40..(i + 1) * 40], &data[o..o + 40]);
        }
    }

    #[test]
    fn vectored_runs_validate_bounds_and_buffer() {
        let mut store = PageStore::new();
        let data = pattern(100);
        let id = write_blob(&mut store, &data).unwrap();
        let mut buf = vec![0u8; 10];
        assert!(matches!(
            read_blob_runs(&mut store, id, &[(95, 10)], &mut buf),
            Err(StorageError::BlobRangeOutOfBounds { .. })
        ));
        // Planned bytes must equal the output buffer exactly.
        assert!(read_blob_runs(&mut store, id, &[(0, 5)], &mut buf).is_err());
        read_blob_runs(&mut store, id, &[(0, 4), (4, 6)], &mut buf).unwrap();
        assert_eq!(buf, &data[..10]);
    }

    #[test]
    fn partition_reader_reads_blobs_through_the_live_pool() {
        // A scan worker resolves LOBs through its own reader: same bytes,
        // counters classified into the worker's ScanIo, pool touched live.
        let mut store = PageStore::new();
        let data = pattern(3 * CHUNK_DATA);
        let id = write_blob(&mut store, &data).unwrap();
        store.clear_cache();
        store.reset_stats();
        let scan = store.begin_scan();
        let mut r = store.reader(&scan, 0);
        let got = read_blob(&mut r, id).unwrap();
        assert_eq!(got, data);
        let io = r.finish();
        assert_eq!(io.io.pages_read, 4); // root + 3 chunks, cold
        drop(scan);
        store.finish_scan([&io]);
        assert_eq!(store.stats().pages_read, 4);
        // The pages are now resident: a serial re-read is all cache hits.
        let before = store.stats();
        let again = read_blob(&mut store, id).unwrap();
        assert_eq!(again, data);
        assert_eq!(store.stats().since(&before).pages_read, 0);
    }

    #[test]
    fn update_range_rewrites_only_touched_chunks() {
        let mut store = PageStore::new();
        let mut data = pattern(6 * CHUNK_DATA + 123);
        let id = write_blob(&mut store, &data).unwrap();
        let off = 2 * CHUNK_DATA - 5;
        let patch: Vec<u8> = (0..CHUNK_DATA + 10).map(|i| (i % 7) as u8 ^ 0xAA).collect();
        let before = store.stats();
        let touched = update_blob_range(&mut store, id, off, &patch).unwrap();
        assert_eq!(touched, 3); // straddles chunks 1, 2 and 3
        assert_eq!(store.stats().since(&before).pages_written, 3);
        data[off..off + patch.len()].copy_from_slice(&patch);
        assert_eq!(read_blob(&mut store, id).unwrap(), data);
    }

    #[test]
    fn update_range_validates_bounds() {
        let mut store = PageStore::new();
        let id = write_blob(&mut store, &pattern(100)).unwrap();
        assert!(matches!(
            update_blob_range(&mut store, id, 95, &pattern(10)),
            Err(StorageError::BlobRangeOutOfBounds { .. })
        ));
        // An offset that would wrap `offset + len` must also be rejected.
        assert!(matches!(
            update_blob_range(&mut store, id, usize::MAX, &pattern(2)),
            Err(StorageError::BlobRangeOutOfBounds { .. })
        ));
        // Empty updates are no-ops.
        let before = store.stats();
        assert_eq!(update_blob_range(&mut store, id, 50, &[]).unwrap(), 0);
        assert_eq!(store.stats().since(&before).pages_written, 0);
    }

    #[test]
    fn small_slice_update_of_16mb_array_is_bounded() {
        // The paper's ArrayUpdate use case: patch a 0.78 % slice of a
        // 16 MB array and prove the write cost is proportional to the
        // slice, not the array.
        let mut store = PageStore::new();
        let len = 16 * 1024 * 1024;
        let data = pattern(len);
        let id = write_blob(&mut store, &data).unwrap();
        let slice = vec![0x5Au8; len / 128]; // 0.78 % of the array
        let before = store.stats();
        let touched = update_blob_range(&mut store, id, 7 * CHUNK_DATA + 11, &slice).unwrap();
        let bound = slice.len().div_ceil(CHUNK_DATA) as u64 + 1; // intersecting chunks
        assert!(touched <= bound, "touched {touched} pages, bound {bound}");
        assert_eq!(store.stats().since(&before).pages_written, touched);
        let mut expect = data;
        expect[7 * CHUNK_DATA + 11..7 * CHUNK_DATA + 11 + slice.len()].copy_from_slice(&slice);
        assert_eq!(read_blob(&mut store, id).unwrap(), expect);
    }

    #[test]
    fn free_blob_releases_every_page_for_reuse() {
        let mut store = PageStore::new();
        let data = pattern(3 * CHUNK_DATA + 9);
        let id = write_blob(&mut store, &data).unwrap();
        let pages = blob_pages(&mut store, id).unwrap();
        let count_before = store.page_count();
        let freed = free_blob(&mut store, id).unwrap();
        assert_eq!(freed, pages);
        assert_eq!(store.free_pages().len() as u64, pages);
        // A same-size rewrite recycles every freed page: no file growth.
        let id2 = write_blob(&mut store, &data).unwrap();
        assert_eq!(store.page_count(), count_before);
        assert_eq!(read_blob(&mut store, id2).unwrap(), data);
        assert!(store.free_pages().is_empty());
    }

    #[test]
    fn free_blob_covers_the_index_chain() {
        let mut store = PageStore::new();
        let data = pattern(1100 * CHUNK_DATA); // > ROOT_DIRECT: chained
        let id = write_blob(&mut store, &data).unwrap();
        let pages = blob_pages(&mut store, id).unwrap();
        assert_eq!(pages, 1 + 1100 + 1); // root + chunks + one index page
        let freed = free_blob(&mut store, id).unwrap();
        assert_eq!(freed, pages);
        assert_eq!(store.free_pages().len() as u64, pages);
    }

    #[test]
    fn wrong_page_type_detected() {
        let mut store = PageStore::new();
        let data_page = store.allocate();
        assert!(matches!(
            blob_len(&mut store, data_page),
            Err(StorageError::PageTypeMismatch { .. })
        ));
    }
}
