//! The page store: an in-memory "disk" of 8 kB pages fronted by a live,
//! concurrent buffer pool with sharded-LRU replacement and full I/O
//! accounting.
//!
//! All structures (B-trees, blob streams, tables) read and write through
//! [`PageStore`], so the counters in [`IoStats`]
//! capture exactly the page traffic a SQL Server clustered-index scan or
//! LOB fetch would generate, and the
//! [`DiskProfile`] converts them into simulated
//! disk seconds.
//!
//! ## Serial path vs. scan path
//!
//! Serial accesses (`read`/`write`/`allocate`, `&mut self`) consult the
//! live pool directly. Parallel scans split the work: each worker holds a
//! [`PartitionReader`] that touches the **live pool as it reads** (so
//! concurrent readers and writers observe true residency immediately)
//! while classifying its I/O for the *cost model* against the
//! start-of-scan residency snapshot in [`ScanCtx`] — which keeps the
//! simulated [`IoStats`] deterministic and DOP-invariant even though the
//! pool itself is shared live. [`PageStore::finish_scan`] folds the
//! per-worker counters back in partition order, fixing up the
//! sequential/random classification across partition boundaries so the
//! merged counters equal a serial scan's exactly.

use crate::errors::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};
use crate::pool::{pool_stamp, PoolStamp, ShardedLruPool};
use crate::stats::{DiskProfile, IoStats};
use crate::wal::{self, WalRecord};
use sqlarray_core::lifecycle::QueryCtx;
use sqlarray_core::sync::lock_unpoisoned;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default buffer-pool capacity (pages). 4096 pages = 32 MiB, small enough
/// that the Table 1 scans (hundreds of MB) are disk-bound after a cache
/// clear, as in the paper.
pub const DEFAULT_POOL_PAGES: usize = 4096;

/// Auto-checkpoint threshold: a commit whose log has grown past this many
/// bytes folds the log into a fresh base image and truncates it.
pub const AUTO_CHECKPOINT_BYTES: usize = 8 * 1024 * 1024;

/// How many times a [`PartitionReader`] re-attempts a physical page read
/// that hit a (simulated) transient fault before surfacing
/// [`StorageError::ReadFaulted`]. The bound keeps a persistently failing
/// device from wedging a scan; the retries themselves are counted in
/// [`IoStats::transient_retries`].
pub const MAX_READ_RETRIES: u32 = 3;

/// Checksum of an all-zero page (every fresh allocation starts here).
fn zero_page_sum() -> u32 {
    static SUM: OnceLock<u32> = OnceLock::new();
    *SUM.get_or_init(|| wal::checksum32(&[0u8; PAGE_SIZE]))
}

/// A deterministic crash-injection plan: the store accepts exactly
/// `allow_records` more durable WAL appends, then "loses power" — later
/// appends are dropped, and the first dropped record can optionally leave
/// a torn prefix of `torn_bytes` bytes (always strictly shorter than the
/// frame, so it never verifies).
///
/// Arming a plan also disables auto-checkpointing, since a checkpoint is
/// modeled as an atomic rewrite of the base image and would absorb the
/// very log the harness wants to cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailPlan {
    /// Number of WAL appends that still reach the durable log.
    pub allow_records: u64,
    /// Bytes of the first *dropped* record to keep as a torn tail
    /// (0 = clean cut at a record boundary).
    pub torn_bytes: usize,
}

#[derive(Debug)]
struct FailState {
    plan: FailPlan,
    appended: u64,
}

/// The durable state of a store at a crash point: the last checkpoint's
/// base image plus whatever log bytes survived. This is everything
/// [`PageStore::open`] needs — and everything a crash can preserve.
///
/// The fields are public so fault-injection harnesses can corrupt the
/// "disk" between crash and reboot (tear the final page, flip a byte)
/// and assert the typed errors recovery raises.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskImage {
    /// Base page images from the last checkpoint.
    pub pages: Vec<Box<[u8]>>,
    /// Per-page checksums of `pages`, verified on reboot.
    pub sums: Vec<u32>,
    /// Free-list state at the last checkpoint (LIFO order).
    pub free: Vec<PageId>,
    /// Write-ahead log bytes appended since the checkpoint (possibly torn).
    pub wal: Vec<u8>,
}

/// What [`PageStore::open`] hands back after replaying a [`DiskImage`].
#[derive(Debug)]
pub struct Recovery {
    /// The recovered store, checkpointed at the last complete commit
    /// (its log is empty and its base image is the recovered state).
    pub store: PageStore,
    /// The catalog payload of the last complete commit record, if any
    /// commit survived — the engine rebuilds its tables from this.
    pub catalog: Option<Vec<u8>>,
    /// WAL records replayed (everything up to and including the last
    /// complete commit).
    pub applied_records: usize,
    /// Log bytes discarded past the last complete commit (uncommitted
    /// records plus any torn tail).
    pub discarded_bytes: usize,
}

/// The page file plus its buffer pool.
pub struct PageStore {
    pages: Vec<Box<[u8]>>,
    /// Per-page checksum of the current contents, restamped on every
    /// write and verified on every cold (pool-miss) read.
    sums: Vec<u32>,
    /// Freed page ids available for reuse, LIFO.
    free: Vec<PageId>,
    /// Write-ahead log since the last checkpoint.
    wal_buf: Vec<u8>,
    next_lsn: u64,
    /// Base image from the last checkpoint (empty = genesis: an empty
    /// file, with the whole history in `wal_buf`).
    base_pages: Vec<Box<[u8]>>,
    base_sums: Vec<u32>,
    base_free: Vec<PageId>,
    fail: Option<FailState>,
    /// Before-image scratch for computing physiological write diffs.
    scratch: Box<[u8]>,
    pool: ShardedLruPool,
    /// Logical clock behind every pool stamp: serial touches take a fresh
    /// epoch each, a parallel scan takes one epoch for all its workers.
    clock: AtomicU64,
    /// Commit epoch: bumped by every [`commit`](Self::commit). Scans record
    /// it at [`begin_scan`](Self::begin_scan) so a reader can name the
    /// committed state its snapshot was taken against.
    committed: AtomicU64,
    /// I/O accounting shared by the serial path and concurrent scan
    /// merges. Behind its own mutex so read-only consumers
    /// ([`stats`](Self::stats), [`finish_scan`](Self::finish_scan),
    /// [`io_seconds_since`](Self::io_seconds_since)) work through
    /// `&self` — which is what lets many sessions scan one shared store
    /// under a read lock.
    acct: Mutex<Acct>,
    /// Armed transient-read faults remaining (see
    /// [`arm_read_faults`](Self::arm_read_faults)); atomic so concurrent
    /// scan workers consume from one deterministic global pool.
    read_faults: AtomicU64,
    /// Faults a single physical read consumes at most (the per-read
    /// "burst"); values above [`MAX_READ_RETRIES`] make a read fail for
    /// good.
    read_fault_burst: AtomicU64,
    profile: DiskProfile,
}

/// The mutable I/O-accounting state: counters plus the simulated disk
/// head. Grouped so it can sit behind one short-lived [`Mutex`] — the
/// guard is never held across a page access or a scan fan-out.
#[derive(Debug, Default, Clone, Copy)]
struct Acct {
    stats: IoStats,
    last_physical_read: Option<PageId>,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("pages", &self.pages.len())
            .field("pool_resident", &self.pool.len())
            .field("wal_bytes", &self.wal_buf.len())
            .field("free_pages", &self.free.len())
            .field("stats", &self.acct().stats)
            .finish()
    }
}

impl PageStore {
    /// Creates an empty store with the default pool size and disk profile.
    pub fn new() -> PageStore {
        PageStore::with_pool(DEFAULT_POOL_PAGES, DiskProfile::default())
    }

    /// Creates an empty store with an explicit pool capacity (in pages) and
    /// disk profile.
    pub fn with_pool(pool_pages: usize, profile: DiskProfile) -> PageStore {
        PageStore {
            pages: Vec::new(),
            sums: Vec::new(),
            free: Vec::new(),
            wal_buf: Vec::new(),
            next_lsn: 1,
            base_pages: Vec::new(),
            base_sums: Vec::new(),
            base_free: Vec::new(),
            fail: None,
            scratch: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            pool: ShardedLruPool::new(pool_pages),
            clock: AtomicU64::new(1),
            committed: AtomicU64::new(0),
            acct: Mutex::new(Acct::default()),
            read_faults: AtomicU64::new(0),
            read_fault_burst: AtomicU64::new(0),
            profile,
        }
    }

    /// The accounting guard. The critical sections are counter arithmetic
    /// only, so the repo-wide recover-on-poison policy
    /// ([`sqlarray_core::sync`]) applies trivially.
    fn acct(&self) -> MutexGuard<'_, Acct> {
        lock_unpoisoned(&self.acct)
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// The live buffer pool (resident-set inspection for tests/tools).
    pub fn pool(&self) -> &ShardedLruPool {
        &self.pool
    }

    /// A fresh serial stamp: a new epoch, higher than every stamp issued
    /// before it.
    fn serial_stamp(&self) -> PoolStamp {
        pool_stamp(self.clock.fetch_add(1, Ordering::Relaxed), 0, 0)
    }

    /// Appends one record to the write-ahead log, honoring any armed
    /// [`FailPlan`]: appends past the plan's allowance are dropped (the
    /// first dropped one optionally leaves a torn prefix). The attempt is
    /// always counted in [`IoStats`], which is how crash harnesses
    /// enumerate injection points from a clean run.
    fn append_wal(&mut self, rec: &WalRecord<'_>) {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let appended_bytes;
        match &mut self.fail {
            None => {
                appended_bytes = wal::append_record(&mut self.wal_buf, lsn, rec);
            }
            Some(f) => {
                let mut frame = Vec::new();
                appended_bytes = wal::append_record(&mut frame, lsn, rec);
                if f.appended < f.plan.allow_records {
                    self.wal_buf.extend_from_slice(&frame);
                } else if f.appended == f.plan.allow_records && f.plan.torn_bytes > 0 {
                    // A torn write is strictly shorter than the frame, so
                    // it can never verify as complete.
                    let keep = f.plan.torn_bytes.min(frame.len().saturating_sub(1));
                    self.wal_buf.extend_from_slice(&frame[..keep]);
                }
                f.appended += 1;
            }
        }
        let mut acct = self.acct();
        acct.stats.wal_records += 1;
        acct.stats.wal_bytes += appended_bytes as u64;
    }

    /// Allocates a zeroed page **at the end of the file** and returns its
    /// id. The fresh page is resident in the pool (it was just produced in
    /// memory). Bulk builds rely on consecutive calls returning
    /// consecutive ids; reuse-aware callers want
    /// [`allocate_reuse`](Self::allocate_reuse) instead.
    pub fn allocate(&mut self) -> PageId {
        let id = self.pages.len() as PageId;
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        self.sums.push(zero_page_sum());
        self.append_wal(&WalRecord::Alloc { page: id });
        self.pool.touch_or_insert(id, self.serial_stamp());
        id
    }

    /// Allocates a zeroed page, preferring to reclaim the most recently
    /// freed page over growing the file — the path blob-chunk and B-tree
    /// maintenance use so UPDATE/DELETE churn does not leak pages.
    pub fn allocate_reuse(&mut self) -> PageId {
        let Some(id) = self.free.pop() else {
            return self.allocate();
        };
        self.pages[id as usize].fill(0);
        self.sums[id as usize] = zero_page_sum();
        self.append_wal(&WalRecord::Alloc { page: id });
        self.pool.touch_or_insert(id, self.serial_stamp());
        id
    }

    /// Returns a page to the free list for later reuse. The bytes are left
    /// in place (zeroed on reallocation); only the allocation state
    /// changes, and the transition is WAL-logged.
    pub fn free_page(&mut self, id: PageId) -> Result<()> {
        if id as usize >= self.pages.len() {
            return Err(StorageError::PageOutOfRange {
                page: id,
                max: self.pages.len() as u64,
            });
        }
        self.free.push(id);
        self.append_wal(&WalRecord::Free { page: id });
        Ok(())
    }

    /// The free list, most recently freed last (inspection for tests).
    pub fn free_pages(&self) -> &[PageId] {
        &self.free
    }

    /// Reads a page, going through the buffer pool.
    pub fn read(&mut self, id: PageId) -> Result<&[u8]> {
        self.fault_in(id)?;
        Ok(&self.pages[id as usize])
    }

    /// Writes a page through a closure, going through the buffer pool and
    /// counting one page write. The minimal contiguous byte range the
    /// closure changed is appended to the write-ahead log as a
    /// physiological record, and the page's checksum is restamped.
    pub fn write(&mut self, id: PageId, f: impl FnOnce(&mut [u8])) -> Result<()> {
        self.fault_in(id)?;
        self.acct().stats.pages_written += 1;
        self.scratch.copy_from_slice(&self.pages[id as usize]);
        f(&mut self.pages[id as usize]);
        let Some((first, last)) = diff_range(&self.scratch, &self.pages[id as usize]) else {
            return Ok(()); // byte-identical rewrite: nothing to log
        };
        self.sums[id as usize] = wal::checksum32(&self.pages[id as usize]);
        let bytes = self.pages[id as usize][first..=last].to_vec();
        self.append_wal(&WalRecord::Write {
            page: id,
            off: first as u32,
            bytes: &bytes,
        });
        Ok(())
    }

    /// Pool/disk bookkeeping for one logical access of `id`. A pool miss
    /// is a (simulated) transfer from disk, so the page's checksum is
    /// verified before the bytes are handed out — cache hits skip the
    /// check, exactly like a real buffer pool only checksums on page-in.
    fn fault_in(&mut self, id: PageId) -> Result<()> {
        if id as usize >= self.pages.len() {
            return Err(StorageError::PageOutOfRange {
                page: id,
                max: self.pages.len() as u64,
            });
        }
        if self.pool.touch_or_insert(id, self.serial_stamp()) {
            self.acct().stats.cache_hits += 1;
        } else {
            {
                let mut acct = self.acct();
                acct.stats.pages_read += 1;
                match acct.last_physical_read {
                    // `checked_add`: `prev` can be `u64::MAX`-adjacent in
                    // synthetic tests; a plain `prev + 1` overflows in debug
                    // builds.
                    Some(prev) if prev.checked_add(1) == Some(id) => {
                        acct.stats.sequential_reads += 1
                    }
                    _ => acct.stats.random_reads += 1,
                }
                acct.last_physical_read = Some(id);
            }
            let computed = wal::checksum32(&self.pages[id as usize]);
            let stored = self.sums[id as usize];
            if stored != computed {
                return Err(StorageError::PageCorrupt {
                    page: id,
                    stored,
                    computed,
                });
            }
        }
        Ok(())
    }

    /// Empties the buffer pool — the cache clear the paper performs before
    /// every measured run ("the database server cache was explicitly
    /// cleared before each performance test run", §6.3).
    pub fn clear_cache(&self) {
        self.pool.clear();
        self.acct().last_physical_read = None;
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.acct().stats
    }

    /// Resets the I/O counters (the cache contents are unaffected).
    pub fn reset_stats(&self) {
        *self.acct() = Acct::default();
    }

    /// The simulated disk head: the last page physically read. Cache hits
    /// never move it — only actual (simulated) platter traffic does.
    pub fn seek_position(&self) -> Option<PageId> {
        self.acct().last_physical_read
    }

    /// The disk cost model in effect.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Simulated disk seconds for the I/O performed since `before`.
    pub fn io_seconds_since(&self, before: &IoStats) -> f64 {
        self.profile.io_seconds(&self.acct().stats.since(before))
    }

    /// The current commit epoch: how many [`commit`](Self::commit)s this
    /// store has accepted. A scan's snapshot names the epoch it read
    /// against (see [`ScanCtx::snapshot_epoch`]).
    pub fn committed_epoch(&self) -> u64 {
        self.committed.load(Ordering::Acquire)
    }

    /// Appends a commit marker carrying `catalog` (the engine's serialized
    /// table directory) to the write-ahead log. Everything logged since
    /// the previous commit becomes durable with this record; recovery
    /// never applies past the last complete commit.
    ///
    /// When the log has grown past [`AUTO_CHECKPOINT_BYTES`] the commit
    /// also checkpoints — unless a [`FailPlan`] is armed, because the
    /// crash harness needs the log to stay cuttable.
    pub fn commit(&mut self, catalog: &[u8]) {
        self.append_wal(&WalRecord::Commit { catalog });
        self.committed.fetch_add(1, Ordering::AcqRel);
        if self.fail.is_none() && self.wal_buf.len() >= AUTO_CHECKPOINT_BYTES {
            self.checkpoint();
        }
    }

    /// Folds the current state into a fresh base image and truncates the
    /// log. Modeled as atomic: a crash is either before (old base + old
    /// log) or after (new base + empty log).
    pub fn checkpoint(&mut self) {
        self.base_pages = self.pages.clone();
        self.base_sums = self.sums.clone();
        self.base_free = self.free.clone();
        self.wal_buf.clear();
    }

    /// Bytes currently in the write-ahead log (since the last checkpoint).
    pub fn wal_len(&self) -> usize {
        self.wal_buf.len()
    }

    /// Arms a deterministic crash-injection plan. Subsequent WAL appends
    /// beyond the plan's allowance are dropped (see [`FailPlan`]); the
    /// in-memory state keeps mutating so the victim operation "succeeds"
    /// in-process, exactly like a process that loses power after the
    /// kernel buffered its writes.
    pub fn arm_fail(&mut self, plan: FailPlan) {
        self.fail = Some(FailState { plan, appended: 0 });
    }

    /// Disarms any crash-injection plan.
    pub fn disarm_fail(&mut self) {
        self.fail = None;
    }

    /// Arms `count` transient read faults, consumed by scan workers'
    /// physical page reads at up to `burst` faults per read. Each
    /// consumed fault forces one retry through the bounded
    /// retry-with-backoff path (counted in
    /// [`IoStats::transient_retries`]); a `burst` above
    /// [`MAX_READ_RETRIES`] exhausts a read's retry budget and surfaces
    /// [`StorageError::ReadFaulted`]. The pool is global and atomic, so
    /// the *total* number of retries is deterministic at any DOP even
    /// though which worker absorbs each fault is not.
    pub fn arm_read_faults(&self, count: u64, burst: u32) {
        self.read_fault_burst.store(burst as u64, Ordering::Relaxed);
        self.read_faults.store(count, Ordering::Relaxed);
    }

    /// Transient read faults still armed (0 = disarmed or all consumed).
    pub fn read_faults_remaining(&self) -> u64 {
        self.read_faults.load(Ordering::Relaxed)
    }

    /// The durable state a crash right now would preserve: the last
    /// checkpoint's base image plus the surviving log bytes. Feed it to
    /// [`PageStore::open`] to model the reboot.
    pub fn crash_image(&self) -> DiskImage {
        DiskImage {
            pages: self.base_pages.clone(),
            sums: self.base_sums.clone(),
            free: self.base_free.clone(),
            wal: self.wal_buf.clone(),
        }
    }

    /// Boots a store from a (possibly crash-cut, possibly corrupted) disk
    /// image: verifies the base pages against their checksums, replays the
    /// log **up to the last complete commit record**, and discards the
    /// uncommitted/torn tail. The recovered store starts checkpointed at
    /// the committed state with a cold (empty) buffer pool.
    pub fn open(image: &DiskImage) -> Result<Recovery> {
        PageStore::open_with(image, DEFAULT_POOL_PAGES, DiskProfile::default())
    }

    /// [`open`](Self::open) with an explicit pool size and disk profile.
    pub fn open_with(
        image: &DiskImage,
        pool_pages: usize,
        profile: DiskProfile,
    ) -> Result<Recovery> {
        if image.sums.len() != image.pages.len() {
            return Err(StorageError::CatalogCorrupt(format!(
                "disk image has {} pages but {} checksums",
                image.pages.len(),
                image.sums.len()
            )));
        }
        for (i, (page, &stored)) in image.pages.iter().zip(&image.sums).enumerate() {
            if page.len() != PAGE_SIZE {
                return Err(StorageError::PageCorrupt {
                    page: i as u64,
                    stored,
                    computed: 0,
                });
            }
            let computed = wal::checksum32(page);
            if computed != stored {
                return Err(StorageError::PageCorrupt {
                    page: i as u64,
                    stored,
                    computed,
                });
            }
        }

        let scanned = wal::scan(&image.wal);
        let last_commit = scanned
            .records
            .iter()
            .rposition(|(_, r)| matches!(r, WalRecord::Commit { .. }));

        let mut store = PageStore::with_pool(pool_pages, profile);
        store.pages = image.pages.clone();
        store.sums = image.sums.clone();
        store.free = image.free.clone();

        let mut catalog: Option<Vec<u8>> = None;
        let mut applied_records = 0usize;
        let mut max_lsn = 0u64;
        if let Some(last) = last_commit {
            for (i, (lsn, rec)) in scanned.records.iter().take(last + 1).enumerate() {
                store.apply_replay(i, rec)?;
                max_lsn = max_lsn.max(*lsn);
                applied_records = i + 1;
            }
            if let WalRecord::Commit { catalog: c } = &scanned.records[last].1 {
                catalog = Some(c.to_vec());
            }
        }
        let clean_end = last_commit.map(|i| scanned.ends[i]).unwrap_or(0);
        let discarded_bytes = image.wal.len() - clean_end;

        store.next_lsn = max_lsn + 1;
        store.checkpoint();
        Ok(Recovery {
            store,
            catalog,
            applied_records,
            discarded_bytes,
        })
    }

    /// Applies one replayed WAL record to the booting store, mirroring
    /// exactly what the live mutation did. `idx` only feeds error reports.
    fn apply_replay(&mut self, idx: usize, rec: &WalRecord<'_>) -> Result<()> {
        let corrupt = |msg: String| StorageError::WalCorrupt { offset: idx, msg };
        match rec {
            WalRecord::Alloc { page } => {
                let p = *page as usize;
                if p == self.pages.len() {
                    self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
                    self.sums.push(zero_page_sum());
                } else if self.free.last() == Some(page) {
                    self.free.pop();
                    if let Some(bytes) = self.pages.get_mut(p) {
                        bytes.fill(0);
                        self.sums[p] = zero_page_sum();
                    }
                } else {
                    return Err(corrupt(format!(
                        "alloc of page {page} matches neither the file end nor the free-list top"
                    )));
                }
            }
            WalRecord::Free { page } => {
                if *page as usize >= self.pages.len() {
                    return Err(corrupt(format!("free of unallocated page {page}")));
                }
                self.free.push(*page);
            }
            WalRecord::Write { page, off, bytes } => {
                let p = *page as usize;
                let start = *off as usize;
                let end = start.checked_add(bytes.len()).filter(|&e| e <= PAGE_SIZE);
                let (Some(target), Some(end)) = (self.pages.get_mut(p), end) else {
                    return Err(corrupt(format!(
                        "write of {} bytes at {off} on page {page} is out of bounds",
                        bytes.len()
                    )));
                };
                target[start..end].copy_from_slice(bytes);
                self.sums[p] = wal::checksum32(target);
            }
            WalRecord::Commit { .. } => {}
        }
        Ok(())
    }

    /// Test support: flips one bit of a page **without** restamping its
    /// checksum or logging anything — simulating silent media corruption
    /// that the next cold read of the page must surface as
    /// [`StorageError::PageCorrupt`].
    pub fn corrupt_byte(&mut self, id: PageId, off: usize) {
        self.pages[id as usize][off] ^= 0x01;
    }

    /// Direct page-image access without pool or I/O accounting — for
    /// byte-for-byte comparisons in tests and recovery assertions.
    pub fn raw_page(&self, id: PageId) -> Option<&[u8]> {
        self.pages.get(id as usize).map(|b| &b[..])
    }

    /// Opens a scan: takes the start-of-scan residency snapshot the cost
    /// model classifies against, and claims one pool epoch that all of the
    /// scan's workers stamp their live-pool touches with.
    ///
    /// The snapshot is what keeps the **simulated** I/O deterministic and
    /// DOP-invariant: a page resident when the scan starts is a cache hit
    /// for whichever worker touches it, everything else is a physical
    /// read — regardless of how the live pool (shared by all workers,
    /// evicting concurrently) happens to interleave. The live pool still
    /// sees every touch immediately, stamped `(epoch, partition, seq)`,
    /// so its end state is *also* DOP-invariant (see
    /// [`ShardedLruPool`]) without any replay.
    pub fn begin_scan(&self) -> ScanCtx {
        self.begin_scan_for(QueryCtx::unbounded())
    }

    /// [`begin_scan`](Self::begin_scan) under a statement's lifecycle
    /// context: every [`PartitionReader`] of the scan polls `query` on
    /// each page read, so cancellation, deadlines and memory budgets
    /// reach down to the leaf walk. Internal scans (catalog, recovery)
    /// keep using `begin_scan`, which stamps an unbounded context.
    pub fn begin_scan_for(&self, query: QueryCtx) -> ScanCtx {
        ScanCtx {
            resident: self.pool.resident_set(),
            epoch: self.clock.fetch_add(1, Ordering::Relaxed),
            committed: self.committed.load(Ordering::Acquire),
            query,
        }
    }

    /// A share-nothing read handle over this store for scan worker
    /// `partition` (its index in partition order) of the scan opened by
    /// `scan`.
    pub fn reader<'a>(&'a self, scan: &'a ScanCtx, partition: u32) -> PartitionReader<'a> {
        PartitionReader {
            pages: &self.pages,
            sums: &self.sums,
            pool: &self.pool,
            resident: &scan.resident,
            epoch: scan.epoch,
            partition,
            seq: 0,
            stats: IoStats::default(),
            first_physical_read: None,
            last_physical_read: None,
            seen: HashSet::new(),
            query: &scan.query,
            read_faults: &self.read_faults,
            fault_burst: self.read_fault_burst.load(Ordering::Relaxed) as u32,
        }
    }

    /// Folds a finished scan's per-worker I/O back into the store, in
    /// partition order. Two fix-ups make the merged counters exactly what
    /// a serial scan would have recorded:
    ///
    /// * each worker classified its first physical read as a seek (it had
    ///   no predecessor); if that read actually continued the previous
    ///   partition's (or the pre-scan head's) position, it is reclassified
    ///   sequential;
    /// * the disk head advances to the last **physical** read of the scan
    ///   in partition order — never to a trailing cache hit, which leaves
    ///   the platter untouched.
    ///
    /// The pool needs no attention here: workers touched it live. Takes
    /// `&self` so concurrent sessions can fold their scans back in while
    /// sharing the store under a read lock; the accounting mutex makes
    /// each fold atomic.
    pub fn finish_scan<'a>(&self, parts: impl IntoIterator<Item = &'a ScanIo>) -> IoStats {
        let mut acct = self.acct();
        let mut head = acct.last_physical_read;
        let mut merged = IoStats::default();
        for part in parts {
            let mut io = part.io;
            if let (Some(prev), Some(first)) = (head, part.first_physical_read) {
                if prev.checked_add(1) == Some(first) && io.random_reads > 0 {
                    io.random_reads -= 1;
                    io.sequential_reads += 1;
                }
            }
            if part.last_physical_read.is_some() {
                head = part.last_physical_read;
            }
            merged.merge(&io);
        }
        acct.stats.merge(&merged);
        acct.last_physical_read = head;
        merged
    }
}

/// Anything that can serve page reads with full pool/I/O accounting: the
/// serial [`PageStore`] path and a scan worker's [`PartitionReader`] alike.
///
/// The blob module's ranged LOB reads are generic over this trait, which is
/// what lets a parallel-scan worker resolve `varbinary(max)` array values
/// through the **live** sharded pool — stamped, classified, and folded back
/// exactly like its leaf-page reads — instead of requiring `&mut PageStore`
/// (and thus serialization) for every out-of-row access.
pub trait PageRead {
    /// Reads one page through the buffer pool, touching recency and
    /// classifying the access in this reader's [`IoStats`].
    fn read_page(&mut self, id: PageId) -> Result<&[u8]>;

    /// The query lifecycle this reader runs under, when it has one. LOB
    /// materialization only sees `dyn PageRead`, so budget charging rides
    /// on this seam; a bare [`PageStore`] (recovery, DML apply, DDL)
    /// carries no per-query budget and reports `None`.
    fn lifecycle(&self) -> Option<&QueryCtx> {
        None
    }
}

impl PageRead for PageStore {
    fn read_page(&mut self, id: PageId) -> Result<&[u8]> {
        self.read(id)
    }
}

impl PageRead for PartitionReader<'_> {
    fn read_page(&mut self, id: PageId) -> Result<&[u8]> {
        self.read(id)
    }

    fn lifecycle(&self) -> Option<&QueryCtx> {
        Some(self.query)
    }
}

/// Shared context of one scan: the residency snapshot the cost model
/// classifies against, plus the pool epoch its workers stamp with.
#[derive(Debug)]
pub struct ScanCtx {
    resident: HashSet<PageId>,
    epoch: u64,
    committed: u64,
    query: QueryCtx,
}

impl ScanCtx {
    /// The start-of-scan residency snapshot.
    pub fn resident(&self) -> &HashSet<PageId> {
        &self.resident
    }

    /// The lifecycle context this scan runs under (unbounded for scans
    /// opened with [`PageStore::begin_scan`]).
    pub fn query(&self) -> &QueryCtx {
        &self.query
    }

    /// The store's commit epoch when this scan began — the committed
    /// state the snapshot was taken against. Under the engine's
    /// single-writer/multi-reader scheme every read of one statement
    /// carries the same epoch, which is what the concurrency tests
    /// assert when proving a reader never observes a half-applied write.
    pub fn snapshot_epoch(&self) -> u64 {
        self.committed
    }
}

/// What one scan worker hands back to [`PageStore::finish_scan`]: its
/// counters plus the physical-read endpoints the coordinator needs to
/// stitch the sequential/random classification across partitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanIo {
    /// The worker's I/O counters (classified against the scan snapshot).
    pub io: IoStats,
    /// First page the worker physically read, if any.
    pub first_physical_read: Option<PageId>,
    /// Last page the worker physically read, if any.
    pub last_physical_read: Option<PageId>,
}

/// A concurrent, share-nothing read path over a [`PageStore`] for one
/// parallel-scan worker.
///
/// Readers borrow the page file immutably (so any number of workers can
/// read at once from `std::thread::scope` threads) and keep their own
/// [`IoStats`] and sequential/random classification state, while touching
/// the **live** buffer pool on every read — stamped with the scan's epoch
/// and this worker's `(partition, sequence)`, the deterministic serial
/// visit order. When the worker finishes, [`finish`](Self::finish) hands
/// a [`ScanIo`] back for [`PageStore::finish_scan`] to fold into the
/// global accounting in partition order.
#[derive(Debug)]
pub struct PartitionReader<'a> {
    pages: &'a [Box<[u8]>],
    sums: &'a [u32],
    pool: &'a ShardedLruPool,
    resident: &'a HashSet<PageId>,
    epoch: u64,
    partition: u32,
    seq: u32,
    stats: IoStats,
    first_physical_read: Option<PageId>,
    last_physical_read: Option<PageId>,
    seen: HashSet<PageId>,
    query: &'a QueryCtx,
    read_faults: &'a AtomicU64,
    fault_burst: u32,
}

impl<'a> PartitionReader<'a> {
    /// Polls the scan's lifecycle context: cancellation, deadline, and
    /// the trip points the kill-matrix tests arm. The storage scan loops
    /// call this once per leaf step; the engine's row/batch interpreters
    /// call it per row / per flush through the same reader.
    pub fn check_interrupt(&self) -> Result<()> {
        self.query.check().map_err(StorageError::Interrupted)
    }

    /// The lifecycle context this reader's scan runs under — the engine
    /// charges memory (batch lanes, aggregation state, LOB
    /// materialization) against it.
    pub fn query(&self) -> &QueryCtx {
        self.query
    }

    /// Consumes one armed transient fault if any remain; atomic across
    /// all concurrent readers of the store.
    fn consume_read_fault(&self) -> bool {
        self.read_faults
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Reads a page; the slice borrows the page file, not the reader, so
    /// records can be held while the reader keeps accounting.
    pub fn read(&mut self, id: PageId) -> Result<&'a [u8]> {
        self.check_interrupt()?;
        let Some(page) = self.pages.get(id as usize) else {
            return Err(StorageError::PageOutOfRange {
                page: id,
                max: self.pages.len() as u64,
            });
        };
        // Every logical read touches the live pool immediately — this is
        // what concurrent writers and other scans observe.
        let stamp = pool_stamp(self.epoch, self.partition, self.seq);
        self.seq += 1;
        self.pool.touch_or_insert(id, stamp);
        // The *cost model* classifies against the start-of-scan snapshot,
        // which is what keeps the simulated I/O DOP-invariant.
        if self.seen.insert(id) {
            if self.resident.contains(&id) {
                self.stats.cache_hits += 1;
            } else {
                self.stats.pages_read += 1;
                match self.last_physical_read {
                    Some(prev) if prev.checked_add(1) == Some(id) => {
                        self.stats.sequential_reads += 1
                    }
                    _ => self.stats.random_reads += 1,
                }
                if self.first_physical_read.is_none() {
                    self.first_physical_read = Some(id);
                }
                self.last_physical_read = Some(id);
                // Transient-fault retry: a physical read may hit armed
                // injected faults; each one costs a retry with a
                // deterministic (counted, not timed) exponential backoff.
                // More than MAX_READ_RETRIES faults on one read exhaust
                // the budget.
                let mut attempts = 0u32;
                while attempts < self.fault_burst && self.consume_read_fault() {
                    attempts += 1;
                    self.stats.transient_retries += 1;
                    if attempts > MAX_READ_RETRIES {
                        return Err(StorageError::ReadFaulted { page: id, attempts });
                    }
                    for _ in 0..(1u32 << attempts.min(10)) {
                        std::hint::spin_loop();
                    }
                }
                // This worker's first touch of a snapshot-cold page is the
                // scan's (simulated) transfer from disk: verify its
                // checksum, like the serial path's pool-miss check.
                let computed = wal::checksum32(page);
                let stored = self.sums[id as usize];
                if stored != computed {
                    return Err(StorageError::PageCorrupt {
                        page: id,
                        stored,
                        computed,
                    });
                }
            }
        } else {
            // Re-read within the same worker: the page is in the pool.
            self.stats.cache_hits += 1;
        }
        Ok(page)
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Consumes the reader, returning its counters and physical-read
    /// endpoints for [`PageStore::finish_scan`].
    pub fn finish(self) -> ScanIo {
        ScanIo {
            io: self.stats,
            first_physical_read: self.first_physical_read,
            last_physical_read: self.last_physical_read,
        }
    }
}

impl Default for PageStore {
    fn default() -> Self {
        PageStore::new()
    }
}

/// The minimal contiguous byte range where `before` and `after` differ,
/// as inclusive `(first, last)` indices — `None` when identical. This is
/// what makes the WAL's write records physiological rather than full-page.
fn diff_range(before: &[u8], after: &[u8]) -> Option<(usize, usize)> {
    let first = before.iter().zip(after).position(|(a, b)| a != b)?;
    let last = before
        .iter()
        .zip(after)
        .rposition(|(a, b)| a != b)
        .unwrap_or(first);
    Some((first, last))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |bytes| bytes[0] = 0xAB).unwrap();
        assert_eq!(s.read(p).unwrap()[0], 0xAB);
        assert_eq!(s.page_count(), 1);
        assert_eq!(s.file_bytes(), 8192);
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut s = PageStore::new();
        assert!(matches!(
            s.read(0),
            Err(StorageError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn fresh_pages_are_cached() {
        let mut s = PageStore::new();
        let p = s.allocate();
        let before = s.stats();
        s.read(p).unwrap();
        let d = s.stats().since(&before);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.pages_read, 0);
    }

    #[test]
    fn cache_clear_forces_physical_reads() {
        let mut s = PageStore::new();
        let pages: Vec<_> = (0..8).map(|_| s.allocate()).collect();
        s.clear_cache();
        let before = s.stats();
        for &p in &pages {
            s.read(p).unwrap();
        }
        let d = s.stats().since(&before);
        assert_eq!(d.pages_read, 8);
        assert_eq!(d.cache_hits, 0);
        // Second pass is fully cached.
        let before = s.stats();
        for &p in &pages {
            s.read(p).unwrap();
        }
        let d = s.stats().since(&before);
        assert_eq!(d.cache_hits, 8);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut s = PageStore::new();
        for _ in 0..10 {
            s.allocate();
        }
        s.clear_cache();
        s.reset_stats();
        // Ascending scan: first read is a seek, the rest are sequential.
        for p in 0..10 {
            s.read(p).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.random_reads, 1);
        assert_eq!(st.sequential_reads, 9);

        s.clear_cache();
        s.reset_stats();
        // Stride-2 scan: every read seeks.
        for p in (0..10).step_by(2) {
            s.read(p).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.random_reads, 5);
        assert_eq!(st.sequential_reads, 0);
    }

    #[test]
    fn pool_eviction_causes_rereads() {
        let mut s = PageStore::with_pool(4, DiskProfile::default());
        let pages: Vec<_> = (0..8).map(|_| s.allocate()).collect();
        s.clear_cache();
        s.reset_stats();
        // Two passes over 8 pages with a 4-page pool: nothing survives
        // between passes.
        for _ in 0..2 {
            for &p in &pages {
                s.read(p).unwrap();
            }
        }
        assert_eq!(s.stats().pages_read, 16);
        assert_eq!(s.stats().cache_hits, 0);
    }

    #[test]
    fn writes_are_counted() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |b| b[1] = 1).unwrap();
        s.write(p, |b| b[2] = 2).unwrap();
        assert_eq!(s.stats().pages_written, 2);
    }

    #[test]
    fn io_seconds_depend_on_access_pattern() {
        let profile = DiskProfile {
            seq_read_bytes_per_sec: 8192.0 * 1000.0, // 1000 seq pages/s
            random_read_iops: 100.0,                 // 100 random pages/s
            write_bytes_per_sec: f64::INFINITY,
        };
        let mut s = PageStore::with_pool(16, profile);
        for _ in 0..10 {
            s.allocate();
        }
        s.clear_cache();
        let before = s.stats();
        for p in 0..10 {
            s.read(p).unwrap();
        }
        let seq_time = s.io_seconds_since(&before);

        s.clear_cache();
        let before = s.stats();
        for p in [0u64, 9, 1, 8, 2, 7, 3, 6, 4, 5] {
            s.read(p).unwrap();
        }
        let rnd_time = s.io_seconds_since(&before);
        assert!(
            rnd_time > 4.0 * seq_time,
            "random {rnd_time} should dwarf sequential {seq_time}"
        );
    }

    /// Regression test for the post-scan head drift: a scan whose *last
    /// touches* are cache hits must leave the simulated head at the last
    /// **physical** read, not teleported to the last touched page.
    #[test]
    fn finish_scan_head_ignores_trailing_cache_hits() {
        let mut s = PageStore::new();
        for _ in 0..16 {
            s.allocate();
        }
        s.clear_cache();
        // Warm pages 14 and 15 so the scan ends in cache hits.
        s.read(14).unwrap();
        s.read(15).unwrap();
        s.reset_stats();

        let scan = s.begin_scan();
        let mut r = s.reader(&scan, 0);
        for p in 10..16 {
            r.read(p).unwrap();
        }
        let io = r.finish();
        assert_eq!(io.io.pages_read, 4); // 10..14 physical
        assert_eq!(io.io.cache_hits, 2); // 14, 15 resident
        assert_eq!(io.last_physical_read, Some(13));
        s.finish_scan([&io]);
        // The old `absorb_scan` set the head to 15 (the last *touch*),
        // misclassifying a following read of 16 as sequential.
        assert_eq!(s.seek_position(), Some(13));
    }

    /// A scan made of nothing but cache hits must not move the head at
    /// all.
    #[test]
    fn finish_scan_all_hits_leaves_head_alone() {
        let mut s = PageStore::new();
        for _ in 0..8 {
            s.allocate();
        }
        s.clear_cache();
        // Physically read 4..8 (head ends at 7), leaving them resident.
        for p in 4..8 {
            s.read(p).unwrap();
        }
        assert_eq!(s.seek_position(), Some(7));
        let scan = s.begin_scan();
        let mut r = s.reader(&scan, 0);
        for p in 4..8 {
            r.read(p).unwrap(); // all resident: pure cache hits
        }
        let io = r.finish();
        assert_eq!(io.io.pages_read, 0);
        assert_eq!(io.first_physical_read, None);
        s.finish_scan([&io]);
        assert_eq!(s.seek_position(), Some(7));
    }

    /// Partition boundaries must not cost phantom seeks: worker `p`'s
    /// first physical read is reclassified sequential when it continues
    /// worker `p−1`'s last physical position, making the merged counters
    /// exactly serial.
    #[test]
    fn finish_scan_stitches_boundary_classification() {
        let mut s = PageStore::new();
        for _ in 0..8 {
            s.allocate();
        }
        s.clear_cache();
        s.reset_stats();

        // Serial baseline over pages 0..8.
        let scan = s.begin_scan();
        let mut r = s.reader(&scan, 0);
        for p in 0..8 {
            r.read(p).unwrap();
        }
        let serial = r.finish();
        drop(scan);
        let serial_merged = s.finish_scan([&serial]);

        // Same pages as two partitions.
        let mut s2 = PageStore::new();
        for _ in 0..8 {
            s2.allocate();
        }
        s2.clear_cache();
        s2.reset_stats();
        let scan = s2.begin_scan();
        let mut a = s2.reader(&scan, 0);
        for p in 0..4 {
            a.read(p).unwrap();
        }
        let a = a.finish();
        let mut b = s2.reader(&scan, 1);
        for p in 4..8 {
            b.read(p).unwrap();
        }
        let b = b.finish();
        // Worker b classified page 4 as a seek on its own…
        assert_eq!(b.io.random_reads, 1);
        drop(scan);
        let merged = s2.finish_scan([&a, &b]);
        // …but the merge stitches it back to sequential.
        assert_eq!(merged, serial_merged);
        assert_eq!(s2.stats(), s.stats());
        assert_eq!(s2.seek_position(), s.seek_position());
    }

    /// Scan workers touch the live pool as they read: residency is
    /// immediately visible, and the end state (set *and* recency order)
    /// matches the serial scan at any worker split.
    #[test]
    fn live_pool_state_is_dop_invariant() {
        let build = |splits: &[std::ops::Range<u64>]| {
            let mut s = PageStore::with_pool(8, DiskProfile::default());
            for _ in 0..32 {
                s.allocate();
            }
            s.clear_cache();
            let scan = s.begin_scan();
            let ios: Vec<ScanIo> = splits
                .iter()
                .enumerate()
                .map(|(pi, range)| {
                    let mut r = s.reader(&scan, pi as u32);
                    for p in range.clone() {
                        r.read(p).unwrap();
                    }
                    r.finish()
                })
                .collect();
            drop(scan);
            s.finish_scan(ios.iter());
            (s.pool().keys_mru_order(), s.stats(), s.seek_position())
        };
        #[allow(clippy::single_range_in_vec_init)] // one partition covering 0..32
        let serial = build(&[0..32]);
        for splits in [
            vec![0..16, 16..32],
            vec![0..8, 8..16, 16..24, 24..32],
            vec![0..5, 5..17, 17..18, 18..32],
        ] {
            assert_eq!(build(&splits), serial, "splits {splits:?}");
        }
    }

    #[test]
    fn commit_crash_recover_round_trips() {
        let mut s = PageStore::new();
        let a = s.allocate();
        s.write(a, |p| p[10..14].copy_from_slice(b"DATA")).unwrap();
        s.commit(b"cat");
        let rec = PageStore::open(&s.crash_image()).unwrap();
        assert_eq!(rec.catalog.as_deref(), Some(&b"cat"[..]));
        assert_eq!(rec.store.raw_page(a).unwrap(), s.raw_page(a).unwrap());
        assert_eq!(rec.discarded_bytes, 0);
        assert_eq!(rec.applied_records, 3); // alloc + write + commit
    }

    #[test]
    fn uncommitted_tail_is_rolled_back() {
        let mut s = PageStore::new();
        let a = s.allocate();
        s.write(a, |p| p[0] = 1).unwrap();
        s.commit(b"v1");
        s.write(a, |p| p[0] = 2).unwrap(); // never committed
        let before = s.raw_page(a).unwrap().to_vec();
        assert_eq!(before[0], 2, "in-process state has the new value");
        let rec = PageStore::open(&s.crash_image()).unwrap();
        assert_eq!(rec.store.raw_page(a).unwrap()[0], 1);
        assert!(rec.discarded_bytes > 0);
    }

    #[test]
    fn recovery_at_every_injection_point_lands_on_a_commit() {
        // Scripted workload: commit v1, then a multi-record victim
        // transaction, then commit v2. Killing the log at every append
        // count must recover either v1 (cut before the v2 commit) or v2.
        let run = |plan: Option<FailPlan>| {
            let mut s = PageStore::new();
            let a = s.allocate();
            let b = s.allocate();
            s.write(a, |p| p[0] = 0xA1).unwrap();
            s.write(b, |p| p[0] = 0xB1).unwrap();
            s.commit(b"v1");
            if let Some(p) = plan {
                s.arm_fail(p);
            }
            // Victim: update both pages, free one, allocate a reuse.
            s.write(a, |p| p[0] = 0xA2).unwrap();
            s.free_page(b).unwrap();
            let c = s.allocate_reuse();
            assert_eq!(c, b, "LIFO reuse picks the freed page");
            s.write(c, |p| p[0] = 0xC2).unwrap();
            s.commit(b"v2");
            s
        };
        let clean = run(None);
        // The plan is armed after the 5-record setup, so injection points
        // count victim appends only.
        let total = clean.stats().wal_records - 5;
        let v1 = {
            let mut s = PageStore::new();
            let a = s.allocate();
            let b = s.allocate();
            s.write(a, |p| p[0] = 0xA1).unwrap();
            s.write(b, |p| p[0] = 0xB1).unwrap();
            s.commit(b"v1");
            s
        };
        for k in 0..=total {
            for torn in [0usize, 3] {
                let s = run(Some(FailPlan {
                    allow_records: k,
                    torn_bytes: torn,
                }));
                let rec = PageStore::open(&s.crash_image()).unwrap();
                if k >= total {
                    assert_eq!(rec.catalog.as_deref(), Some(&b"v2"[..]), "k={k}");
                    for p in 0..clean.page_count() {
                        assert_eq!(
                            rec.store.raw_page(p).unwrap(),
                            clean.raw_page(p).unwrap(),
                            "k={k} page {p}"
                        );
                    }
                    assert_eq!(rec.store.free_pages(), clean.free_pages());
                } else {
                    // Any cut before the final commit must land exactly on
                    // v1 — never a half-applied victim.
                    assert_eq!(rec.catalog.as_deref(), Some(&b"v1"[..]), "k={k}");
                    for p in 0..v1.page_count() {
                        assert_eq!(
                            rec.store.raw_page(p).unwrap(),
                            v1.raw_page(p).unwrap(),
                            "k={k} page {p}"
                        );
                    }
                    assert_eq!(rec.store.free_pages(), v1.free_pages());
                }
            }
        }
    }

    #[test]
    fn cold_read_verifies_checksum_both_ways() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |b| b[100] = 7).unwrap();
        // Positive: clean page survives a cold read.
        s.clear_cache();
        assert!(s.read(p).is_ok());
        // Negative: corruption behind the pool's back is caught on the
        // next cold read (a warm read cannot see it).
        s.corrupt_byte(p, 200);
        assert!(s.read(p).is_ok(), "warm read skips the check");
        s.clear_cache();
        assert!(matches!(
            s.read(p),
            Err(StorageError::PageCorrupt { page, .. }) if page == p
        ));
    }

    #[test]
    fn scan_reader_verifies_checksum_on_cold_pages() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |b| b[0] = 1).unwrap();
        s.corrupt_byte(p, 50);
        s.clear_cache();
        let scan = s.begin_scan();
        let mut r = s.reader(&scan, 0);
        assert!(matches!(
            r.read(p),
            Err(StorageError::PageCorrupt { page: 0, .. })
        ));
    }

    #[test]
    fn checkpoint_truncates_the_log_and_preserves_state() {
        let mut s = PageStore::new();
        let a = s.allocate();
        s.write(a, |p| p[0] = 9).unwrap();
        s.commit(b"v1");
        assert!(s.wal_len() > 0);
        s.checkpoint();
        assert_eq!(s.wal_len(), 0);
        // A crash right after a checkpoint: no commit in the (empty) log,
        // but the base image *is* the committed state.
        let rec = PageStore::open(&s.crash_image()).unwrap();
        assert_eq!(rec.store.raw_page(a).unwrap()[0], 9);
        assert_eq!(rec.catalog, None);
    }

    #[test]
    fn identical_rewrite_logs_nothing() {
        let mut s = PageStore::new();
        let a = s.allocate();
        s.write(a, |p| p[0] = 5).unwrap();
        let before = s.stats();
        s.write(a, |p| p[0] = 5).unwrap(); // no byte changes
        let d = s.stats().since(&before);
        assert_eq!(d.pages_written, 1, "the write is still counted");
        assert_eq!(d.wal_records, 0, "but nothing needs logging");
    }

    #[test]
    fn wal_stream_is_dop_invariant_under_scans() {
        // Parallel scans read but never log: the WAL after a scan at any
        // DOP is byte-identical to before.
        let mut s = PageStore::new();
        for _ in 0..8 {
            s.allocate();
        }
        for p in 0..8 {
            s.write(p, |b| b[0] = p as u8).unwrap();
        }
        s.commit(b"v");
        let wal_before = s.crash_image().wal;
        let scan = s.begin_scan();
        let ios: Vec<ScanIo> = (0..4u32)
            .map(|w| {
                let mut r = s.reader(&scan, w);
                for p in (w as u64 * 2)..(w as u64 * 2 + 2) {
                    r.read(p).unwrap();
                }
                r.finish()
            })
            .collect();
        drop(scan);
        s.finish_scan(ios.iter());
        assert_eq!(s.crash_image().wal, wal_before);
    }
}
