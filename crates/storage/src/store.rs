//! The page store: an in-memory "disk" of 8 kB pages fronted by a buffer
//! pool with LRU replacement and full I/O accounting.
//!
//! All structures (B-trees, blob streams, tables) read and write through
//! [`PageStore`], so the counters in [`IoStats`]
//! capture exactly the page traffic a SQL Server clustered-index scan or
//! LOB fetch would generate, and the
//! [`DiskProfile`] converts them into simulated
//! disk seconds.

use crate::errors::{Result, StorageError};
use crate::lru::LruSet;
use crate::page::{PageId, PAGE_SIZE};
use crate::stats::{DiskProfile, IoStats};
use std::collections::HashSet;

/// Default buffer-pool capacity (pages). 4096 pages = 32 MiB, small enough
/// that the Table 1 scans (hundreds of MB) are disk-bound after a cache
/// clear, as in the paper.
pub const DEFAULT_POOL_PAGES: usize = 4096;

/// The page file plus its buffer pool.
pub struct PageStore {
    pages: Vec<Box<[u8]>>,
    pool: LruSet,
    stats: IoStats,
    profile: DiskProfile,
    last_physical_read: Option<PageId>,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("pages", &self.pages.len())
            .field("pool_resident", &self.pool.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PageStore {
    /// Creates an empty store with the default pool size and disk profile.
    pub fn new() -> PageStore {
        PageStore::with_pool(DEFAULT_POOL_PAGES, DiskProfile::default())
    }

    /// Creates an empty store with an explicit pool capacity (in pages) and
    /// disk profile.
    pub fn with_pool(pool_pages: usize, profile: DiskProfile) -> PageStore {
        PageStore {
            pages: Vec::new(),
            pool: LruSet::new(pool_pages),
            stats: IoStats::default(),
            profile,
            last_physical_read: None,
        }
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Allocates a zeroed page and returns its id. The fresh page is
    /// resident in the pool (it was just produced in memory).
    pub fn allocate(&mut self) -> PageId {
        let id = self.pages.len() as PageId;
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        if !self.pool.touch(id) {
            self.pool.insert(id);
        }
        id
    }

    /// Reads a page, going through the buffer pool.
    pub fn read(&mut self, id: PageId) -> Result<&[u8]> {
        self.fault_in(id)?;
        Ok(&self.pages[id as usize])
    }

    /// Writes a page through a closure, going through the buffer pool and
    /// counting one page write.
    pub fn write(&mut self, id: PageId, f: impl FnOnce(&mut [u8])) -> Result<()> {
        self.fault_in(id)?;
        self.stats.pages_written += 1;
        f(&mut self.pages[id as usize]);
        Ok(())
    }

    /// Pool/disk bookkeeping for one logical access of `id`.
    fn fault_in(&mut self, id: PageId) -> Result<()> {
        if id as usize >= self.pages.len() {
            return Err(StorageError::PageOutOfRange {
                page: id,
                max: self.pages.len() as u64,
            });
        }
        if self.pool.touch(id) {
            self.stats.cache_hits += 1;
        } else {
            self.stats.pages_read += 1;
            match self.last_physical_read {
                Some(prev) if prev + 1 == id => self.stats.sequential_reads += 1,
                _ => self.stats.random_reads += 1,
            }
            self.last_physical_read = Some(id);
            self.pool.insert(id);
        }
        Ok(())
    }

    /// Empties the buffer pool — the cache clear the paper performs before
    /// every measured run ("the database server cache was explicitly
    /// cleared before each performance test run", §6.3).
    pub fn clear_cache(&mut self) {
        self.pool.clear();
        self.last_physical_read = None;
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O counters (the cache contents are unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.last_physical_read = None;
    }

    /// The disk cost model in effect.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Simulated disk seconds for the I/O performed since `before`.
    pub fn io_seconds_since(&self, before: &IoStats) -> f64 {
        self.profile.io_seconds(&self.stats.since(before))
    }

    /// A snapshot of the pages currently resident in the buffer pool.
    ///
    /// Parallel scans are accounted against this start-of-scan snapshot
    /// instead of the live LRU: a page resident when the scan starts is a
    /// cache hit for whichever worker touches it, everything else is a
    /// physical read. Because each worker owns a disjoint page range, this
    /// makes the simulated I/O **deterministic and DOP-invariant** — the
    /// same query produces the same [`IoStats`] at any degree of
    /// parallelism, which a live shared LRU (racy eviction timing) could
    /// not guarantee.
    pub fn resident_snapshot(&self) -> HashSet<PageId> {
        self.pool.keys_mru_order().into_iter().collect()
    }

    /// A share-nothing read handle over this store for one scan worker.
    /// `resident` must be the [`resident_snapshot`](Self::resident_snapshot)
    /// taken when the scan started.
    pub fn reader<'a>(&'a self, resident: &'a HashSet<PageId>) -> PartitionReader<'a> {
        PartitionReader {
            pages: &self.pages,
            resident,
            stats: IoStats::default(),
            last_physical_read: None,
            seen: HashSet::new(),
            touched: Vec::new(),
        }
    }

    /// Folds a finished scan back into the store: merges the per-worker
    /// counters and replays the first-touch page order into the buffer
    /// pool. Replaying per-worker touch logs in partition order is exactly
    /// the page order a serial scan would have produced, so the pool ends
    /// in the same state no matter the DOP.
    pub fn absorb_scan(&mut self, stats: &IoStats, touched: &[PageId]) {
        self.stats.merge(stats);
        for &id in touched {
            if !self.pool.touch(id) {
                self.pool.insert(id);
            }
        }
        // A subsequent serial read continues from wherever the scan left
        // the head; the last touched page is the honest seek position.
        if let Some(&last) = touched.last() {
            self.last_physical_read = Some(last);
        }
    }
}

/// A concurrent, share-nothing read path over a [`PageStore`] for one
/// parallel-scan worker.
///
/// Readers borrow the page file immutably (so any number of workers can
/// read at once from `std::thread::scope` threads) and keep their own
/// [`IoStats`], sequential/random classification state, and first-touch
/// log. When the worker finishes, [`finish`](Self::finish) hands the
/// counters and touch log back so [`PageStore::absorb_scan`] can fold them
/// into the global accounting in partition order.
#[derive(Debug)]
pub struct PartitionReader<'a> {
    pages: &'a [Box<[u8]>],
    resident: &'a HashSet<PageId>,
    stats: IoStats,
    last_physical_read: Option<PageId>,
    seen: HashSet<PageId>,
    touched: Vec<PageId>,
}

impl<'a> PartitionReader<'a> {
    /// Reads a page; the slice borrows the page file, not the reader, so
    /// records can be held while the reader keeps accounting.
    pub fn read(&mut self, id: PageId) -> Result<&'a [u8]> {
        let Some(page) = self.pages.get(id as usize) else {
            return Err(StorageError::PageOutOfRange {
                page: id,
                max: self.pages.len() as u64,
            });
        };
        if self.seen.insert(id) {
            self.touched.push(id);
            if self.resident.contains(&id) {
                self.stats.cache_hits += 1;
            } else {
                self.stats.pages_read += 1;
                match self.last_physical_read {
                    Some(prev) if prev + 1 == id => self.stats.sequential_reads += 1,
                    _ => self.stats.random_reads += 1,
                }
                self.last_physical_read = Some(id);
            }
        } else {
            // Re-read within the same worker: the page is in the pool.
            self.stats.cache_hits += 1;
        }
        Ok(page)
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Consumes the reader, returning its counters and the pages it
    /// touched, in first-touch order.
    pub fn finish(self) -> (IoStats, Vec<PageId>) {
        (self.stats, self.touched)
    }
}

impl Default for PageStore {
    fn default() -> Self {
        PageStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |bytes| bytes[0] = 0xAB).unwrap();
        assert_eq!(s.read(p).unwrap()[0], 0xAB);
        assert_eq!(s.page_count(), 1);
        assert_eq!(s.file_bytes(), 8192);
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut s = PageStore::new();
        assert!(matches!(
            s.read(0),
            Err(StorageError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn fresh_pages_are_cached() {
        let mut s = PageStore::new();
        let p = s.allocate();
        let before = s.stats();
        s.read(p).unwrap();
        let d = s.stats().since(&before);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.pages_read, 0);
    }

    #[test]
    fn cache_clear_forces_physical_reads() {
        let mut s = PageStore::new();
        let pages: Vec<_> = (0..8).map(|_| s.allocate()).collect();
        s.clear_cache();
        let before = s.stats();
        for &p in &pages {
            s.read(p).unwrap();
        }
        let d = s.stats().since(&before);
        assert_eq!(d.pages_read, 8);
        assert_eq!(d.cache_hits, 0);
        // Second pass is fully cached.
        let before = s.stats();
        for &p in &pages {
            s.read(p).unwrap();
        }
        let d = s.stats().since(&before);
        assert_eq!(d.cache_hits, 8);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut s = PageStore::new();
        for _ in 0..10 {
            s.allocate();
        }
        s.clear_cache();
        s.reset_stats();
        // Ascending scan: first read is a seek, the rest are sequential.
        for p in 0..10 {
            s.read(p).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.random_reads, 1);
        assert_eq!(st.sequential_reads, 9);

        s.clear_cache();
        s.reset_stats();
        // Stride-2 scan: every read seeks.
        for p in (0..10).step_by(2) {
            s.read(p).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.random_reads, 5);
        assert_eq!(st.sequential_reads, 0);
    }

    #[test]
    fn pool_eviction_causes_rereads() {
        let mut s = PageStore::with_pool(4, DiskProfile::default());
        let pages: Vec<_> = (0..8).map(|_| s.allocate()).collect();
        s.clear_cache();
        s.reset_stats();
        // Two passes over 8 pages with a 4-page pool: nothing survives
        // between passes.
        for _ in 0..2 {
            for &p in &pages {
                s.read(p).unwrap();
            }
        }
        assert_eq!(s.stats().pages_read, 16);
        assert_eq!(s.stats().cache_hits, 0);
    }

    #[test]
    fn writes_are_counted() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |b| b[1] = 1).unwrap();
        s.write(p, |b| b[2] = 2).unwrap();
        assert_eq!(s.stats().pages_written, 2);
    }

    #[test]
    fn io_seconds_depend_on_access_pattern() {
        let profile = DiskProfile {
            seq_read_bytes_per_sec: 8192.0 * 1000.0, // 1000 seq pages/s
            random_read_iops: 100.0,                 // 100 random pages/s
            write_bytes_per_sec: f64::INFINITY,
        };
        let mut s = PageStore::with_pool(16, profile);
        for _ in 0..10 {
            s.allocate();
        }
        s.clear_cache();
        let before = s.stats();
        for p in 0..10 {
            s.read(p).unwrap();
        }
        let seq_time = s.io_seconds_since(&before);

        s.clear_cache();
        let before = s.stats();
        for p in [0u64, 9, 1, 8, 2, 7, 3, 6, 4, 5] {
            s.read(p).unwrap();
        }
        let rnd_time = s.io_seconds_since(&before);
        assert!(
            rnd_time > 4.0 * seq_time,
            "random {rnd_time} should dwarf sequential {seq_time}"
        );
    }
}
