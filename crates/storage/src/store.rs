//! The page store: an in-memory "disk" of 8 kB pages fronted by a live,
//! concurrent buffer pool with sharded-LRU replacement and full I/O
//! accounting.
//!
//! All structures (B-trees, blob streams, tables) read and write through
//! [`PageStore`], so the counters in [`IoStats`]
//! capture exactly the page traffic a SQL Server clustered-index scan or
//! LOB fetch would generate, and the
//! [`DiskProfile`] converts them into simulated
//! disk seconds.
//!
//! ## Serial path vs. scan path
//!
//! Serial accesses (`read`/`write`/`allocate`, `&mut self`) consult the
//! live pool directly. Parallel scans split the work: each worker holds a
//! [`PartitionReader`] that touches the **live pool as it reads** (so
//! concurrent readers and writers observe true residency immediately)
//! while classifying its I/O for the *cost model* against the
//! start-of-scan residency snapshot in [`ScanCtx`] — which keeps the
//! simulated [`IoStats`] deterministic and DOP-invariant even though the
//! pool itself is shared live. [`PageStore::finish_scan`] folds the
//! per-worker counters back in partition order, fixing up the
//! sequential/random classification across partition boundaries so the
//! merged counters equal a serial scan's exactly.

use crate::errors::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};
use crate::pool::{pool_stamp, PoolStamp, ShardedLruPool};
use crate::stats::{DiskProfile, IoStats};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default buffer-pool capacity (pages). 4096 pages = 32 MiB, small enough
/// that the Table 1 scans (hundreds of MB) are disk-bound after a cache
/// clear, as in the paper.
pub const DEFAULT_POOL_PAGES: usize = 4096;

/// The page file plus its buffer pool.
pub struct PageStore {
    pages: Vec<Box<[u8]>>,
    pool: ShardedLruPool,
    /// Logical clock behind every pool stamp: serial touches take a fresh
    /// epoch each, a parallel scan takes one epoch for all its workers.
    clock: AtomicU64,
    stats: IoStats,
    profile: DiskProfile,
    last_physical_read: Option<PageId>,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("pages", &self.pages.len())
            .field("pool_resident", &self.pool.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PageStore {
    /// Creates an empty store with the default pool size and disk profile.
    pub fn new() -> PageStore {
        PageStore::with_pool(DEFAULT_POOL_PAGES, DiskProfile::default())
    }

    /// Creates an empty store with an explicit pool capacity (in pages) and
    /// disk profile.
    pub fn with_pool(pool_pages: usize, profile: DiskProfile) -> PageStore {
        PageStore {
            pages: Vec::new(),
            pool: ShardedLruPool::new(pool_pages),
            clock: AtomicU64::new(1),
            stats: IoStats::default(),
            profile,
            last_physical_read: None,
        }
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// The live buffer pool (resident-set inspection for tests/tools).
    pub fn pool(&self) -> &ShardedLruPool {
        &self.pool
    }

    /// A fresh serial stamp: a new epoch, higher than every stamp issued
    /// before it.
    fn serial_stamp(&self) -> PoolStamp {
        pool_stamp(self.clock.fetch_add(1, Ordering::Relaxed), 0, 0)
    }

    /// Allocates a zeroed page and returns its id. The fresh page is
    /// resident in the pool (it was just produced in memory).
    pub fn allocate(&mut self) -> PageId {
        let id = self.pages.len() as PageId;
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        self.pool.touch_or_insert(id, self.serial_stamp());
        id
    }

    /// Reads a page, going through the buffer pool.
    pub fn read(&mut self, id: PageId) -> Result<&[u8]> {
        self.fault_in(id)?;
        Ok(&self.pages[id as usize])
    }

    /// Writes a page through a closure, going through the buffer pool and
    /// counting one page write.
    pub fn write(&mut self, id: PageId, f: impl FnOnce(&mut [u8])) -> Result<()> {
        self.fault_in(id)?;
        self.stats.pages_written += 1;
        f(&mut self.pages[id as usize]);
        Ok(())
    }

    /// Pool/disk bookkeeping for one logical access of `id`.
    fn fault_in(&mut self, id: PageId) -> Result<()> {
        if id as usize >= self.pages.len() {
            return Err(StorageError::PageOutOfRange {
                page: id,
                max: self.pages.len() as u64,
            });
        }
        if self.pool.touch_or_insert(id, self.serial_stamp()) {
            self.stats.cache_hits += 1;
        } else {
            self.stats.pages_read += 1;
            match self.last_physical_read {
                // `checked_add`: `prev` can be `u64::MAX`-adjacent in
                // synthetic tests; a plain `prev + 1` overflows in debug
                // builds.
                Some(prev) if prev.checked_add(1) == Some(id) => self.stats.sequential_reads += 1,
                _ => self.stats.random_reads += 1,
            }
            self.last_physical_read = Some(id);
        }
        Ok(())
    }

    /// Empties the buffer pool — the cache clear the paper performs before
    /// every measured run ("the database server cache was explicitly
    /// cleared before each performance test run", §6.3).
    pub fn clear_cache(&mut self) {
        self.pool.clear();
        self.last_physical_read = None;
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O counters (the cache contents are unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.last_physical_read = None;
    }

    /// The simulated disk head: the last page physically read. Cache hits
    /// never move it — only actual (simulated) platter traffic does.
    pub fn seek_position(&self) -> Option<PageId> {
        self.last_physical_read
    }

    /// The disk cost model in effect.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Simulated disk seconds for the I/O performed since `before`.
    pub fn io_seconds_since(&self, before: &IoStats) -> f64 {
        self.profile.io_seconds(&self.stats.since(before))
    }

    /// Opens a scan: takes the start-of-scan residency snapshot the cost
    /// model classifies against, and claims one pool epoch that all of the
    /// scan's workers stamp their live-pool touches with.
    ///
    /// The snapshot is what keeps the **simulated** I/O deterministic and
    /// DOP-invariant: a page resident when the scan starts is a cache hit
    /// for whichever worker touches it, everything else is a physical
    /// read — regardless of how the live pool (shared by all workers,
    /// evicting concurrently) happens to interleave. The live pool still
    /// sees every touch immediately, stamped `(epoch, partition, seq)`,
    /// so its end state is *also* DOP-invariant (see
    /// [`ShardedLruPool`]) without any replay.
    pub fn begin_scan(&self) -> ScanCtx {
        ScanCtx {
            resident: self.pool.resident_set(),
            epoch: self.clock.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A share-nothing read handle over this store for scan worker
    /// `partition` (its index in partition order) of the scan opened by
    /// `scan`.
    pub fn reader<'a>(&'a self, scan: &'a ScanCtx, partition: u32) -> PartitionReader<'a> {
        PartitionReader {
            pages: &self.pages,
            pool: &self.pool,
            resident: &scan.resident,
            epoch: scan.epoch,
            partition,
            seq: 0,
            stats: IoStats::default(),
            first_physical_read: None,
            last_physical_read: None,
            seen: HashSet::new(),
        }
    }

    /// Folds a finished scan's per-worker I/O back into the store, in
    /// partition order. Two fix-ups make the merged counters exactly what
    /// a serial scan would have recorded:
    ///
    /// * each worker classified its first physical read as a seek (it had
    ///   no predecessor); if that read actually continued the previous
    ///   partition's (or the pre-scan head's) position, it is reclassified
    ///   sequential;
    /// * the disk head advances to the last **physical** read of the scan
    ///   in partition order — never to a trailing cache hit, which leaves
    ///   the platter untouched.
    ///
    /// The pool needs no attention here: workers touched it live.
    pub fn finish_scan<'a>(&mut self, parts: impl IntoIterator<Item = &'a ScanIo>) -> IoStats {
        let mut head = self.last_physical_read;
        let mut merged = IoStats::default();
        for part in parts {
            let mut io = part.io;
            if let (Some(prev), Some(first)) = (head, part.first_physical_read) {
                if prev.checked_add(1) == Some(first) && io.random_reads > 0 {
                    io.random_reads -= 1;
                    io.sequential_reads += 1;
                }
            }
            if part.last_physical_read.is_some() {
                head = part.last_physical_read;
            }
            merged.merge(&io);
        }
        self.stats.merge(&merged);
        self.last_physical_read = head;
        merged
    }
}

/// Anything that can serve page reads with full pool/I/O accounting: the
/// serial [`PageStore`] path and a scan worker's [`PartitionReader`] alike.
///
/// The blob module's ranged LOB reads are generic over this trait, which is
/// what lets a parallel-scan worker resolve `varbinary(max)` array values
/// through the **live** sharded pool — stamped, classified, and folded back
/// exactly like its leaf-page reads — instead of requiring `&mut PageStore`
/// (and thus serialization) for every out-of-row access.
pub trait PageRead {
    /// Reads one page through the buffer pool, touching recency and
    /// classifying the access in this reader's [`IoStats`].
    fn read_page(&mut self, id: PageId) -> Result<&[u8]>;
}

impl PageRead for PageStore {
    fn read_page(&mut self, id: PageId) -> Result<&[u8]> {
        self.read(id)
    }
}

impl PageRead for PartitionReader<'_> {
    fn read_page(&mut self, id: PageId) -> Result<&[u8]> {
        self.read(id)
    }
}

/// Shared context of one scan: the residency snapshot the cost model
/// classifies against, plus the pool epoch its workers stamp with.
#[derive(Debug)]
pub struct ScanCtx {
    resident: HashSet<PageId>,
    epoch: u64,
}

impl ScanCtx {
    /// The start-of-scan residency snapshot.
    pub fn resident(&self) -> &HashSet<PageId> {
        &self.resident
    }
}

/// What one scan worker hands back to [`PageStore::finish_scan`]: its
/// counters plus the physical-read endpoints the coordinator needs to
/// stitch the sequential/random classification across partitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanIo {
    /// The worker's I/O counters (classified against the scan snapshot).
    pub io: IoStats,
    /// First page the worker physically read, if any.
    pub first_physical_read: Option<PageId>,
    /// Last page the worker physically read, if any.
    pub last_physical_read: Option<PageId>,
}

/// A concurrent, share-nothing read path over a [`PageStore`] for one
/// parallel-scan worker.
///
/// Readers borrow the page file immutably (so any number of workers can
/// read at once from `std::thread::scope` threads) and keep their own
/// [`IoStats`] and sequential/random classification state, while touching
/// the **live** buffer pool on every read — stamped with the scan's epoch
/// and this worker's `(partition, sequence)`, the deterministic serial
/// visit order. When the worker finishes, [`finish`](Self::finish) hands
/// a [`ScanIo`] back for [`PageStore::finish_scan`] to fold into the
/// global accounting in partition order.
#[derive(Debug)]
pub struct PartitionReader<'a> {
    pages: &'a [Box<[u8]>],
    pool: &'a ShardedLruPool,
    resident: &'a HashSet<PageId>,
    epoch: u64,
    partition: u32,
    seq: u32,
    stats: IoStats,
    first_physical_read: Option<PageId>,
    last_physical_read: Option<PageId>,
    seen: HashSet<PageId>,
}

impl<'a> PartitionReader<'a> {
    /// Reads a page; the slice borrows the page file, not the reader, so
    /// records can be held while the reader keeps accounting.
    pub fn read(&mut self, id: PageId) -> Result<&'a [u8]> {
        let Some(page) = self.pages.get(id as usize) else {
            return Err(StorageError::PageOutOfRange {
                page: id,
                max: self.pages.len() as u64,
            });
        };
        // Every logical read touches the live pool immediately — this is
        // what concurrent writers and other scans observe.
        let stamp = pool_stamp(self.epoch, self.partition, self.seq);
        self.seq += 1;
        self.pool.touch_or_insert(id, stamp);
        // The *cost model* classifies against the start-of-scan snapshot,
        // which is what keeps the simulated I/O DOP-invariant.
        if self.seen.insert(id) {
            if self.resident.contains(&id) {
                self.stats.cache_hits += 1;
            } else {
                self.stats.pages_read += 1;
                match self.last_physical_read {
                    Some(prev) if prev.checked_add(1) == Some(id) => {
                        self.stats.sequential_reads += 1
                    }
                    _ => self.stats.random_reads += 1,
                }
                if self.first_physical_read.is_none() {
                    self.first_physical_read = Some(id);
                }
                self.last_physical_read = Some(id);
            }
        } else {
            // Re-read within the same worker: the page is in the pool.
            self.stats.cache_hits += 1;
        }
        Ok(page)
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Consumes the reader, returning its counters and physical-read
    /// endpoints for [`PageStore::finish_scan`].
    pub fn finish(self) -> ScanIo {
        ScanIo {
            io: self.stats,
            first_physical_read: self.first_physical_read,
            last_physical_read: self.last_physical_read,
        }
    }
}

impl Default for PageStore {
    fn default() -> Self {
        PageStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |bytes| bytes[0] = 0xAB).unwrap();
        assert_eq!(s.read(p).unwrap()[0], 0xAB);
        assert_eq!(s.page_count(), 1);
        assert_eq!(s.file_bytes(), 8192);
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut s = PageStore::new();
        assert!(matches!(
            s.read(0),
            Err(StorageError::PageOutOfRange { .. })
        ));
    }

    #[test]
    fn fresh_pages_are_cached() {
        let mut s = PageStore::new();
        let p = s.allocate();
        let before = s.stats();
        s.read(p).unwrap();
        let d = s.stats().since(&before);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.pages_read, 0);
    }

    #[test]
    fn cache_clear_forces_physical_reads() {
        let mut s = PageStore::new();
        let pages: Vec<_> = (0..8).map(|_| s.allocate()).collect();
        s.clear_cache();
        let before = s.stats();
        for &p in &pages {
            s.read(p).unwrap();
        }
        let d = s.stats().since(&before);
        assert_eq!(d.pages_read, 8);
        assert_eq!(d.cache_hits, 0);
        // Second pass is fully cached.
        let before = s.stats();
        for &p in &pages {
            s.read(p).unwrap();
        }
        let d = s.stats().since(&before);
        assert_eq!(d.cache_hits, 8);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut s = PageStore::new();
        for _ in 0..10 {
            s.allocate();
        }
        s.clear_cache();
        s.reset_stats();
        // Ascending scan: first read is a seek, the rest are sequential.
        for p in 0..10 {
            s.read(p).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.random_reads, 1);
        assert_eq!(st.sequential_reads, 9);

        s.clear_cache();
        s.reset_stats();
        // Stride-2 scan: every read seeks.
        for p in (0..10).step_by(2) {
            s.read(p).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.random_reads, 5);
        assert_eq!(st.sequential_reads, 0);
    }

    #[test]
    fn pool_eviction_causes_rereads() {
        let mut s = PageStore::with_pool(4, DiskProfile::default());
        let pages: Vec<_> = (0..8).map(|_| s.allocate()).collect();
        s.clear_cache();
        s.reset_stats();
        // Two passes over 8 pages with a 4-page pool: nothing survives
        // between passes.
        for _ in 0..2 {
            for &p in &pages {
                s.read(p).unwrap();
            }
        }
        assert_eq!(s.stats().pages_read, 16);
        assert_eq!(s.stats().cache_hits, 0);
    }

    #[test]
    fn writes_are_counted() {
        let mut s = PageStore::new();
        let p = s.allocate();
        s.write(p, |b| b[1] = 1).unwrap();
        s.write(p, |b| b[2] = 2).unwrap();
        assert_eq!(s.stats().pages_written, 2);
    }

    #[test]
    fn io_seconds_depend_on_access_pattern() {
        let profile = DiskProfile {
            seq_read_bytes_per_sec: 8192.0 * 1000.0, // 1000 seq pages/s
            random_read_iops: 100.0,                 // 100 random pages/s
            write_bytes_per_sec: f64::INFINITY,
        };
        let mut s = PageStore::with_pool(16, profile);
        for _ in 0..10 {
            s.allocate();
        }
        s.clear_cache();
        let before = s.stats();
        for p in 0..10 {
            s.read(p).unwrap();
        }
        let seq_time = s.io_seconds_since(&before);

        s.clear_cache();
        let before = s.stats();
        for p in [0u64, 9, 1, 8, 2, 7, 3, 6, 4, 5] {
            s.read(p).unwrap();
        }
        let rnd_time = s.io_seconds_since(&before);
        assert!(
            rnd_time > 4.0 * seq_time,
            "random {rnd_time} should dwarf sequential {seq_time}"
        );
    }

    /// Regression test for the post-scan head drift: a scan whose *last
    /// touches* are cache hits must leave the simulated head at the last
    /// **physical** read, not teleported to the last touched page.
    #[test]
    fn finish_scan_head_ignores_trailing_cache_hits() {
        let mut s = PageStore::new();
        for _ in 0..16 {
            s.allocate();
        }
        s.clear_cache();
        // Warm pages 14 and 15 so the scan ends in cache hits.
        s.read(14).unwrap();
        s.read(15).unwrap();
        s.reset_stats();

        let scan = s.begin_scan();
        let mut r = s.reader(&scan, 0);
        for p in 10..16 {
            r.read(p).unwrap();
        }
        let io = r.finish();
        assert_eq!(io.io.pages_read, 4); // 10..14 physical
        assert_eq!(io.io.cache_hits, 2); // 14, 15 resident
        assert_eq!(io.last_physical_read, Some(13));
        s.finish_scan([&io]);
        // The old `absorb_scan` set the head to 15 (the last *touch*),
        // misclassifying a following read of 16 as sequential.
        assert_eq!(s.seek_position(), Some(13));
    }

    /// A scan made of nothing but cache hits must not move the head at
    /// all.
    #[test]
    fn finish_scan_all_hits_leaves_head_alone() {
        let mut s = PageStore::new();
        for _ in 0..8 {
            s.allocate();
        }
        s.clear_cache();
        // Physically read 4..8 (head ends at 7), leaving them resident.
        for p in 4..8 {
            s.read(p).unwrap();
        }
        assert_eq!(s.seek_position(), Some(7));
        let scan = s.begin_scan();
        let mut r = s.reader(&scan, 0);
        for p in 4..8 {
            r.read(p).unwrap(); // all resident: pure cache hits
        }
        let io = r.finish();
        assert_eq!(io.io.pages_read, 0);
        assert_eq!(io.first_physical_read, None);
        s.finish_scan([&io]);
        assert_eq!(s.seek_position(), Some(7));
    }

    /// Partition boundaries must not cost phantom seeks: worker `p`'s
    /// first physical read is reclassified sequential when it continues
    /// worker `p−1`'s last physical position, making the merged counters
    /// exactly serial.
    #[test]
    fn finish_scan_stitches_boundary_classification() {
        let mut s = PageStore::new();
        for _ in 0..8 {
            s.allocate();
        }
        s.clear_cache();
        s.reset_stats();

        // Serial baseline over pages 0..8.
        let scan = s.begin_scan();
        let mut r = s.reader(&scan, 0);
        for p in 0..8 {
            r.read(p).unwrap();
        }
        let serial = r.finish();
        drop(scan);
        let serial_merged = s.finish_scan([&serial]);

        // Same pages as two partitions.
        let mut s2 = PageStore::new();
        for _ in 0..8 {
            s2.allocate();
        }
        s2.clear_cache();
        s2.reset_stats();
        let scan = s2.begin_scan();
        let mut a = s2.reader(&scan, 0);
        for p in 0..4 {
            a.read(p).unwrap();
        }
        let a = a.finish();
        let mut b = s2.reader(&scan, 1);
        for p in 4..8 {
            b.read(p).unwrap();
        }
        let b = b.finish();
        // Worker b classified page 4 as a seek on its own…
        assert_eq!(b.io.random_reads, 1);
        drop(scan);
        let merged = s2.finish_scan([&a, &b]);
        // …but the merge stitches it back to sequential.
        assert_eq!(merged, serial_merged);
        assert_eq!(s2.stats(), s.stats());
        assert_eq!(s2.seek_position(), s.seek_position());
    }

    /// Scan workers touch the live pool as they read: residency is
    /// immediately visible, and the end state (set *and* recency order)
    /// matches the serial scan at any worker split.
    #[test]
    fn live_pool_state_is_dop_invariant() {
        let build = |splits: &[std::ops::Range<u64>]| {
            let mut s = PageStore::with_pool(8, DiskProfile::default());
            for _ in 0..32 {
                s.allocate();
            }
            s.clear_cache();
            let scan = s.begin_scan();
            let ios: Vec<ScanIo> = splits
                .iter()
                .enumerate()
                .map(|(pi, range)| {
                    let mut r = s.reader(&scan, pi as u32);
                    for p in range.clone() {
                        r.read(p).unwrap();
                    }
                    r.finish()
                })
                .collect();
            drop(scan);
            s.finish_scan(ios.iter());
            (s.pool().keys_mru_order(), s.stats(), s.seek_position())
        };
        #[allow(clippy::single_range_in_vec_init)] // one partition covering 0..32
        let serial = build(&[0..32]);
        for splits in [
            vec![0..16, 16..32],
            vec![0..8, 8..16, 16..24, 24..32],
            vec![0..5, 5..17, 17..18, 18..32],
        ] {
            assert_eq!(build(&splits), serial, "splits {splits:?}");
        }
    }
}
