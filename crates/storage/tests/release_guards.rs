//! Regression tests for guards that must fire in RELEASE builds too.
//!
//! These asserts used to be `debug_assert!`: compiled out under
//! `--release`, a wrong-length page buffer or an unsorted chunk list
//! would silently corrupt data instead of panicking. Run this file under
//! both profiles (`cargo test` and `cargo test --release`); the
//! `#[should_panic]` cases are the ones a debug-only guard would let
//! through.

use sqlarray_storage::page::{page_type, SlottedPage, PAGE_SIZE};

#[test]
#[should_panic]
fn slotted_page_init_rejects_short_buffer_even_in_release() {
    // One byte short: a debug-only guard would let init() write a page
    // header into a truncated buffer and corrupt the neighboring page.
    let mut bytes = vec![0u8; PAGE_SIZE - 1];
    let _ = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
}

#[test]
#[should_panic]
fn slotted_page_init_rejects_oversized_buffer_even_in_release() {
    let mut bytes = vec![0u8; PAGE_SIZE + 1];
    let _ = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
}

#[test]
fn slotted_page_init_accepts_exact_page() {
    let mut bytes = vec![0u8; PAGE_SIZE];
    let p = SlottedPage::init(&mut bytes, page_type::BTREE_LEAF);
    assert_eq!(p.page_type(), page_type::BTREE_LEAF);
}

#[test]
#[should_panic]
fn morton3_encode_rejects_out_of_range_coordinate_even_in_release() {
    // 2^21 exceeds the 21-bit budget; spread3 would mask it to 0 and
    // silently produce the key of the origin cell.
    let _ = sqlarray_storage::zorder::morton3_encode(1 << 21, 0, 0);
}
