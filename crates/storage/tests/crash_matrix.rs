//! The crash matrix: every mutation path (bulk load, UPDATE-style row and
//! blob-range maintenance, DELETE) is killed at **every** WAL-append
//! injection point — with clean and torn cuts — and recovery must land
//! byte-for-byte on the last complete commit: base pages, checksums,
//! free list, catalog, and every decodable row and LOB chain.
//!
//! Injection points are enumerated from one clean run of the victim
//! ([`IoStats::wal_records`] counts every append, durable or not), so the
//! matrix is exhaustive by construction: a new WAL record type or an
//! extra logged write in some code path automatically widens the matrix.
//!
//! The property-based suite generalizes the fixed victims: random
//! insert/update/patch/delete interleavings with a commit after every
//! statement, crashed at a random record allowance, must recover exactly
//! the prefix covered by the last surviving commit.

use proptest::prelude::*;
use sqlarray_storage::fail::{tear_wal, FailStore};
use sqlarray_storage::{wal, ColType, DiskImage, PageStore, RowValue, Schema, StorageError, Table};

const CHUNK_DATA: usize = 8176; // PAGE_SIZE - 16, the blob chunk payload

fn schema() -> Schema {
    Schema::new(&[
        ("id", ColType::I64),
        ("tag", ColType::I32),
        ("v", ColType::Blob),
    ])
}

/// Deterministic blob payload: `len` bytes seeded by `seed`.
fn pattern(seed: i64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u64).wrapping_mul(31).wrapping_add(seed as u64) as u8)
        .collect()
}

fn row(k: i64, tag: i32, blob_len: usize) -> (i64, Vec<RowValue>) {
    (
        k,
        vec![
            RowValue::I64(k),
            RowValue::I32(tag),
            RowValue::Bytes(pattern(k, blob_len)),
        ],
    )
}

/// Commits with the table's tree geometry as the catalog payload, the
/// way an engine-level commit carries its table map.
fn commit(store: &mut PageStore, t: &Table) {
    let (root, first_leaf, rows, depth) = t.tree_parts();
    let mut cat = Vec::new();
    cat.extend_from_slice(&root.to_le_bytes());
    cat.extend_from_slice(&first_leaf.to_le_bytes());
    cat.extend_from_slice(&rows.to_le_bytes());
    cat.extend_from_slice(&depth.to_le_bytes());
    store.commit(&cat);
}

fn parse_catalog(cat: &[u8]) -> (u64, u64, u64, u32) {
    assert_eq!(cat.len(), 28, "catalog payload has the committed shape");
    let u64_at = |o: usize| u64::from_le_bytes(cat[o..o + 8].try_into().unwrap());
    (
        u64_at(0),
        u64_at(8),
        u64_at(16),
        u32::from_le_bytes(cat[24..28].try_into().unwrap()),
    )
}

/// Everything recovery promises, in comparable form: the canonical
/// (checkpointed) disk image, the committed catalog, and every row the
/// catalog's tree can decode — LOB chains read back to bytes.
#[derive(PartialEq, Debug)]
struct RecoveredState {
    pages: Vec<Box<[u8]>>,
    sums: Vec<u32>,
    free: Vec<u64>,
    catalog: Option<Vec<u8>>,
    rows: Vec<(i64, i64, i32, Vec<u8>)>,
}

/// Reboots from `image` and materializes the full recovered state. Panics
/// on any recovery or decode failure: inside the matrix, every crash
/// point must yield a *readable* store, not just an openable one.
fn recover(image: &DiskImage) -> RecoveredState {
    let rec = PageStore::open(image).expect("recovery accepts the crashed image");
    let mut store = rec.store;
    let mut rows = Vec::new();
    if let Some(cat) = &rec.catalog {
        let t = Table::from_parts("T".into(), schema(), parse_catalog(cat));
        let n = t.tree_parts().2 as i64;
        // Keys are drawn from 0..64 in every workload here; probing the
        // whole range exercises both present and absent keys.
        let mut seen = 0i64;
        for k in 0..64 {
            if let Some(vals) = t.get(&mut store, k).expect("recovered leaf decodes") {
                seen += 1;
                let RowValue::I64(id) = vals[0] else {
                    panic!("id column decodes as I64")
                };
                let RowValue::I32(tag) = vals[1] else {
                    panic!("tag column decodes as I32")
                };
                let bytes = match &vals[2] {
                    RowValue::Bytes(b) => b.clone(),
                    &RowValue::LobRef(id, len) => {
                        let b = sqlarray_storage::blob::read_blob(&mut store, id)
                            .expect("recovered LOB chain reads back");
                        assert_eq!(b.len(), len as usize, "LOB length matches its ref");
                        b
                    }
                    other => panic!("blob column decodes as bytes, got {other:?}"),
                };
                rows.push((k, id, tag, bytes));
            }
        }
        assert_eq!(seen, n, "row count in catalog matches decodable rows");
    }
    let canon = store.crash_image();
    assert!(
        canon.wal.is_empty(),
        "recovery checkpoints: log starts empty"
    );
    RecoveredState {
        pages: canon.pages,
        sums: canon.sums,
        free: canon.free,
        catalog: rec.catalog,
        rows,
    }
}

/// Kills `victim` at every WAL-append injection point (clean cut and a
/// 17-byte torn prefix of the first lost record), asserting recovery is
/// byte-identical to the pre-victim commit for every incomplete cut, and
/// to the post-victim commit when everything reached the log. `victim`
/// must end with exactly one commit (its last append).
fn run_matrix(setup: &dyn Fn() -> (PageStore, Table), victim: &dyn Fn(&mut PageStore, &mut Table)) {
    // Clean run: enumerate the injection points, capture both anchors.
    let (mut store, mut t) = setup();
    let pre = recover(&store.crash_image());
    let before = store.stats().wal_records;
    victim(&mut store, &mut t);
    let n_records = store.stats().wal_records - before;
    assert!(n_records > 1, "victim must append records, then commit");
    let post = recover(&store.crash_image());
    assert_ne!(pre.rows, post.rows, "victim must change visible state");

    for allow in 0..=n_records {
        for torn in [0usize, 17] {
            let (store, mut t) = setup();
            let mut f = FailStore::new(store);
            f.kill_at_write(allow, torn);
            victim(&mut f, &mut t);
            let got = recover(&f.crash());
            // The victim's last append is its commit record: any cut that
            // loses a record loses the commit, so recovery must roll the
            // whole victim back; only the full log carries it forward.
            let want = if allow < n_records { &pre } else { &post };
            assert_eq!(
                &got, want,
                "crash at record {allow}/{n_records} (torn {torn}) must recover \
                 the last complete commit"
            );
        }
    }
}

/// Rows mixing inline blobs, a 2-chunk LOB, and a 3-chunk LOB, so leaf
/// records, root pages, chunk chains and the free list all participate.
fn mixed_rows(n: i64) -> Vec<(i64, Vec<RowValue>)> {
    (0..n)
        .map(|k| match k % 4 {
            0 => row(k, k as i32, 64),            // inline
            1 => row(k, -k as i32, 7000),         // inline, near the limit
            2 => row(k, 2 * k as i32, 12_000),    // 2-chunk LOB
            _ => row(k, -(2 * k) as i32, 20_000), // 3-chunk LOB
        })
        .collect()
}

fn empty_committed() -> (PageStore, Table) {
    let mut store = PageStore::new();
    let t = Table::create(&mut store, "T", schema()).unwrap();
    commit(&mut store, &t);
    (store, t)
}

fn loaded_committed() -> (PageStore, Table) {
    let (mut store, mut t) = empty_committed();
    t.bulk_load(&mut store, &mixed_rows(12), 1).unwrap();
    commit(&mut store, &t);
    (store, t)
}

#[test]
fn bulk_load_crash_matrix_at_every_dop() {
    for dop in [1usize, 2, 4, 8] {
        run_matrix(&empty_committed, &move |store, t| {
            t.bulk_load(store, &mixed_rows(12), dop).unwrap();
            commit(store, t);
        });
    }
}

#[test]
fn bulk_load_wal_stream_is_dop_invariant() {
    // The matrix above re-proves recovery per DOP; this pins the stronger
    // fact it rests on: the *log bytes themselves* are identical, so every
    // crash point at DOP 8 is the same disk state as at DOP 1.
    let image_at = |dop: usize| {
        let (mut store, mut t) = empty_committed();
        t.bulk_load(&mut store, &mixed_rows(24), dop).unwrap();
        commit(&mut store, &t);
        store.crash_image()
    };
    let serial = image_at(1);
    for dop in [2usize, 4, 8] {
        let par = image_at(dop);
        assert_eq!(serial.wal, par.wal, "WAL bytes differ at dop {dop}");
        assert_eq!(serial.pages, par.pages, "base pages differ at dop {dop}");
        assert_eq!(serial.sums, par.sums);
        assert_eq!(serial.free, par.free);
    }
}

#[test]
fn update_crash_matrix() {
    run_matrix(&loaded_committed, &|store, t| {
        // Replace a LOB chain (free + rewrite), grow an inline value out
        // of page, shrink a LOB back inline, and touch a scalar column.
        t.update(store, 2, &row(2, 99, 15_000).1).unwrap();
        t.update(store, 0, &row(0, 7, 11_000).1).unwrap();
        t.update(store, 3, &row(3, -7, 80).1).unwrap();
        t.update(store, 1, &row(1, 1000, 7000).1).unwrap();
        commit(store, t);
    });
}

#[test]
fn blob_range_update_crash_matrix() {
    run_matrix(&loaded_committed, &|store, t| {
        // The ArrayUpdate path: splice bytes across a chunk boundary of a
        // stored chain, and splice inside an inline blob.
        t.update_col_blob_range(store, 7, 2, CHUNK_DATA - 50, &pattern(77, 300))
            .unwrap();
        t.update_col_blob_range(store, 1, 2, 100, &pattern(78, 64))
            .unwrap();
        commit(store, t);
    });
}

#[test]
fn delete_crash_matrix() {
    run_matrix(&loaded_committed, &|store, t| {
        // Inline rows and both LOB shapes, including a whole leaf's worth.
        for k in [0i64, 2, 3, 5, 7, 11] {
            assert!(t.delete(store, k).unwrap());
        }
        commit(store, t);
    });
}

#[test]
fn torn_wal_tail_is_typed_and_recovery_discards_it() {
    let (mut store, mut t) = loaded_committed();
    t.update(&mut store, 2, &row(2, 5, 9_000).1).unwrap();
    commit(&mut store, &t);
    let mut image = store.crash_image();
    let full = image.wal.len();
    tear_wal(&mut image, full - 5);
    // The strict scanner names the torn frame's offset…
    let err = wal::scan_strict(&image.wal).unwrap_err();
    assert!(
        matches!(err, StorageError::WalTorn { offset } if offset < full - 5),
        "got {err:?}"
    );
    // …while recovery treats the same tail as a crash artifact: replay
    // stops at the last complete commit and reports the discarded bytes.
    let rec = PageStore::open(&image).unwrap();
    assert!(rec.discarded_bytes > 0);
    assert!(rec.catalog.is_some());
}

#[test]
fn short_leaf_record_is_a_typed_row_error() {
    // A leaf record cut short (here: a row claiming an inline blob longer
    // than its bytes) surfaces as RowCorrupt, not a panic or a wrong row.
    let schema = schema();
    let (_, vals) = row(9, 9, 64);
    let full = sqlarray_storage::row::encode_row(&mut PageStore::new(), &schema, &vals).unwrap();
    let short = &full[..full.len() - 10];
    let err = sqlarray_storage::row::decode_row(&schema, short).unwrap_err();
    assert!(matches!(err, StorageError::RowCorrupt(_)), "got {err:?}");
}

// ---------------------------------------------------------------------------
// Property-based generalization
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Upsert(i64, usize),
    Patch(i64, usize, usize),
    Delete(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0i64..8, 0usize..20_000, 1usize..600).prop_map(|(kind, k, a, b)| match kind {
        0 => Op::Upsert(k, a),
        1 => Op::Patch(k, a, b),
        _ => Op::Delete(k),
    })
}

/// Applies one op; every generated op is valid against the current state
/// by construction (bounds are clamped against the stored value).
fn apply(store: &mut PageStore, t: &mut Table, op: &Op, step: i64) {
    match *op {
        Op::Upsert(k, len) => {
            let vals = row(k, (step + 1) as i32, len).1;
            if t.get(store, k).unwrap().is_some() {
                assert!(t.update(store, k, &vals).unwrap());
            } else {
                t.insert(store, k, &vals).unwrap();
            }
        }
        Op::Patch(k, off, len) => {
            let Some(vals) = t.get(store, k).unwrap() else {
                return;
            };
            let total = match &vals[2] {
                RowValue::Bytes(b) => b.len(),
                &RowValue::LobRef(_, l) => l as usize,
                _ => unreachable!(),
            };
            if total == 0 {
                return;
            }
            let off = off % total;
            let len = len.min(total - off);
            t.update_col_blob_range(store, k, 2, off, &pattern(step, len))
                .unwrap();
        }
        Op::Delete(k) => {
            t.delete(store, k).unwrap();
        }
    }
}

proptest! {
    /// Statement-level autocommit under a random crash: with a commit
    /// after every op, recovery must produce exactly the state of the
    /// longest op prefix whose commit reached the log — never a blend.
    #[test]
    fn random_dml_crashes_recover_the_last_committed_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..10),
        crash_pick in any::<u32>(),
        torn_pick in any::<u8>(),
    ) {
        // Clean run: per-prefix cumulative record counts and states.
        let (mut store, mut t) = loaded_committed();
        let base_records = store.stats().wal_records;
        let mut cut_records = vec![0u64]; // records consumed by prefix i
        let mut states = vec![recover(&store.crash_image())];
        for (i, op) in ops.iter().enumerate() {
            apply(&mut store, &mut t, op, i as i64);
            commit(&mut store, &t);
            cut_records.push(store.stats().wal_records - base_records);
            states.push(recover(&store.crash_image()));
        }
        let total = *cut_records.last().unwrap();

        // Armed run at a derived crash point.
        let allow = u64::from(crash_pick) % (total + 1);
        let torn = [0usize, 1, 17][usize::from(torn_pick) % 3];
        let (store, mut t) = loaded_committed();
        let mut f = FailStore::new(store);
        f.kill_at_write(allow, torn);
        for (i, op) in ops.iter().enumerate() {
            apply(&mut f, &mut t, op, i as i64);
            commit(&mut f, &t);
        }
        let got = recover(&f.crash());
        // Expected: the longest prefix whose commit record survived.
        let covered = cut_records.iter().rposition(|&c| c <= allow).unwrap();
        prop_assert!(
            got == states[covered],
            "crash at {}/{} (torn {}) must recover prefix {}",
            allow, total, torn, covered
        );
    }
}
