//! Property-based tests: the B-tree against a `BTreeMap` model, blob
//! range reads against slices, and row-codec round trips.

use proptest::prelude::*;
use sqlarray_storage::{blob, row, BTree, ColType, PageStore, RowValue, Schema, Table};
use std::collections::BTreeMap;

proptest! {
    /// The clustered B-tree behaves exactly like an ordered map: same
    /// point lookups, same full-scan order, same length.
    #[test]
    fn btree_matches_btreemap_model(
        ops in prop::collection::vec((any::<i16>(), prop::collection::vec(any::<u8>(), 0..40)), 1..300)
    ) {
        let mut store = PageStore::new();
        let mut tree = BTree::create(&mut store).unwrap();
        let mut model: BTreeMap<i64, Vec<u8>> = BTreeMap::new();
        for (k, payload) in ops {
            let key = k as i64;
            let inserted = tree.insert(&mut store, key, &payload);
            if model.contains_key(&key) {
                prop_assert!(inserted.is_err(), "duplicate accepted");
            } else {
                prop_assert!(inserted.is_ok());
                model.insert(key, payload);
            }
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        // Point lookups agree, including misses.
        for probe in [-40000i64, -1, 0, 1, 17, 40000] {
            prop_assert_eq!(tree.get(&mut store, probe).unwrap(), model.get(&probe).cloned());
        }
        for (&k, v) in model.iter().take(20) {
            let got = tree.get(&mut store, k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Scan yields the model's entries in order.
        let mut scanned = Vec::new();
        tree.scan(&mut store, |k, p| {
            scanned.push((k, p.to_vec()));
            Ok(true)
        })
        .unwrap();
        let expect: Vec<(i64, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    /// Range scans agree with the model's range.
    #[test]
    fn btree_range_scan_matches_model(
        keys in prop::collection::btree_set(-500i64..500, 1..150),
        lo in -600i64..600,
        span in 0i64..300,
    ) {
        let hi = lo + span;
        let mut store = PageStore::new();
        let mut tree = BTree::create(&mut store).unwrap();
        for &k in &keys {
            tree.insert(&mut store, k, &k.to_le_bytes()).unwrap();
        }
        let mut got = Vec::new();
        tree.scan_range(&mut store, lo, hi, |k, _| {
            got.push(k);
            Ok(true)
        })
        .unwrap();
        let expect: Vec<i64> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
        prop_assert_eq!(got, expect);
    }

    /// Blob range reads return exactly the bytes of the source slice, for
    /// any in-bounds range.
    #[test]
    fn blob_range_reads_match_source(
        len in 0usize..60_000,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| ((i as u64).wrapping_mul(seed | 1) >> 5) as u8).collect();
        let mut store = PageStore::new();
        let id = blob::write_blob(&mut store, &data).unwrap();
        prop_assert_eq!(blob::blob_len(&mut store, id).unwrap(), len);
        // Probe a few derived ranges.
        let mut s = seed;
        let mut next = move || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); s as usize };
        for _ in 0..8 {
            if len == 0 { break; }
            let off = next() % len;
            let n = (next() % (len - off)).min(4096);
            let mut buf = vec![0u8; n];
            blob::read_blob_range(&mut store, id, off, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &data[off..off + n]);
        }
        // Full read agrees.
        prop_assert_eq!(blob::read_blob(&mut store, id).unwrap(), data);
    }

    /// Row encode/decode is the identity for arbitrary values, and
    /// single-column decode matches the full decode.
    #[test]
    fn row_codec_round_trips(
        i64v in any::<i64>(),
        i32v in any::<i32>(),
        f64v in any::<f64>(),
        f32v in any::<f32>(),
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // NaN breaks equality; normalize.
        let f64v = if f64v.is_nan() { 0.0 } else { f64v };
        let f32v = if f32v.is_nan() { 0.0 } else { f32v };
        let schema = Schema::new(&[
            ("a", ColType::I64),
            ("b", ColType::I32),
            ("c", ColType::F64),
            ("d", ColType::F32),
            ("e", ColType::Blob),
        ]);
        let values = vec![
            RowValue::I64(i64v),
            RowValue::I32(i32v),
            RowValue::F64(f64v),
            RowValue::F32(f32v),
            RowValue::Bytes(bytes),
        ];
        let mut store = PageStore::new();
        let encoded = row::encode_row(&mut store, &schema, &values).unwrap();
        let decoded = row::decode_row(&schema, &encoded).unwrap();
        prop_assert_eq!(&decoded, &values);
        for col in 0..5 {
            prop_assert_eq!(
                row::decode_col(&schema, &encoded, col).unwrap(),
                values[col].clone()
            );
        }
    }

    /// Morton keys round-trip and preserve the octant hierarchy for any
    /// coordinates.
    #[test]
    fn morton_round_trip(x in 0u64..(1 << 21), y in 0u64..(1 << 21), z in 0u64..(1 << 21)) {
        use sqlarray_storage::zorder::{morton3_decode, morton3_encode};
        let key = morton3_encode(x, y, z);
        prop_assert_eq!(morton3_decode(key), (x, y, z));
        // Scaling all coordinates down by 2 strips exactly 3 bits.
        let parent = morton3_encode(x >> 1, y >> 1, z >> 1);
        prop_assert_eq!(parent, key >> 3);
    }

    /// Scan partitions cover exactly the full scan for every table size
    /// and DOP, including the boundary shapes: empty table, one row,
    /// fewer rows (or leaves) than DOP, and non-divisible chunk counts.
    #[test]
    fn partitions_tile_the_scan(rows in 0i64..4000, dop in 1usize..12) {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        for k in 0..rows {
            t.insert(&mut store, k, &[RowValue::I64(k), RowValue::F64(k as f64)]).unwrap();
        }
        let mut full = Vec::new();
        t.scan_raw(&mut store, |k, _| { full.push(k); Ok(true) }).unwrap();
        prop_assert_eq!(full.len() as i64, rows);

        let parts = t.partition(&mut store, dop).unwrap();
        // Always at least one partition, never more than requested, and
        // no partition is a useless empty tail when the table has rows.
        prop_assert!(!parts.is_empty());
        prop_assert!(parts.len() <= dop);
        if rows > 0 {
            prop_assert!(parts.iter().all(|p| !p.is_empty()));
        }
        // Leaf counts are balanced to within one page.
        let lens: Vec<usize> = parts.iter().map(|p| p.leaves().len()).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced partitions: {:?}", lens);

        // Concatenated partition scans equal the full scan, in order.
        let resident = store.resident_snapshot();
        let mut seen = Vec::new();
        for p in &parts {
            let mut r = store.reader(&resident);
            t.scan_partition(&mut r, p, |k, _| { seen.push(k); Ok(true) }).unwrap();
        }
        prop_assert_eq!(seen, full);

        // Same DOP, same boundaries: partitioning is deterministic.
        let again = t.partition(&mut store, dop).unwrap();
        prop_assert_eq!(
            again.iter().map(|p| p.leaves().to_vec()).collect::<Vec<_>>(),
            parts.iter().map(|p| p.leaves().to_vec()).collect::<Vec<_>>()
        );
    }
}
