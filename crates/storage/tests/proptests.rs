//! Property-based tests: the B-tree against a `BTreeMap` model, blob
//! range reads against slices, row-codec round trips, the LRU set against
//! an ordered-map model, and the scan path's DOP-invariance contract.

use proptest::prelude::*;
use sqlarray_storage::lru::LruSet;
use sqlarray_storage::{
    blob, row, BTree, ColType, DiskProfile, IoStats, PageStore, RowValue, ScanIo, Schema, Table,
};
use std::collections::BTreeMap;

/// Builds a vector table with `rows` rows over a store with a `pool_pages`
/// buffer pool, for the scan-accounting properties.
fn scan_fixture(rows: i64, pool_pages: usize) -> (PageStore, Table) {
    let mut store = PageStore::with_pool(pool_pages, DiskProfile::default());
    let schema = Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]);
    let mut t = Table::create(&mut store, "T", schema).unwrap();
    for k in 0..rows {
        let data: Vec<f64> = (0..5).map(|i| k as f64 + i as f64 * 0.5).collect();
        let arr = sqlarray_core::build::short_vector(&data).unwrap();
        t.insert(
            &mut store,
            k,
            &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
        )
        .unwrap();
    }
    (store, t)
}

/// Runs one partitioned scan at `dop`, interleaving the workers' page
/// reads according to `schedule` (a deterministic stand-in for arbitrary
/// thread timing), then folds it back. Returns the merged [`IoStats`].
fn run_scan(store: &mut PageStore, table: &Table, dop: usize, schedule: &[u8]) -> IoStats {
    let parts = table.partition(store, dop).unwrap();
    let scan = store.begin_scan();
    let mut readers: Vec<_> = (0..parts.len())
        .map(|pi| store.reader(&scan, pi as u32))
        .collect();
    let mut cursors = vec![0usize; parts.len()];
    let mut step = 0usize;
    loop {
        let pending: Vec<usize> = (0..parts.len())
            .filter(|&pi| cursors[pi] < parts[pi].leaves().len())
            .collect();
        if pending.is_empty() {
            break;
        }
        // Pick the next worker to advance from the schedule (wrapping).
        let pick = pending[schedule
            .get(step % schedule.len().max(1))
            .map(|&b| b as usize)
            .unwrap_or(0)
            % pending.len()];
        step += 1;
        let pid = parts[pick].leaves()[cursors[pick]];
        readers[pick].read(pid).unwrap();
        cursors[pick] += 1;
    }
    let ios: Vec<ScanIo> = readers.into_iter().map(|r| r.finish()).collect();
    drop(scan);
    store.finish_scan(ios.iter())
}

proptest! {
    /// The clustered B-tree behaves exactly like an ordered map: same
    /// point lookups, same full-scan order, same length.
    #[test]
    fn btree_matches_btreemap_model(
        ops in prop::collection::vec((any::<i16>(), prop::collection::vec(any::<u8>(), 0..40)), 1..300)
    ) {
        let mut store = PageStore::new();
        let mut tree = BTree::create(&mut store).unwrap();
        let mut model: BTreeMap<i64, Vec<u8>> = BTreeMap::new();
        for (k, payload) in ops {
            let key = k as i64;
            let inserted = tree.insert(&mut store, key, &payload);
            if let std::collections::btree_map::Entry::Vacant(slot) = model.entry(key) {
                prop_assert!(inserted.is_ok());
                slot.insert(payload);
            } else {
                prop_assert!(inserted.is_err(), "duplicate accepted");
            }
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        // Point lookups agree, including misses.
        for probe in [-40000i64, -1, 0, 1, 17, 40000] {
            prop_assert_eq!(tree.get(&mut store, probe).unwrap(), model.get(&probe).cloned());
        }
        for (&k, v) in model.iter().take(20) {
            let got = tree.get(&mut store, k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Scan yields the model's entries in order.
        let mut scanned = Vec::new();
        tree.scan(&mut store, |k, p| {
            scanned.push((k, p.to_vec()));
            Ok(true)
        })
        .unwrap();
        let expect: Vec<(i64, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    /// Range scans agree with the model's range.
    #[test]
    fn btree_range_scan_matches_model(
        keys in prop::collection::btree_set(-500i64..500, 1..150),
        lo in -600i64..600,
        span in 0i64..300,
    ) {
        let hi = lo + span;
        let mut store = PageStore::new();
        let mut tree = BTree::create(&mut store).unwrap();
        for &k in &keys {
            tree.insert(&mut store, k, &k.to_le_bytes()).unwrap();
        }
        let mut got = Vec::new();
        tree.scan_range(&mut store, lo, hi, |k, _| {
            got.push(k);
            Ok(true)
        })
        .unwrap();
        let expect: Vec<i64> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
        prop_assert_eq!(got, expect);
    }

    /// Blob range reads return exactly the bytes of the source slice, for
    /// any in-bounds range.
    #[test]
    fn blob_range_reads_match_source(
        len in 0usize..60_000,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| ((i as u64).wrapping_mul(seed | 1) >> 5) as u8).collect();
        let mut store = PageStore::new();
        let id = blob::write_blob(&mut store, &data).unwrap();
        prop_assert_eq!(blob::blob_len(&mut store, id).unwrap(), len);
        // Probe a few derived ranges.
        let mut s = seed;
        let mut next = move || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); s as usize };
        for _ in 0..8 {
            if len == 0 { break; }
            let off = next() % len;
            let n = (next() % (len - off)).min(4096);
            let mut buf = vec![0u8; n];
            blob::read_blob_range(&mut store, id, off, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &data[off..off + n]);
        }
        // Full read agrees.
        prop_assert_eq!(blob::read_blob(&mut store, id).unwrap(), data);
    }

    /// Row encode/decode is the identity for arbitrary values, and
    /// single-column decode matches the full decode.
    #[test]
    fn row_codec_round_trips(
        i64v in any::<i64>(),
        i32v in any::<i32>(),
        f64v in any::<f64>(),
        f32v in any::<f32>(),
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // NaN breaks equality; normalize.
        let f64v = if f64v.is_nan() { 0.0 } else { f64v };
        let f32v = if f32v.is_nan() { 0.0 } else { f32v };
        let schema = Schema::new(&[
            ("a", ColType::I64),
            ("b", ColType::I32),
            ("c", ColType::F64),
            ("d", ColType::F32),
            ("e", ColType::Blob),
        ]);
        let values = vec![
            RowValue::I64(i64v),
            RowValue::I32(i32v),
            RowValue::F64(f64v),
            RowValue::F32(f32v),
            RowValue::Bytes(bytes),
        ];
        let mut store = PageStore::new();
        let encoded = row::encode_row(&mut store, &schema, &values).unwrap();
        let decoded = row::decode_row(&schema, &encoded).unwrap();
        prop_assert_eq!(&decoded, &values);
        for (col, value) in values.iter().enumerate() {
            prop_assert_eq!(
                &row::decode_col(&schema, &encoded, col).unwrap(),
                value
            );
        }
    }

    /// Morton keys round-trip and preserve the octant hierarchy for any
    /// coordinates.
    #[test]
    fn morton_round_trip(x in 0u64..(1 << 21), y in 0u64..(1 << 21), z in 0u64..(1 << 21)) {
        use sqlarray_storage::zorder::{morton3_decode, morton3_encode};
        let key = morton3_encode(x, y, z);
        prop_assert_eq!(morton3_decode(key), (x, y, z));
        // Scaling all coordinates down by 2 strips exactly 3 bits.
        let parent = morton3_encode(x >> 1, y >> 1, z >> 1);
        prop_assert_eq!(parent, key >> 3);
    }

    /// Scan partitions cover exactly the full scan for every table size
    /// and DOP, including the boundary shapes: empty table, one row,
    /// fewer rows (or leaves) than DOP, and non-divisible chunk counts.
    #[test]
    fn partitions_tile_the_scan(rows in 0i64..4000, dop in 1usize..12) {
        let mut store = PageStore::new();
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut t = Table::create(&mut store, "T", schema).unwrap();
        for k in 0..rows {
            t.insert(&mut store, k, &[RowValue::I64(k), RowValue::F64(k as f64)]).unwrap();
        }
        let mut full = Vec::new();
        t.scan_raw(&mut store, |k, _| { full.push(k); Ok(true) }).unwrap();
        prop_assert_eq!(full.len() as i64, rows);

        let parts = t.partition(&store, dop).unwrap();
        // Always at least one partition, never more than requested, and
        // no partition is a useless empty tail when the table has rows.
        prop_assert!(!parts.is_empty());
        prop_assert!(parts.len() <= dop);
        if rows > 0 {
            prop_assert!(parts.iter().all(|p| !p.is_empty()));
        }
        // Leaf counts are balanced to within one page.
        let lens: Vec<usize> = parts.iter().map(|p| p.leaves().len()).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced partitions: {:?}", lens);

        // Concatenated partition scans equal the full scan, in order.
        let scan = store.begin_scan();
        let mut seen = Vec::new();
        for (pi, p) in parts.iter().enumerate() {
            let mut r = store.reader(&scan, pi as u32);
            t.scan_partition(&mut r, p, |_, k, _| { seen.push(k); Ok(true) }).unwrap();
        }
        prop_assert_eq!(seen, full);

        // Same DOP, same boundaries: partitioning is deterministic.
        let again = t.partition(&store, dop).unwrap();
        prop_assert_eq!(
            again.iter().map(|p| p.leaves().to_vec()).collect::<Vec<_>>(),
            parts.iter().map(|p| p.leaves().to_vec()).collect::<Vec<_>>()
        );
    }

    /// `LruSet` against an ordered-map model under heavy churn of
    /// *blind* inserts (duplicates included — they must degrade to
    /// touches), touches, and removes: membership, length, and full
    /// recency order always agree, and capacity is never exceeded.
    #[test]
    fn lru_set_matches_recency_model(
        capacity in 1usize..24,
        ops in prop::collection::vec((0u8..3, 0u64..48), 1..400),
    ) {
        let mut lru = LruSet::new(capacity);
        // Model: key -> last-touch tick; recency order = ticks descending.
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (tick, (op, key)) in ops.into_iter().enumerate() {
            let tick = tick as u64;
            match op {
                0 => {
                    // Blind insert: duplicate degrades to a touch.
                    let evicted = lru.insert(key);
                    if model.contains_key(&key) {
                        prop_assert_eq!(evicted, None);
                        model.insert(key, tick);
                    } else {
                        if model.len() >= capacity {
                            // Model evicts its least recently used key.
                            let victim = *model
                                .iter()
                                .min_by_key(|(_, &t)| t)
                                .map(|(k, _)| k)
                                .unwrap();
                            prop_assert_eq!(evicted, Some(victim));
                            model.remove(&victim);
                        } else {
                            prop_assert_eq!(evicted, None);
                        }
                        model.insert(key, tick);
                    }
                }
                1 => {
                    let touched = lru.touch(key);
                    prop_assert_eq!(touched, model.contains_key(&key));
                    if touched {
                        model.insert(key, tick);
                    }
                }
                _ => {
                    let removed = lru.remove(key);
                    prop_assert_eq!(removed, model.remove(&key).is_some());
                }
            }
            prop_assert!(lru.len() <= capacity);
            prop_assert_eq!(lru.len(), model.len());
            // Full recency order agrees.
            let mut expect: Vec<(u64, u64)> =
                model.iter().map(|(&k, &t)| (t, k)).collect();
            expect.sort_unstable_by_key(|&(tick, _)| std::cmp::Reverse(tick));
            let expect: Vec<u64> = expect.into_iter().map(|(_, k)| k).collect();
            prop_assert_eq!(lru.keys_mru_order(), expect);
        }
    }

    /// The scan-accounting contract (the test that would have caught the
    /// `absorb_scan` head drift): after **any interleaving** of scans at
    /// DOP ∈ {1, 2, 4, 8} — worker reads shuffled by an arbitrary
    /// schedule, caches cleared or kept between scans, pools small enough
    /// to evict mid-scan — pool residency (set *and* recency order), the
    /// merged `IoStats`, and the simulated seek position all match the
    /// all-serial run exactly.
    #[test]
    fn scan_accounting_is_dop_invariant(
        rows in 800i64..2200,
        pool_choice in 0usize..3,
        scans in prop::collection::vec((0usize..4, any::<bool>()), 1..4),
        schedule in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        // Pools small enough to evict mid-scan, in both the single-shard
        // and the 16-way-striped regime.
        let pool_pages = [16usize, 24, 64][pool_choice];
        let (mut serial_store, serial_table) = scan_fixture(rows, pool_pages);
        let (mut par_store, par_table) = scan_fixture(rows, pool_pages);
        for &(dop_choice, clear) in &scans {
            let dop = [1usize, 2, 4, 8][dop_choice];
            if clear {
                serial_store.clear_cache();
                par_store.clear_cache();
            }
            let a = run_scan(&mut serial_store, &serial_table, 1, &[0]);
            let b = run_scan(&mut par_store, &par_table, dop, &schedule);
            // Per-scan merged counters are exactly serial.
            prop_assert!(a == b, "scan at dop {dop} diverged: {a:?} vs {b:?}");
        }
        // End-state: counters, head, and the live pool (residency AND
        // recency order) are bit-identical to the serial history.
        prop_assert_eq!(serial_store.stats(), par_store.stats());
        prop_assert_eq!(serial_store.seek_position(), par_store.seek_position());
        prop_assert_eq!(
            serial_store.pool().keys_mru_order(),
            par_store.pool().keys_mru_order()
        );
    }
}
