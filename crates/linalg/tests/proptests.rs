//! Property-based tests for the dense solvers.

use proptest::prelude::*;
use sqlarray_linalg::{blas, eigh, gesvd, lstsq_svd, nnls, qr, Matrix};

fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

proptest! {
    /// SVD reconstructs any matrix, factors are orthonormal, singular
    /// values sorted and non-negative.
    #[test]
    fn svd_reconstructs(rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()) {
        let a = matrix(rows, cols, seed);
        let f = gesvd(&a);
        let rec = sqlarray_linalg::svd::reconstruct(&f);
        prop_assert!(rec.max_abs_diff(&a) < 1e-8);
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(f.s.iter().all(|&v| v >= 0.0));
        let k = rows.min(cols);
        // Thin factor of the smaller side is orthonormal.
        let g = if rows >= cols { blas::gram(&f.u) } else { blas::gram(&f.v) };
        prop_assert!(g.max_abs_diff(&Matrix::identity(k)) < 1e-8);
    }

    /// QR reconstructs and Q is orthonormal for tall matrices.
    #[test]
    fn qr_reconstructs(rows in 1usize..14, cols in 1usize..10, seed in any::<u64>()) {
        prop_assume!(rows >= cols);
        let a = matrix(rows, cols, seed);
        let f = qr(&a);
        prop_assert!(blas::gemm(&f.q, &f.r).max_abs_diff(&a) < 1e-9);
        prop_assert!(blas::gram(&f.q).max_abs_diff(&Matrix::identity(cols)) < 1e-9);
    }

    /// Least squares via SVD minimizes the residual: random perturbations
    /// never do better.
    #[test]
    fn lstsq_is_optimal(rows in 3usize..12, cols in 1usize..6, seed in any::<u64>()) {
        prop_assume!(rows > cols);
        let a = matrix(rows, cols, seed);
        let b: Vec<f64> = (0..rows).map(|i| ((i as f64) * 0.7).sin()).collect();
        let x = lstsq_svd(&a, &b, 1e-12);
        let r0 = sqlarray_linalg::lstsq::residual_norm(&a, &x, &b);
        let mut s = seed | 1;
        for _ in 0..6 {
            let xp: Vec<f64> = x.iter().map(|v| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                v + 0.01 * (((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
            }).collect();
            let rp = sqlarray_linalg::lstsq::residual_norm(&a, &xp, &b);
            prop_assert!(rp >= r0 - 1e-9, "perturbation improved the fit: {rp} < {r0}");
        }
    }

    /// Symmetric eigendecomposition reconstructs and matches SVD on PSD
    /// Gram matrices.
    #[test]
    fn eigh_reconstructs(n in 1usize..9, seed in any::<u64>()) {
        let b = matrix(n + 2, n, seed);
        let g = blas::gram(&b); // symmetric PSD
        let e = eigh(&g);
        let mut vd = e.vectors.clone();
        for j in 0..n {
            blas::scal(e.values[j], vd.col_mut(j));
        }
        let rec = blas::gemm(&vd, &e.vectors.transpose());
        prop_assert!(rec.max_abs_diff(&g) < 1e-8 * (1.0 + g.frobenius()));
        prop_assert!(e.values.iter().all(|&v| v > -1e-9));
    }

    /// NNLS always returns a feasible point with residual no worse than
    /// the zero vector's.
    #[test]
    fn nnls_feasible_and_no_worse_than_zero(rows in 2usize..10, cols in 1usize..6, seed in any::<u64>()) {
        let a = matrix(rows, cols, seed);
        let b: Vec<f64> = (0..rows).map(|i| ((i as f64) * 1.3).cos()).collect();
        let r = nnls(&a, &b, 0);
        prop_assert!(r.x.iter().all(|&v| v >= 0.0));
        let zero_resid = blas::nrm2(&b);
        prop_assert!(r.residual <= zero_resid + 1e-9);
    }

    /// GEMM is associative with the identity and distributes over
    /// addition (spot property).
    #[test]
    fn gemm_identity(n in 1usize..10, seed in any::<u64>()) {
        let a = matrix(n, n, seed);
        prop_assert!(blas::gemm(&a, &Matrix::identity(n)).max_abs_diff(&a) < 1e-12);
        prop_assert!(blas::gemm(&Matrix::identity(n), &a).max_abs_diff(&a) < 1e-12);
    }
}
