//! Regression tests for guards that must fire in RELEASE builds too.
//!
//! `Matrix::get`/`set` index column-major as `data[j * rows + i]`; for a
//! non-square matrix an out-of-range `(i, j)` can land on an in-bounds
//! linear index, so the slice bounds check alone does NOT catch it — it
//! silently reads or writes the wrong element. The guard used to be
//! `debug_assert!`, i.e. absent exactly in the builds the benchmarks
//! measure. Run under both profiles (`cargo test` and
//! `cargo test --release`).

use sqlarray_linalg::Matrix;

#[test]
#[should_panic]
fn get_rejects_out_of_range_row_even_when_linear_index_is_in_bounds() {
    // 2 rows × 3 cols: (i=3, j=0) is out of range, but its linear index
    // 0*2+3 = 3 < 6 is in bounds — without the guard this reads the
    // element at (1, 1) instead of panicking.
    let m = Matrix::from_col_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let _ = m.get(3, 0);
}

#[test]
#[should_panic]
fn set_rejects_out_of_range_row_even_when_linear_index_is_in_bounds() {
    // 1 row × 4 cols: (i=2, j=1) is out of range, but its linear index
    // 1*1+2 = 3 < 4 is in bounds — without the guard this overwrites the
    // element at (0, 3) instead of panicking.
    let mut m = Matrix::zeros(1, 4);
    m.set(2, 1, 9.0);
}

#[test]
fn in_range_access_still_works() {
    let mut m = Matrix::zeros(2, 3);
    m.set(1, 2, 7.0);
    assert_eq!(m.get(1, 2), 7.0);
}
