//! Parallel linalg is an optimization, not a different kernel: every
//! fan-out path (`gemm`/`gemv`/`gemv_t`/`gram`, the QR reflector
//! application, the SVD extraction, the PCA fit) must return results
//! **byte-identical** to the serial path at any DOP — the same contract
//! the scan executor and `fftn` honour — and must pin to one lane inside
//! a `parallel::with_serial_kernels` scope. The model-based properties
//! below drive arbitrary shapes and data through DOP 1/2/4/8 against the
//! serial model.

use proptest::prelude::*;
use sqlarray_core::parallel::with_serial_kernels;
use sqlarray_linalg::{blas, pca, qr_with_dop, Matrix};

/// Byte-level equality: `f64` compares by bit pattern, so `-0.0` vs
/// `0.0` divergence fails and identical NaNs pass.
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_bits_equal(a: &[f64], b: &[f64], context: &str) {
    assert!(bits_equal(a, b), "{context}: parallel diverged from serial");
}

/// Strategy: a matrix shape (1..=40 × 1..=24) with data spanning signs,
/// zeros, and several orders of magnitude — the entries where a changed
/// accumulation order would show up in the low bits.
fn matrix_strategy(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(m, n)| {
        (
            Just(m),
            Just(n),
            prop::collection::vec(-1e3f64..1e3, m * n..=m * n),
        )
    })
}

const DOPS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    /// Blocked/parallel gemm == naive serial gemm, bit for bit, at every
    /// DOP (the cache-blocked path must preserve the per-element
    /// accumulation order exactly).
    #[test]
    fn gemm_matches_naive_model_at_any_dop(
        (m, k, a_data) in matrix_strategy(24, 16),
        n in 1usize..=12,
        b_seed in any::<u64>(),
    ) {
        let a = Matrix::from_col_major(m, k, a_data);
        // B derived deterministically from the seed, with exact zeros
        // sprinkled in (the naive path skips them; blocked must too).
        let mut state = b_seed | 1;
        let b = Matrix::from_fn(k, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 62 == 0 { 0.0 } else { ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 }
        });
        let want = blas::gemm_naive(&a, &b);
        for dop in DOPS {
            let got = blas::gemm_with_dop(&a, &b, dop);
            prop_assert!(bits_equal(got.as_slice(), want.as_slice()), "gemm dop {}", dop);
        }
        // The auto-DOP front door and the serial-kernel scope agree too.
        prop_assert!(bits_equal(blas::gemm(&a, &b).as_slice(), want.as_slice()));
        let pinned = with_serial_kernels(|| blas::gemm(&a, &b));
        prop_assert!(bits_equal(pinned.as_slice(), want.as_slice()));
    }

    /// gemv / gemv_t / gram against their DOP-1 runs.
    #[test]
    fn matvec_and_gram_are_dop_invariant((m, n, data) in matrix_strategy(40, 24)) {
        let a = Matrix::from_col_major(m, n, data);
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let xt: Vec<f64> = (0..m).map(|i| ((i * 23) % 17) as f64 - 8.0).collect();
        let mut y_serial = vec![0.0; m];
        blas::gemv_with_dop(&a, &x, &mut y_serial, 1);
        let mut yt_serial = vec![0.0; n];
        blas::gemv_t_with_dop(&a, &xt, &mut yt_serial, 1);
        let g_serial = blas::gram_with_dop(&a, 1);
        for dop in DOPS {
            let mut y = vec![0.0; m];
            blas::gemv_with_dop(&a, &x, &mut y, dop);
            prop_assert!(bits_equal(&y, &y_serial), "gemv dop {}", dop);
            let mut yt = vec![0.0; n];
            blas::gemv_t_with_dop(&a, &xt, &mut yt, dop);
            prop_assert!(bits_equal(&yt, &yt_serial), "gemv_t dop {}", dop);
            let g = blas::gram_with_dop(&a, dop);
            prop_assert!(bits_equal(g.as_slice(), g_serial.as_slice()), "gram dop {}", dop);
        }
    }

    /// QR factors (and therefore the least-squares solves built on them)
    /// are bit-identical at every DOP.
    #[test]
    fn qr_is_dop_invariant((n, m_extra, data) in matrix_strategy(12, 18)) {
        // Reshape into rows >= cols: (cols + extra) × cols.
        let (rows, cols) = (n + m_extra, n.min(data.len() / (n + m_extra)).max(1));
        let a = Matrix::from_fn(rows, cols, |i, j| data[(j * rows + i) % data.len()]);
        let serial = qr_with_dop(&a, 1);
        for dop in [2usize, 4, 8] {
            let par = qr_with_dop(&a, dop);
            prop_assert!(bits_equal(par.q.as_slice(), serial.q.as_slice()), "Q dop {}", dop);
            prop_assert!(bits_equal(par.r.as_slice(), serial.r.as_slice()), "R dop {}", dop);
        }
    }
}

#[test]
fn qr_above_the_reflector_work_gate_is_dop_invariant() {
    // The per-reflector gate (4·cols·rows ≥ 64 Ki flops) keeps tiny
    // panels serial, so the proptest shapes above never actually fan
    // out. This fixture clears the gate for the early reflectors
    // (4·64·300 ≈ 77 K) and shrinks through it, exercising the parallel
    // path, the serial tail, and the transition between them.
    let a = Matrix::from_fn(300, 64, |i, j| ((i * 13 + j * 29) % 37) as f64 / 37.0 - 0.5);
    let serial = qr_with_dop(&a, 1);
    for dop in [2usize, 4, 8] {
        let par = qr_with_dop(&a, dop);
        assert_bits_equal(par.q.as_slice(), serial.q.as_slice(), "large Q");
        assert_bits_equal(par.r.as_slice(), serial.r.as_slice(), "large R");
    }
    // Factors are valid too, not just equal: QᵀQ = I and QR = A.
    let qtq = blas::gram(&serial.q);
    assert!(qtq.max_abs_diff(&Matrix::identity(64)) < 1e-10);
    assert!(blas::gemm(&serial.q, &serial.r).max_abs_diff(&a) < 1e-9);
}

#[test]
fn pca_fit_is_dop_invariant_including_serial_scope() {
    // A fixture big enough to clear the parallel work gate (so `fit`'s
    // front door genuinely fans out) with structure along known
    // directions plus deterministic noise.
    let samples = 300;
    let features = 24;
    let mut state = 0xC0FFEEu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let data = Matrix::from_fn(samples, features, |i, j| {
        let t = i as f64 * 0.05;
        (j as f64 + 1.0) * t.sin() + 0.01 * next()
    });
    let k = 6;
    let serial = pca::fit_with_dop(&data, k, 1);
    for dop in [2usize, 4, 8] {
        let par = pca::fit_with_dop(&data, k, dop);
        assert_bits_equal(&par.mean, &serial.mean, "pca mean");
        assert_bits_equal(
            par.components.as_slice(),
            serial.components.as_slice(),
            "pca components",
        );
        assert_bits_equal(
            &par.explained_variance,
            &serial.explained_variance,
            "pca explained variance",
        );
        assert_eq!(
            par.total_variance.to_bits(),
            serial.total_variance.to_bits(),
            "pca total variance"
        );
    }
    // The auto-DOP front door matches, and inside with_serial_kernels it
    // pins to one lane and still matches.
    let auto = pca::fit(&data, k);
    assert_bits_equal(
        auto.components.as_slice(),
        serial.components.as_slice(),
        "auto fit",
    );
    let pinned = with_serial_kernels(|| pca::fit(&data, k));
    assert_bits_equal(
        pinned.components.as_slice(),
        serial.components.as_slice(),
        "fit under with_serial_kernels",
    );
}

#[test]
fn svd_and_reconstruction_are_dop_invariant() {
    let a = Matrix::from_fn(96, 40, |i, j| ((i * 31 + j * 17) % 23) as f64 - 11.0);
    let serial = sqlarray_linalg::svd::gesvd_with_dop(&a, 1);
    for dop in [2usize, 4, 8] {
        let par = sqlarray_linalg::svd::gesvd_with_dop(&a, dop);
        assert_bits_equal(&par.s, &serial.s, "singular values");
        assert_bits_equal(par.u.as_slice(), serial.u.as_slice(), "U");
        assert_bits_equal(par.v.as_slice(), serial.v.as_slice(), "V");
    }
    let auto = sqlarray_linalg::gesvd(&a);
    assert_bits_equal(auto.u.as_slice(), serial.u.as_slice(), "auto gesvd");
}
