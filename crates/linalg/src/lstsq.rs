//! Least squares, including the masked/weighted variant the spectrum
//! pipeline needs.
//!
//! "Because of the flags that mask out wrong measurements bin by bin, dot
//! product cannot be used for expanding spectra on a basis but least
//! squares fitting is necessary, which is again a very generic
//! functionality that would be required in a vector library addressing a
//! wide range of users." (§2.2)

use crate::matrix::Matrix;
use crate::qr;
use crate::svd;

/// Solves `min ‖A·x − b‖₂` via QR. Returns `None` when A is (numerically)
/// rank deficient — use [`lstsq_svd`] in that case. Panics (with the QR
/// factorization's message) for underdetermined shapes `rows < cols`,
/// including the 0-row case; those need [`lstsq_svd`] too.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), b.len(), "rhs length must match rows");
    let f = qr::qr(a);
    // x = R⁻¹ Qᵀ b
    let mut qtb = vec![0.0; a.cols()];
    crate::blas::gemv_t(&f.q, b, &mut qtb);
    qr::solve_upper(&f.r, &qtb)
}

/// Solves least squares via the SVD pseudo-inverse, dropping singular
/// values below `rcond * s_max` (negative `rcond` is clamped to 0).
/// Always succeeds with the minimum-norm solution, including for
/// degenerate systems: zero columns yield an empty solution, zero rows
/// yield the zero vector, and a rank-0 (all-zero) matrix yields the zero
/// vector — never NaN.
pub fn lstsq_svd(a: &Matrix, b: &[f64], rcond: f64) -> Vec<f64> {
    assert_eq!(a.rows(), b.len(), "rhs length must match rows");
    let n = a.cols();
    if n == 0 {
        // No unknowns: the unique (and thus minimum-norm) solution is
        // the empty vector.
        return Vec::new();
    }
    if a.rows() == 0 {
        // No equations: every x is a solution; the minimum-norm one is 0.
        return vec![0.0; n];
    }
    let f = svd::gesvd(a);
    // The rank-revealing coefficient space has min(m, n) = s.len()
    // dimensions — NOT n. Sizing `utb` by `a.cols()` (as this function
    // once did) panicked inside `gemv_t` for every wide system, and the
    // `zip` below silently ignored the excess entries for any caller
    // that got past it.
    let rank_dims = f.s.len();
    assert_eq!(f.u.cols(), rank_dims, "thin U spans the singular values");
    assert_eq!(f.v.cols(), rank_dims, "thin V spans the singular values");
    let cutoff = rcond.max(0.0) * f.s.first().copied().unwrap_or(0.0);
    let mut utb = vec![0.0; rank_dims];
    crate::blas::gemv_t(&f.u, b, &mut utb);
    for (c, &s) in utb.iter_mut().zip(&f.s) {
        if s > cutoff && s > 0.0 {
            *c /= s;
        } else {
            *c = 0.0;
        }
    }
    let mut x = vec![0.0; n];
    crate::blas::gemv(&f.v, &utb, &mut x);
    x
}

/// Weighted least squares: `min ‖W^{1/2}(A·x − b)‖₂` with per-row weights
/// (`w[i] = 0` masks row i out entirely — the bad-pixel flags of §2.2).
pub fn lstsq_weighted(a: &Matrix, b: &[f64], w: &[f64], rcond: f64) -> Vec<f64> {
    assert_eq!(a.rows(), b.len());
    assert_eq!(a.rows(), w.len());
    let sw: Vec<f64> = w.iter().map(|&v| v.max(0.0).sqrt()).collect();
    let aw = Matrix::from_fn(a.rows(), a.cols(), |i, j| a.get(i, j) * sw[i]);
    let bw: Vec<f64> = b.iter().zip(&sw).map(|(&v, &s)| v * s).collect();
    lstsq_svd(&aw, &bw, rcond)
}

/// Residual norm `‖A·x − b‖₂` (diagnostic).
pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let mut ax = vec![0.0; a.rows()];
    crate::blas::gemv(a, x, &mut ax);
    let mut ss = 0.0;
    for (p, q) in ax.iter().zip(b) {
        ss += (p - q) * (p - q);
    }
    ss.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_vec(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn exact_system() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let x = lstsq(&a, &[3.0, 1.0]).unwrap();
        close_vec(&x, &[2.0, 1.0], 1e-12);
    }

    #[test]
    fn overdetermined_regression() {
        // Fit y = 2t + 1 through noiseless samples.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { ts[i] } else { 1.0 });
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 * t + 1.0).collect();
        let x = lstsq(&a, &b).unwrap();
        close_vec(&x, &[2.0, 1.0], 1e-10);
        assert!(residual_norm(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = [1.0, 1.0, 0.0];
        let x = lstsq(&a, &b).unwrap();
        let r_opt = residual_norm(&a, &x, &b);
        // Any perturbation increases the residual.
        for d in [[0.01, 0.0], [0.0, 0.01], [-0.01, 0.01]] {
            let xp = [x[0] + d[0], x[1] + d[1]];
            assert!(residual_norm(&a, &xp, &b) > r_opt);
        }
    }

    #[test]
    fn rank_deficient_falls_back_to_svd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(lstsq(&a, &[1.0, 2.0, 3.0]).is_none());
        let x = lstsq_svd(&a, &[1.0, 2.0, 3.0], 1e-10);
        // Minimum-norm solution of x1 + 2 x2 = 1 is (1/5, 2/5).
        close_vec(&x, &[0.2, 0.4], 1e-10);
    }

    #[test]
    fn weighted_masks_bad_rows() {
        // Five samples of y = 3t, one corrupted; masking the bad row
        // recovers the exact slope.
        let ts = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = Matrix::from_fn(5, 1, |i, _| ts[i]);
        let mut b: Vec<f64> = ts.iter().map(|&t| 3.0 * t).collect();
        b[2] = -100.0; // cosmic ray
        let w = [1.0, 1.0, 0.0, 1.0, 1.0];
        let x = lstsq_weighted(&a, &b, &w, 1e-12);
        close_vec(&x, &[3.0], 1e-10);
        // Unweighted fit is badly off.
        let x_bad = lstsq_svd(&a, &b, 1e-12);
        assert!((x_bad[0] - 3.0).abs() > 1.0);
    }

    #[test]
    fn wide_underdetermined_system_gets_minimum_norm_solution() {
        // Regression: `utb` used to be sized by `a.cols()`, so every
        // m < n system panicked inside `gemv_t` before producing
        // anything. x₁ + x₂ = 2 has minimum-norm solution (1, 1).
        let a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let x = lstsq_svd(&a, &[2.0], 1e-12);
        close_vec(&x, &[1.0, 1.0], 1e-10);
        assert!(residual_norm(&a, &x, &[2.0]) < 1e-10);
        // 2×4 wide system, exactly satisfiable.
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0, 0.0], &[0.0, 2.0, 0.0, 1.0]]);
        let b = [3.0, 4.0];
        let x = lstsq_svd(&a, &b, 1e-12);
        assert!(residual_norm(&a, &x, &b) < 1e-10);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn degenerate_shapes_solve_cleanly() {
        // 0 columns: no unknowns, empty solution — for any row count.
        assert!(lstsq_svd(&Matrix::zeros(3, 0), &[1.0, 2.0, 3.0], 1e-12).is_empty());
        assert!(lstsq_svd(&Matrix::zeros(0, 0), &[], 1e-12).is_empty());
        assert_eq!(lstsq(&Matrix::zeros(0, 0), &[]), Some(Vec::new()));
        // 0 rows: no equations, minimum-norm solution is the zero vector.
        assert_eq!(lstsq_svd(&Matrix::zeros(0, 3), &[], 1e-12), vec![0.0; 3]);
        // Weighted path composes the same degenerate handling.
        assert_eq!(
            lstsq_weighted(&Matrix::zeros(0, 2), &[], &[], 1e-12),
            vec![0.0; 2]
        );
    }

    #[test]
    fn rank_zero_input_yields_zero_vector_not_nan() {
        // All-zero matrix: s_max = 0, so the cutoff logic must zero
        // every coefficient instead of dividing 0/0 into NaN.
        let a = Matrix::zeros(4, 3);
        let x = lstsq_svd(&a, &[1.0, -2.0, 3.0, 4.0], 1e-12);
        assert_eq!(x, vec![0.0; 3]);
        // Negative rcond clamps to 0 rather than resurrecting zero
        // singular values through a negative cutoff.
        let x = lstsq_svd(&a, &[1.0, -2.0, 3.0, 4.0], -1.0);
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn qr_lstsq_rejects_underdetermined_shapes() {
        let _ = lstsq(&Matrix::zeros(0, 2), &[]);
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn lstsq_svd_rejects_rhs_length_mismatch() {
        let _ = lstsq_svd(&Matrix::zeros(3, 2), &[1.0], 1e-12);
    }

    #[test]
    fn svd_and_qr_agree_on_full_rank() {
        let a = Matrix::from_fn(6, 3, |i, j| {
            ((i as f64 + 1.3) * (j as f64 + 0.7)).sin() + 0.1
        });
        let b: Vec<f64> = (0..6).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let x1 = lstsq(&a, &b).unwrap();
        let x2 = lstsq_svd(&a, &b, 1e-12);
        close_vec(&x1, &x2, 1e-8);
    }
}
