//! Singular value decomposition — the `*gesvd` replacement.
//!
//! The original library "wrote wrappers for LAPACK's singular value
//! decomposition driver function *gesvd" (§3.6); spectra PCA needs
//! "executing a singular value decomposition algorithm over the
//! correlation matrix" (§2.2). This implementation uses one-sided Jacobi
//! rotations: slower than Golub–Kahan for large matrices but simple,
//! numerically robust, and accurate to machine precision — the right
//! trade-off for a reproduction whose matrices are small (spectral bases,
//! correlation matrices).

use crate::blas;
use crate::matrix::Matrix;
use sqlarray_core::parallel::{scoped_for_ranges_mut, scoped_map_ranges};

/// Thin SVD `A = U · diag(s) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × n` (thin).
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × n` (**not** transposed).
    pub v: Matrix,
}

/// Computes the thin SVD of `a` (`m × n`), at the configured DOP.
/// Handles `m < n` by factoring the transpose and swapping U and V.
///
/// The one-sided Jacobi sweeps are inherently sequential (every rotation
/// feeds the next pair), but the extraction stage — one `nrm2` per
/// column, then the permuted, normalized copy-out of U and V — fans
/// disjoint columns over workers with serial per-column math, so the
/// factorization is bit-identical to the serial run at any DOP.
pub fn gesvd(a: &Matrix) -> Svd {
    gesvd_with_dop(a, blas::kernel_dop(2 * a.rows() * a.cols()))
}

/// [`gesvd`] with an explicit degree of parallelism (1 = serial) for the
/// extraction fan-out.
pub fn gesvd_with_dop(a: &Matrix, dop: usize) -> Svd {
    if a.rows() < a.cols() {
        let t = gesvd_with_dop(&a.transpose(), dop);
        return Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        };
    }
    let m = a.rows();
    let n = a.cols();
    let mut u = a.clone(); // becomes U·diag(s) column by column
    let mut v = Matrix::identity(n);

    let eps = f64::EPSILON;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                let ap = u.col(p);
                let aq = u.col(q);
                let alpha = blas::dot(ap, ap);
                let beta = blas::dot(aq, aq);
                let gamma = blas::dot(ap, aq);
                if gamma == 0.0 {
                    continue;
                }
                let denom = (alpha * beta).sqrt();
                if denom > 0.0 {
                    off = off.max(gamma.abs() / denom);
                }
                if gamma.abs() <= eps * denom {
                    continue;
                }
                // Jacobi rotation zeroing the (p, q) inner product.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u.get(i, p);
                    let uq = u.get(i, q);
                    u.set(i, p, c * up - s * uq);
                    u.set(i, q, s * up + c * uq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        if off <= eps.sqrt() * 1e-2 {
            break;
        }
    }

    // Extract singular values (column norms, one serial nrm2 per column,
    // columns fanned over workers) and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let sigma: Vec<f64> = scoped_map_ranges(n, dop, |cols| {
        cols.map(|j| blas::nrm2(u.col(j))).collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).expect("norms are finite"));

    // Permuted, normalized copy-out: workers own disjoint destination
    // columns of U and V; each column is a pure function of its source
    // column and σ, so the output is bit-identical at any DOP.
    let mut u_out = Matrix::zeros(m, n);
    let mut v_out = Matrix::zeros(n, n);
    // (`.max(1)` keeps the item size legal for 0×0 inputs, whose buffers
    // are empty anyway.)
    scoped_for_ranges_mut(u_out.as_mut_slice(), m.max(1), dop, |cols, chunk| {
        for (slot, dst) in cols.enumerate() {
            let src = order[dst];
            let sv = sigma[src];
            let out = &mut chunk[slot * m..(slot + 1) * m];
            if sv > 0.0 {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = u.get(i, src) / sv;
                }
            }
            // else: null column stays the zero vector (caller can
            // re-orthonormalize if a full basis is required).
        }
    });
    scoped_for_ranges_mut(v_out.as_mut_slice(), n.max(1), dop, |cols, chunk| {
        for (slot, dst) in cols.enumerate() {
            let src = order[dst];
            let out = &mut chunk[slot * n..(slot + 1) * n];
            for (i, o) in out.iter_mut().enumerate() {
                *o = v.get(i, src);
            }
        }
    });
    let s_out: Vec<f64> = order.iter().map(|&src| sigma[src]).collect();
    Svd {
        u: u_out,
        s: s_out,
        v: v_out,
    }
}

/// Reconstructs `U · diag(s) · Vᵀ` (for tests and diagnostics).
pub fn reconstruct(svd: &Svd) -> Matrix {
    let n = svd.s.len();
    let mut us = svd.u.clone();
    for j in 0..n {
        blas::scal(svd.s[j], us.col_mut(j));
    }
    blas::gemm(&us, &svd.v.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_reconstructs(a: &Matrix, tol: f64) -> Svd {
        let f = gesvd(a);
        let r = reconstruct(&f);
        let err = r.max_abs_diff(a);
        assert!(err < tol, "reconstruction error {err}");
        // Singular values are sorted and non-negative.
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(f.s.iter().all(|&s| s >= 0.0));
        f
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
        let f = assert_reconstructs(&a, 1e-10);
        assert!((f.s[0] - 3.0).abs() < 1e-10);
        assert!((f.s[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn known_singular_values() {
        // A = [[1,0],[0,1],[1,1]] has s = sqrt(3), 1.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let f = assert_reconstructs(&a, 1e-10);
        assert!((f.s[0] - 3f64.sqrt()).abs() < 1e-10);
        assert!((f.s[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let f = gesvd(&a);
        assert_eq!(f.u.rows(), 2);
        assert_eq!(f.v.rows(), 3);
        let r = reconstruct(&f);
        // reconstruct gives m x n for the wide case too because u is 2x2
        // and v is 3x2... dimensions: u: 2x2, s: 2, v: 3x2, u*diag*s*v^T = 2x3.
        assert!(r.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn orthonormal_factors() {
        let a = Matrix::from_fn(8, 4, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let f = assert_reconstructs(&a, 1e-9);
        let utu = crate::blas::gram(&f.u);
        assert!(utu.max_abs_diff(&Matrix::identity(4)) < 1e-10);
        let vtv = crate::blas::gram(&f.v);
        assert!(vtv.max_abs_diff(&Matrix::identity(4)) < 1e-10);
    }

    #[test]
    fn rank_deficient_matrix() {
        // rank 1: every column is a multiple of the first.
        let a = Matrix::from_fn(5, 3, |i, j| (i + 1) as f64 * (j + 1) as f64);
        let f = gesvd(&a);
        assert!(f.s[1] < 1e-9 * f.s[0]);
        assert!(f.s[2] < 1e-9 * f.s[0]);
        assert!(reconstruct(&f).max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let f = gesvd(&a);
        assert!(f.s.iter().all(|&s| s == 0.0));
        assert!(reconstruct(&f).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn larger_random_like_matrix() {
        // Deterministic pseudo-random entries.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = Matrix::from_fn(20, 12, |_, _| next());
        assert_reconstructs(&a, 1e-9);
    }

    #[test]
    fn singular_values_match_gram_eigenvalues() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0], &[0.0, 1.0]]);
        let f = gesvd(&a);
        // s_i^2 are the eigenvalues of A^T A; verify via the characteristic
        // polynomial of the 2x2 Gram matrix.
        let g = crate::blas::gram(&a);
        let tr = g.get(0, 0) + g.get(1, 1);
        let det = g.get(0, 0) * g.get(1, 1) - g.get(0, 1) * g.get(1, 0);
        let disc = (tr * tr / 4.0 - det).sqrt();
        let l1 = tr / 2.0 + disc;
        let l2 = tr / 2.0 - disc;
        assert!((f.s[0] * f.s[0] - l1).abs() < 1e-9);
        assert!((f.s[1] * f.s[1] - l2).abs() < 1e-9);
    }
}
