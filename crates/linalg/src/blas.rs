//! BLAS-level kernels: dot, axpy, norms, matrix-vector and matrix-matrix
//! products over column-major buffers.
//!
//! # Parallelism and the determinism contract
//!
//! The O(n²)/O(n³) kernels (`gemv`, `gemv_t`, `gemm`, `gram`) execute at
//! the session degree of parallelism (`SQLARRAY_DOP`, else the core
//! count — [`sqlarray_core::parallel::configured_dop`]) once the kernel
//! is worth a thread spawn ([`PARALLEL_MIN_WORK`] flops), and stay serial
//! inside a `parallel::with_serial_kernels` scope (a scan worker is
//! already one lane of a fan-out). Every kernel fans **disjoint output
//! columns** (or row chunks, for `gemv`) over
//! `parallel::scoped_for_ranges_mut`, and the accumulation order *per
//! output element* is exactly the serial order — so results are
//! **bit-identical to serial at any DOP**, the same contract the scan
//! executor and `fftn` honour. The `*_with_dop` variants pin the fan-out
//! explicitly (1 = serial) and are what the determinism tests sweep.

use crate::matrix::Matrix;
use sqlarray_core::parallel::{configured_dop, scoped_for_ranges_mut};

/// Approximate flop count below which the matrix kernels stay serial:
/// smaller problems finish faster than a thread spawn.
pub const PARALLEL_MIN_WORK: usize = 64 * 1024;

/// Cache-blocking panel width along the shared (`k`) dimension of
/// [`gemm`]: the A-panel a worker streams is at most
/// [`GEMM_MC`]` × GEMM_KC` elements.
pub const GEMM_KC: usize = 128;

/// Cache-blocking row-tile height of [`gemm`]: together with [`GEMM_KC`]
/// it keeps the reused A-tile (`GEMM_MC × GEMM_KC × 8` bytes = 256 KiB)
/// resident in L2 while it multiplies every column of the worker's
/// C-panel.
pub const GEMM_MC: usize = 256;

/// The DOP a kernel of `work` flops should fan out to: the configured
/// session DOP when the problem clears [`PARALLEL_MIN_WORK`], else 1.
/// `configured_dop` pins to 1 inside `with_serial_kernels`, so kernels
/// called from scan workers never nest threads.
pub(crate) fn kernel_dop(work: usize) -> usize {
    if work >= PARALLEL_MIN_WORK {
        configured_dop()
    } else {
        1
    }
}

/// `xᵀy`. Panics when the lengths differ (a release-mode guard: a silent
/// `zip` truncation here returns a plausible but wrong dot product).
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot requires equal-length vectors");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← αx + y`. Panics when the lengths differ (a silent truncation
/// here updates only a prefix of `y`).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal-length vectors");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← αx`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm, computed with scaling to avoid overflow.
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// `y ← A·x` (A is `m × n`, x has n entries, y gets m entries), at the
/// configured DOP. Bit-identical to serial at any DOP: workers own
/// disjoint row chunks of `y` and accumulate columns in the same
/// ascending-`j` order the serial loop uses.
pub fn gemv(a: &Matrix, x: &[f64], y: &mut [f64]) {
    gemv_with_dop(a, x, y, kernel_dop(2 * a.rows() * a.cols()));
}

/// [`gemv`] with an explicit degree of parallelism (1 = serial). The
/// requested `dop` is honoured as-is — the work gate lives in the auto
/// front door only, like `fftn_with_dop`.
pub fn gemv_with_dop(a: &Matrix, x: &[f64], y: &mut [f64], dop: usize) {
    assert_eq!(a.cols(), x.len());
    assert_eq!(a.rows(), y.len());
    y.fill(0.0);
    // Column-major: accumulate one column at a time (unit-stride inner
    // loop); each worker applies the identical column sequence to its own
    // row range.
    scoped_for_ranges_mut(y, 1, dop, |rows, chunk| {
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                axpy(xj, &a.col(j)[rows.clone()], chunk);
            }
        }
    });
}

/// `y ← Aᵀ·x`, at the configured DOP (each `y[j]` is one independent,
/// serially accumulated dot product — determinism is free).
pub fn gemv_t(a: &Matrix, x: &[f64], y: &mut [f64]) {
    gemv_t_with_dop(a, x, y, kernel_dop(2 * a.rows() * a.cols()));
}

/// [`gemv_t`] with an explicit degree of parallelism (1 = serial),
/// honoured as-is.
pub fn gemv_t_with_dop(a: &Matrix, x: &[f64], y: &mut [f64], dop: usize) {
    assert_eq!(a.rows(), x.len());
    assert_eq!(a.cols(), y.len());
    scoped_for_ranges_mut(y, 1, dop, |cols, chunk| {
        for (slot, j) in cols.enumerate() {
            chunk[slot] = dot(a.col(j), x);
        }
    });
}

/// `C ← A·B`, cache-blocked and parallel at the configured DOP.
///
/// # Determinism contract
///
/// The result is **bit-for-bit identical** to [`gemm_naive`] at every
/// DOP and every blocking size: workers own disjoint column panels of C
/// (column-major ⇒ contiguous), and within a panel the k dimension is
/// blocked in ascending [`GEMM_KC`] strips, so each `C[i][j]` receives
/// exactly the serial sequence of `B[k][j]·A[i][k]` contributions — in
/// the same order, with the same `B[k][j] == 0` terms skipped. Blocking
/// only re-tiles the *i* loop, which never reorders accumulation into a
/// single element.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    gemm_with_dop(a, b, kernel_dop(2 * a.rows() * a.cols() * b.cols()))
}

/// [`gemm`] with an explicit degree of parallelism (1 = serial blocked
/// path), honoured as-is. Same bit-level result as [`gemm_naive`] for
/// every `dop`.
pub fn gemm_with_dop(a: &Matrix, b: &Matrix, dop: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return c;
    }
    scoped_for_ranges_mut(c.as_mut_slice(), m, dop, |cols, chunk| {
        gemm_panel(a, b, cols, chunk);
    });
    c
}

/// Multiplies the column panel `cols` of C (`chunk` holds exactly those
/// columns) with `kb`-ascending k-blocking and row tiling: the
/// `GEMM_MC × GEMM_KC` A-tile stays in cache while it updates every
/// column of the panel.
fn gemm_panel(a: &Matrix, b: &Matrix, cols: std::ops::Range<usize>, chunk: &mut [f64]) {
    let m = a.rows();
    let kdim = a.cols();
    let mut kb = 0;
    while kb < kdim {
        let kbe = (kb + GEMM_KC).min(kdim);
        let mut ib = 0;
        while ib < m {
            let ibe = (ib + GEMM_MC).min(m);
            for (slot, j) in cols.clone().enumerate() {
                let bcol = &b.col(j)[kb..kbe];
                let ccol = &mut chunk[slot * m + ib..slot * m + ibe];
                for (k, &bkj) in bcol.iter().enumerate() {
                    if bkj != 0.0 {
                        axpy(bkj, &a.col(kb + k)[ib..ibe], ccol);
                    }
                }
            }
            ib = ibe;
        }
        kb = kbe;
    }
}

/// `C ← A·B` in the reference jki order: C's column j accumulates A's
/// columns scaled by `B[k][j]` — all unit-stride in a column-major
/// layout. This is the un-blocked, single-threaded baseline the blocked
/// and parallel paths must match bit-for-bit (asserted by the
/// determinism tests and re-checked by `table1_report` on every run).
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for j in 0..b.cols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        for (k, &bkj) in bcol.iter().enumerate() {
            if bkj != 0.0 {
                axpy(bkj, a.col(k), ccol);
            }
        }
    }
    c
}

/// `C ← Aᵀ·A` (the Gram/correlation matrix PCA needs), exploiting
/// symmetry, at the configured DOP.
pub fn gram(a: &Matrix) -> Matrix {
    gram_with_dop(a, kernel_dop(a.rows() * a.cols() * a.cols()))
}

/// [`gram`] with an explicit degree of parallelism (1 = serial),
/// honoured as-is. Workers fill disjoint column ranges of C in place
/// with the upper-triangle dot products (each one serially
/// accumulated), then the caller thread mirrors the strict upper
/// triangle into the lower — bit-identical at any DOP, no intermediate
/// allocation.
///
/// The workload is triangular — column `j` costs `j + 1` dot products —
/// so the column ranges are cut by **area** (`triangle_ranges`), not
/// by column count: equal-count chunks would leave the last worker with
/// most of the flops and cap the speedup well below the DOP.
pub fn gram_with_dop(a: &Matrix, dop: usize) -> Matrix {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    if n == 0 {
        return c;
    }
    let ranges = triangle_ranges(n, dop);
    sqlarray_core::parallel::scoped_for_given_ranges_mut(
        c.as_mut_slice(),
        n,
        ranges,
        |cols, chunk| {
            for (slot, j) in cols.enumerate() {
                let aj = a.col(j);
                for (i, v) in chunk[slot * n..slot * n + j + 1].iter_mut().enumerate() {
                    *v = dot(a.col(i), aj);
                }
            }
        },
    );
    for j in 0..n {
        for i in j + 1..n {
            c.set(i, j, c.get(j, i));
        }
    }
    c
}

/// Splits columns `0..n` of an upper-triangle workload (column `j`
/// holds `j + 1` entries) into at most `parts` contiguous, non-empty
/// ranges of near-equal *area*. Boundaries are a pure function of
/// `(n, parts)`, so the chunking is deterministic.
fn triangle_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let total = n * (n + 1) / 2;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for t in 1..=parts {
        if start >= n {
            break;
        }
        // Grow the chunk until the cumulative area reaches t/parts of
        // the triangle (always at least one column); the last chunk
        // absorbs any remainder.
        let target = total * t / parts;
        let mut end = start;
        while end < n && (acc < target || end == start) {
            acc += end + 1;
            end += 1;
        }
        if t == parts {
            end = n;
        }
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert!(close(dot(&x, &y), 32.0));
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dot requires equal-length vectors")]
    fn dot_rejects_length_mismatch() {
        // Regression: this used to be a debug_assert, so release builds
        // silently truncated via `zip` and returned 1·3 = 3.0.
        let _ = dot(&[1.0, 2.0], &[3.0]);
    }

    #[test]
    #[should_panic(expected = "axpy requires equal-length vectors")]
    fn axpy_rejects_length_mismatch() {
        // Regression: release builds used to update only y[0] and return.
        let mut y = [1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
    }

    #[test]
    fn nrm2_is_stable() {
        assert!(close(nrm2(&[3.0, 4.0]), 5.0));
        // Values that would overflow a naive sum of squares.
        let big = nrm2(&[1e200, 1e200]);
        assert!(close(big / 1e200, std::f64::consts::SQRT_2));
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv(&a, &x, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
        let mut yt = [0.0; 2];
        gemv_t(&a, &[1.0, 1.0, 1.0], &mut yt);
        assert_eq!(yt, [9.0, 12.0]);
    }

    #[test]
    fn gemm_small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c = gemm(&a, &Matrix::identity(4));
        assert_eq!(c, a);
        let c2 = gemm(&Matrix::identity(4), &a);
        assert_eq!(c2, a);
    }

    /// A deterministic pseudo-random matrix with a sprinkling of exact
    /// zeros, denormal-adjacent magnitudes, and negative zeros — the
    /// entries where accumulation-order differences would surface.
    fn awkward(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match state >> 61 {
                0 => 0.0,
                1 => -0.0,
                2 => 1e-200 * ((state >> 33) as f64),
                _ => ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0,
            }
        })
    }

    #[test]
    fn blocked_and_parallel_gemm_match_naive_bitwise() {
        // Shapes straddling the GEMM_KC/GEMM_MC block edges and the
        // non-divisible DOP splits.
        for (m, k, n) in [(1, 1, 1), (7, 5, 3), (64, 129, 33), (257, 130, 17)] {
            let a = awkward(m, k, 42);
            let b = awkward(k, n, 1337);
            let want = gemm_naive(&a, &b);
            for dop in [1usize, 2, 3, 4, 8] {
                let got = gemm_with_dop(&a, &b, dop);
                assert_eq!(got.rows(), m);
                assert_eq!(got.cols(), n);
                for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "gemm diverged at dop {dop} shape {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_gemv_and_gram_match_serial_bitwise() {
        let a = awkward(211, 37, 7);
        let x: Vec<f64> = (0..37).map(|i| ((i * 13) % 9) as f64 - 4.0).collect();
        let xt: Vec<f64> = (0..211).map(|i| ((i * 29) % 11) as f64 - 5.0).collect();
        let mut y1 = vec![0.0; 211];
        gemv_with_dop(&a, &x, &mut y1, 1);
        let mut t1 = vec![0.0; 37];
        gemv_t_with_dop(&a, &xt, &mut t1, 1);
        let g1 = gram_with_dop(&a, 1);
        for dop in [2usize, 4, 8] {
            let mut y = vec![0.0; 211];
            gemv_with_dop(&a, &x, &mut y, dop);
            assert!(y.iter().zip(&y1).all(|(p, q)| p.to_bits() == q.to_bits()));
            let mut t = vec![0.0; 37];
            gemv_t_with_dop(&a, &xt, &mut t, dop);
            assert!(t.iter().zip(&t1).all(|(p, q)| p.to_bits() == q.to_bits()));
            let g = gram_with_dop(&a, dop);
            assert!(g
                .as_slice()
                .iter()
                .zip(g1.as_slice())
                .all(|(p, q)| p.to_bits() == q.to_bits()));
        }
    }

    #[test]
    fn zero_dimension_products() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let c = gemm(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 4));
        let d = gemm(&Matrix::zeros(2, 0), &Matrix::zeros(0, 5));
        assert_eq!((d.rows(), d.cols()), (2, 5));
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn triangle_ranges_cover_and_balance() {
        for n in [1usize, 2, 3, 7, 16, 100, 257] {
            for parts in [1usize, 2, 3, 4, 8, 300] {
                let ranges = triangle_ranges(n, parts);
                // Contiguous, non-empty, exact cover, at most `parts`.
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= parts.max(1));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                // Balanced by area: no chunk exceeds its fair share by
                // more than one column's worth of entries.
                if ranges.len() > 1 {
                    let total = n * (n + 1) / 2;
                    let fair = total / ranges.len();
                    for r in &ranges {
                        let area: usize = r.clone().map(|j| j + 1).sum();
                        assert!(
                            area <= fair + n,
                            "n {n} parts {parts} range {r:?} area {area} vs fair {fair}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let g = gram(&a);
        assert_eq!(g.get(0, 1), g.get(1, 0));
        assert!(close(g.get(0, 0), 2.0)); // |col0|^2
        assert!(close(g.get(1, 1), 5.0));
        assert!(close(g.get(0, 1), 2.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = gemm(&a, &b);
    }
}
