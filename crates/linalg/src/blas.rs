//! BLAS-level kernels: dot, axpy, norms, matrix-vector and matrix-matrix
//! products over column-major buffers.

use crate::matrix::Matrix;

/// `xᵀy`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← αx + y`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← αx`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm, computed with scaling to avoid overflow.
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// `y ← A·x` (A is `m × n`, x has n entries, y gets m entries).
pub fn gemv(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.cols(), x.len());
    assert_eq!(a.rows(), y.len());
    y.fill(0.0);
    // Column-major: accumulate one column at a time (unit-stride inner
    // loop).
    for (j, &xj) in x.iter().enumerate() {
        if xj != 0.0 {
            axpy(xj, a.col(j), y);
        }
    }
}

/// `y ← Aᵀ·x`.
pub fn gemv_t(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.rows(), x.len());
    assert_eq!(a.cols(), y.len());
    for (j, yj) in y.iter_mut().enumerate() {
        *yj = dot(a.col(j), x);
    }
}

/// `C ← A·B`.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    // jki order: C's column j accumulates A's columns scaled by B[k][j] —
    // all unit-stride in a column-major layout.
    for j in 0..b.cols() {
        let bcol = b.col(j);
        // Split borrow: compute into a scratch column then store.
        let ccol = c.col_mut(j);
        for (k, &bkj) in bcol.iter().enumerate() {
            if bkj != 0.0 {
                axpy(bkj, a.col(k), ccol);
            }
        }
    }
    c
}

/// `C ← Aᵀ·A` (the Gram/correlation matrix PCA needs), exploiting
/// symmetry.
pub fn gram(a: &Matrix) -> Matrix {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = dot(a.col(i), a.col(j));
            c.set(i, j, v);
            c.set(j, i, v);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert!(close(dot(&x, &y), 32.0));
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn nrm2_is_stable() {
        assert!(close(nrm2(&[3.0, 4.0]), 5.0));
        // Values that would overflow a naive sum of squares.
        let big = nrm2(&[1e200, 1e200]);
        assert!(close(big / 1e200, std::f64::consts::SQRT_2));
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        gemv(&a, &x, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
        let mut yt = [0.0; 2];
        gemv_t(&a, &[1.0, 1.0, 1.0], &mut yt);
        assert_eq!(yt, [9.0, 12.0]);
    }

    #[test]
    fn gemm_small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c = gemm(&a, &Matrix::identity(4));
        assert_eq!(c, a);
        let c2 = gemm(&Matrix::identity(4), &a);
        assert_eq!(c2, a);
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let g = gram(&a);
        assert_eq!(g.get(0, 1), g.get(1, 0));
        assert!(close(g.get(0, 0), 2.0)); // |col0|^2
        assert!(close(g.get(1, 1), 5.0));
        assert!(close(g.get(0, 1), 2.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = gemm(&a, &b);
    }
}
