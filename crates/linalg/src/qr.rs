//! Householder QR factorization.
//!
//! `A = Q·R` with Q orthonormal (`m × n`, thin) and R upper triangular
//! (`n × n`). Used by the least-squares solver, which in turn backs the
//! spectrum-expansion functionality the paper calls out ("dot product
//! cannot be used for expanding spectra on a basis but least squares
//! fitting is necessary", §2.2).

use crate::blas;
use crate::matrix::Matrix;
use sqlarray_core::parallel::scoped_for_ranges_mut;

/// The factorization result.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Thin orthonormal factor, `m × n`.
    pub q: Matrix,
    /// Upper-triangular factor, `n × n`.
    pub r: Matrix,
}

/// Applies the Householder reflector `(I − τ·v·vᵀ)` (acting on rows
/// `k..m`) to columns `lo..hi` of `mat`, fanning disjoint columns over
/// `dop` workers. Each column's update is an independent dot + axpy
/// computed exactly as the serial loop computes it, so the result is
/// bit-identical at any `dop` — this is the Q-application fan-out stage
/// shared by factorization and Q formation.
///
/// The call is gated per reflector: a factorization applies ~2n of
/// these, and the trailing panel shrinks with every step, so each call
/// re-checks its own flop count against [`blas::PARALLEL_MIN_WORK`] and
/// drops to the inline serial path once the panel is too small to repay
/// a thread spawn.
fn apply_reflector(
    mat: &mut Matrix,
    k: usize,
    lo: usize,
    hi: usize,
    v: &[f64],
    tau: f64,
    dop: usize,
) {
    let m = mat.rows();
    let work = 4 * (hi - lo) * (m - k);
    let dop = if work >= blas::PARALLEL_MIN_WORK {
        dop
    } else {
        1
    };
    let panel = &mut mat.as_mut_slice()[lo * m..hi * m];
    scoped_for_ranges_mut(panel, m, dop, |cols, chunk| {
        for slot in 0..cols.len() {
            let cj = &mut chunk[slot * m + k..(slot + 1) * m];
            let w = blas::dot(v, cj);
            blas::axpy(-tau * w, v, cj);
        }
    });
}

/// Computes the thin QR of `a` (`m × n`, requires `m ≥ n`), at the
/// configured DOP. The reflector *construction* is sequential (each
/// reflector depends on the previous update), but its *application* to
/// the trailing columns — the O(m·n²) bulk of the work — fans columns
/// out; the factors are bit-identical to the serial run at any DOP.
pub fn qr(a: &Matrix) -> Qr {
    qr_with_dop(a, blas::kernel_dop(2 * a.rows() * a.cols() * a.cols()))
}

/// [`qr`] with an explicit degree of parallelism (1 = serial).
pub fn qr_with_dop(a: &Matrix, dop: usize) -> Qr {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "qr requires rows >= cols; transpose first");

    // Work on a copy; accumulate Householder vectors in-place below the
    // diagonal, as LAPACK's geqrf does.
    let mut work = a.clone();
    let mut taus = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder reflector for column k, rows k..m.
        let col = work.col(k);
        let x = &col[k..];
        let alpha = x[0];
        let norm = blas::nrm2(x);
        if norm == 0.0 {
            taus.push((0.0, vec![0.0; m - k]));
            continue;
        }
        let beta = -norm.copysign(alpha);
        let mut v: Vec<f64> = x.to_vec();
        v[0] -= beta;
        let vnorm = blas::nrm2(&v);
        if vnorm == 0.0 {
            taus.push((0.0, v));
            work.set(k, k, beta);
            continue;
        }
        blas::scal(1.0 / vnorm, &mut v);
        let tau = 2.0;

        // Apply (I - tau v vᵀ) to the trailing columns.
        apply_reflector(&mut work, k, k, n, &v, tau, dop);
        taus.push((tau, v));
    }

    // Extract R.
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..=j {
            r.set(i, j, work.get(i, j));
        }
    }

    // Form thin Q by applying the reflectors to the first n columns of I.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let (tau, v) = &taus[k];
        if *tau == 0.0 {
            continue;
        }
        apply_reflector(&mut q, k, 0, n, v, *tau, dop);
    }
    Qr { q, r }
}

/// Solves `R x = b` by back substitution (R upper triangular). Returns
/// `None` when R is numerically singular — any diagonal below
/// `ε·max|Rᵢᵢ|`, the same relative criterion LAPACK's condition estimate
/// would trip on.
///
/// Deliberately serial at every DOP: each `x[i]` depends on all the
/// `x[j]` (j > i) already solved, so a fan-out would have to reorder the
/// O(n²) accumulation and break the bit-identical contract for no
/// asymptotic gain — the O(m·n²) factorization above it is where the
/// threads go.
pub fn solve_upper(r: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = r.cols();
    assert_eq!(r.rows(), n);
    assert_eq!(b.len(), n);
    let max_diag = (0..n).map(|i| r.get(i, i).abs()).fold(0.0, f64::max);
    let tol = f64::EPSILON * 16.0 * max_diag;
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let d = r.get(i, i);
        if d.abs() <= tol {
            return None;
        }
        let mut s = x[i];
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            s -= r.get(i, j) * xj;
        }
        x[i] = s / d;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn reconstructs_a() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 10.0],
            &[2.0, -1.0, 0.5],
        ]);
        let f = qr(&a);
        let qr_prod = gemm(&f.q, &f.r);
        assert!(qr_prod.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let f = qr(&a);
        let qtq = crate::blas::gram(&f.q);
        assert!(qtq.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 4, |i, j| (1 + i + 2 * j) as f64 * 0.3);
        let f = qr(&a);
        for i in 0..4 {
            for j in 0..i {
                assert_close(f.r.get(i, j), 0.0, 1e-12);
            }
        }
    }

    #[test]
    fn square_identity_qr() {
        let f = qr(&Matrix::identity(3));
        assert!(gemm(&f.q, &f.r).max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn rank_deficient_still_factors() {
        // Column 1 = 2 × column 0.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let f = qr(&a);
        assert!(gemm(&f.q, &f.r).max_abs_diff(&a) < 1e-10);
        // R(1,1) collapses to ~0.
        assert!(f.r.get(1, 1).abs() < 1e-10);
    }

    #[test]
    fn back_substitution() {
        let r = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let x = solve_upper(&r, &[5.0, 8.0]).unwrap();
        assert_close(x[1], 2.0, 1e-12);
        assert_close(x[0], 1.5, 1e-12);
        let singular = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        assert!(solve_upper(&singular, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn zero_column_does_not_panic() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]);
        let f = qr(&a);
        assert!(gemm(&f.q, &f.r).max_abs_diff(&a) < 1e-10);
    }
}
