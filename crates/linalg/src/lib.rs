//! # sqlarray-linalg
//!
//! Dense linear algebra standing in for the LAPACK routines the array
//! library binds (Dobos et al., EDBT 2011, §3.6): the `*gesvd` SVD driver,
//! plus the least-squares machinery the astronomy use case requires
//! (masked least squares, non-negative least squares, PCA — §2.2).
//!
//! Matrices are **column-major** ([`matrix::Matrix`]), matching the array
//! blob payload layout, so an `m × n` `float64` array's payload can be
//! wrapped into a matrix without copying or transposing — the zero-copy
//! interop claim of §5.3.
//!
//! The dense kernels execute at the session degree of parallelism
//! (`SQLARRAY_DOP` / `Session::set_dop`, read through
//! `sqlarray_core::parallel::configured_dop`) with results
//! **bit-identical to serial at any DOP**, and pin to one lane inside a
//! `parallel::with_serial_kernels` scope — the same contract the scan
//! executor and the FFT honour. See [`blas`] for the mechanism
//! (disjoint-output-column fan-out + serial per-element accumulation
//! order) and the `*_with_dop` variants the determinism tests sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas;
pub mod eigen;
pub mod lstsq;
pub mod matrix;
pub mod nnls;
pub mod pca;
pub mod qr;
pub mod svd;

pub use eigen::{eigh, eigh_checked, eigh_with_sweeps, Eigen, NoConvergence};
pub use lstsq::{lstsq, lstsq_svd, lstsq_weighted};
pub use matrix::Matrix;
pub use nnls::{nnls, Nnls};
pub use pca::Pca;
pub use qr::{qr, qr_with_dop, Qr};
pub use svd::{gesvd, gesvd_with_dop, Svd};
