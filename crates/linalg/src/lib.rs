//! # sqlarray-linalg
//!
//! Dense linear algebra standing in for the LAPACK routines the array
//! library binds (Dobos et al., EDBT 2011, §3.6): the `*gesvd` SVD driver,
//! plus the least-squares machinery the astronomy use case requires
//! (masked least squares, non-negative least squares, PCA — §2.2).
//!
//! Matrices are **column-major** ([`matrix::Matrix`]), matching the array
//! blob payload layout, so an `m × n` `float64` array's payload can be
//! wrapped into a matrix without copying or transposing — the zero-copy
//! interop claim of §5.3.

#![warn(missing_docs)]

pub mod blas;
pub mod eigen;
pub mod lstsq;
pub mod matrix;
pub mod nnls;
pub mod pca;
pub mod qr;
pub mod svd;

pub use eigen::{eigh, Eigen};
pub use lstsq::{lstsq, lstsq_svd, lstsq_weighted};
pub use matrix::Matrix;
pub use nnls::{nnls, Nnls};
pub use pca::Pca;
pub use qr::{qr, Qr};
pub use svd::{gesvd, Svd};
