//! Principal component analysis.
//!
//! "Running PCA over a set of spectra requires resampling and normalization
//! of the individual data vectors, computing the correlation matrix and
//! executing a singular value decomposition algorithm over the correlation
//! matrix. The spectra then have to be expanded on the basis derived from
//! the SVD." (§2.2)

use crate::blas;
use crate::eigen;
use crate::matrix::Matrix;
use sqlarray_core::parallel::scoped_for_ranges_mut;

/// A fitted PCA basis.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature mean subtracted before fitting.
    pub mean: Vec<f64>,
    /// Principal components as columns (`features × k`), orthonormal,
    /// ordered by decreasing explained variance.
    pub components: Matrix,
    /// Variance explained by each retained component.
    pub explained_variance: Vec<f64>,
    /// Total variance of the training data (all components).
    pub total_variance: f64,
}

/// Fits a PCA basis with `k` components from a data matrix whose *rows*
/// are observations (`samples × features`, `k ≤ features`), at the
/// configured DOP.
///
/// The mean/centering pass and the Gram (covariance) build fan disjoint
/// feature columns over workers; each column's accumulation stays
/// serial, so the fitted basis is **bit-identical to the serial fit at
/// any DOP** (asserted by the crate's determinism tests). Diagonalizing
/// the covariance panics if the Jacobi iteration does not converge —
/// see [`crate::eigen::eigh`]; real (finite) data always converges.
pub fn fit(data: &Matrix, k: usize) -> Pca {
    fit_with_dop(
        data,
        k,
        blas::kernel_dop(2 * data.rows() * data.cols() * data.cols()),
    )
}

/// [`fit`] with an explicit degree of parallelism (1 = serial).
pub fn fit_with_dop(data: &Matrix, k: usize, dop: usize) -> Pca {
    let n = data.rows();
    let d = data.cols();
    assert!(k <= d, "cannot keep more components than features");
    assert!(n >= 2, "need at least two samples");

    // Mean-center: each worker owns a disjoint range of feature columns
    // (contiguous in the column-major layout) and sums serially within
    // each column.
    let mut mean = vec![0.0; d];
    scoped_for_ranges_mut(&mut mean, 1, dop, |cols, chunk| {
        for (slot, j) in cols.enumerate() {
            chunk[slot] = data.col(j).iter().sum::<f64>() / n as f64;
        }
    });
    let mut centered = Matrix::zeros(n, d);
    scoped_for_ranges_mut(centered.as_mut_slice(), n, dop, |cols, chunk| {
        for (slot, j) in cols.enumerate() {
            for (i, v) in chunk[slot * n..(slot + 1) * n].iter_mut().enumerate() {
                *v = data.get(i, j) - mean[j];
            }
        }
    });

    // Covariance = Xᵀ X / (n-1), then diagonalize (the Jacobi sweeps are
    // sequential by nature; the O(n·d²) Gram build above is where the
    // threads pay off).
    let mut cov = blas::gram_with_dop(&centered, dop);
    for v in cov.as_mut_slice().iter_mut() {
        *v /= (n - 1) as f64;
    }
    let e = eigen::eigh(&cov);

    let total_variance: f64 = e.values.iter().map(|&v| v.max(0.0)).sum();
    let components = Matrix::from_fn(d, k, |i, j| e.vectors.get(i, j));
    let explained_variance: Vec<f64> = e.values[..k].iter().map(|&v| v.max(0.0)).collect();
    Pca {
        mean,
        components,
        explained_variance,
        total_variance,
    }
}

impl Pca {
    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.cols()
    }

    /// Projects one observation onto the basis, returning `k` coefficients.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len());
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(&v, &m)| v - m).collect();
        let mut coeffs = vec![0.0; self.k()];
        blas::gemv_t(&self.components, &centered, &mut coeffs);
        coeffs
    }

    /// Reconstructs an observation from its coefficients.
    pub fn inverse_transform(&self, coeffs: &[f64]) -> Vec<f64> {
        assert_eq!(coeffs.len(), self.k());
        let mut x = vec![0.0; self.mean.len()];
        blas::gemv(&self.components, coeffs, &mut x);
        for (xi, &m) in x.iter_mut().zip(&self.mean) {
            *xi += m;
        }
        x
    }

    /// Fraction of total variance captured by the retained components.
    pub fn explained_ratio(&self) -> f64 {
        if self.total_variance == 0.0 {
            1.0
        } else {
            self.explained_variance.iter().sum::<f64>() / self.total_variance
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random generator for test data.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    /// Data concentrated along a known direction.
    fn line_data(n: usize, dir: &[f64], noise: f64) -> Matrix {
        let mut r = rng(42);
        let d = dir.len();
        Matrix::from_fn(n, d, |_, _| 0.0).clone_with(|m| {
            for i in 0..n {
                let t = r() * 10.0;
                for (j, &dj) in dir.iter().enumerate() {
                    m.set(i, j, t * dj + noise * r());
                }
            }
        })
    }

    trait CloneWith: Sized {
        fn clone_with(self, f: impl FnOnce(&mut Self)) -> Self;
    }
    impl CloneWith for Matrix {
        fn clone_with(mut self, f: impl FnOnce(&mut Self)) -> Self {
            f(&mut self);
            self
        }
    }

    #[test]
    fn finds_dominant_direction() {
        let dir = [3.0 / 5.0, 4.0 / 5.0, 0.0];
        let data = line_data(200, &dir, 0.01);
        let p = fit(&data, 1);
        let c0: Vec<f64> = p.components.col(0).to_vec();
        // Up to sign.
        let dot: f64 = c0.iter().zip(&dir).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.999, "component {c0:?}");
        assert!(p.explained_ratio() > 0.99);
    }

    #[test]
    fn transform_inverse_round_trip_in_subspace() {
        let dir = [1.0 / 2f64.sqrt(), 1.0 / 2f64.sqrt()];
        let data = line_data(100, &dir, 0.0);
        let p = fit(&data, 1);
        // A point exactly on the line reconstructs exactly.
        let x = [5.0 * dir[0] + p.mean[0] - p.mean[0], 5.0 * dir[1]];
        // Shift by mean to be fair:
        let x = [x[0] + p.mean[0], x[1] + p.mean[1]];
        let c = p.transform(&x);
        let back = p.inverse_transform(&c);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let mut r = rng(7);
        let data = Matrix::from_fn(60, 8, |_, _| r());
        let p = fit(&data, 4);
        let g = blas::gram(&p.components);
        assert!(g.max_abs_diff(&Matrix::identity(4)) < 1e-10);
    }

    #[test]
    fn explained_variance_is_sorted_and_bounded() {
        let mut r = rng(9);
        let data = Matrix::from_fn(50, 6, |_, _| r());
        let p = fit(&data, 6);
        for w in p.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!((p.explained_ratio() - 1.0).abs() < 1e-9); // kept everything
    }

    #[test]
    fn reconstruction_error_decreases_with_k() {
        let mut r = rng(11);
        // Two strong directions + noise.
        let data = Matrix::from_fn(120, 5, |i, j| {
            let t = (i as f64) * 0.1;
            let u = (i as f64) * 0.03;
            (j as f64 + 1.0) * t.sin() + (5.0 - j as f64) * u.cos() + 0.01 * r()
        });
        let probe: Vec<f64> = (0..5).map(|j| data.get(17, j)).collect();
        let mut last_err = f64::INFINITY;
        for k in 1..=4 {
            let p = fit(&data, k);
            let rec = p.inverse_transform(&p.transform(&probe));
            let err: f64 = probe
                .iter()
                .zip(&rec)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(err <= last_err + 1e-9, "error grew at k={k}");
            last_err = err;
        }
        assert!(last_err < 0.1);
    }
}
