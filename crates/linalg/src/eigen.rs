//! Symmetric eigendecomposition via the classical Jacobi rotation method.
//!
//! PCA over spectra (§2.2) diagonalizes the correlation matrix; Jacobi is
//! exact, stable, and ideal for the modest dimensions involved.

use crate::matrix::Matrix;

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, matching `values` order.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Panics if `a` is not square; symmetry is assumed (only the upper
/// triangle drives the rotations, the input is symmetrized defensively).
pub fn eigh(a: &Matrix) -> Eigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigh requires a square matrix");

    // Defensive symmetrization (guards against tiny asymmetries from
    // accumulated Gram computations).
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = Matrix::identity(n);

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        // Largest off-diagonal magnitude.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                off = off.max(m.get(i, j).abs());
            }
        }
        if off < 1e-14 * (1.0 + m_frobenius_diag(&m)) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // A ← Jᵀ A J over rows/cols p and q.
                for k in 0..n {
                    let akp = m.get(k, p);
                    let akq = m.get(k, q);
                    m.set(k, p, c * akp - s * akq);
                    m.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = m.get(p, k);
                    let aqk = m.get(q, k);
                    m.set(p, k, c * apk - s * aqk);
                    m.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    Eigen { values, vectors }
}

fn m_frobenius_diag(m: &Matrix) -> f64 {
    (0..m.rows()).map(|i| m.get(i, i).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gram};

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let e = eigh(&a);
        assert!((e.values[0] - 9.0).abs() < 1e-12);
        assert!((e.values[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigh(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + i as f64 + j as f64)); // Hilbert-ish, symmetric
        let e = eigh(&a);
        // V is orthonormal.
        assert!(gram(&e.vectors).max_abs_diff(&Matrix::identity(6)) < 1e-10);
        // V diag(λ) Vᵀ = A.
        let mut vd = e.vectors.clone();
        for j in 0..6 {
            crate::blas::scal(e.values[j], vd.col_mut(j));
        }
        let rec = gemm(&vd, &e.vectors.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_fn(5, 5, |i, j| if i == j { (i + 1) as f64 } else { 0.1 });
        let e = eigh(&a);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn eigenvalues_match_svd_of_psd_matrix() {
        let b = Matrix::from_fn(7, 4, |i, j| ((i * 5 + j * 3) % 11) as f64 - 5.0);
        let g = gram(&b); // PSD
        let e = eigh(&g);
        let s = crate::svd::gesvd(&b);
        for k in 0..4 {
            assert!(
                (e.values[k] - s.s[k] * s.s[k]).abs() < 1e-8 * (1.0 + e.values[0]),
                "λ{k}"
            );
        }
    }

    #[test]
    fn negative_eigenvalues_supported() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = eigh(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }
}
