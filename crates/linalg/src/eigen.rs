//! Symmetric eigendecomposition via the classical Jacobi rotation method.
//!
//! PCA over spectra (§2.2) diagonalizes the correlation matrix; Jacobi is
//! exact, stable, and ideal for the modest dimensions involved. The
//! rotation sweeps are inherently sequential (each rotation feeds the
//! next pair), so this kernel stays serial at every DOP — the parallel
//! PCA path spends its threads on the Gram build instead.

use crate::matrix::Matrix;
use std::fmt;

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, matching `values` order.
    pub vectors: Matrix,
    /// Jacobi sweeps it took to reach the off-diagonal tolerance.
    pub sweeps: usize,
}

/// The Jacobi iteration failed to drive the off-diagonal mass below
/// tolerance within the sweep budget.
///
/// Before this type existed, `eigh` capped the iteration at 100 sweeps
/// and **silently returned whatever it had** — no signal, no error — so
/// a pathological input produced quietly wrong eigenpairs downstream
/// (PCA bases, spectrum expansions). Non-convergence is now always
/// surfaced: [`eigh_checked`] returns it, [`eigh`] panics with it.
/// Non-finite inputs (NaN/∞) report it immediately with zero sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct NoConvergence {
    /// Sweeps performed before giving up.
    pub sweeps: usize,
    /// Largest off-diagonal magnitude still standing.
    pub off_diag: f64,
    /// The tolerance that was not reached.
    pub tolerance: f64,
}

impl fmt::Display for NoConvergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Jacobi eigendecomposition did not converge: off-diagonal {:.3e} \
             above tolerance {:.3e} after {} sweeps",
            self.off_diag, self.tolerance, self.sweeps
        )
    }
}

impl std::error::Error for NoConvergence {}

/// Default sweep budget for [`eigh`]/[`eigh_checked`]. Classical Jacobi
/// converges quadratically once rotations start to bite; well-posed
/// symmetric systems need ~5–15 sweeps, so 100 is a generous ceiling
/// that only a genuinely pathological input (NaN/∞ entries, or a caller
/// bug producing a wildly asymmetric "symmetric" matrix) fails to meet.
pub const DEFAULT_MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Panics if `a` is not square, **or if the Jacobi iteration does not
/// converge within [`DEFAULT_MAX_SWEEPS`] sweeps** — use [`eigh_checked`]
/// to handle non-convergence as a value instead. Symmetry is assumed
/// (only the upper triangle drives the rotations; the input is
/// symmetrized defensively).
pub fn eigh(a: &Matrix) -> Eigen {
    match eigh_checked(a) {
        Ok(e) => e,
        Err(err) => panic!("{err}"),
    }
}

/// [`eigh`] returning non-convergence as an error instead of panicking.
pub fn eigh_checked(a: &Matrix) -> Result<Eigen, NoConvergence> {
    eigh_with_sweeps(a, DEFAULT_MAX_SWEEPS)
}

/// [`eigh_checked`] with an explicit sweep budget (the stress tests pin
/// it low to exercise the non-convergence path deterministically).
pub fn eigh_with_sweeps(a: &Matrix, max_sweeps: usize) -> Result<Eigen, NoConvergence> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigh requires a square matrix");

    // Defensive symmetrization (guards against tiny asymmetries from
    // accumulated Gram computations).
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = Matrix::identity(n);

    let mut swept = 0usize;
    loop {
        // Largest off-diagonal magnitude. Non-finiteness (NaN/∞ input,
        // or overflow mid iteration) is tracked in the same pass: it
        // can never meet the tolerance, and `f64::max` ignores NaN, so
        // the magnitude scan alone could otherwise "converge" on
        // garbage. (The rotations are driven by the upper triangle and
        // the diagonal, which is exactly what this scan covers.)
        let mut off = 0.0f64;
        let mut finite = true;
        for i in 0..n {
            for j in i + 1..n {
                let v = m.get(i, j).abs();
                finite &= v.is_finite();
                off = off.max(v);
            }
        }
        let diag_max = max_abs_diag(&m);
        finite &= diag_max.is_finite();
        // NaN folds away under f64::max, so the tolerance stays
        // well-defined even for pathological inputs.
        let tolerance = 1e-14 * (1.0 + diag_max);
        if !finite {
            return Err(NoConvergence {
                sweeps: swept,
                off_diag: f64::INFINITY,
                tolerance,
            });
        }
        if off < tolerance {
            break;
        }
        if swept >= max_sweeps {
            return Err(NoConvergence {
                sweeps: swept,
                off_diag: off,
                tolerance,
            });
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // A ← Jᵀ A J over rows/cols p and q.
                for k in 0..n {
                    let akp = m.get(k, p);
                    let akq = m.get(k, q);
                    m.set(k, p, c * akp - s * akq);
                    m.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = m.get(p, k);
                    let aqk = m.get(q, k);
                    m.set(p, k, c * apk - s * aqk);
                    m.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
        swept += 1;
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    Ok(Eigen {
        values,
        vectors,
        sweeps: swept,
    })
}

fn max_abs_diag(m: &Matrix) -> f64 {
    (0..m.rows()).map(|i| m.get(i, i).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gram};

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let e = eigh(&a);
        assert!((e.values[0] - 9.0).abs() < 1e-12);
        assert!((e.values[1] - 4.0).abs() < 1e-12);
        // Already diagonal: converged without a single sweep.
        assert_eq!(e.sweeps, 0);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigh(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + i as f64 + j as f64)); // Hilbert-ish, symmetric
        let e = eigh(&a);
        // V is orthonormal.
        assert!(gram(&e.vectors).max_abs_diff(&Matrix::identity(6)) < 1e-10);
        // V diag(λ) Vᵀ = A.
        let mut vd = e.vectors.clone();
        for j in 0..6 {
            crate::blas::scal(e.values[j], vd.col_mut(j));
        }
        let rec = gemm(&vd, &e.vectors.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_fn(5, 5, |i, j| if i == j { (i + 1) as f64 } else { 0.1 });
        let e = eigh(&a);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn eigenvalues_match_svd_of_psd_matrix() {
        let b = Matrix::from_fn(7, 4, |i, j| ((i * 5 + j * 3) % 11) as f64 - 5.0);
        let g = gram(&b); // PSD
        let e = eigh(&g);
        let s = crate::svd::gesvd(&b);
        for k in 0..4 {
            assert!(
                (e.values[k] - s.s[k] * s.s[k]).abs() < 1e-8 * (1.0 + e.values[0]),
                "λ{k}"
            );
        }
    }

    #[test]
    fn negative_eigenvalues_supported() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = eigh(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }

    /// The n×n Hilbert matrix — condition number ~10^(1.5·n), the
    /// classic ill-conditioned stress case.
    fn hilbert(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + i as f64 + j as f64))
    }

    #[test]
    fn ill_conditioned_hilbert_converges_and_reconstructs() {
        // cond(H₁₂) ≈ 1e16: eigenvalues span machine precision, yet
        // Jacobi must still converge inside the default budget and
        // reconstruct to a residual scaled by the largest eigenvalue.
        let n = 12;
        let a = hilbert(n);
        let e = eigh_checked(&a).expect("Hilbert must converge");
        assert!(e.sweeps <= DEFAULT_MAX_SWEEPS);
        assert!(gram(&e.vectors).max_abs_diff(&Matrix::identity(n)) < 1e-9);
        let mut vd = e.vectors.clone();
        for j in 0..n {
            crate::blas::scal(e.values[j], vd.col_mut(j));
        }
        let rec = gemm(&vd, &e.vectors.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-12 * (1.0 + e.values[0]));
        // Tiny eigenvalues must not have gone negative-garbage: H is PSD.
        assert!(e.values.iter().all(|&v| v > -1e-12));
    }

    #[test]
    fn exhausted_sweep_budget_is_an_error_not_a_silent_return() {
        // Regression: with the budget pinned below what the matrix
        // needs, the old code returned un-converged eigenpairs silently;
        // now it reports exactly how far it got.
        let a = hilbert(8);
        let err = eigh_with_sweeps(&a, 0).expect_err("0 sweeps cannot converge");
        assert_eq!(err.sweeps, 0);
        assert!(err.off_diag > err.tolerance);
        let msg = err.to_string();
        assert!(msg.contains("did not converge"), "{msg}");
        // The same matrix converges once the budget is realistic, and
        // the checked and panicking fronts agree.
        let ok = eigh_with_sweeps(&a, DEFAULT_MAX_SWEEPS).unwrap();
        assert!(ok.sweeps > 0);
        let direct = eigh(&a);
        assert_eq!(direct.values, ok.values);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn eigh_panic_message_names_the_failure() {
        // eigh's documented panic on non-convergence: drive it through a
        // non-finite input, which can never meet the tolerance.
        let a = Matrix::from_rows(&[&[1.0, f64::INFINITY], &[f64::INFINITY, 1.0]]);
        let _ = eigh(&a);
    }
}
