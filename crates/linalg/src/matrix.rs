//! Dense column-major matrices.
//!
//! Column-major is the point: the array library stores elements "in a
//! column major order commonly used by math libraries written in FORTRAN
//! such as LAPACK" so that "interfacing with LAPACK is exceptionally easy,
//! no transformation of the in-memory data is necessary" (§3.5, §5.3).
//! [`Matrix`] adopts the same layout, so an array blob's payload *is* a
//! valid matrix buffer.

use std::fmt;

/// A dense `rows × cols` matrix of `f64`, stored column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a column-major buffer (the layout of an array blob
    /// payload).
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds from row-major literals (convenient in tests and examples).
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Builds by evaluating `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes into the column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows column `j` as a contiguous slice — free in this layout.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column view.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copies row `i` out (rows are strided in this layout).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute elementwise difference to another matrix of the same
    /// shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn identity_and_zeros() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 2), 0.0);
        assert_eq!(Matrix::zeros(2, 3).frobenius(), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn from_col_major_round_trip() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = Matrix::from_col_major(2, 3, data.clone());
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.into_vec(), data);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_col_major_checks_len() {
        let _ = Matrix::from_col_major(2, 2, vec![1.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b.set(0, 1, 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }
}
