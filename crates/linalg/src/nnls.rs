//! Non-negative least squares (Lawson–Hanson active set).
//!
//! "Certain spectrum processing operations also require non-negative least
//! squares fitting." (§2.2) Solves `min ‖A·x − b‖₂  s.t.  x ≥ 0`.

use crate::blas;
use crate::lstsq;
use crate::matrix::Matrix;

/// Result of an NNLS solve.
#[derive(Debug, Clone)]
pub struct Nnls {
    /// The non-negative solution.
    pub x: Vec<f64>,
    /// Final residual norm `‖A·x − b‖₂`.
    pub residual: f64,
    /// Outer iterations consumed.
    pub iterations: usize,
}

/// Lawson–Hanson NNLS. `max_iter` bounds the outer loop (3·n is the
/// customary default; pass 0 to use it).
pub fn nnls(a: &Matrix, b: &[f64], max_iter: usize) -> Nnls {
    let n = a.cols();
    let max_iter = if max_iter == 0 {
        3 * n.max(10)
    } else {
        max_iter
    };
    let mut x = vec![0.0f64; n];
    let mut passive = vec![false; n]; // true = in the positive set

    let tol = 1e-10;
    let mut iterations = 0;

    loop {
        // Gradient w = Aᵀ(b − A·x).
        let mut ax = vec![0.0; a.rows()];
        blas::gemv(a, &x, &mut ax);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        let mut w = vec![0.0; n];
        blas::gemv_t(a, &resid, &mut w);

        // Pick the most violated constraint among the active (zero) set.
        let mut best = None;
        for j in 0..n {
            if !passive[j] && w[j] > tol && best.map(|(_, bw)| w[j] > bw).unwrap_or(true) {
                best = Some((j, w[j]));
            }
        }
        let Some((j_enter, _)) = best else {
            // KKT satisfied.
            let r = blas::nrm2(&resid);
            return Nnls {
                x,
                residual: r,
                iterations,
            };
        };
        passive[j_enter] = true;

        // Inner loop: solve the unconstrained problem on the passive set,
        // clipping variables that go non-positive.
        loop {
            iterations += 1;
            if iterations > max_iter {
                let mut ax = vec![0.0; a.rows()];
                blas::gemv(a, &x, &mut ax);
                let r = blas::nrm2(
                    &b.iter()
                        .zip(&ax)
                        .map(|(&bi, &ai)| bi - ai)
                        .collect::<Vec<_>>(),
                );
                return Nnls {
                    x,
                    residual: r,
                    iterations,
                };
            }
            let idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            let ap = Matrix::from_fn(a.rows(), idx.len(), |i, jj| a.get(i, idx[jj]));
            let z = lstsq::lstsq_svd(&ap, b, 1e-12);

            if z.iter().all(|&v| v > tol) {
                for (jj, &j) in idx.iter().enumerate() {
                    x[j] = z[jj];
                }
                break;
            }
            // Step as far as feasibility allows toward z.
            let mut alpha = f64::INFINITY;
            for (jj, &j) in idx.iter().enumerate() {
                if z[jj] <= tol {
                    let d = x[j] - z[jj];
                    if d > 0.0 {
                        alpha = alpha.min(x[j] / d);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (jj, &j) in idx.iter().enumerate() {
                x[j] += alpha * (z[jj] - x[j]);
                if x[j] <= tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_already_nonnegative() {
        // y = 2 t fit: the LS slope is positive, so NNLS equals LS.
        let a = Matrix::from_fn(4, 1, |i, _| (i + 1) as f64);
        let b: Vec<f64> = (1..=4).map(|t| 2.0 * t as f64).collect();
        let r = nnls(&a, &b, 0);
        assert!((r.x[0] - 2.0).abs() < 1e-8);
        assert!(r.residual < 1e-8);
    }

    #[test]
    fn negative_optimum_clamps_to_zero() {
        // Best unconstrained slope is negative; NNLS must return 0.
        let a = Matrix::from_fn(4, 1, |i, _| (i + 1) as f64);
        let b: Vec<f64> = (1..=4).map(|t| -2.0 * t as f64).collect();
        let r = nnls(&a, &b, 0);
        assert_eq!(r.x, vec![0.0]);
        assert!((r.residual - blas::nrm2(&b)).abs() < 1e-10);
    }

    #[test]
    fn mixed_signs_partial_activation() {
        // b = 3*c0 - 1*c1 with orthogonal columns: NNLS keeps c0, zeroes c1.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let b = [3.0, -1.0, 0.0];
        let r = nnls(&a, &b, 0);
        assert!((r.x[0] - 3.0).abs() < 1e-8);
        assert_eq!(r.x[1], 0.0);
        assert!((r.residual - 1.0).abs() < 1e-8);
    }

    #[test]
    fn recovers_nonnegative_mixture() {
        // Synthetic spectrum: b = 0.7*s1 + 0.3*s2 (both templates
        // non-negative); NNLS recovers the weights.
        let s1: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.3).sin().abs()).collect();
        let s2: Vec<f64> = (0..20)
            .map(|i| ((i as f64) * 0.7).cos().abs() + 0.2)
            .collect();
        let a = Matrix::from_fn(20, 2, |i, j| if j == 0 { s1[i] } else { s2[i] });
        let b: Vec<f64> = (0..20).map(|i| 0.7 * s1[i] + 0.3 * s2[i]).collect();
        let r = nnls(&a, &b, 0);
        assert!((r.x[0] - 0.7).abs() < 1e-6, "{:?}", r.x);
        assert!((r.x[1] - 0.3).abs() < 1e-6, "{:?}", r.x);
    }

    #[test]
    fn solution_is_feasible_and_kkt_ish() {
        let a = Matrix::from_fn(10, 4, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let b: Vec<f64> = (0..10).map(|i| (i as f64 * 1.3).sin() * 2.0).collect();
        let r = nnls(&a, &b, 0);
        assert!(r.x.iter().all(|&v| v >= 0.0));
        // Gradient on the positive set must vanish (stationarity).
        let mut ax = vec![0.0; 10];
        blas::gemv(&a, &r.x, &mut ax);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        let mut w = vec![0.0; 4];
        blas::gemv_t(&a, &resid, &mut w);
        for (j, &wj) in w.iter().enumerate() {
            if r.x[j] > 1e-8 {
                assert!(wj.abs() < 1e-6, "gradient {wj} at active var {j}");
            } else {
                assert!(wj < 1e-6, "violated KKT at {j}");
            }
        }
    }
}
