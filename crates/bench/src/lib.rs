//! Shared fixtures and runners for the experiment harness.
//!
//! Every quantitative artefact of the paper maps to a function here; the
//! `bin/` report binaries print the paper's row format and the Criterion
//! benches in `benches/` time the same code paths. See EXPERIMENTS.md for
//! the experiment ↔ paper index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sqlarray_engine::{Database, HostingModel, Session, Value};
use sqlarray_storage::{ColType, DiskProfile, PageStore, RowValue, Schema};

/// Bit-level equality for result rows: floats compare by bit pattern, so
/// identical NaNs pass and a `-0.0` vs `0.0` divergence fails — the
/// strict form of the determinism contract [`run_table1_query`] enforces
/// and `tests/parallel_determinism.rs` asserts query by query.
pub fn rows_bit_identical(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    fn value_bits_equal(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
            (Value::F32(x), Value::F32(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len() && ra.iter().zip(rb).all(|(x, y)| value_bits_equal(x, y))
        })
}

/// Default row count for report binaries (overridable via
/// `SQLARRAY_ROWS`). The paper used 357 M rows on a 16-core server; one
/// million preserves every per-row cost ratio at laptop scale.
pub const DEFAULT_ROWS: i64 = 1_000_000;

/// Degree of parallelism of the modelled testbed. The paper's server ran
/// the scans on two quad-core CPUs ("all eight cores were used", §7.1).
/// The *modelled* Table 1 columns divide serial CPU work by this factor to
/// project onto the paper's hardware; since the engine gained real
/// parallel execution, every row also carries a **measured** wall-clock
/// split (serial vs `SQLARRAY_DOP`-parallel) so the projection can be
/// checked against actual threading on the machine running the report.
pub const TESTBED_DOP: f64 = 8.0;

/// Builds the two §6.2 test tables: `Tscalar` (id + five float columns)
/// and `Tvector` (id + one 5-vector short-array blob), with `rows` rows
/// each, and returns a session with the paper's 2 µs CLR hosting model.
pub fn build_table1_db(rows: i64) -> Session {
    build_table1_db_with(rows, HostingModel::paper_clr())
}

/// Same as [`build_table1_db`] with an explicit hosting model (e.g.
/// [`HostingModel::free`] for the native-cost ablation). Loads through
/// the parallel bulk-ingest path at the environment-configured DOP — the
/// resulting layout and accounting are identical at every DOP.
pub fn build_table1_db_with(rows: i64, hosting: HostingModel) -> Session {
    build_table1_db_with_dop(rows, hosting, sqlarray_core::parallel::configured_dop()).0
}

/// What one measured bulk ingest reports: wall-clock plus the
/// DOP-invariant accounting a parallel load must reproduce exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Rows loaded per table.
    pub rows: i64,
    /// Encode/leaf-build lanes used.
    pub dop: usize,
    /// Measured wall seconds for the two bulk loads (excludes synthetic
    /// row generation).
    pub wall_seconds: f64,
    /// Store counters after the load (simulated; must match serial).
    pub io: sqlarray_storage::IoStats,
    /// Pages in the file after the load (must match serial).
    pub page_count: u64,
    /// Simulated disk head after the load (must match serial).
    pub seek_position: Option<u64>,
}

/// Key-sorted rows ready for `Database::bulk_insert`.
type KeyedRows = Vec<(i64, Vec<RowValue>)>;

/// Deterministic pseudo-random components, identical across the scalar
/// and vector representations of each §6.2 row.
fn table1_components(k: i64) -> [f64; 5] {
    let mut state = (k as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    std::array::from_fn(|_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    })
}

// The two row builders are called one at a time (each table's rows are
// generated, loaded, and dropped before the next table's are built), so
// the transient row memory peaks at one table, like the old streaming
// insert path.

fn tscalar_rows(rows: i64) -> KeyedRows {
    (0..rows)
        .map(|k| {
            let comps = table1_components(k);
            let mut row = Vec::with_capacity(6);
            row.push(RowValue::I64(k));
            row.extend(comps.iter().map(|&c| RowValue::F64(c)));
            (k, row)
        })
        .collect()
}

fn tvector_rows(rows: i64) -> KeyedRows {
    (0..rows)
        .map(|k| {
            let arr =
                sqlarray_core::build::short_vector(&table1_components(k)).expect("5-vector fits");
            (k, vec![RowValue::I64(k), RowValue::Bytes(arr.into_blob())])
        })
        .collect()
}

/// [`build_table1_db_with`] with an explicit ingest DOP, also returning
/// the measured [`IngestReport`]. Each table bulk-loads in one pass, so
/// its leaf chain is laid out sequentially on disk exactly as the paper's
/// 357 M-row `IDENTITY`-style load would leave it.
pub fn build_table1_db_with_dop(
    rows: i64,
    hosting: HostingModel,
    dop: usize,
) -> (Session, IngestReport) {
    let store = PageStore::with_pool(4096, DiskProfile::default());
    let mut db = Database::with_store(store);
    db.create_table(
        "Tscalar",
        Schema::new(&[
            ("id", ColType::I64),
            ("v1", ColType::F64),
            ("v2", ColType::F64),
            ("v3", ColType::F64),
            ("v4", ColType::F64),
            ("v5", ColType::F64),
        ]),
    )
    .expect("fresh database");
    db.create_table(
        "Tvector",
        Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
    )
    .expect("fresh database");

    // Time only the bulk loads, not the synthetic row generation; each
    // table's rows are dropped before the next table's are built.
    let mut wall_seconds = 0.0f64;
    {
        let scalar_rows = tscalar_rows(rows);
        let t0 = std::time::Instant::now();
        db.bulk_insert_with_dop("Tscalar", &scalar_rows, dop)
            .expect("bulk load Tscalar");
        wall_seconds += t0.elapsed().as_secs_f64();
    }
    {
        let vector_rows = tvector_rows(rows);
        let t0 = std::time::Instant::now();
        db.bulk_insert_with_dop("Tvector", &vector_rows, dop)
            .expect("bulk load Tvector");
        wall_seconds += t0.elapsed().as_secs_f64();
    }

    let report = IngestReport {
        rows,
        dop,
        wall_seconds,
        io: db.store.stats(),
        page_count: db.store.page_count(),
        seek_position: db.store.seek_position(),
    };
    (Session::with_hosting(db, hosting), report)
}

/// The five queries of §6.3, verbatim.
pub const TABLE1_QUERIES: [&str; 5] = [
    "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)",
    "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
    "SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)",
    "SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)",
    "SELECT SUM(dbo.EmptyFunction(v, 0)) FROM Tvector WITH (NOLOCK)",
];

/// One measured row of the reproduced Table 1: the modelled paper-testbed
/// projection plus the measured serial/parallel wall-clock split.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Query number (1-based, as in the paper).
    pub query: usize,
    /// Modelled execution time (s): `max(serial cpu / TESTBED_DOP,
    /// simulated I/O)` — the projection onto the paper's 8-core testbed.
    pub exec_seconds: f64,
    /// Modelled CPU load in percent of the execution time.
    pub cpu_percent: f64,
    /// Modelled effective I/O rate over the execution time, MB/s.
    pub io_mb_per_sec: f64,
    /// Raw single-thread CPU seconds (serial run).
    pub cpu_seconds: f64,
    /// Simulated disk seconds.
    pub io_seconds: f64,
    /// Managed UDF calls made.
    pub udf_calls: u64,
    /// Rows scanned.
    pub rows: u64,
    /// Measured wall clock of the cold serial (DOP 1) run.
    pub wall_serial_seconds: f64,
    /// Measured wall clock of the cold parallel run at the session DOP.
    pub wall_parallel_seconds: f64,
    /// Workers the parallel run actually used.
    pub measured_dop: usize,
    /// Measured parallel speedup: serial wall / parallel wall.
    pub measured_speedup: f64,
}

/// Runs one Table 1 query twice, cold each time (buffer pool cleared
/// first, as in §6.3): once at DOP 1 for the serial baseline that feeds
/// the modelled paper columns, once at the session's configured DOP for
/// the measured parallel numbers. Panics if the two runs are not
/// bit-identical — the executor's determinism guarantee is part of what
/// the harness verifies on every invocation.
pub fn run_table1_query(session: &mut Session, query_no: usize) -> Table1Row {
    assert!((1..=5).contains(&query_no));
    let configured_dop = session.dop();
    let sql = TABLE1_QUERIES[query_no - 1];

    session.set_dop(1);
    session.db().store.clear_cache();
    let serial = session.query(sql).expect("table 1 query (serial)");

    session.set_dop(configured_dop);
    session.db().store.clear_cache();
    let parallel = session.query(sql).expect("table 1 query (parallel)");

    assert!(
        rows_bit_identical(&serial.rows, &parallel.rows),
        "parallel result diverged from serial for Q{query_no}"
    );

    let s = &serial.stats;
    let cpu_wall = s.cpu_seconds / TESTBED_DOP;
    let exec = cpu_wall.max(s.sim_io_seconds);
    Table1Row {
        query: query_no,
        exec_seconds: exec,
        cpu_percent: if exec > 0.0 {
            100.0 * cpu_wall / exec
        } else {
            0.0
        },
        io_mb_per_sec: if exec > 0.0 {
            s.io.bytes_read() as f64 / (1024.0 * 1024.0) / exec
        } else {
            0.0
        },
        cpu_seconds: s.cpu_seconds,
        io_seconds: s.sim_io_seconds,
        udf_calls: s.udf_calls,
        rows: s.rows_scanned,
        wall_serial_seconds: s.wall_seconds,
        wall_parallel_seconds: parallel.stats.wall_seconds,
        measured_dop: parallel.stats.dop,
        measured_speedup: if parallel.stats.wall_seconds > 0.0 {
            s.wall_seconds / parallel.stats.wall_seconds
        } else {
            1.0
        },
    }
}

/// Runs all five queries and returns the full table.
pub fn run_table1(session: &mut Session) -> Vec<Table1Row> {
    (1..=5).map(|q| run_table1_query(session, q)).collect()
}

/// Storage accounting for the §6.2 size comparison (the "43 % bigger"
/// claim): returns `(scalar_bytes_per_row, vector_bytes_per_row, ratio)`.
pub fn storage_overhead(session: &mut Session) -> (f64, f64, f64) {
    let mut db = session.db_mut();
    let ts = db.table("Tscalar").expect("Tscalar").clone();
    let tv = db.table("Tvector").expect("Tvector").clone();
    let s = ts.bytes_per_row(&mut db.store).expect("page count");
    let v = tv.bytes_per_row(&mut db.store).expect("page count");
    (s, v, v / s)
}

/// Measured serial vs blocked/parallel dense-kernel timings for the
/// report's linalg section. Every variant is asserted bit-identical to
/// the naive serial result before the numbers are returned.
#[derive(Debug, Clone)]
pub struct LinalgReport {
    /// Square gemm fixture edge (`n × n · n × n`).
    pub gemm_n: usize,
    /// Naive jki serial gemm, seconds (best of three).
    pub gemm_naive_seconds: f64,
    /// Cache-blocked gemm at DOP 1, seconds.
    pub gemm_blocked_seconds: f64,
    /// Cache-blocked gemm at the configured DOP, seconds.
    pub gemm_parallel_seconds: f64,
    /// PCA fixture shape (samples, features, retained components).
    pub pca_shape: (usize, usize, usize),
    /// PCA fit at DOP 1, seconds.
    pub pca_serial_seconds: f64,
    /// PCA fit at the configured DOP, seconds.
    pub pca_parallel_seconds: f64,
    /// Lanes the parallel runs used.
    pub dop: usize,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

/// Times the linalg kernels the PCA/spectral workloads funnel through
/// (§2.2): naive vs cache-blocked vs parallel `gemm`, and serial vs
/// parallel PCA fit, asserting bit-identical results across all paths —
/// the linalg counterpart of [`run_table1_query`]'s serial/parallel
/// split.
pub fn run_linalg_report(dop: usize) -> LinalgReport {
    use sqlarray_linalg::{blas, pca, Matrix};

    let n = 512;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 61) as f64 / 61.0 - 0.5);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 41) % 53) as f64 / 53.0 - 0.5);
    let (gemm_naive_seconds, c_naive) = best_of(3, || blas::gemm_naive(&a, &b));
    let (gemm_blocked_seconds, c_blocked) = best_of(3, || blas::gemm_with_dop(&a, &b, 1));
    let (gemm_parallel_seconds, c_par) = best_of(3, || blas::gemm_with_dop(&a, &b, dop));
    let bits = |x: &Matrix, y: &Matrix| {
        x.as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(p, q)| p.to_bits() == q.to_bits())
    };
    assert!(
        bits(&c_blocked, &c_naive) && bits(&c_par, &c_naive),
        "blocked/parallel gemm diverged from naive serial"
    );

    let (samples, features, k) = (2_000, 64, 16);
    let data = Matrix::from_fn(samples, features, |i, j| {
        let t = i as f64 * 0.01;
        (j as f64 + 1.0) * t.sin() + ((i * 7 + j * 3) % 11) as f64 * 0.02
    });
    let (pca_serial_seconds, fit_serial) = best_of(2, || pca::fit_with_dop(&data, k, 1));
    let (pca_parallel_seconds, fit_par) = best_of(2, || pca::fit_with_dop(&data, k, dop));
    assert!(
        bits(&fit_par.components, &fit_serial.components),
        "parallel PCA fit diverged from serial"
    );

    LinalgReport {
        gemm_n: n,
        gemm_naive_seconds,
        gemm_blocked_seconds,
        gemm_parallel_seconds,
        pca_shape: (samples, features, k),
        pca_serial_seconds,
        pca_parallel_seconds,
        dop,
    }
}

/// A one-row table holding one large max-class f64 array, plus the two
/// query forms the pushdown experiments compare: `Subarray` straight over
/// the LOB column (page-ranged reads) vs the same `Subarray` over an
/// identity-`Reshape`d copy (which materializes the whole blob first).
pub struct SubarrayFixture {
    /// Session owning the `Tcube(id, v)` table.
    pub session: Session,
    /// Array dimensions.
    pub dims: [usize; 3],
    /// Array payload size in bytes.
    pub array_bytes: usize,
    /// Bytes of the benchmarked slab region.
    pub region_bytes: usize,
    /// `Subarray` over the base LOB column — the pushdown path.
    pub pushdown_sql: String,
    /// `Subarray` over a fully materialized copy — the baseline.
    pub full_sql: String,
}

/// Builds the pushdown fixture for an `mb`-megabyte stored array. The
/// benchmarked region is a one-plane slab (`a × a × 1` of an `a × a × d`
/// cube): 3.1 % of a 1 MB array, 0.78 % of a 16 MB array.
pub fn build_subarray_fixture(mb: usize) -> SubarrayFixture {
    use sqlarray_core::{SqlArray, StorageClass};

    let elems = mb * 1024 * 1024 / 8;
    let a = if elems >= 128 * 128 * 128 { 128 } else { 64 };
    let dims = [a, a, elems / (a * a)];
    let arr = SqlArray::from_fn(StorageClass::Max, &dims, |idx| {
        (idx[0] + a * idx[1] + a * a * idx[2]) as f64
    })
    .expect("fixture array");

    let mut db = Database::new();
    db.create_table(
        "Tcube",
        Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
    )
    .expect("fresh database");
    db.insert(
        "Tcube",
        0,
        &[RowValue::I64(0), RowValue::Bytes(arr.into_blob())],
    )
    .expect("insert cube row");

    let vec3 = |v: [usize; 3]| format!("IntArray.Vector_3({}, {}, {})", v[0], v[1], v[2]);
    let offset = vec3([0, 0, dims[2] / 2]);
    let size = vec3([dims[0], dims[1], 1]);
    let dims_v = vec3(dims);
    SubarrayFixture {
        session: Session::with_hosting(db, HostingModel::free()),
        dims,
        array_bytes: elems * 8,
        region_bytes: dims[0] * dims[1] * 8,
        pushdown_sql: format!(
            "SELECT id, FloatArrayMax.Subarray(v, {offset}, {size}, 0) FROM Tcube"
        ),
        full_sql: format!(
            "SELECT id, FloatArrayMax.Subarray(FloatArrayMax.Reshape(v, {dims_v}), \
             {offset}, {size}, 0) FROM Tcube"
        ),
    }
}

/// One measured row of the subarray-pushdown experiment.
#[derive(Debug, Clone)]
pub struct SubarrayReport {
    /// Stored array size in MB.
    pub mb: usize,
    /// Slice size as a percentage of the array.
    pub slice_percent: f64,
    /// Cold pages read by the pushdown query.
    pub pushdown_pages: u64,
    /// Cold pages read by the full-materialize query.
    pub full_pages: u64,
    /// Cold wall seconds of the pushdown query.
    pub pushdown_seconds: f64,
    /// Cold wall seconds of the full-materialize query.
    pub full_seconds: f64,
}

impl SubarrayReport {
    /// Page-read reduction factor (the headline number).
    pub fn page_factor(&self) -> f64 {
        self.full_pages as f64 / self.pushdown_pages.max(1) as f64
    }
}

/// Runs the pushdown experiment at 1 MB and 16 MB, cold each time, and
/// panics unless both paths return bit-identical rows — pushdown is an
/// I/O optimization, never a different answer.
pub fn run_subarray_report() -> Vec<SubarrayReport> {
    [1usize, 16]
        .into_iter()
        .map(|mb| {
            let mut fx = build_subarray_fixture(mb);
            fx.session.db().store.clear_cache();
            let push = fx
                .session
                .query(&fx.pushdown_sql)
                .expect("pushdown subarray query");
            fx.session.db().store.clear_cache();
            let full = fx
                .session
                .query(&fx.full_sql)
                .expect("full-materialize subarray query");
            assert!(
                rows_bit_identical(&push.rows, &full.rows),
                "pushdown result diverged from full materialization at {mb} MB"
            );
            SubarrayReport {
                mb,
                slice_percent: 100.0 * fx.region_bytes as f64 / fx.array_bytes as f64,
                pushdown_pages: push.stats.io.pages_read,
                full_pages: full.stats.io.pages_read,
                pushdown_seconds: push.stats.exec_seconds(),
                full_seconds: full.stats.exec_seconds(),
            }
        })
        .collect()
}

/// The two vectorized-execution showcase queries over `Tscalar`: one
/// filter-heavy (selective conjunctive predicate, tiny projection — the
/// per-row work is predicate evaluation) and one aggregate-heavy (five
/// aggregates over arithmetic — the per-row work is expression + fold).
/// Both compile to batch plans and also run on the row interpreter when
/// batching is disabled, so they measure the same logical work twice.
pub const BATCH_QUERIES: [(&str, &str); 2] = [
    (
        "filter-heavy",
        "SELECT id, v1 * v2 FROM Tscalar WITH (NOLOCK) \
         WHERE v1 > 0.5 AND v2 < 0.5 AND v3 > 0.9",
    ),
    (
        "aggregate-heavy",
        "SELECT COUNT(*), SUM(v1 + v2), MIN(v3), MAX(v4), AVG(v5) \
         FROM Tscalar WITH (NOLOCK) WHERE v5 > 0.25",
    ),
];

/// One row of the vectorized-execution comparison: the same query timed
/// on the row-at-a-time interpreter (`set_batch_rows(0)`) and on the
/// default columnar batch pipeline, warm-cache and serial, after the
/// bit-identity of the two paths was asserted at DOP 1/2/4/8.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Human label for the workload shape.
    pub label: &'static str,
    /// The SQL text measured.
    pub sql: &'static str,
    /// Best-of-three warm wall seconds on the row interpreter.
    pub row_seconds: f64,
    /// Best-of-three warm wall seconds on the batch pipeline.
    pub batch_seconds: f64,
    /// Batches flushed by the batch run.
    pub batches: u64,
    /// Mean rows per flushed batch.
    pub batch_fill: f64,
}

impl BatchReport {
    /// Row-path wall time over batch-path wall time (the headline number).
    pub fn speedup(&self) -> f64 {
        self.row_seconds / self.batch_seconds.max(1e-9)
    }
}

/// Times [`BATCH_QUERIES`] on the row path vs the batch path, serial and
/// warm (the comparison isolates CPU work, not buffer-pool behaviour).
/// Before timing, every query is run on both paths at DOP 1/2/4/8 and the
/// results must be bit-identical — a vectorization divergence panics the
/// report rather than printing a tainted speedup. The session's DOP and
/// batch size are restored afterwards.
pub fn run_batch_report(session: &mut Session) -> Vec<BatchReport> {
    let (saved_dop, saved_batch) = (session.dop(), session.batch_rows());
    let mut out = Vec::with_capacity(BATCH_QUERIES.len());
    for (label, sql) in BATCH_QUERIES {
        // Correctness gate: serial row baseline vs batch at every DOP.
        session.set_batch_rows(0);
        session.set_dop(1);
        let base = session.query(sql).expect("row-path query");
        for dop in [1usize, 2, 4, 8] {
            session.set_batch_rows(sqlarray_core::batch::DEFAULT_BATCH_ROWS);
            session.set_dop(dop);
            let got = session.query(sql).expect("batch-path query");
            assert!(
                rows_bit_identical(&base.rows, &got.rows),
                "batch result diverged from row path at DOP {dop} for {sql}"
            );
        }
        session.set_dop(1);

        let time_best = |session: &mut Session| {
            let mut best = f64::INFINITY;
            let mut stats = None;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                let r = session.query(sql).expect("timed query");
                best = best.min(t0.elapsed().as_secs_f64());
                stats = Some(r.stats);
            }
            (best, stats.expect("three timed runs"))
        };
        session.set_batch_rows(0);
        let (row_seconds, _) = time_best(session);
        session.set_batch_rows(sqlarray_core::batch::DEFAULT_BATCH_ROWS);
        let (batch_seconds, stats) = time_best(session);
        out.push(BatchReport {
            label,
            sql,
            row_seconds,
            batch_seconds,
            batches: stats.batches,
            batch_fill: stats.batch_fill,
        });
    }
    session.set_dop(saved_dop);
    session.set_batch_rows(saved_batch);
    out
}

// --- shared-engine concurrency ----------------------------------------

/// The statement every session in the concurrency report runs: Table 1's
/// Q3, the CPU-bound full scan (`SUM(v1)` over `Tscalar`).
pub const CONCURRENCY_QUERY: &str = TABLE1_QUERIES[2];

/// One row of the multi-session throughput report: `sessions` concurrent
/// sessions over one shared engine draining a fixed batch of
/// [`CONCURRENCY_QUERY`] runs.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrencyReport {
    /// Concurrent sessions sharing the engine.
    pub sessions: usize,
    /// Queries drained across all sessions.
    pub queries: usize,
    /// Wall clock for the whole batch.
    pub wall_seconds: f64,
    /// Plan-cache hits the batch produced.
    pub plan_hits: u64,
}

impl ConcurrencyReport {
    /// Aggregate throughput, queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.wall_seconds.max(1e-9)
    }
}

/// Drains a fixed batch of `total_queries` [`CONCURRENCY_QUERY`] runs
/// through 1, 2, 4 and 8 concurrent sessions over `session`'s engine,
/// one session per worker thread, each session at DOP 1 (so the scaling
/// measured is session concurrency, not intra-query parallelism). Every
/// result must be bit-identical to a single-session baseline — the
/// snapshot-read guarantee is asserted, not assumed. Warm runs: the
/// comparison isolates the engine's session scaling, not buffer-pool
/// behaviour.
pub fn run_concurrency_report(
    session: &mut Session,
    total_queries: usize,
) -> Vec<ConcurrencyReport> {
    let engine = std::sync::Arc::clone(session.engine());
    let want = {
        let mut s = engine.session_with_hosting(HostingModel::free());
        s.set_dop(1);
        s.query(CONCURRENCY_QUERY).expect("baseline query").rows
    };
    let mut out = Vec::with_capacity(4);
    for sessions in [1usize, 2, 4, 8] {
        let hits_before = engine.stats().plans.hits;
        let t0 = std::time::Instant::now();
        let results =
            sqlarray_core::parallel::scoped_map_ranges(total_queries, sessions, |range| {
                let mut s = engine.session_with_hosting(HostingModel::free());
                s.set_dop(1);
                let mut rows = Vec::new();
                for _ in range {
                    rows = s.query(CONCURRENCY_QUERY).expect("concurrent query").rows;
                }
                rows
            });
        let wall_seconds = t0.elapsed().as_secs_f64();
        for rows in results.iter().filter(|r| !r.is_empty()) {
            assert!(
                rows_bit_identical(rows, &want),
                "concurrent result diverged from the single-session baseline"
            );
        }
        out.push(ConcurrencyReport {
            sessions,
            queries: total_queries,
            wall_seconds,
            plan_hits: engine.stats().plans.hits - hits_before,
        });
    }
    out
}

/// One synthetic-overload run against a deliberately starved engine:
/// how admission control sheds load when demand far exceeds the worker
/// budget, and what that shedding costs.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleReport {
    /// Client threads hammering the engine.
    pub clients: usize,
    /// Statements attempted across all clients.
    pub attempted: usize,
    /// Statements that ran to completion (each asserted bit-identical to
    /// an uncontended baseline).
    pub completed: u64,
    /// Statements refused immediately with `Overloaded` (queue at cap).
    pub rejected_overload: u64,
    /// Statements whose deadline expired while still queued
    /// (`AdmissionTimeout` — they never ran).
    pub admission_timeouts: u64,
    /// Mean admission wait per queued statement, milliseconds.
    pub mean_wait_ms: f64,
}

/// Drives `clients` threads, each issuing `per_client` copies of a
/// slow statement against an engine configured with a worker budget of 1
/// and an admission queue cap of 2, every statement carrying a short
/// deadline. Demand therefore exceeds capacity by construction, and
/// every statement ends in exactly one of three typed outcomes:
/// completed (bit-identical to the uncontended baseline — load shedding
/// must never change an answer), `Overloaded`, or `AdmissionTimeout`.
/// Any other error is a bug and panics the report.
pub fn run_lifecycle_report(clients: usize, per_client: usize) -> LifecycleReport {
    const ROWS: i64 = 200;
    let mut db = Database::new();
    db.create_table(
        "L",
        Schema::new(&[("id", ColType::I64), ("tag", ColType::I32)]),
    )
    .expect("fresh database");
    let rows: KeyedRows = (0..ROWS)
        .map(|k| (k, vec![RowValue::I64(k), RowValue::I32(k as i32)]))
        .collect();
    db.bulk_insert("L", &rows).expect("bulk load");
    db.commit();
    let engine = sqlarray_engine::Engine::with_config(
        db,
        sqlarray_engine::EngineConfig {
            worker_budget: 1,
            admission_queue_cap: 2,
            ..sqlarray_engine::EngineConfig::default()
        },
    );

    // ~50 µs of spin per row ≈ 10 ms per statement: long enough that the
    // budget-1 engine convoys, short enough that the report stays quick.
    let slow = "SELECT COUNT(*), SUM(dbo.SpinUs(tag, 50)) FROM L";
    let want = {
        let mut s = engine.session_with_hosting(HostingModel::free());
        s.set_dop(1);
        s.query(slow).expect("uncontended baseline").rows
    };

    let outcomes = sqlarray_core::parallel::scoped_map_ranges(clients, clients, |range| {
        let mut s = engine.session_with_hosting(HostingModel::free());
        s.set_dop(1);
        s.set_statement_timeout_ms(Some(25));
        let (mut done, mut shed, mut timed) = (0u64, 0u64, 0u64);
        for _ in 0..(range.len() * per_client) {
            match s.query(slow) {
                Ok(r) => {
                    assert!(
                        rows_bit_identical(&r.rows, &want),
                        "overload changed an answer"
                    );
                    done += 1;
                }
                Err(sqlarray_engine::EngineError::Overloaded { .. }) => shed += 1,
                Err(sqlarray_engine::EngineError::AdmissionTimeout { .. }) => timed += 1,
                // The statement deadline can also fire mid-scan under a
                // debug build's slower row loop; count it with the
                // admission timeouts — both are the deadline shedding it.
                Err(sqlarray_engine::EngineError::Timeout { .. }) => timed += 1,
                Err(other) => panic!("unexpected overload outcome: {other:?}"),
            }
        }
        (done, shed, timed)
    });

    let (mut completed, mut rejected, mut timeouts) = (0u64, 0u64, 0u64);
    for (d, s, t) in outcomes {
        completed += d;
        rejected += s;
        timeouts += t;
    }
    let st = engine.stats().sched;
    LifecycleReport {
        clients,
        attempted: clients * per_client,
        completed,
        rejected_overload: rejected,
        admission_timeouts: timeouts,
        mean_wait_ms: st.wait_nanos as f64 / 1e6 / (st.queued.max(1)) as f64,
    }
}

/// Reads the row-count override from `SQLARRAY_ROWS`.
pub fn rows_from_env() -> i64 {
    std::env::var("SQLARRAY_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_answers_are_consistent() {
        let mut s = build_table1_db_with(2_000, HostingModel::free());
        let rows = run_table1(&mut s);
        assert_eq!(rows.len(), 5);
        // Q1/Q2 scan all rows; Q4/Q5 make one UDF call per row.
        assert_eq!(rows[0].rows, 2_000);
        assert_eq!(rows[1].rows, 2_000);
        assert_eq!(rows[3].udf_calls, 2_000);
        assert_eq!(rows[4].udf_calls, 2_000);
        assert_eq!(rows[2].udf_calls, 0);
    }

    #[test]
    fn parallel_ingest_is_dop_invariant() {
        let (mut s1, serial) = build_table1_db_with_dop(2_000, HostingModel::free(), 1);
        for dop in [2usize, 8] {
            let (mut sp, par) = build_table1_db_with_dop(2_000, HostingModel::free(), dop);
            assert_eq!(par.io, serial.io, "ingest IoStats diverged at dop {dop}");
            assert_eq!(par.page_count, serial.page_count);
            assert_eq!(par.seek_position, serial.seek_position);
            let a = s1.query(TABLE1_QUERIES[2]).unwrap();
            let b = sp.query(TABLE1_QUERIES[2]).unwrap();
            assert!(rows_bit_identical(&a.rows, &b.rows));
        }
    }

    #[test]
    fn subarray_pushdown_reads_an_order_of_magnitude_fewer_pages() {
        let reports = run_subarray_report();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(
                r.page_factor() >= 10.0,
                "pushdown saved only {:.1}x pages at {} MB: {r:?}",
                r.page_factor(),
                r.mb
            );
        }
        // The 16 MB row benches a ≤ 1 % slice, as the experiment states.
        assert!(reports[1].slice_percent <= 1.0);
    }

    #[test]
    fn lifecycle_report_accounts_for_every_statement() {
        let r = run_lifecycle_report(4, 3);
        assert_eq!(r.attempted, 12);
        assert_eq!(
            r.completed + r.rejected_overload + r.admission_timeouts,
            r.attempted as u64,
            "an overload outcome went unaccounted: {r:?}"
        );
        // A budget-1 engine under 4 clients must actually shed load.
        assert!(r.completed >= 1, "{r:?}");
        assert!(
            r.rejected_overload + r.admission_timeouts >= 1,
            "no statement was shed under synthetic overload: {r:?}"
        );
    }

    #[test]
    fn q3_and_q4_compute_the_same_sum() {
        let mut s = build_table1_db_with(500, HostingModel::free());
        let q3 = s.query_scalar(TABLE1_QUERIES[2]).unwrap();
        let q4 = s.query_scalar(TABLE1_QUERIES[3]).unwrap();
        let (a, b) = (q3.as_f64().unwrap(), q4.as_f64().unwrap());
        assert!((a - b).abs() < 1e-9 * a.abs());
    }

    #[test]
    fn vector_table_costs_more_io_than_scalar_table() {
        let mut s = build_table1_db_with(5_000, HostingModel::free());
        let rows = run_table1(&mut s);
        // Q2 reads the fatter table: strictly more I/O seconds than Q1.
        assert!(rows[1].io_seconds > rows[0].io_seconds);
        let (_, _, ratio) = storage_overhead(&mut s);
        assert!(
            (1.2..1.7).contains(&ratio),
            "storage ratio {ratio:.2} out of band"
        );
    }

    #[test]
    fn measured_columns_are_populated_and_consistent() {
        let mut s = build_table1_db_with(3_000, HostingModel::free());
        s.set_dop(4);
        let rows = run_table1(&mut s);
        for row in &rows {
            assert!(row.wall_serial_seconds > 0.0);
            assert!(row.wall_parallel_seconds > 0.0);
            assert!(row.measured_speedup > 0.0);
            assert!((1..=4).contains(&row.measured_dop));
        }
        // 3000 rows split across several leaf pages, so the parallel run
        // must actually have fanned out.
        assert!(rows.iter().any(|r| r.measured_dop > 1));
    }

    #[test]
    fn clr_model_makes_q5_cpu_bound() {
        let mut s = build_table1_db(3_000); // paper hosting: 2 µs/call
        let rows = run_table1(&mut s);
        let q1 = &rows[0];
        let q5 = &rows[4];
        // Q5 burns ~2 µs × rows of CPU; Q1 almost none.
        assert!(q5.cpu_seconds > 10.0 * q1.cpu_seconds);
        assert!(q5.cpu_percent > 90.0);
    }
}
