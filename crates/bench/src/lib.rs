//! Shared fixtures and runners for the experiment harness.
//!
//! Every quantitative artefact of the paper maps to a function here; the
//! `bin/` report binaries print the paper's row format and the Criterion
//! benches in `benches/` time the same code paths. See EXPERIMENTS.md for
//! the experiment ↔ paper index.

#![warn(missing_docs)]

use sqlarray_engine::{Database, HostingModel, Session};
use sqlarray_storage::{ColType, DiskProfile, PageStore, RowValue, Schema};

/// Default row count for report binaries (overridable via
/// `SQLARRAY_ROWS`). The paper used 357 M rows on a 16-core server; one
/// million preserves every per-row cost ratio at laptop scale.
pub const DEFAULT_ROWS: i64 = 1_000_000;

/// Degree of parallelism of the modelled testbed. The paper's server ran
/// the scans on two quad-core CPUs ("all eight cores were used", §7.1);
/// our engine is single-threaded, so reported wall times divide CPU work
/// by this factor before overlapping it with I/O.
pub const TESTBED_DOP: f64 = 8.0;

/// Builds the two §6.2 test tables: `Tscalar` (id + five float columns)
/// and `Tvector` (id + one 5-vector short-array blob), with `rows` rows
/// each, and returns a session with the paper's 2 µs CLR hosting model.
pub fn build_table1_db(rows: i64) -> Session {
    build_table1_db_with(rows, HostingModel::paper_clr())
}

/// Same as [`build_table1_db`] with an explicit hosting model (e.g.
/// [`HostingModel::free`] for the native-cost ablation).
pub fn build_table1_db_with(rows: i64, hosting: HostingModel) -> Session {
    let store = PageStore::with_pool(4096, DiskProfile::default());
    let mut db = Database::with_store(store);
    db.create_table(
        "Tscalar",
        Schema::new(&[
            ("id", ColType::I64),
            ("v1", ColType::F64),
            ("v2", ColType::F64),
            ("v3", ColType::F64),
            ("v4", ColType::F64),
            ("v5", ColType::F64),
        ]),
    )
    .expect("fresh database");
    db.create_table(
        "Tvector",
        Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
    )
    .expect("fresh database");

    // Deterministic pseudo-random components, identical across tables.
    // Each table loads in one pass so its leaf chain is laid out
    // sequentially on disk, as a bulk-loaded clustered index would be —
    // interleaving the inserts would turn both scans into stride-2
    // (random) page reads and poison the I/O model.
    let components = |k: i64| -> [f64; 5] {
        let mut state = (k as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        std::array::from_fn(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
    };
    for k in 0..rows {
        let comps = components(k);
        let mut scalar_row = Vec::with_capacity(6);
        scalar_row.push(RowValue::I64(k));
        scalar_row.extend(comps.iter().map(|&c| RowValue::F64(c)));
        db.insert("Tscalar", k, &scalar_row).expect("insert");
    }
    for k in 0..rows {
        let comps = components(k);
        let arr = sqlarray_core::build::short_vector(&comps).expect("5-vector fits");
        db.insert(
            "Tvector",
            k,
            &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
        )
        .expect("insert");
    }
    Session::with_hosting(db, hosting)
}

/// The five queries of §6.3, verbatim.
pub const TABLE1_QUERIES: [&str; 5] = [
    "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)",
    "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
    "SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)",
    "SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)",
    "SELECT SUM(dbo.EmptyFunction(v, 0)) FROM Tvector WITH (NOLOCK)",
];

/// One measured row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Query number (1-based, as in the paper).
    pub query: usize,
    /// Modelled execution time (s): `max(cpu/DOP, simulated I/O)`.
    pub exec_seconds: f64,
    /// CPU load in percent of the execution time.
    pub cpu_percent: f64,
    /// Effective I/O rate over the execution time, MB/s.
    pub io_mb_per_sec: f64,
    /// Raw single-thread CPU seconds.
    pub cpu_seconds: f64,
    /// Simulated disk seconds.
    pub io_seconds: f64,
    /// Managed UDF calls made.
    pub udf_calls: u64,
    /// Rows scanned.
    pub rows: u64,
}

/// Runs one Table 1 query cold (buffer pool cleared first, as in §6.3)
/// and converts the stats into a paper-style row.
pub fn run_table1_query(session: &mut Session, query_no: usize) -> Table1Row {
    assert!((1..=5).contains(&query_no));
    session.db.store.clear_cache();
    let result = session
        .query(TABLE1_QUERIES[query_no - 1])
        .expect("table 1 query");
    let s = &result.stats;
    let cpu_wall = s.cpu_seconds / TESTBED_DOP;
    let exec = cpu_wall.max(s.sim_io_seconds);
    Table1Row {
        query: query_no,
        exec_seconds: exec,
        cpu_percent: if exec > 0.0 {
            100.0 * cpu_wall / exec
        } else {
            0.0
        },
        io_mb_per_sec: if exec > 0.0 {
            s.io.bytes_read() as f64 / (1024.0 * 1024.0) / exec
        } else {
            0.0
        },
        cpu_seconds: s.cpu_seconds,
        io_seconds: s.sim_io_seconds,
        udf_calls: s.udf_calls,
        rows: s.rows_scanned,
    }
}

/// Runs all five queries and returns the full table.
pub fn run_table1(session: &mut Session) -> Vec<Table1Row> {
    (1..=5).map(|q| run_table1_query(session, q)).collect()
}

/// Storage accounting for the §6.2 size comparison (the "43 % bigger"
/// claim): returns `(scalar_bytes_per_row, vector_bytes_per_row, ratio)`.
pub fn storage_overhead(session: &mut Session) -> (f64, f64, f64) {
    let ts = session.db.table("Tscalar").expect("Tscalar").clone();
    let tv = session.db.table("Tvector").expect("Tvector").clone();
    let s = ts.bytes_per_row(&mut session.db.store).expect("page count");
    let v = tv.bytes_per_row(&mut session.db.store).expect("page count");
    (s, v, v / s)
}

/// Reads the row-count override from `SQLARRAY_ROWS`.
pub fn rows_from_env() -> i64 {
    std::env::var("SQLARRAY_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_answers_are_consistent() {
        let mut s = build_table1_db_with(2_000, HostingModel::free());
        let rows = run_table1(&mut s);
        assert_eq!(rows.len(), 5);
        // Q1/Q2 scan all rows; Q4/Q5 make one UDF call per row.
        assert_eq!(rows[0].rows, 2_000);
        assert_eq!(rows[1].rows, 2_000);
        assert_eq!(rows[3].udf_calls, 2_000);
        assert_eq!(rows[4].udf_calls, 2_000);
        assert_eq!(rows[2].udf_calls, 0);
    }

    #[test]
    fn q3_and_q4_compute_the_same_sum() {
        let mut s = build_table1_db_with(500, HostingModel::free());
        let q3 = s.query_scalar(TABLE1_QUERIES[2]).unwrap();
        let q4 = s.query_scalar(TABLE1_QUERIES[3]).unwrap();
        let (a, b) = (q3.as_f64().unwrap(), q4.as_f64().unwrap());
        assert!((a - b).abs() < 1e-9 * a.abs());
    }

    #[test]
    fn vector_table_costs_more_io_than_scalar_table() {
        let mut s = build_table1_db_with(5_000, HostingModel::free());
        let rows = run_table1(&mut s);
        // Q2 reads the fatter table: strictly more I/O seconds than Q1.
        assert!(rows[1].io_seconds > rows[0].io_seconds);
        let (_, _, ratio) = storage_overhead(&mut s);
        assert!(
            (1.2..1.7).contains(&ratio),
            "storage ratio {ratio:.2} out of band"
        );
    }

    #[test]
    fn clr_model_makes_q5_cpu_bound() {
        let mut s = build_table1_db(3_000); // paper hosting: 2 µs/call
        let rows = run_table1(&mut s);
        let q1 = &rows[0];
        let q5 = &rows[4];
        // Q5 burns ~2 µs × rows of CPU; Q1 almost none.
        assert!(q5.cpu_seconds > 10.0 * q1.cpu_seconds);
        assert!(q5.cpu_percent > 90.0);
    }
}
