//! E4 report — §2.1 blob-size ablation.
//!
//! For each cube edge, runs a batch of 8-point interpolation queries and
//! prints the bytes fetched per query for streamed-stencil vs whole-blob
//! access, reproducing the design observation that "by using much smaller
//! blobs, especially if they fit onto a single 8 kB page, we could have a
//! much lower overhead on disk IOs".

use sqlarray_storage::PageStore;
use sqlarray_turbulence::{FetchMode, PartitionSpec, Scheme, SyntheticField, TurbulenceDb};

fn main() {
    let field = SyntheticField::new(5, 6, 3);
    let grid_n = 128;
    let queries: Vec<[f64; 3]> = (0..200)
        .map(|i| {
            let t = i as f64 * 0.41;
            [
                (0.11 + t).rem_euclid(1.0),
                (0.53 + 0.71 * t).rem_euclid(1.0),
                (0.87 + 0.29 * t).rem_euclid(1.0),
            ]
        })
        .collect();

    println!("== sqlarray-rs: blob-size ablation (Sec. 2.1) ==");
    println!(
        "grid {grid_n}^3, ghost 4, Lagrange-8 stencil, {} queries, cold cache per batch",
        queries.len()
    );
    println!();
    println!(
        "{:>6} {:>12} {:>18} {:>18} {:>10}",
        "block", "blob [kB]", "partial [kB/qry]", "full [kB/qry]", "ratio"
    );
    for block in [8usize, 16, 32, 64] {
        let spec = PartitionSpec::new(grid_n, block, 4);
        let mut store = PageStore::new();
        let db = TurbulenceDb::build(&mut store, &field, spec).expect("build");

        let mut measure = |mode: FetchMode| -> f64 {
            store.clear_cache();
            store.reset_stats();
            db.query_particles(&mut store, &queries, Scheme::Lagrange8, mode)
                .expect("query");
            store.stats().bytes_read() as f64 / queries.len() as f64 / 1024.0
        };
        let partial = measure(FetchMode::PartialRead);
        let full = measure(FetchMode::FullBlob);
        println!(
            "{:>6} {:>12.0} {:>18.1} {:>18.1} {:>9.1}x",
            block,
            spec.blob_bytes() as f64 / 1024.0,
            partial,
            full,
            full / partial
        );
    }
    println!();
    println!(
        "paper shape: the 6 MB production blobs (block 64) are overkill for an 8-point\n\
         stencil; page-sized blobs cut the bytes touched per query by orders of magnitude,\n\
         and partial LOB reads recover most of that advantage without re-partitioning."
    );
}
