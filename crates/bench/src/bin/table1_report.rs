//! Reproduces **Table 1** of the paper plus the §7.1 overhead
//! decomposition and the §6.2 storage comparison.
//!
//! ```text
//! cargo run --release -p sqlarray-bench --bin table1_report
//! SQLARRAY_ROWS=2000000 cargo run --release -p sqlarray-bench --bin table1_report
//! ```

use sqlarray_bench::{
    build_table1_db_with_dop, rows_from_env, run_batch_report, run_concurrency_report,
    run_lifecycle_report, run_linalg_report, run_subarray_report, run_table1, storage_overhead,
    CONCURRENCY_QUERY, TABLE1_QUERIES, TESTBED_DOP,
};
use sqlarray_engine::HostingModel;

fn main() {
    let rows = rows_from_env();
    println!("== sqlarray-rs: Table 1 reproduction ==");
    println!(
        "rows per table: {rows} (paper: 357M); hosting model: 2 us per CLR call; \
         modelled DOP: {TESTBED_DOP}; disk: 1150 MB/s sequential"
    );
    println!();

    // --- parallel bulk ingest ----------------------------------------
    // Load the two tables twice, cold: once serial, once at the
    // configured DOP. The simulated accounting must be identical — only
    // the wall clock may differ.
    eprintln!("bulk-loading Tscalar and Tvector ({rows} rows each), serial then parallel...");
    let (_, serial_ingest) = build_table1_db_with_dop(rows, HostingModel::paper_clr(), 1);
    let (mut session, par_ingest) = build_table1_db_with_dop(
        rows,
        HostingModel::paper_clr(),
        sqlarray_core::parallel::configured_dop(),
    );
    assert_eq!(
        (
            serial_ingest.io,
            serial_ingest.page_count,
            serial_ingest.seek_position
        ),
        (
            par_ingest.io,
            par_ingest.page_count,
            par_ingest.seek_position
        ),
        "parallel ingest accounting diverged from serial"
    );
    println!(
        "ingest: 2x{rows} rows bulk-loaded in {:.3} s serial vs {:.3} s at DOP {} \
         ({:.2}x); {} pages written, IoStats/layout/seek identical",
        serial_ingest.wall_seconds,
        par_ingest.wall_seconds,
        par_ingest.dop,
        serial_ingest.wall_seconds / par_ingest.wall_seconds.max(1e-9),
        par_ingest.io.pages_written,
    );
    let page_mb = (par_ingest.io.pages_written * 8192) as f64 / 1e6;
    let wal_mb = par_ingest.io.wal_bytes as f64 / 1e6;
    println!(
        "wal: {wal_mb:.1} MB logged across {} records for {page_mb:.1} MB of page writes \
         ({:.1} % byte overhead over an unlogged ingest; a checkpoint bounds the log)",
        par_ingest.io.wal_records,
        wal_mb / page_mb.max(1e-9) * 100.0,
    );
    println!();

    let dop = session.dop();
    println!(
        "measured columns: each query runs cold twice, serial (DOP 1) and \
         parallel (DOP {dop}, from SQLARRAY_DOP/cores);"
    );
    println!("the harness asserts both runs return bit-identical results.");
    println!();

    println!(
        "{:<3} {:>13} {:>8} {:>11} | {:>11} {:>11} {:>4} {:>8}   statement",
        "Q", "model exec[s]", "CPU [%]", "I/O [MB/s]", "serial [s]", "par [s]", "DOP", "speedup",
    );
    println!("{}", "-".repeat(132));
    let table = run_table1(&mut session);
    for row in &table {
        println!(
            "{:<3} {:>13.3} {:>8.0} {:>11.0} | {:>11.3} {:>11.3} {:>4} {:>7.2}x   {}",
            row.query,
            row.exec_seconds,
            row.cpu_percent,
            row.io_mb_per_sec,
            row.wall_serial_seconds,
            row.wall_parallel_seconds,
            row.measured_dop,
            row.measured_speedup,
            TABLE1_QUERIES[row.query - 1]
        );
    }
    let best = table
        .iter()
        .max_by(|a, b| a.measured_speedup.total_cmp(&b.measured_speedup))
        .expect("five rows");
    println!();
    println!(
        "best measured parallel speedup: {:.2}x on Q{} at DOP {} \
         (modelled projection divides CPU by {TESTBED_DOP})",
        best.measured_speedup, best.query, best.measured_dop
    );

    println!();
    println!("== paper reference (357M rows, Dell PowerVault, SQL Server 2008) ==");
    println!("1: 18 s, 45 % CPU, 1150 MB/s    4: 133 s, 98 % CPU, 215 MB/s");
    println!("2: 25 s, 38 % CPU, 1150 MB/s    5: 109 s, 99 % CPU, 265 MB/s");
    println!("3: 18 s, 90 % CPU, 1150 MB/s");

    // --- §7.1: overhead decomposition --------------------------------
    println!();
    println!("== Sec. 7.1 derived metrics ==");
    let q1 = &table[0];
    let q3 = &table[2];
    let q4 = &table[3];
    let q5 = &table[4];
    let empty_call_cost = (q5.cpu_seconds - q3.cpu_seconds).max(0.0) / q5.udf_calls.max(1) as f64;
    println!(
        "cost per empty CLR call: {:.2} us (paper: ~2 us)",
        empty_call_cost * 1e6
    );
    let item_extra = (q4.cpu_seconds - q5.cpu_seconds) / q5.cpu_seconds * 100.0;
    println!(
        "item extraction adds {:.0} % over the empty call (paper: 22 %)",
        item_extra
    );
    let udf_share = (q5.cpu_seconds - q1.cpu_seconds).max(0.0) / q5.cpu_seconds * 100.0;
    println!(
        "UDF-call share of Q5 CPU: {:.0} % (paper: at least 38 % even when empty)",
        udf_share
    );
    println!(
        "Q2/Q1 execution-time ratio: {:.2} (paper: 25/18 = 1.39)",
        table[1].exec_seconds / q1.exec_seconds
    );

    // --- linalg kernels: serial vs blocked vs parallel ---------------
    println!();
    println!("== linalg kernels (PCA/spectral path, Sec. 2.2) ==");
    let lr = run_linalg_report(sqlarray_core::parallel::configured_dop());
    println!(
        "gemm {n}x{n}: naive {naive:.3} s, blocked {blocked:.3} s ({bx:.2}x), \
         blocked+parallel {par:.3} s at DOP {dop} ({px:.2}x); results bit-identical",
        n = lr.gemm_n,
        naive = lr.gemm_naive_seconds,
        blocked = lr.gemm_blocked_seconds,
        bx = lr.gemm_naive_seconds / lr.gemm_blocked_seconds.max(1e-9),
        par = lr.gemm_parallel_seconds,
        dop = lr.dop,
        px = lr.gemm_naive_seconds / lr.gemm_parallel_seconds.max(1e-9),
    );
    println!(
        "pca fit {s}x{f} k={k}: serial {ser:.3} s, parallel {par:.3} s at DOP {dop} \
         ({x:.2}x); basis bit-identical",
        s = lr.pca_shape.0,
        f = lr.pca_shape.1,
        k = lr.pca_shape.2,
        ser = lr.pca_serial_seconds,
        par = lr.pca_parallel_seconds,
        dop = lr.dop,
        x = lr.pca_serial_seconds / lr.pca_parallel_seconds.max(1e-9),
    );

    // --- §3.3: subarray pushdown over LOB arrays ---------------------
    println!();
    println!("== Subarray pushdown (lazy LOB values, page-ranged reads, Sec. 3.3) ==");
    for r in run_subarray_report() {
        println!(
            "{:>3} MB array, {:.2}% slice: pushdown {} pages / {:.4} s vs full \
             {} pages / {:.4} s  ({:.0}x fewer pages, {:.1}x faster); results bit-identical",
            r.mb,
            r.slice_percent,
            r.pushdown_pages,
            r.pushdown_seconds,
            r.full_pages,
            r.full_seconds,
            r.page_factor(),
            r.full_seconds / r.pushdown_seconds.max(1e-9),
        );
    }

    // --- vectorized batch execution ----------------------------------
    println!();
    println!("== Vectorized batch execution (columnar batches vs row-at-a-time) ==");
    println!("each query warm, serial, best of three; bit-identity asserted at DOP 1/2/4/8 first");
    for r in run_batch_report(&mut session) {
        println!(
            "{:<16} row {:.3} s vs batch {:.3} s  ({:.2}x); {} batches, \
             mean fill {:.0} rows   {}",
            r.label,
            r.row_seconds,
            r.batch_seconds,
            r.speedup(),
            r.batches,
            r.batch_fill,
            r.sql,
        );
    }

    // --- shared-engine concurrency -----------------------------------
    println!();
    println!("== Shared-engine concurrency (N sessions over one engine) ==");
    println!(
        "fixed batch of 12 x Q3 ({CONCURRENCY_QUERY}), each session at DOP 1, warm; \
         bit-identity vs a single session asserted first"
    );
    let conc = run_concurrency_report(&mut session, 12);
    let single_qps = conc.first().map(|r| r.qps()).unwrap_or(0.0);
    for r in &conc {
        println!(
            "{} session(s): {:.3} s wall, {:>6.1} q/s ({:.2}x vs single), \
             {} plan-cache hits",
            r.sessions,
            r.wall_seconds,
            r.qps(),
            r.qps() / single_qps.max(1e-9),
            r.plan_hits,
        );
    }

    // --- query lifecycle under synthetic overload --------------------
    println!();
    println!("== Query lifecycle (admission control under synthetic overload) ==");
    println!(
        "worker budget 1, queue cap 2, 25 ms statement deadline; demand \
         exceeds capacity by construction, every completion asserted \
         bit-identical to an uncontended baseline"
    );
    let lr = run_lifecycle_report(8, 6);
    println!(
        "{} clients x {} statements: {} completed, {} rejected (Overloaded), \
         {} deadline-shed (AdmissionTimeout/Timeout); mean admission wait \
         {:.1} ms",
        lr.clients,
        lr.attempted / lr.clients,
        lr.completed,
        lr.rejected_overload,
        lr.admission_timeouts,
        lr.mean_wait_ms,
    );

    // --- §6.2: storage sizes -----------------------------------------
    println!();
    println!("== Sec. 6.2 storage comparison ==");
    let (s, v, ratio) = storage_overhead(&mut session);
    println!("Tscalar: {s:.1} bytes/row   Tvector: {v:.1} bytes/row");
    println!(
        "Tvector is {:.0} % bigger (paper: 43 % from the 24-byte array headers)",
        (ratio - 1.0) * 100.0
    );
}
