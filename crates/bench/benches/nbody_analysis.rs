//! E9 — §2.3 N-body analyses: CIC density assignment, FFT power
//! spectrum, friends-of-friends halos, merger linking, two-point
//! correlation, and octree light-cone queries.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_nbody::{
    build_lightcone, friends_of_friends, link_catalogs, power_spectrum, two_point_correlation,
    DensityGrid, LightconeSpec, Octree, SynthSim,
};

fn bench_nbody(c: &mut Criterion) {
    let sim = SynthSim {
        halos: 16,
        halo_particles: 200,
        background: 3000,
        ..SynthSim::default()
    };
    let snap0 = sim.snapshot(0);
    let snap1 = sim.snapshot(1);

    let mut group = c.benchmark_group("nbody_analysis");
    group.sample_size(10);

    group.bench_function("cic_assign_32cube", |b| {
        b.iter(|| DensityGrid::assign_cic(std::hint::black_box(&snap0.particles), 32))
    });

    let grid = DensityGrid::assign_cic(&snap0.particles, 32);
    group.bench_function("power_spectrum_32cube", |b| {
        b.iter(|| power_spectrum(std::hint::black_box(&grid)))
    });

    group.bench_function("fof_6200_particles", |b| {
        b.iter(|| friends_of_friends(std::hint::black_box(&snap0.particles), 0.01, 20))
    });

    let h0 = friends_of_friends(&snap0.particles, 0.01, 20);
    let h1 = friends_of_friends(&snap1.particles, 0.01, 20);
    group.bench_function("merger_link_catalogs", |b| {
        b.iter(|| link_catalogs(std::hint::black_box(&h0), &h1, 0.5))
    });

    group.bench_function("two_point_correlation", |b| {
        b.iter(|| two_point_correlation(std::hint::black_box(&snap0.particles), 0.01, 0.1))
    });

    group.bench_function("octree_build_bucket256", |b| {
        b.iter(|| Octree::build(snap0.particles.clone(), 256))
    });

    let spec = LightconeSpec {
        apex: [0.5, 0.5, 0.5],
        dir: [1.0, 0.0, 0.0],
        half_angle: 0.4,
        shell_width: 0.12,
    };
    group.bench_function("lightcone_4_shells", |b| {
        b.iter(|| build_lightcone(&sim, &[3, 2, 1, 0], std::hint::black_box(&spec)))
    });
    group.finish();
}

criterion_group!(benches, bench_nbody);
criterion_main!(benches);
