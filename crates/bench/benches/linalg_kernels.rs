//! E9 — parallel, cache-blocked dense linear algebra. Times the three
//! `gemm` execution strategies (naive jki, cache-blocked serial,
//! blocked + parallel) and the PCA fit (serial vs parallel Gram build),
//! the kernels the §2.2 PCA/spectral workloads funnel through. All
//! variants produce bit-identical results — the determinism tests assert
//! it; this bench shows what the blocking and the fan-out buy.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_linalg::{blas, pca, Matrix};

fn fixture(n: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        ((i * 31 + j * 17 + seed) % 61) as f64 / 61.0 - 0.5
    })
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg_kernels");
    group.sample_size(10);

    for n in [128usize, 256] {
        let a = fixture(n, 0);
        let b = fixture(n, 7);
        group.bench_function(format!("gemm_naive_{n}"), |bch| {
            bch.iter(|| blas::gemm_naive(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_function(format!("gemm_blocked_serial_{n}"), |bch| {
            bch.iter(|| blas::gemm_with_dop(std::hint::black_box(&a), std::hint::black_box(&b), 1))
        });
        for dop in [2usize, 4, 8] {
            group.bench_function(format!("gemm_blocked_dop{dop}_{n}"), |bch| {
                bch.iter(|| {
                    blas::gemm_with_dop(std::hint::black_box(&a), std::hint::black_box(&b), dop)
                })
            });
        }
    }

    // PCA fit: mean/centering + Gram fan-out vs serial.
    let data = Matrix::from_fn(1_000, 48, |i, j| {
        let t = i as f64 * 0.01;
        (j as f64 + 1.0) * t.sin() + ((i * 7 + j * 3) % 11) as f64 * 0.02
    });
    group.bench_function("pca_fit_serial_1000x48_k16", |bch| {
        bch.iter(|| pca::fit_with_dop(std::hint::black_box(&data), 16, 1))
    });
    for dop in [4usize, 8] {
        group.bench_function(format!("pca_fit_dop{dop}_1000x48_k16"), |bch| {
            bch.iter(|| pca::fit_with_dop(std::hint::black_box(&data), 16, dop))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
