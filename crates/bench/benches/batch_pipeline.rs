//! Row-at-a-time interpreter vs the columnar batch pipeline.
//!
//! Times the two `BATCH_QUERIES` workload shapes (filter-heavy and
//! aggregate-heavy) over `Tscalar` at three configurations: the row
//! interpreter (`set_batch_rows(0)`), 1 K-row batches (the default), and
//! 4 K-row batches. Before any timing, each query is checked bit-identical
//! between the row path and the batch path at DOP 1/2/4/8 — the bench run
//! itself fails on a vectorization divergence. Warm cache and DOP 1
//! throughout, so the comparison isolates per-row interpreter overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_bench::{build_table1_db_with, rows_bit_identical, BATCH_QUERIES};
use sqlarray_engine::HostingModel;

const ROWS: i64 = 100_000;

fn bench_batch_pipeline(c: &mut Criterion) {
    let mut session = build_table1_db_with(ROWS, HostingModel::free());
    session.set_dop(1);

    // Correctness gate: the configurations being compared must agree.
    for (label, sql) in BATCH_QUERIES {
        session.set_batch_rows(0);
        let base = session.query(sql).expect("row-path query");
        for dop in [1usize, 2, 4, 8] {
            for batch in [1024usize, 4096] {
                session.set_batch_rows(batch);
                session.set_dop(dop);
                let got = session.query(sql).expect("batch-path query");
                assert!(
                    rows_bit_identical(&base.rows, &got.rows),
                    "{label}: batch={batch} dop={dop} diverged from row path"
                );
            }
        }
        session.set_dop(1);
    }

    let mut group = c.benchmark_group("batch_pipeline");
    for (label, sql) in BATCH_QUERIES {
        session.set_batch_rows(0);
        group.bench_function(format!("{label}/rows"), |b| {
            b.iter(|| session.query(sql).expect("row-path query"))
        });
        for batch in [1024usize, 4096] {
            session.set_batch_rows(batch);
            group.bench_function(format!("{label}/batch{batch}"), |b| {
                b.iter(|| session.query(sql).expect("batch-path query"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_pipeline);
criterion_main!(benches);
