//! E1 — Table 1: the five clustered-index-scan queries over `Tscalar` and
//! `Tvector`, cold buffer pool, paper hosting model (2 µs per CLR call).
//!
//! Expected shape (paper, §6.3): Q1 ≈ Q2 ≈ Q3 are I/O-bound; Q4 and Q5
//! are CPU-bound and several times slower, with Q4 slightly above Q5.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sqlarray_bench::{build_table1_db, TABLE1_QUERIES};

fn bench_table1(c: &mut Criterion) {
    let rows = 20_000;
    let mut session = build_table1_db(rows);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for (i, query) in TABLE1_QUERIES.iter().enumerate() {
        group.bench_function(format!("q{}", i + 1), |b| {
            b.iter_batched(
                || (),
                |_| {
                    session.db().store.clear_cache();
                    session.query(query).expect("query runs")
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
