//! E5 — §4.2: why the paper abandoned user-defined aggregates. The same
//! `Concat` aggregate runs with in-memory state vs the SQL Server 2008 CLR
//! contract (state serialized and deserialized between every row); the
//! paper found the latter "prohibitive".

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_core::{ElementType, StorageClass};
use sqlarray_engine::aggregate::{run_uda, ConcatUda, UdaMode, UdaState};
use sqlarray_engine::Value;

fn size_vec(n: i64) -> Value {
    let a = sqlarray_core::build::short_vector(&[n as i32]).unwrap();
    Value::Bytes(a.into_blob())
}

fn bench_concat(c: &mut Criterion) {
    let mut group = c.benchmark_group("concat_aggregate");
    group.sample_size(10);
    for n in [1_000i64, 10_000] {
        for (label, mode) in [
            ("in_memory", UdaMode::InMemory),
            ("stream_serialized", UdaMode::StreamSerialized),
        ] {
            group.bench_function(format!("{label}_{n}_rows"), |b| {
                b.iter(|| {
                    let mut state: Box<dyn UdaState> =
                        Box::new(ConcatUda::new(ElementType::Float64, StorageClass::Max));
                    let rows = (0..n).map(|i| vec![size_vec(n), Value::F64(i as f64)]);
                    run_uda(&mut state, rows, mode).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_concat);
criterion_main!(benches);
