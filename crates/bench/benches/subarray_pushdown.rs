//! Subarray pushdown vs full materialization over stored LOB arrays.
//!
//! Benches the same two query forms `table1_report`'s pushdown section
//! measures: `Subarray` straight over the `varbinary(max)` column (lazy
//! LOB value, page-ranged reads of only the intersecting chunk pages) vs
//! `Subarray` over an identity-`Reshape`d copy (full blob materialized
//! first), at 1 MB and 16 MB stored arrays. Each iteration runs cold
//! (buffer pool cleared) so the page savings dominate the measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_bench::{build_subarray_fixture, rows_bit_identical};

fn bench_subarray_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("subarray_pushdown");
    for mb in [1usize, 16] {
        // One cold correctness pass per size before any timing: the two
        // query forms must agree bit for bit, so a pushdown regression
        // fails the bench run itself.
        {
            let mut fx = build_subarray_fixture(mb);
            fx.session.db().store.clear_cache();
            let push = fx.session.query(&fx.pushdown_sql).expect("pushdown query");
            fx.session.db().store.clear_cache();
            let full = fx.session.query(&fx.full_sql).expect("full query");
            assert!(
                rows_bit_identical(&push.rows, &full.rows),
                "pushdown diverged from full materialization at {mb} MB"
            );
        }
        let mut fx = build_subarray_fixture(mb);
        group.bench_function(format!("pushdown/{mb}MB"), |b| {
            b.iter(|| {
                fx.session.db().store.clear_cache();
                fx.session.query(&fx.pushdown_sql).expect("pushdown query")
            })
        });
        let mut fx = build_subarray_fixture(mb);
        group.bench_function(format!("full_materialize/{mb}MB"), |b| {
            b.iter(|| {
                fx.session.db().store.clear_cache();
                fx.session.query(&fx.full_sql).expect("full query")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_subarray_pushdown);
criterion_main!(benches);
