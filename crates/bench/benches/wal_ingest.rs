//! WAL cost of the ingest path: bulk load with write-ahead logging and
//! a commit, the `ArrayUpdate`-style blob-range patch, and recovery
//! replay from a crashed disk image. Complements the `wal` line in
//! `table1_report`, which reports logged bytes against page bytes for
//! the full Table 1 load.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_storage::{ColType, PageStore, RowValue, Schema, Table};

fn schema() -> Schema {
    Schema::new(&[
        ("id", ColType::I64),
        ("tag", ColType::I32),
        ("v", ColType::Blob),
    ])
}

/// Mixed inline/LOB rows, the same shape the crash matrix exercises.
fn rows(n: i64) -> Vec<(i64, Vec<RowValue>)> {
    (0..n)
        .map(|k| {
            let len = match k % 4 {
                0 => 64,
                1 => 2000,
                2 => 7000,
                _ => 12_000,
            };
            let blob: Vec<u8> = (0..len).map(|i| (i as u64 ^ k as u64) as u8).collect();
            (
                k,
                vec![
                    RowValue::I64(k),
                    RowValue::I32(k as i32),
                    RowValue::Bytes(blob),
                ],
            )
        })
        .collect()
}

fn bench_wal_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_ingest");
    group.sample_size(10);

    let data = rows(8_000);
    group.bench_function("bulk_load_logged_8k_rows", |b| {
        b.iter(|| {
            let mut store = PageStore::new();
            let mut t = Table::create(&mut store, "T", schema()).unwrap();
            t.bulk_load(&mut store, &data, 4).unwrap();
            store.commit(&[]);
            (store.page_count(), store.stats().wal_bytes)
        })
    });

    // A committed store to patch and to recover from.
    let mut store = PageStore::new();
    let mut t = Table::create(&mut store, "T", schema()).unwrap();
    t.bulk_load(&mut store, &data, 4).unwrap();
    store.commit(&[]);

    let patch: Vec<u8> = (0..3000u32).map(|i| i as u8).collect();
    group.bench_function("blob_range_patch_3k", |b| {
        b.iter(|| {
            // Key 3 carries a 12 kB LOB; patch a 3 kB range across its
            // first chunk boundary, then commit the statement.
            let n = t
                .update_col_blob_range(&mut store, 3, 2, 5000, &patch)
                .unwrap();
            store.commit(&[]);
            n
        })
    });

    let image = store.crash_image();
    group.bench_function("recover_replay", |b| {
        b.iter(|| {
            let rec = PageStore::open(&image).unwrap();
            (rec.applied_records, rec.store.page_count())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_wal_ingest);
criterion_main!(benches);
