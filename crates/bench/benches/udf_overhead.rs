//! E2 — §7.1 UDF-call overhead decomposition: empty managed call vs real
//! item extraction vs native column access, and the hosting-model
//! counterfactual (what a native array type would cost).

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_engine::{HostingModel, UdfRegistry, Value};

fn bench_udf_overhead(c: &mut Criterion) {
    let mut reg = UdfRegistry::new();
    sqlarray_engine::arraybind::register_all(&mut reg);
    sqlarray_engine::mathfn::register_math(&mut reg);

    let arr = sqlarray_core::build::short_vector(&[1.0f64, 2.0, 3.0, 4.0, 5.0]).unwrap();
    let blob = Value::Bytes(arr.into_blob());
    let zero = Value::I64(0);

    let mut group = c.benchmark_group("udf_overhead");

    // The paper's CLR cost: ~2 µs per call even for an empty body.
    let mut clr = HostingModel::paper_clr();
    group.bench_function("empty_call_clr_2us", |b| {
        b.iter(|| {
            reg.call(
                "dbo.EmptyFunction",
                std::hint::black_box(&[blob.clone(), zero.clone()]),
                &mut clr,
            )
            .unwrap()
        })
    });
    group.bench_function("item1_clr_2us", |b| {
        b.iter(|| {
            reg.call(
                "FloatArray.Item_1",
                std::hint::black_box(&[blob.clone(), zero.clone()]),
                &mut clr,
            )
            .unwrap()
        })
    });

    // The counterfactual the paper asks SQL Server for: no hosting charge.
    let mut native = HostingModel::free();
    group.bench_function("empty_call_native", |b| {
        b.iter(|| {
            reg.call(
                "dbo.EmptyFunction",
                std::hint::black_box(&[blob.clone(), zero.clone()]),
                &mut native,
            )
            .unwrap()
        })
    });
    group.bench_function("item1_native", |b| {
        b.iter(|| {
            reg.call(
                "FloatArray.Item_1",
                std::hint::black_box(&[blob.clone(), zero.clone()]),
                &mut native,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_udf_overhead);
criterion_main!(benches);
