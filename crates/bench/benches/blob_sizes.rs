//! E4 — §2.1 blob-size ablation: interpolation queries against partitions
//! with different cube edges. Small, page-friendly blobs cut the bytes
//! fetched per query; the 6 MB production blobs are "obviously overkill"
//! for an 8³ stencil.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_storage::PageStore;
use sqlarray_turbulence::{FetchMode, PartitionSpec, Scheme, SyntheticField, TurbulenceDb};

fn bench_blob_sizes(c: &mut Criterion) {
    let field = SyntheticField::new(5, 6, 3);
    let grid_n = 64;
    let mut group = c.benchmark_group("blob_sizes");
    group.sample_size(10);

    for block in [8usize, 16, 32] {
        let mut store = PageStore::new();
        let spec = PartitionSpec::new(grid_n, block, 4);
        let db = TurbulenceDb::build(&mut store, &field, spec).unwrap();
        let positions: Vec<[f64; 3]> = (0..64)
            .map(|i| {
                let t = i as f64 * 0.37;
                [
                    (0.1 + t).rem_euclid(1.0),
                    (0.5 + 0.7 * t).rem_euclid(1.0),
                    (0.9 + 0.3 * t).rem_euclid(1.0),
                ]
            })
            .collect();
        for mode in [FetchMode::PartialRead, FetchMode::FullBlob] {
            let label = format!(
                "block{block}_{}",
                if mode == FetchMode::PartialRead {
                    "partial"
                } else {
                    "full"
                }
            );
            group.bench_function(&label, |b| {
                b.iter(|| {
                    store.clear_cache();
                    db.query_particles(&mut store, &positions, Scheme::Lagrange8, mode)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_blob_sizes);
criterion_main!(benches);
