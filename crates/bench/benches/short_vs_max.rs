//! E6 — §3.3 storage-class asymmetry: item access and subsetting on
//! in-page (short) vs out-of-page (max) arrays, and streamed partial reads
//! vs full-blob fetches for max-array subsetting.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_core::ops::subarray;
use sqlarray_core::prelude::*;
use sqlarray_storage::{blob, PageStore};

fn bench_short_vs_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("short_vs_max");

    // In-memory item access: short (950 doubles, fits a page) vs max
    // (64³ = 2 MB).
    let short = build::short_vector(&(0..950).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
    let max = SqlArray::from_fn(StorageClass::Max, &[64, 64, 64], |idx| {
        (idx[0] + idx[1] + idx[2]) as f64
    })
    .unwrap();
    group.bench_function("item_short_inmem", |b| {
        b.iter(|| short.item(std::hint::black_box(&[137])).unwrap())
    });
    group.bench_function("item_max_inmem", |b| {
        b.iter(|| max.item(std::hint::black_box(&[10, 20, 30])).unwrap())
    });

    // Subsetting through the page store: partial LOB reads vs full fetch.
    let mut store = PageStore::new();
    let id = blob::write_blob(&mut store, max.as_blob()).unwrap();
    group.bench_function("subarray_8cube_partial_lob", |b| {
        b.iter(|| {
            store.clear_cache();
            let stream = sqlarray_storage::BlobStream::open(&mut store, id).unwrap();
            let mut reader = ArrayReader::open(stream).unwrap();
            reader.subarray(&[10, 20, 30], &[8, 8, 8], false).unwrap()
        })
    });
    group.bench_function("subarray_8cube_full_lob", |b| {
        b.iter(|| {
            store.clear_cache();
            let stream = sqlarray_storage::BlobStream::open(&mut store, id).unwrap();
            let mut reader = ArrayReader::open(stream).unwrap();
            let full = reader.read_full().unwrap();
            subarray::subarray(&full, &[10, 20, 30], &[8, 8, 8], false).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_short_vs_max);
criterion_main!(benches);
