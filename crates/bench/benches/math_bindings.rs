//! E7 — §3.6/§5.3 in-server math: SVD and FFT over array blobs. Checks
//! the zero-copy column-major hand-off (marshal cost vs compute) and the
//! FFTW-style aligned-buffer copy of planned execution.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_core::{Complex64, SqlArray, StorageClass};
use sqlarray_engine::{fft_array, gesvd_array};
use sqlarray_fft::{Direction, Plan};

fn bench_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("math_bindings");
    group.sample_size(10);

    // SVD over array blobs, paper-style sizes.
    for n in [32usize, 64] {
        let m = SqlArray::from_fn(StorageClass::Max, &[n, n], |idx| {
            ((idx[0] * 31 + idx[1] * 17) % 13) as f64 - 6.0
        })
        .unwrap();
        group.bench_function(format!("gesvd_{n}x{n}"), |b| {
            b.iter(|| gesvd_array(std::hint::black_box(&m)).unwrap())
        });
    }

    // FFT through the array UDF path (includes blob decode + widen).
    for n in [1024usize, 4096] {
        let v = sqlarray_core::build::max_vector(
            &(0..n).map(|i| (i as f64 * 0.1).sin()).collect::<Vec<_>>(),
        )
        .unwrap();
        group.bench_function(format!("fft_array_{n}"), |b| {
            b.iter(|| fft_array(std::hint::black_box(&v)).unwrap())
        });
    }
    // Non-power-of-two (Bluestein path): the 100³ Fourier cube edge of
    // §2.3, as a 1-D case.
    let v100 = sqlarray_core::build::max_vector(
        &(0..1000)
            .map(|i| (i as f64 * 0.01).cos())
            .collect::<Vec<_>>(),
    )
    .unwrap();
    group.bench_function("fft_array_1000_bluestein", |b| {
        b.iter(|| fft_array(std::hint::black_box(&v100)).unwrap())
    });

    // Planned execution: in-place kernel vs the aligned-buffer round trip.
    let data: Vec<Complex64> = (0..4096)
        .map(|i| Complex64::new((i as f64 * 0.3).sin(), 0.0))
        .collect();
    let plan = Plan::new(4096, Direction::Forward);
    group.bench_function("fft_plan_inplace_4096", |b| {
        b.iter(|| {
            let mut d = data.clone();
            plan.execute_inplace(&mut d);
            d
        })
    });
    let mut plan_buf = Plan::new(4096, Direction::Forward);
    let mut out = vec![Complex64::ZERO; 4096];
    group.bench_function("fft_plan_aligned_copy_4096", |b| {
        b.iter(|| {
            plan_buf.execute(&data, &mut out);
            out[0]
        })
    });
    group.finish();
}

criterion_group!(benches, bench_math);
criterion_main!(benches);
