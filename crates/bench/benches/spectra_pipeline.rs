//! E8 — §2.2 spectrum pipeline: flux-conserving resampling, composite
//! stacking, PCA index construction, and kd-tree similarity queries.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlarray_spectra::{
    composite, linear_grid, resample, synth_spectrum, synth_survey, SpectralClass, SpectrumIndex,
    SynthParams,
};

fn bench_spectra(c: &mut Criterion) {
    let params = SynthParams {
        bins: 512,
        mask_prob: 0.01,
        ..SynthParams::default()
    };
    let survey = synth_survey(21, 64, &[0.05, 0.15, 0.25], &params);
    let grid = linear_grid(4200.0, 8800.0, 128);

    let mut group = c.benchmark_group("spectra_pipeline");
    group.sample_size(10);

    group.bench_function("resample_512_to_128", |b| {
        b.iter(|| resample(std::hint::black_box(&survey[0]), &grid).unwrap())
    });

    group.bench_function("composite_64_spectra", |b| {
        b.iter(|| composite(std::hint::black_box(&survey), &grid).unwrap())
    });

    group.bench_function("pca_index_build_64x128_k6", |b| {
        b.iter(|| {
            let items: Vec<(u64, _)> = survey
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, s)| (i as u64, s))
                .collect();
            SpectrumIndex::build(&items, &grid, 6).unwrap()
        })
    });

    let items: Vec<(u64, _)> = survey
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect();
    let index = SpectrumIndex::build(&items, &grid, 6).unwrap();
    let probe = synth_spectrum(999, SpectralClass::Emission, 0.15, &params);
    group.bench_function("similar_query_k5", |b| {
        b.iter(|| index.similar(std::hint::black_box(&probe), 5).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_spectra);
criterion_main!(benches);
