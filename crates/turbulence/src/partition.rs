//! Blob partitioning of the simulation grid.
//!
//! "The data is partitioned along a space filling curve (z-index) into
//! cubes of (64+8)³. The +8 means that each cube contains an extra 8 voxel
//! wide buffer so that particles on the edge of the original cube still
//! have their neighbors within 4 voxels in the same blob. Each blob is
//! about 6 MB and stored in a separate row." (§2.1)
//!
//! A blob is a rank-4 max array `[4, E, E, E]` (component-major,
//! column-major storage, `E = block + 2·ghost`) of `float32` — the
//! (vx, vy, vz, p) record per voxel. Ghost zones wrap periodically.

use crate::field::SyntheticField;
use sqlarray_core::{SqlArray, StorageClass};

/// Geometry of a partitioned grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Grid points per axis of the full simulation cube.
    pub grid_n: usize,
    /// Core cube edge (the paper's 64).
    pub block: usize,
    /// Ghost-zone width on *each* side (the paper's 4).
    pub ghost: usize,
}

impl PartitionSpec {
    /// Validates divisibility and returns the spec.
    pub fn new(grid_n: usize, block: usize, ghost: usize) -> PartitionSpec {
        assert!(block > 0 && grid_n % block == 0, "block must divide grid_n");
        assert!(
            ghost <= block,
            "ghost zones wider than the block are unsupported"
        );
        PartitionSpec {
            grid_n,
            block,
            ghost,
        }
    }

    /// The paper's production layout: (64+8)³ cubes.
    pub fn paper(grid_n: usize) -> PartitionSpec {
        PartitionSpec::new(grid_n, 64, 4)
    }

    /// Cubes per axis.
    pub fn cubes_per_axis(&self) -> usize {
        self.grid_n / self.block
    }

    /// Stored blob edge (`block + 2·ghost`).
    pub fn blob_edge(&self) -> usize {
        self.block + 2 * self.ghost
    }

    /// Blob payload size in bytes (4 components of `f32`).
    pub fn blob_bytes(&self) -> usize {
        4 * self.blob_edge().pow(3) * 4
    }

    /// Morton key of a cube.
    pub fn cube_key(&self, cube: [usize; 3]) -> i64 {
        sqlarray_storage::zorder::morton3_encode(cube[0] as u64, cube[1] as u64, cube[2] as u64)
            as i64
    }

    /// Which cube a grid point belongs to.
    pub fn cube_of_grid_point(&self, g: [usize; 3]) -> [usize; 3] {
        [g[0] / self.block, g[1] / self.block, g[2] / self.block]
    }
}

/// Samples the field over one cube (core + ghosts) into the blob array.
///
/// Axis order is `[component, x, y, z]`; with column-major storage the
/// four components of a voxel are adjacent, matching the "every point
/// contains the three components of the fluid velocity and the pressure"
/// record layout.
pub fn build_blob(field: &SyntheticField, spec: &PartitionSpec, cube: [usize; 3]) -> SqlArray {
    let e = spec.blob_edge();
    let n = spec.grid_n as isize;
    let ghost = spec.ghost as isize;
    let origin = [
        (cube[0] * spec.block) as isize - ghost,
        (cube[1] * spec.block) as isize - ghost,
        (cube[2] * spec.block) as isize - ghost,
    ];
    // Precompute per-voxel samples to avoid re-evaluating the field four
    // times per point.
    let mut samples = vec![[0.0f64; 4]; e * e * e];
    for z in 0..e {
        for y in 0..e {
            for x in 0..e {
                let gx = (origin[0] + x as isize).rem_euclid(n) as f64 / n as f64;
                let gy = (origin[1] + y as isize).rem_euclid(n) as f64 / n as f64;
                let gz = (origin[2] + z as isize).rem_euclid(n) as f64 / n as f64;
                samples[x + e * (y + e * z)] = field.sample([gx, gy, gz]);
            }
        }
    }
    SqlArray::from_fn(StorageClass::Max, &[4, e, e, e], |idx| {
        samples[idx[1] + e * (idx[2] + e * idx[3])][idx[0]] as f32
    })
    .expect("blob dimensions are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_geometry() {
        let spec = PartitionSpec::paper(128);
        assert_eq!(spec.cubes_per_axis(), 2);
        assert_eq!(spec.blob_edge(), 72);
        // (64+8)³ voxels × 4 components × 4 bytes ≈ 6 MB — the paper's
        // "each blob is about 6 MB".
        let mb = spec.blob_bytes() as f64 / (1024.0 * 1024.0);
        assert!((5.0..7.0).contains(&mb), "blob is {mb:.2} MB");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_grid_rejected() {
        let _ = PartitionSpec::new(100, 64, 4);
    }

    #[test]
    fn blob_core_matches_field() {
        let field = SyntheticField::new(2, 8, 2);
        let spec = PartitionSpec::new(32, 8, 2);
        let cube = [1, 2, 3];
        let blob = build_blob(&field, &spec, cube);
        assert_eq!(blob.dims(), &[4, 12, 12, 12]);
        // Spot-check core voxels against direct field evaluation.
        for (lx, ly, lz) in [(0usize, 0usize, 0usize), (3, 5, 7), (7, 7, 7)] {
            let g = [
                cube[0] * spec.block + lx,
                cube[1] * spec.block + ly,
                cube[2] * spec.block + lz,
            ];
            let pos = [
                g[0] as f64 / spec.grid_n as f64,
                g[1] as f64 / spec.grid_n as f64,
                g[2] as f64 / spec.grid_n as f64,
            ];
            let expect = field.sample(pos);
            for (c, &ec) in expect.iter().enumerate() {
                let stored = blob
                    .item(&[c, lx + spec.ghost, ly + spec.ghost, lz + spec.ghost])
                    .unwrap()
                    .as_f64()
                    .unwrap();
                assert!((stored - ec).abs() < 1e-6, "component {c} at {g:?}");
            }
        }
    }

    #[test]
    fn ghost_zones_wrap_periodically() {
        let field = SyntheticField::new(4, 8, 2);
        let spec = PartitionSpec::new(16, 8, 2);
        // Cube [0,0,0]: its low ghost cells sample grid coordinate N-1.
        let blob = build_blob(&field, &spec, [0, 0, 0]);
        let wrapped = field.sample([(spec.grid_n - 2) as f64 / spec.grid_n as f64, 0.0, 0.0]);
        let stored = blob
            .item(&[0, 0, spec.ghost, spec.ghost])
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((stored - wrapped[0]).abs() < 1e-6);
    }

    #[test]
    fn neighboring_blobs_agree_on_shared_voxels() {
        let field = SyntheticField::new(9, 8, 2);
        let spec = PartitionSpec::new(16, 8, 2);
        let left = build_blob(&field, &spec, [0, 0, 0]);
        let right = build_blob(&field, &spec, [1, 0, 0]);
        // Grid point x=8 is the right blob's first core voxel and lives in
        // the left blob's high ghost zone.
        let e = spec.ghost;
        for c in 0..4 {
            let from_right = right.item(&[c, e, e, e]).unwrap();
            let from_left = left.item(&[c, e + spec.block, e, e]).unwrap();
            assert_eq!(from_right, from_left);
        }
    }

    #[test]
    fn morton_keys_are_unique_per_cube() {
        let spec = PartitionSpec::new(32, 8, 2);
        let mut keys = std::collections::HashSet::new();
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    assert!(keys.insert(spec.cube_key([x, y, z])));
                }
            }
        }
        assert_eq!(keys.len(), 64);
    }
}
