//! The particle-query service: the web service of §2.1 in library form.
//!
//! Users "submit a set of about 10,000 particle positions and times and
//! then can retrieve the interpolated values of the velocity field at
//! those positions [...] the equivalent of placing small sensors into the
//! simulation instead of downloading all the data."
//!
//! Each query locates the owning blob via the Morton-keyed clustered
//! index, then fetches **only the interpolation stencil** through the LOB
//! stream ([`FetchMode::PartialRead`]) or — for the ablation of §2.1's
//! "accessing the whole blob (6 MB) for an 8-point 3D interpolation is
//! obviously overkill" — the entire blob ([`FetchMode::FullBlob`]).

use crate::field::SyntheticField;
use crate::interp::{self, Scheme};
use crate::partition::{build_blob, PartitionSpec};
use sqlarray_core::stream::ArrayReader;
use sqlarray_core::{ArrayError, Result, SqlArray};
use sqlarray_storage::{BlobStream, ColType, PageStore, RowValue, Schema, Table};

/// How blob data is brought in for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchMode {
    /// Stream only the stencil's byte ranges out of the LOB.
    PartialRead,
    /// Fetch the entire blob, then subset in memory.
    FullBlob,
}

/// The partitioned turbulence database.
pub struct TurbulenceDb {
    table: Table,
    spec: PartitionSpec,
}

impl TurbulenceDb {
    /// Builds the database: one row per cube, clustered on the Morton key.
    /// Cubes are inserted in key order so the blob chain lies sequentially
    /// on disk.
    pub fn build(
        store: &mut PageStore,
        field: &SyntheticField,
        spec: PartitionSpec,
    ) -> Result<TurbulenceDb> {
        let schema = Schema::new(&[("zindex", ColType::I64), ("v", ColType::Blob)]);
        let mut table = Table::create(store, "Tturbulence", schema).map_err(ArrayError::from)?;
        let c = spec.cubes_per_axis();
        let mut keys: Vec<(i64, [usize; 3])> = Vec::with_capacity(c * c * c);
        for x in 0..c {
            for y in 0..c {
                for z in 0..c {
                    keys.push((spec.cube_key([x, y, z]), [x, y, z]));
                }
            }
        }
        keys.sort_unstable_by_key(|&(k, _)| k);
        for (key, cube) in keys {
            let blob = build_blob(field, &spec, cube);
            table
                .insert(
                    store,
                    key,
                    &[RowValue::I64(key), RowValue::Bytes(blob.into_blob())],
                )
                .map_err(ArrayError::from)?;
        }
        Ok(TurbulenceDb { table, spec })
    }

    /// The underlying table (for storage accounting).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The partition geometry.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Interpolated velocity at one position of the periodic unit box.
    pub fn velocity_at(
        &self,
        store: &mut PageStore,
        pos: [f64; 3],
        scheme: Scheme,
        mode: FetchMode,
    ) -> Result<[f64; 3]> {
        let spec = &self.spec;
        if spec.ghost < scheme.ghost_needed() {
            return Err(ArrayError::Io(format!(
                "{scheme:?} needs ghost >= {}, partition has {}",
                scheme.ghost_needed(),
                spec.ghost
            )));
        }
        let n = spec.grid_n as f64;
        // Grid coordinates, wrapped into [0, N).
        let g = [
            (pos[0].rem_euclid(1.0)) * n,
            (pos[1].rem_euclid(1.0)) * n,
            (pos[2].rem_euclid(1.0)) * n,
        ];
        let base = [
            g[0].floor() as isize,
            g[1].floor() as isize,
            g[2].floor() as isize,
        ];
        let frac = [
            g[0] - base[0] as f64,
            g[1] - base[1] as f64,
            g[2] - base[2] as f64,
        ];
        let cube = spec.cube_of_grid_point([
            base[0] as usize % spec.grid_n,
            base[1] as usize % spec.grid_n,
            base[2] as usize % spec.grid_n,
        ]);
        let key = spec.cube_key(cube);

        // Stencil origin, in blob-local coordinates.
        let w = scheme.width();
        let (off, local) = match scheme {
            Scheme::Nearest => {
                let nearest = [
                    g[0].round() as isize,
                    g[1].round() as isize,
                    g[2].round() as isize,
                ];
                let local = local_coords(spec, cube, nearest);
                (0isize, local)
            }
            _ => {
                let off = scheme.start_offset();
                let origin = [base[0] + off, base[1] + off, base[2] + off];
                (off, local_coords(spec, cube, origin))
            }
        };

        // Fetch the stencil (velocity components only: axis-0 size 3).
        let row = self
            .table
            .get_col(store, key, 1)
            .map_err(ArrayError::from)?
            .ok_or_else(|| ArrayError::Io(format!("missing cube blob {key}")))?;
        let stencil: SqlArray = match row {
            RowValue::LobRef(id, _) => {
                let stream = BlobStream::open(store, id).map_err(ArrayError::from)?;
                let mut reader = ArrayReader::open(stream)?;
                match mode {
                    FetchMode::PartialRead => {
                        reader.subarray(&[0, local[0], local[1], local[2]], &[3, w, w, w], false)?
                    }
                    FetchMode::FullBlob => {
                        let full = reader.read_full()?;
                        sqlarray_core::ops::subarray::subarray(
                            &full,
                            &[0, local[0], local[1], local[2]],
                            &[3, w, w, w],
                            false,
                        )?
                    }
                }
            }
            RowValue::Bytes(b) => {
                let full = SqlArray::from_blob(b)?;
                sqlarray_core::ops::subarray::subarray(
                    &full,
                    &[0, local[0], local[1], local[2]],
                    &[3, w, w, w],
                    false,
                )?
            }
            other => {
                return Err(ArrayError::Io(format!(
                    "unexpected blob column value {other:?}"
                )))
            }
        };

        // Interpolate each component.
        let vals = stencil.to_vec::<f32>()?;
        let comp = |c: usize| -> Vec<f64> {
            // Stencil dims [3, w, w, w], column-major: component fastest.
            (0..w * w * w).map(|lin| vals[c + 3 * lin] as f64).collect()
        };
        let mut out = [0.0f64; 3];
        match scheme {
            Scheme::Nearest => {
                for (c, o) in out.iter_mut().enumerate() {
                    *o = vals[c] as f64;
                }
            }
            Scheme::Pchip => {
                for (c, o) in out.iter_mut().enumerate() {
                    *o = interp::pchip_3d(&comp(c), frac);
                }
            }
            _ => {
                let mut wx = vec![0.0; w];
                let mut wy = vec![0.0; w];
                let mut wz = vec![0.0; w];
                interp::lagrange_weights(off as f64, w, frac[0], &mut wx);
                interp::lagrange_weights(off as f64, w, frac[1], &mut wy);
                interp::lagrange_weights(off as f64, w, frac[2], &mut wz);
                for (c, o) in out.iter_mut().enumerate() {
                    *o = interp::tensor_apply(&comp(c), w, &wx, &wy, &wz);
                }
            }
        }
        Ok(out)
    }

    /// Batched particle query — the service's 10,000-particle request
    /// shape.
    pub fn query_particles(
        &self,
        store: &mut PageStore,
        positions: &[[f64; 3]],
        scheme: Scheme,
        mode: FetchMode,
    ) -> Result<Vec<[f64; 3]>> {
        positions
            .iter()
            .map(|&p| self.velocity_at(store, p, scheme, mode))
            .collect()
    }
}

/// Converts absolute grid coordinates into blob-local array coordinates
/// (offset by the ghost zone).
fn local_coords(spec: &PartitionSpec, cube: [usize; 3], origin: [isize; 3]) -> [usize; 3] {
    let mut local = [0usize; 3];
    for axis in 0..3 {
        let cube_origin = (cube[axis] * spec.block) as isize - spec.ghost as isize;
        let l = origin[axis] - cube_origin;
        debug_assert!(
            l >= 0 && (l as usize) < spec.blob_edge(),
            "stencil escapes the blob on axis {axis}: {l}"
        );
        local[axis] = l as usize;
    }
    local
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> (PageStore, TurbulenceDb, SyntheticField) {
        let mut store = PageStore::new();
        let field = SyntheticField::new(12, 12, 2);
        let spec = PartitionSpec::new(32, 8, 4);
        let db = TurbulenceDb::build(&mut store, &field, spec).unwrap();
        (store, db, field)
    }

    #[test]
    fn grid_point_queries_are_exact() {
        let (mut store, db, field) = small_db();
        // At exact grid points every scheme reproduces the stored value
        // (up to f32 storage rounding).
        for g in [[0usize, 0, 0], [5, 9, 17], [31, 31, 31], [8, 16, 24]] {
            let pos = [g[0] as f64 / 32.0, g[1] as f64 / 32.0, g[2] as f64 / 32.0];
            let truth = field.velocity(pos);
            for scheme in [
                Scheme::Nearest,
                Scheme::Lagrange4,
                Scheme::Lagrange6,
                Scheme::Lagrange8,
                Scheme::Pchip,
            ] {
                let v = db
                    .velocity_at(&mut store, pos, scheme, FetchMode::PartialRead)
                    .unwrap();
                for c in 0..3 {
                    assert!(
                        (v[c] - truth[c]).abs() < 1e-5,
                        "{scheme:?} at {g:?} component {c}: {} vs {}",
                        v[c],
                        truth[c]
                    );
                }
            }
        }
    }

    #[test]
    fn higher_order_is_more_accurate_off_grid() {
        let (mut store, db, field) = small_db();
        let positions: Vec<[f64; 3]> = (0..40)
            .map(|i| {
                let t = i as f64 * 0.023;
                [
                    (0.13 + 0.71 * t).rem_euclid(1.0),
                    (0.57 + 0.37 * t).rem_euclid(1.0),
                    (0.29 + 0.53 * t).rem_euclid(1.0),
                ]
            })
            .collect();
        let mut err = |scheme: Scheme| -> f64 {
            let mut total = 0.0;
            for &p in &positions {
                let v = db
                    .velocity_at(&mut store, p, scheme, FetchMode::PartialRead)
                    .unwrap();
                let t = field.velocity(p);
                total += (0..3).map(|c| (v[c] - t[c]).powi(2)).sum::<f64>();
            }
            (total / positions.len() as f64).sqrt()
        };
        let e_nearest = err(Scheme::Nearest);
        let e_l4 = err(Scheme::Lagrange4);
        let e_l8 = err(Scheme::Lagrange8);
        assert!(e_l4 < e_nearest, "L4 {e_l4} vs nearest {e_nearest}");
        assert!(e_l8 <= e_l4 * 1.05, "L8 {e_l8} vs L4 {e_l4}");
        assert!(e_l8 < 0.05, "absolute L8 error {e_l8}");
    }

    #[test]
    fn partial_and_full_fetch_agree() {
        let (mut store, db, _) = small_db();
        let pos = [0.333, 0.666, 0.111];
        let a = db
            .velocity_at(&mut store, pos, Scheme::Lagrange8, FetchMode::PartialRead)
            .unwrap();
        let b = db
            .velocity_at(&mut store, pos, Scheme::Lagrange8, FetchMode::FullBlob)
            .unwrap();
        for c in 0..3 {
            assert!((a[c] - b[c]).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_reads_move_far_fewer_bytes() {
        // Paper-scale blob: one (64+8)³ cube ≈ 6 MB. "Accessing the whole
        // blob (6 MB) for an 8-point 3D interpolation is obviously
        // overkill" (§2.1).
        let mut store = PageStore::new();
        let field = SyntheticField::new(3, 4, 2);
        let spec = PartitionSpec::paper(64);
        let db = TurbulenceDb::build(&mut store, &field, spec).unwrap();

        let pos = [0.4, 0.15, 0.85];
        store.clear_cache();
        store.reset_stats();
        let _ = db
            .velocity_at(&mut store, pos, Scheme::Lagrange8, FetchMode::PartialRead)
            .unwrap();
        let partial = store.stats().bytes_read();
        store.clear_cache();
        store.reset_stats();
        let _ = db
            .velocity_at(&mut store, pos, Scheme::Lagrange8, FetchMode::FullBlob)
            .unwrap();
        let full = store.stats().bytes_read();
        assert!(partial * 10 < full, "partial {partial} B vs full {full} B");
    }

    #[test]
    fn queries_near_cube_edges_use_ghosts() {
        let (mut store, db, field) = small_db();
        // Just inside a cube boundary: the 8-point stencil spans the ghost
        // zone.
        let pos = [8.02 / 32.0, 7.98 / 32.0, 0.01 / 32.0];
        let v = db
            .velocity_at(&mut store, pos, Scheme::Lagrange8, FetchMode::PartialRead)
            .unwrap();
        let t = field.velocity(pos);
        for c in 0..3 {
            assert!((v[c] - t[c]).abs() < 0.05, "component {c}");
        }
    }

    #[test]
    fn ghost_requirement_enforced() {
        let mut store = PageStore::new();
        let field = SyntheticField::new(1, 6, 2);
        // ghost = 2 is too thin for Lagrange8.
        let spec = PartitionSpec::new(16, 8, 2);
        let db = TurbulenceDb::build(&mut store, &field, spec).unwrap();
        let err = db.velocity_at(
            &mut store,
            [0.5, 0.5, 0.5],
            Scheme::Lagrange8,
            FetchMode::PartialRead,
        );
        assert!(err.is_err());
        // But Lagrange4 works.
        assert!(db
            .velocity_at(
                &mut store,
                [0.5, 0.5, 0.5],
                Scheme::Lagrange4,
                FetchMode::PartialRead
            )
            .is_ok());
    }

    #[test]
    fn batch_query_matches_single_queries() {
        let (mut store, db, _) = small_db();
        let ps = [[0.1, 0.2, 0.3], [0.7, 0.8, 0.9]];
        let batch = db
            .query_particles(&mut store, &ps, Scheme::Pchip, FetchMode::PartialRead)
            .unwrap();
        for (i, &p) in ps.iter().enumerate() {
            let single = db
                .velocity_at(&mut store, p, Scheme::Pchip, FetchMode::PartialRead)
                .unwrap();
            assert_eq!(batch[i], single);
        }
    }
}
