//! # sqlarray-turbulence
//!
//! The turbulence-database workload of Dobos et al. (EDBT 2011, §2.1):
//! a periodic, divergence-free synthetic velocity field ([`field`]) is
//! partitioned along a z-order curve into `(block + 2·ghost)³` blobs of
//! `(vx, vy, vz, p)` records ([`partition`]), stored as max-class array
//! blobs in a Morton-clustered table, and served through a particle-query
//! service ([`service`]) offering nearest, PCHIP and 4/6/8-point Lagrange
//! interpolation ([`interp`]) with either streamed-stencil or whole-blob
//! fetching — the I/O trade-off experiment E4 measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod interp;
pub mod partition;
pub mod service;

pub use field::SyntheticField;
pub use interp::Scheme;
pub use partition::{build_blob, PartitionSpec};
pub use service::{FetchMode, TurbulenceDb};
