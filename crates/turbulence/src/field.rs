//! Synthetic isotropic turbulence velocity fields.
//!
//! Stand-in for the JHU 1024³ forced-isotropic-turbulence simulation the
//! paper's database serves (§2.1). The field is a sum of random
//! divergence-free Fourier modes on the periodic unit box — not a
//! Navier–Stokes solution, but smooth, solenoidal, periodic, and
//! analytically evaluable anywhere, which is exactly what validating a
//! blob-partitioned interpolation service needs (the substitution argument
//! in DESIGN.md).

use sqlarray_core::rng::{Rng, SeedableRng, StdRng};

/// One Fourier mode: `u · sin(2π k·x + φ)` with `u ⊥ k` (so ∇·v = 0).
#[derive(Debug, Clone, Copy)]
struct Mode {
    k: [f64; 3],
    u: [f64; 3],
    phase: f64,
}

/// A periodic, divergence-free synthetic velocity field with a smooth
/// pressure field.
#[derive(Debug, Clone)]
pub struct SyntheticField {
    modes: Vec<Mode>,
    pressure_modes: Vec<Mode>, // u unused as a vector: u[0] is the amplitude
}

impl SyntheticField {
    /// Builds a field with `n_modes` velocity modes, wavenumbers up to
    /// `k_max`, deterministic in `seed`.
    pub fn new(seed: u64, n_modes: usize, k_max: u32) -> SyntheticField {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut modes = Vec::with_capacity(n_modes);
        while modes.len() < n_modes {
            let k = [
                rng.gen_range(-(k_max as i64)..=k_max as i64) as f64,
                rng.gen_range(-(k_max as i64)..=k_max as i64) as f64,
                rng.gen_range(-(k_max as i64)..=k_max as i64) as f64,
            ];
            let k2 = k[0] * k[0] + k[1] * k[1] + k[2] * k[2];
            if k2 == 0.0 {
                continue;
            }
            // Random direction, projected perpendicular to k, with a
            // Kolmogorov-flavoured amplitude ~ k^{-5/6} per component.
            let raw: [f64; 3] = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
            let dot = (raw[0] * k[0] + raw[1] * k[1] + raw[2] * k[2]) / k2;
            let mut u = [
                raw[0] - dot * k[0],
                raw[1] - dot * k[1],
                raw[2] - dot * k[2],
            ];
            let norm = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
            if norm < 1e-9 {
                continue;
            }
            let amp = k2.powf(-5.0 / 12.0); // |k|^{-5/6}
            for c in &mut u {
                *c *= amp / norm;
            }
            modes.push(Mode {
                k,
                u,
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
            });
        }
        let pressure_modes = (0..n_modes.max(4) / 2)
            .map(|_| {
                let k = [
                    rng.gen_range(-(k_max as i64)..=k_max as i64) as f64,
                    rng.gen_range(-(k_max as i64)..=k_max as i64) as f64,
                    rng.gen_range(-(k_max as i64)..=k_max as i64) as f64,
                ];
                Mode {
                    k,
                    u: [rng.gen_range(-0.5..0.5), 0.0, 0.0],
                    phase: rng.gen_range(0.0..std::f64::consts::TAU),
                }
            })
            .collect();
        SyntheticField {
            modes,
            pressure_modes,
        }
    }

    /// Velocity at a point of the periodic unit box.
    pub fn velocity(&self, pos: [f64; 3]) -> [f64; 3] {
        let mut v = [0.0f64; 3];
        for m in &self.modes {
            let arg = std::f64::consts::TAU * (m.k[0] * pos[0] + m.k[1] * pos[1] + m.k[2] * pos[2])
                + m.phase;
            let s = arg.sin();
            v[0] += m.u[0] * s;
            v[1] += m.u[1] * s;
            v[2] += m.u[2] * s;
        }
        v
    }

    /// Pressure at a point.
    pub fn pressure(&self, pos: [f64; 3]) -> f64 {
        self.pressure_modes
            .iter()
            .map(|m| {
                let arg = std::f64::consts::TAU
                    * (m.k[0] * pos[0] + m.k[1] * pos[1] + m.k[2] * pos[2])
                    + m.phase;
                m.u[0] * arg.sin()
            })
            .sum()
    }

    /// The four stored components `(vx, vy, vz, p)` — the per-point record
    /// of the turbulence database.
    pub fn sample(&self, pos: [f64; 3]) -> [f64; 4] {
        let v = self.velocity(pos);
        [v[0], v[1], v[2], self.pressure(pos)]
    }

    /// Numerical divergence at a point (central differences with step
    /// `h`) — a validation helper.
    pub fn divergence(&self, pos: [f64; 3], h: f64) -> f64 {
        let mut div = 0.0;
        for axis in 0..3 {
            let mut hi = pos;
            let mut lo = pos;
            hi[axis] += h;
            lo[axis] -= h;
            div += (self.velocity(hi)[axis] - self.velocity(lo)[axis]) / (2.0 * h);
        }
        div
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = SyntheticField::new(7, 16, 4);
        let b = SyntheticField::new(7, 16, 4);
        let c = SyntheticField::new(8, 16, 4);
        let p = [0.3, 0.6, 0.9];
        assert_eq!(a.velocity(p), b.velocity(p));
        assert_ne!(a.velocity(p), c.velocity(p));
    }

    #[test]
    fn field_is_periodic() {
        let f = SyntheticField::new(1, 12, 3);
        let p = [0.25, 0.5, 0.75];
        let q = [p[0] + 1.0, p[1] - 1.0, p[2] + 2.0];
        let vp = f.velocity(p);
        let vq = f.velocity(q);
        for (a, b) in vp.iter().zip(&vq) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((f.pressure(p) - f.pressure(q)).abs() < 1e-9);
    }

    #[test]
    fn field_is_divergence_free() {
        let f = SyntheticField::new(3, 24, 4);
        for p in [[0.1, 0.2, 0.3], [0.9, 0.05, 0.5], [0.42, 0.42, 0.42]] {
            let div = f.divergence(p, 1e-5);
            // Velocity magnitudes are O(1); the divergence must vanish to
            // finite-difference accuracy.
            assert!(div.abs() < 1e-5, "div = {div} at {p:?}");
        }
    }

    #[test]
    fn velocity_is_not_trivial() {
        let f = SyntheticField::new(5, 16, 4);
        let v = f.velocity([0.37, 0.11, 0.83]);
        assert!(v.iter().any(|c| c.abs() > 1e-3));
        let s = f.sample([0.2, 0.4, 0.6]);
        assert_eq!(&s[..3], &f.velocity([0.2, 0.4, 0.6])[..]);
    }

    #[test]
    fn field_is_smooth() {
        // Nearby points have nearby velocities (Lipschitz sanity bound).
        let f = SyntheticField::new(11, 16, 4);
        let p = [0.5, 0.5, 0.5];
        let q = [0.5 + 1e-4, 0.5, 0.5];
        let vp = f.velocity(p);
        let vq = f.velocity(q);
        for (a, b) in vp.iter().zip(&vq) {
            assert!((a - b).abs() < 0.05);
        }
    }
}
