//! Interpolation kernels: nearest point, Lagrange 4/6/8, and PCHIP.
//!
//! "The interpolation method provided by the service can be chosen from
//! nearest point, PCHIP, and 4-6-8 point Lagrangian interpolation schemes.
//! For the 8 point interpolation we need to convolve an 8³ neighborhood
//! with an 8³ interpolation kernel for each point." (§2.1)
//!
//! All 3-D schemes are tensor products of 1-D kernels, so an order-w
//! scheme needs exactly a w³ neighborhood — the subarray the service
//! fetches from the blob.

/// The interpolation scheme of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Snap to the nearest grid point (stencil width 1).
    Nearest,
    /// 4-point Lagrange polynomial per axis.
    Lagrange4,
    /// 6-point Lagrange polynomial per axis.
    Lagrange6,
    /// 8-point Lagrange polynomial per axis.
    Lagrange8,
    /// Piecewise cubic Hermite (Fritsch–Carlson monotone slopes), 4-point
    /// stencil.
    Pchip,
}

impl Scheme {
    /// Stencil width per axis.
    pub fn width(self) -> usize {
        match self {
            Scheme::Nearest => 1,
            Scheme::Lagrange4 | Scheme::Pchip => 4,
            Scheme::Lagrange6 => 6,
            Scheme::Lagrange8 => 8,
        }
    }

    /// Offset of the stencil's first node relative to `floor(x)`.
    pub fn start_offset(self) -> isize {
        match self {
            Scheme::Nearest => 0,
            Scheme::Lagrange4 | Scheme::Pchip => -1,
            Scheme::Lagrange6 => -2,
            Scheme::Lagrange8 => -3,
        }
    }

    /// Grid cells of support needed on each side of a sample — the minimum
    /// ghost-zone width a blob partition must carry for this scheme.
    pub fn ghost_needed(self) -> usize {
        match self {
            Scheme::Nearest => 1,
            Scheme::Lagrange4 | Scheme::Pchip => 2,
            Scheme::Lagrange6 => 3,
            Scheme::Lagrange8 => 4,
        }
    }
}

/// Lagrange basis weights for `w` consecutive integer nodes starting at
/// `start`, evaluated at `x` (grid units).
pub fn lagrange_weights(start: f64, w: usize, x: f64, out: &mut [f64]) {
    debug_assert_eq!(out.len(), w);
    for (i, o) in out.iter_mut().enumerate() {
        let ti = start + i as f64;
        let mut num = 1.0f64;
        let mut den = 1.0f64;
        for j in 0..w {
            if i == j {
                continue;
            }
            let tj = start + j as f64;
            num *= x - tj;
            den *= ti - tj;
        }
        *o = num / den;
    }
}

/// 1-D PCHIP evaluation on the 4-point stencil `f[0..4]` at nodes
/// `-1, 0, 1, 2`, for `t ∈ [0, 1]` between `f[1]` and `f[2]`.
///
/// Endpoint slopes use the Fritsch–Carlson harmonic-mean limiter, which
/// keeps the interpolant monotone on monotone data.
pub fn pchip_1d(f: &[f64], t: f64) -> f64 {
    debug_assert_eq!(f.len(), 4);
    let d0 = f[1] - f[0];
    let d1 = f[2] - f[1];
    let d2 = f[3] - f[2];
    let m1 = fc_slope(d0, d1);
    let m2 = fc_slope(d1, d2);
    // Cubic Hermite basis on [0, 1].
    let t2 = t * t;
    let t3 = t2 * t;
    let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    let h10 = t3 - 2.0 * t2 + t;
    let h01 = -2.0 * t3 + 3.0 * t2;
    let h11 = t3 - t2;
    h00 * f[1] + h10 * m1 + h01 * f[2] + h11 * m2
}

/// Fritsch–Carlson limited slope from the two adjacent secants.
fn fc_slope(d_prev: f64, d_next: f64) -> f64 {
    if d_prev * d_next <= 0.0 {
        0.0
    } else {
        2.0 * d_prev * d_next / (d_prev + d_next)
    }
}

/// Interpolates a w³ neighborhood with separable Lagrange weights.
/// `cube[i + w*(j + w*k)]` is the value at node `(i, j, k)`; `wx/wy/wz`
/// are the per-axis weights.
pub fn tensor_apply(cube: &[f64], w: usize, wx: &[f64], wy: &[f64], wz: &[f64]) -> f64 {
    debug_assert_eq!(cube.len(), w * w * w);
    let mut acc = 0.0f64;
    for (k, &wzk) in wz.iter().enumerate() {
        if wzk == 0.0 {
            continue;
        }
        for (j, &wyj) in wy.iter().enumerate() {
            let wyz = wyj * wzk;
            if wyz == 0.0 {
                continue;
            }
            let base = w * (j + w * k);
            let mut row = 0.0;
            for i in 0..w {
                row += wx[i] * cube[base + i];
            }
            acc += row * wyz;
        }
    }
    acc
}

/// Interpolates a 4³ neighborhood with PCHIP applied axis by axis
/// (x first, then y, then z), with fractional offsets `t = (tx, ty, tz)`.
pub fn pchip_3d(cube: &[f64], t: [f64; 3]) -> f64 {
    debug_assert_eq!(cube.len(), 64);
    let mut yz = [0.0f64; 16];
    for k in 0..4 {
        for j in 0..4 {
            let base = 4 * (j + 4 * k);
            yz[j + 4 * k] = pchip_1d(&cube[base..base + 4], t[0]);
        }
    }
    let mut z = [0.0f64; 4];
    for k in 0..4 {
        z[k] = pchip_1d(&yz[4 * k..4 * k + 4], t[1]);
    }
    pchip_1d(&z, t[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lagrange_weights_partition_unity() {
        let mut w = [0.0; 8];
        for &x in &[0.0, 0.3, 0.99, 3.5] {
            lagrange_weights(-3.0, 8, x, &mut w);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn lagrange_interpolates_nodes_exactly() {
        let mut w = [0.0; 4];
        lagrange_weights(-1.0, 4, 1.0, &mut w); // x at node index 2
        assert!((w[2] - 1.0).abs() < 1e-12);
        for (i, &wi) in w.iter().enumerate() {
            if i != 2 {
                assert!(wi.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lagrange_reproduces_polynomials() {
        // A degree-3 polynomial is exact under 4-point Lagrange.
        let f = |x: f64| 2.0 * x * x * x - x * x + 3.0 * x - 5.0;
        let nodes: Vec<f64> = (-1..3).map(|i| f(i as f64)).collect();
        let mut w = [0.0; 4];
        for &x in &[0.25, 0.5, 0.75] {
            lagrange_weights(-1.0, 4, x, &mut w);
            let got: f64 = w.iter().zip(&nodes).map(|(a, b)| a * b).sum();
            assert!((got - f(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn pchip_endpoints_and_monotonicity() {
        let f = [1.0, 2.0, 5.0, 6.0];
        assert!((pchip_1d(&f, 0.0) - 2.0).abs() < 1e-12);
        assert!((pchip_1d(&f, 1.0) - 5.0).abs() < 1e-12);
        // Monotone data → monotone interpolant (sampled check).
        let mut last = pchip_1d(&f, 0.0);
        for s in 1..=20 {
            let v = pchip_1d(&f, s as f64 / 20.0);
            assert!(v >= last - 1e-12);
            last = v;
        }
    }

    #[test]
    fn pchip_flat_at_local_extrema() {
        // A local max at node 1: slope must clamp to 0, no overshoot.
        let f = [0.0, 2.0, 1.0, 3.0];
        for s in 0..=20 {
            let v = pchip_1d(&f, s as f64 / 20.0);
            assert!((1.0 - 1e-12..=2.0 + 1e-12).contains(&v), "overshoot {v}");
        }
    }

    #[test]
    fn tensor_apply_is_separable() {
        // Cube f(i,j,k) = (i+1)(j+2)(k+3) factors; interpolation at the
        // node (1,1,1) recovers the product exactly.
        let w = 4;
        let cube: Vec<f64> = (0..64)
            .map(|lin| {
                let i = lin % 4;
                let j = (lin / 4) % 4;
                let k = lin / 16;
                ((i + 1) * (j + 2) * (k + 3)) as f64
            })
            .collect();
        let mut wx = [0.0; 4];
        let mut wy = [0.0; 4];
        let mut wz = [0.0; 4];
        lagrange_weights(0.0, w, 1.0, &mut wx);
        lagrange_weights(0.0, w, 1.0, &mut wy);
        lagrange_weights(0.0, w, 1.0, &mut wz);
        let v = tensor_apply(&cube, w, &wx, &wy, &wz);
        assert!((v - (2 * 3 * 4) as f64).abs() < 1e-10);
    }

    #[test]
    fn pchip_3d_reproduces_grid_values() {
        let cube: Vec<f64> = (0..64).map(|l| (l * 7 % 23) as f64).collect();
        // t = 0 lands on node (1,1,1) in each axis.
        let v = pchip_3d(&cube, [0.0, 0.0, 0.0]);
        let node = 1 + 4 * (1 + 4);
        assert!((v - cube[node]).abs() < 1e-12);
    }

    #[test]
    fn scheme_metadata_consistent() {
        for s in [
            Scheme::Nearest,
            Scheme::Lagrange4,
            Scheme::Lagrange6,
            Scheme::Lagrange8,
            Scheme::Pchip,
        ] {
            // The stencil [floor(x)+off, floor(x)+off+w) must cover
            // floor(x) and ceil(x) for every interior scheme.
            let off = s.start_offset();
            let w = s.width() as isize;
            if s != Scheme::Nearest {
                assert!(off <= 0 && off + w >= 2, "{s:?}");
                // The ghost zone must cover the stencil overhang on both
                // sides: `off` cells below, `off + w - 1` above.
                assert!(s.ghost_needed() as isize >= -off, "{s:?}");
                assert!(s.ghost_needed() as isize >= off + w - 1 - 1, "{s:?}");
            }
            // Paper: 8-point scheme with ±4-cell ghost zones.
            if s == Scheme::Lagrange8 {
                assert_eq!(s.ghost_needed(), 4);
            }
        }
    }
}
