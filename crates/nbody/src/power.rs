//! Matter power spectrum from a density grid.
//!
//! Fourier-transform the CIC overdensity field and bin `|δ(k)|²` in shells
//! of `|k|` (§2.3). Wavenumbers are in units of the fundamental mode
//! `2π/L` (integer lattice modes).

use crate::cic::DensityGrid;
use sqlarray_core::Complex64;
use sqlarray_fft::{fftn, Direction};

/// One shell of the binned power spectrum.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBin {
    /// Mean `|k|` of the contributing modes (fundamental-mode units).
    pub k: f64,
    /// Shell-averaged power `⟨|δ_k|²⟩ / N_cells`.
    pub power: f64,
    /// Number of modes in the shell.
    pub modes: usize,
}

/// Computes the shell-binned power spectrum of the overdensity field.
/// Bins are unit-width shells `[i, i+1)` in `|k|` up to the Nyquist mode
/// `n/2`.
pub fn power_spectrum(grid: &DensityGrid) -> Vec<PowerBin> {
    let n = grid.n();
    let delta = grid.overdensity();
    let mut field: Vec<Complex64> = delta.iter().map(|&d| Complex64::new(d, 0.0)).collect();
    fftn(&mut field, &[n, n, n], Direction::Forward);

    let nyquist = n / 2;
    let mut sum = vec![0.0f64; nyquist + 1];
    let mut ksum = vec![0.0f64; nyquist + 1];
    let mut count = vec![0usize; nyquist + 1];
    let total = (n * n * n) as f64;

    for iz in 0..n {
        for iy in 0..n {
            for ix in 0..n {
                if ix == 0 && iy == 0 && iz == 0 {
                    continue; // DC mode carries no fluctuation power
                }
                let kx = signed_mode(ix, n);
                let ky = signed_mode(iy, n);
                let kz = signed_mode(iz, n);
                let kmag = ((kx * kx + ky * ky + kz * kz) as f64).sqrt();
                let bin = kmag.floor() as usize;
                if bin > nyquist {
                    continue;
                }
                let amp = field[ix + n * (iy + n * iz)].norm_sqr() / total;
                sum[bin] += amp;
                ksum[bin] += kmag;
                count[bin] += 1;
            }
        }
    }

    (1..=nyquist)
        .filter(|&b| count[b] > 0)
        .map(|b| PowerBin {
            k: ksum[b] / count[b] as f64,
            power: sum[b] / count[b] as f64,
            modes: count[b],
        })
        .collect()
}

fn signed_mode(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::{Particle, SynthSim};

    #[test]
    fn uniform_lattice_has_no_power() {
        let n = 8;
        let mut parts = Vec::new();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    parts.push(Particle {
                        id: 0,
                        pos: [
                            (x as f64 + 0.5) / n as f64,
                            (y as f64 + 0.5) / n as f64,
                            (z as f64 + 0.5) / n as f64,
                        ],
                        vel: [0.0; 3],
                    });
                }
            }
        }
        let ps = power_spectrum(&DensityGrid::assign_cic(&parts, n));
        for bin in ps {
            assert!(bin.power < 1e-20, "k={} power={}", bin.k, bin.power);
        }
    }

    #[test]
    fn single_plane_wave_peaks_at_its_mode() {
        // Modulate a lattice by a k=2 plane wave along x and verify the
        // power concentrates in the |k|∈[2,3) shell.
        let n = 16;
        let mut parts = Vec::new();
        let per_site = 20;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let phase = 2.0 * std::f64::consts::TAU * (x as f64 + 0.5) / n as f64;
                    let weight = ((1.0 + 0.8 * phase.cos()) * per_site as f64).round() as usize;
                    for _ in 0..weight {
                        parts.push(Particle {
                            id: 0,
                            pos: [
                                (x as f64 + 0.5) / n as f64,
                                (y as f64 + 0.5) / n as f64,
                                (z as f64 + 0.5) / n as f64,
                            ],
                            vel: [0.0; 3],
                        });
                    }
                }
            }
        }
        let ps = power_spectrum(&DensityGrid::assign_cic(&parts, n));
        let peak = ps
            .iter()
            .max_by(|a, b| a.power.partial_cmp(&b.power).unwrap())
            .unwrap();
        assert!(
            (2.0..3.0).contains(&peak.k),
            "peak at k={} instead of 2",
            peak.k
        );
    }

    #[test]
    fn clustered_field_has_more_power_than_uniform_random() {
        let sim = SynthSim {
            halos: 10,
            halo_particles: 150,
            background: 0,
            halo_radius: 0.01,
            ..SynthSim::default()
        };
        let clustered = DensityGrid::assign_cic(&sim.snapshot(0).particles, 16);
        let uniform_sim = SynthSim {
            halos: 0,
            halo_particles: 0,
            background: 1500,
            ..SynthSim::default()
        };
        let uniform = DensityGrid::assign_cic(&uniform_sim.snapshot(0).particles, 16);
        let total = |ps: &[PowerBin]| ps.iter().map(|b| b.power * b.modes as f64).sum::<f64>();
        let pc = total(&power_spectrum(&clustered));
        let pu = total(&power_spectrum(&uniform));
        assert!(pc > 5.0 * pu, "clustered {pc} vs uniform {pu}");
    }

    #[test]
    fn bins_cover_up_to_nyquist() {
        let sim = SynthSim::default();
        let ps = power_spectrum(&DensityGrid::assign_cic(&sim.snapshot(0).particles, 16));
        assert!(!ps.is_empty());
        let kmax = ps.iter().map(|b| b.k).fold(0.0, f64::max);
        assert!(kmax <= (16.0f64 / 2.0) * 3.0f64.sqrt());
        // Shells are ordered and mode counts positive.
        for w in ps.windows(2) {
            assert!(w[0].k < w[1].k);
        }
        assert!(ps.iter().all(|b| b.modes > 0));
    }
}
