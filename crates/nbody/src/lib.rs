//! # sqlarray-nbody
//!
//! The cosmological N-body workload of Dobos et al. (EDBT 2011, §2.3):
//! synthetic halo-model snapshots with persistent particle ids
//! ([`particle`]), Morton-keyed bucketed octrees with cone queries and
//! weighted decimation ([`octree`]), friends-of-friends halo finding
//! ([`fof`]), merger-history linking by shared particle labels
//! ([`merger`]), cloud-in-cell density grids packed as array blobs
//! ([`cic`]), FFT power spectra ([`power`]), two-point correlation
//! functions with analytic periodic randoms ([`correlate`]), and
//! light-cone construction across look-back snapshots ([`lightcone`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cic;
pub mod correlate;
pub mod fof;
pub mod lightcone;
pub mod merger;
pub mod octree;
pub mod particle;
pub mod power;

pub use cic::DensityGrid;
pub use correlate::{two_point_correlation, XiBin};
pub use fof::{friends_of_friends, Halo};
pub use lightcone::{build_lightcone, LightconeEntry, LightconeSpec};
pub use merger::{link_catalogs, MergerLink, MergerTree};
pub use octree::{position_key, Octree, OctreeNode};
pub use particle::{periodic_distance, Particle, Snapshot, SynthSim};
pub use power::{power_spectrum, PowerBin};
