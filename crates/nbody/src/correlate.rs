//! Two-point correlation functions.
//!
//! "We need to be able to compute various statistical functions like two
//! and three point correlations over these point sets" (§2.3). The
//! estimator here is the natural one, `ξ(r) = DD(r)/RR(r) − 1`, with the
//! random-pair term computed analytically for a periodic box (shell volume
//! × mean density), so no random catalog is needed.

use crate::particle::{periodic_distance, Particle};

/// One radial bin of the correlation function.
#[derive(Debug, Clone, PartialEq)]
pub struct XiBin {
    /// Inner radius of the bin.
    pub r_lo: f64,
    /// Outer radius of the bin.
    pub r_hi: f64,
    /// Estimated ξ(r).
    pub xi: f64,
    /// Data–data pair count in the bin.
    pub pairs: u64,
}

/// Computes ξ(r) in linear bins of width `dr` up to `r_max` (box units,
/// `r_max < 0.5` so the minimum image is unique). Uses a cell grid so the
/// cost is O(N · neighbors) rather than O(N²) for small `r_max`.
pub fn two_point_correlation(particles: &[Particle], dr: f64, r_max: f64) -> Vec<XiBin> {
    assert!(dr > 0.0 && r_max > dr && r_max < 0.5);
    let n = particles.len();
    let bins = (r_max / dr).ceil() as usize;
    let mut dd = vec![0u64; bins];

    // Cell grid of edge >= r_max.
    let cells = ((1.0 / r_max).floor() as usize).clamp(1, 128);
    let cell_of = |pos: [f64; 3]| -> (usize, usize, usize) {
        let f = |v: f64| (((v.rem_euclid(1.0)) * cells as f64) as usize).min(cells - 1);
        (f(pos[0]), f(pos[1]), f(pos[2]))
    };
    let mut grid: std::collections::HashMap<(usize, usize, usize), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, p) in particles.iter().enumerate() {
        grid.entry(cell_of(p.pos)).or_default().push(i);
    }

    let mut tally = |i: usize, j: usize| {
        let d = periodic_distance(particles[i].pos, particles[j].pos);
        if d < r_max && d > 0.0 {
            dd[(d / dr) as usize] += 1;
        }
    };
    for (&(cx, cy, cz), members) in &grid {
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                tally(i, j);
            }
        }
        // Visit every distinct wrapped neighbor cell once (offsets can
        // alias when the grid is coarse, and wrapped pairs are not ordered
        // by their indices), then dedup particle pairs with `i < j`: each
        // unordered cross-cell pair is seen from both cells, and exactly
        // one side passes the ordering test.
        let mut seen = std::collections::HashSet::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let nb = (
                        (cx as i64 + dx).rem_euclid(cells as i64) as usize,
                        (cy as i64 + dy).rem_euclid(cells as i64) as usize,
                        (cz as i64 + dz).rem_euclid(cells as i64) as usize,
                    );
                    if nb == (cx, cy, cz) || !seen.insert(nb) {
                        continue;
                    }
                    if let Some(others) = grid.get(&nb) {
                        for &i in members {
                            for &j in others {
                                if i < j {
                                    tally(i, j);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Analytic RR for a periodic box: expected pairs in a shell =
    // N(N-1)/2 × shell volume (density of unordered pairs is uniform).
    let total_pairs = (n as f64) * (n as f64 - 1.0) / 2.0;
    (0..bins)
        .map(|b| {
            let r_lo = b as f64 * dr;
            let r_hi = (b as f64 + 1.0) * dr;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            let rr = total_pairs * shell;
            let xi = if rr > 0.0 {
                dd[b] as f64 / rr - 1.0
            } else {
                0.0
            };
            XiBin {
                r_lo,
                r_hi,
                xi,
                pairs: dd[b],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::SynthSim;

    #[test]
    fn uniform_field_has_near_zero_xi() {
        let sim = SynthSim {
            halos: 0,
            halo_particles: 0,
            background: 4000,
            ..SynthSim::default()
        };
        let parts = sim.snapshot(0).particles;
        let xi = two_point_correlation(&parts, 0.02, 0.2);
        // Skip the first bin (tiny shell, noisy); the rest must hover
        // around zero.
        for bin in &xi[1..] {
            assert!(
                bin.xi.abs() < 0.25,
                "xi({:.2}-{:.2}) = {}",
                bin.r_lo,
                bin.r_hi,
                bin.xi
            );
        }
    }

    #[test]
    fn clustered_field_has_strong_small_scale_xi() {
        let sim = SynthSim {
            halos: 12,
            halo_particles: 100,
            background: 400,
            halo_radius: 0.01,
            ..SynthSim::default()
        };
        let parts = sim.snapshot(0).particles;
        let xi = two_point_correlation(&parts, 0.01, 0.2);
        assert!(
            xi[0].xi > 10.0,
            "small-scale xi = {} should be strongly positive",
            xi[0].xi
        );
        // Clustering decays with separation.
        let large = &xi[xi.len() - 1];
        assert!(xi[0].xi > 10.0 * large.xi.max(0.1));
    }

    #[test]
    fn pair_counts_match_brute_force() {
        let sim = SynthSim {
            halos: 2,
            halo_particles: 40,
            background: 60,
            ..SynthSim::default()
        };
        let parts = sim.snapshot(0).particles;
        let dr = 0.05;
        let r_max = 0.25;
        let xi = two_point_correlation(&parts, dr, r_max);
        let mut brute = vec![0u64; xi.len()];
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                let d = periodic_distance(parts[i].pos, parts[j].pos);
                if d < r_max && d > 0.0 {
                    brute[(d / dr) as usize] += 1;
                }
            }
        }
        let got: Vec<u64> = xi.iter().map(|b| b.pairs).collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn bin_edges_tile_the_range() {
        let sim = SynthSim::default();
        let xi = two_point_correlation(&sim.snapshot(0).particles, 0.03, 0.2);
        for (i, b) in xi.iter().enumerate() {
            assert!((b.r_lo - i as f64 * 0.03).abs() < 1e-12);
            assert!((b.r_hi - b.r_lo - 0.03).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn r_max_must_stay_below_half_box() {
        let sim = SynthSim::default();
        let _ = two_point_correlation(&sim.snapshot(0).particles, 0.1, 0.6);
    }
}
