//! Particles, snapshots, and the synthetic simulation generator.
//!
//! Stand-in for the 500 × 320³-particle cosmological runs of §2.3: a halo
//! model places clustered particle groups plus a uniform background in a
//! periodic box, and "snapshots" evolve by drifting particles and growing
//! the halos, so consecutive snapshots share particle identities — which
//! is what merger-tree linking needs.

use sqlarray_core::rng::{Rng, SeedableRng, StdRng};

/// One simulation particle. The paper dumps "the ID, position and velocity
/// for each particle" (40 bytes per point per snapshot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Persistent particle identity across snapshots.
    pub id: i64,
    /// Position in the periodic unit box.
    pub pos: [f64; 3],
    /// Peculiar velocity.
    pub vel: [f64; 3],
}

/// One output time of a simulation.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot index (time step).
    pub step: u32,
    /// Particles, in id order.
    pub particles: Vec<Particle>,
}

/// Halo-model generator parameters.
#[derive(Debug, Clone)]
pub struct SynthSim {
    /// RNG seed.
    pub seed: u64,
    /// Number of halos.
    pub halos: usize,
    /// Particles per halo.
    pub halo_particles: usize,
    /// Gaussian radius of each halo.
    pub halo_radius: f64,
    /// Uniform background particles.
    pub background: usize,
    /// Velocity dispersion inside halos.
    pub sigma_v: f64,
}

impl Default for SynthSim {
    fn default() -> Self {
        SynthSim {
            seed: 42,
            halos: 12,
            halo_particles: 120,
            halo_radius: 0.015,
            background: 600,
            sigma_v: 0.002,
        }
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl SynthSim {
    /// Generates snapshot `step`. Halos drift along fixed velocities;
    /// particles keep their ids, so FOF groups at consecutive steps share
    /// members.
    pub fn snapshot(&self, step: u32) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dt = step as f64 * 0.01;
        let mut particles = Vec::with_capacity(self.halos * self.halo_particles + self.background);
        let mut next_id = 0i64;

        for _ in 0..self.halos {
            let center = [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()];
            let drift: [f64; 3] = [
                rng.gen_range(-0.02..0.02),
                rng.gen_range(-0.02..0.02),
                rng.gen_range(-0.02..0.02),
            ];
            // Halos contract slightly over time (structure growth).
            let radius = self.halo_radius * (1.0 - 0.3 * (dt * 10.0).min(1.0));
            for _ in 0..self.halo_particles {
                let offset = [
                    gauss(&mut rng) * radius,
                    gauss(&mut rng) * radius,
                    gauss(&mut rng) * radius,
                ];
                let vel = [
                    drift[0] + gauss(&mut rng) * self.sigma_v,
                    drift[1] + gauss(&mut rng) * self.sigma_v,
                    drift[2] + gauss(&mut rng) * self.sigma_v,
                ];
                let pos = [
                    (center[0] + drift[0] * dt + offset[0]).rem_euclid(1.0),
                    (center[1] + drift[1] * dt + offset[1]).rem_euclid(1.0),
                    (center[2] + drift[2] * dt + offset[2]).rem_euclid(1.0),
                ];
                particles.push(Particle {
                    id: next_id,
                    pos,
                    vel,
                });
                next_id += 1;
            }
        }
        for _ in 0..self.background {
            let vel = [
                gauss(&mut rng) * self.sigma_v,
                gauss(&mut rng) * self.sigma_v,
                gauss(&mut rng) * self.sigma_v,
            ];
            let pos = [
                (rng.gen::<f64>() + vel[0] * dt).rem_euclid(1.0),
                (rng.gen::<f64>() + vel[1] * dt).rem_euclid(1.0),
                (rng.gen::<f64>() + vel[2] * dt).rem_euclid(1.0),
            ];
            particles.push(Particle {
                id: next_id,
                pos,
                vel,
            });
            next_id += 1;
        }
        Snapshot { step, particles }
    }

    /// Total particles per snapshot.
    pub fn total_particles(&self) -> usize {
        self.halos * self.halo_particles + self.background
    }
}

/// Minimum-image distance in the periodic unit box.
pub fn periodic_distance(a: [f64; 3], b: [f64; 3]) -> f64 {
    let mut s = 0.0;
    for k in 0..3 {
        let mut d = (a[k] - b[k]).abs();
        if d > 0.5 {
            d = 1.0 - d;
        }
        s += d * d;
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_deterministic() {
        let sim = SynthSim::default();
        let a = sim.snapshot(3);
        let b = sim.snapshot(3);
        assert_eq!(a.particles, b.particles);
        assert_eq!(a.particles.len(), sim.total_particles());
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let sim = SynthSim::default();
        let s0 = sim.snapshot(0);
        let s1 = sim.snapshot(1);
        let ids0: Vec<i64> = s0.particles.iter().map(|p| p.id).collect();
        let ids1: Vec<i64> = s1.particles.iter().map(|p| p.id).collect();
        assert_eq!(ids0, ids1);
        let mut sorted = ids0.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids0.len());
    }

    #[test]
    fn positions_stay_in_the_box() {
        let sim = SynthSim::default();
        for step in [0u32, 5, 20] {
            for p in &sim.snapshot(step).particles {
                for c in p.pos {
                    assert!((0.0..1.0).contains(&c), "step {step}: {c}");
                }
            }
        }
    }

    #[test]
    fn halo_members_drift_together() {
        let sim = SynthSim::default();
        let s0 = sim.snapshot(0);
        let s5 = sim.snapshot(5);
        // Take two particles of halo 0 and check their displacement
        // vectors roughly agree (same drift).
        let d = |a: &Particle, b: &Particle| {
            let mut out = [0.0f64; 3];
            for (k, o) in out.iter_mut().enumerate() {
                let mut delta = b.pos[k] - a.pos[k];
                if delta > 0.5 {
                    delta -= 1.0;
                }
                if delta < -0.5 {
                    delta += 1.0;
                }
                *o = delta;
            }
            out
        };
        let m0 = d(&s0.particles[0], &s5.particles[0]);
        let m1 = d(&s0.particles[1], &s5.particles[1]);
        for k in 0..3 {
            assert!((m0[k] - m1[k]).abs() < 0.05, "axis {k}");
        }
    }

    #[test]
    fn periodic_distance_wraps() {
        let a = [0.02, 0.5, 0.5];
        let b = [0.98, 0.5, 0.5];
        assert!((periodic_distance(a, b) - 0.04).abs() < 1e-12);
        assert_eq!(periodic_distance(a, a), 0.0);
        // Maximum possible separation along one axis is 0.5.
        let c = [0.0, 0.0, 0.0];
        let d = [0.5, 0.0, 0.0];
        assert!((periodic_distance(c, d) - 0.5).abs() < 1e-12);
    }
}
