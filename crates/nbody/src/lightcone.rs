//! Light-cone construction.
//!
//! "We will need to build light-cones through the simulations where we
//! look at the cube from a distant viewpoint and follow light rays back
//! into the simulation [...] including the Doppler-shift of the galaxies
//! along the radial direction due to their velocities. Furthermore, as we
//! look farther, the simulation box needs to be taken from an earlier time
//! step since the light coming to us was emitted by those galaxies at a
//! much earlier epoch." (§2.3)
//!
//! The cone is sliced into radial shells; shell `s` draws its particles
//! from progressively earlier snapshots, and each entry carries the radial
//! Doppler factor.

use crate::octree::Octree;
use crate::particle::{Particle, SynthSim};

/// Observer geometry of a light cone.
#[derive(Debug, Clone, Copy)]
pub struct LightconeSpec {
    /// Observer (apex) position in the box.
    pub apex: [f64; 3],
    /// Unit viewing direction.
    pub dir: [f64; 3],
    /// Half-opening angle, radians.
    pub half_angle: f64,
    /// Radial width of one shell (box units).
    pub shell_width: f64,
}

/// One particle on the light cone.
#[derive(Debug, Clone, Copy)]
pub struct LightconeEntry {
    /// The particle, as seen at its emission epoch.
    pub particle: Particle,
    /// Comoving distance from the apex.
    pub distance: f64,
    /// Snapshot step the particle was drawn from.
    pub step: u32,
    /// Radial velocity (positive = receding): the Doppler shift along the
    /// line of sight.
    pub v_radial: f64,
}

/// Builds the light cone: shell `s` (distances `[s·w, (s+1)·w)`) is filled
/// from `snapshots[s]` — callers order the snapshot list from latest
/// (nearest shell) to earliest (farthest), mirroring look-back time.
pub fn build_lightcone(
    sim: &SynthSim,
    steps_near_to_far: &[u32],
    spec: &LightconeSpec,
) -> Vec<LightconeEntry> {
    let mut out = Vec::new();
    for (s, &step) in steps_near_to_far.iter().enumerate() {
        let r_lo = s as f64 * spec.shell_width;
        let r_hi = (s as f64 + 1.0) * spec.shell_width;
        let snap = sim.snapshot(step);
        let tree = Octree::build(snap.particles, 256);
        for p in tree.within_cone(spec.apex, spec.dir, spec.half_angle, r_hi) {
            let (r, unit) = radial(p.pos, spec.apex);
            if r < r_lo || r >= r_hi {
                continue;
            }
            let v_radial = p.vel[0] * unit[0] + p.vel[1] * unit[1] + p.vel[2] * unit[2];
            out.push(LightconeEntry {
                particle: *p,
                distance: r,
                step,
                v_radial,
            });
        }
    }
    out.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite"));
    out
}

/// Minimum-image radial distance and unit vector from the apex.
fn radial(pos: [f64; 3], apex: [f64; 3]) -> (f64, [f64; 3]) {
    let mut d = [0.0f64; 3];
    for k in 0..3 {
        let mut delta = pos[k] - apex[k];
        if delta > 0.5 {
            delta -= 1.0;
        }
        if delta < -0.5 {
            delta += 1.0;
        }
        d[k] = delta;
    }
    let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
    if r == 0.0 {
        (0.0, [0.0; 3])
    } else {
        (r, [d[0] / r, d[1] / r, d[2] / r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LightconeSpec {
        LightconeSpec {
            apex: [0.5, 0.5, 0.5],
            dir: [1.0, 0.0, 0.0],
            half_angle: 0.5,
            shell_width: 0.12,
        }
    }

    #[test]
    fn entries_sorted_and_within_cone() {
        let sim = SynthSim::default();
        let cone = build_lightcone(&sim, &[3, 2, 1, 0], &spec());
        assert!(!cone.is_empty());
        for w in cone.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        for e in &cone {
            let (r, unit) = radial(e.particle.pos, spec().apex);
            assert!((r - e.distance).abs() < 1e-12);
            let cos = unit[0]; // dir = +x
            assert!(cos >= 0.5f64.cos() - 1e-9);
        }
    }

    #[test]
    fn farther_shells_use_earlier_steps() {
        let sim = SynthSim::default();
        let s = spec();
        let cone = build_lightcone(&sim, &[3, 2, 1, 0], &s);
        for e in &cone {
            let shell = (e.distance / s.shell_width) as usize;
            let expected_step = [3u32, 2, 1, 0][shell];
            assert_eq!(e.step, expected_step, "distance {}", e.distance);
        }
        // The cone should reach beyond the first shell.
        assert!(cone.iter().any(|e| e.step != 3));
    }

    #[test]
    fn doppler_is_the_radial_velocity_projection() {
        let sim = SynthSim::default();
        let cone = build_lightcone(&sim, &[0], &spec());
        for e in cone.iter().take(20) {
            let (_, unit) = radial(e.particle.pos, spec().apex);
            let dot = e.particle.vel[0] * unit[0]
                + e.particle.vel[1] * unit[1]
                + e.particle.vel[2] * unit[2];
            assert!((dot - e.v_radial).abs() < 1e-12);
        }
    }

    #[test]
    fn narrow_cone_is_a_subset_of_wide_cone() {
        let sim = SynthSim {
            background: 5000,
            ..SynthSim::default()
        };
        let wide = build_lightcone(&sim, &[1, 0], &spec());
        let narrow_spec = LightconeSpec {
            half_angle: 0.2,
            ..spec()
        };
        let narrow = build_lightcone(&sim, &[1, 0], &narrow_spec);
        assert!(narrow.len() < wide.len());
        let wide_ids: std::collections::HashSet<(i64, u32)> =
            wide.iter().map(|e| (e.particle.id, e.step)).collect();
        for e in &narrow {
            assert!(wide_ids.contains(&(e.particle.id, e.step)));
        }
    }
}
