//! Cloud-in-cell (CIC) density assignment.
//!
//! "We will also need to compute the density over a 640³ grid,
//! interpolating over the particle positions, using a cloud-in-cell (CIC)
//! algorithm, then Fourier transform it and compute its power spectrum."
//! (§2.3)

use crate::particle::Particle;
use sqlarray_core::{SqlArray, StorageClass};

/// A periodic density grid (column-major `n³` doubles, mean-normalized
/// helpers included).
#[derive(Debug, Clone)]
pub struct DensityGrid {
    n: usize,
    cells: Vec<f64>,
}

impl DensityGrid {
    /// Assigns particles (unit mass each) onto an `n³` grid with CIC
    /// weights and periodic wrapping.
    pub fn assign_cic(particles: &[Particle], n: usize) -> DensityGrid {
        assert!(n >= 2);
        let mut cells = vec![0.0f64; n * n * n];
        let nf = n as f64;
        for p in particles {
            // Cell-centred convention: the particle at x contributes to
            // the two nearest cell centres per axis.
            let mut base = [0usize; 3];
            let mut frac = [0.0f64; 3];
            for k in 0..3 {
                let g = p.pos[k].rem_euclid(1.0) * nf - 0.5;
                let f = g.floor();
                base[k] = (f.rem_euclid(nf)) as usize % n;
                frac[k] = g - f;
            }
            for (dx, wx) in [(0usize, 1.0 - frac[0]), (1, frac[0])] {
                for (dy, wy) in [(0usize, 1.0 - frac[1]), (1, frac[1])] {
                    for (dz, wz) in [(0usize, 1.0 - frac[2]), (1, frac[2])] {
                        let ix = (base[0] + dx) % n;
                        let iy = (base[1] + dy) % n;
                        let iz = (base[2] + dz) % n;
                        cells[ix + n * (iy + n * iz)] += wx * wy * wz;
                    }
                }
            }
        }
        DensityGrid { n, cells }
    }

    /// Grid edge length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw cell masses, column-major.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Total assigned mass.
    pub fn total_mass(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Density contrast `δ = ρ/ρ̄ − 1` per cell.
    pub fn overdensity(&self) -> Vec<f64> {
        let mean = self.total_mass() / self.cells.len() as f64;
        if mean == 0.0 {
            return vec![0.0; self.cells.len()];
        }
        self.cells.iter().map(|c| c / mean - 1.0).collect()
    }

    /// Packs the grid into a rank-3 max array blob (`float64`), ready for
    /// the in-database FFT of §5.3.
    pub fn to_array(&self) -> SqlArray {
        SqlArray::from_vec(StorageClass::Max, &[self.n, self.n, self.n], &self.cells)
            .expect("grid dims are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particle_at(pos: [f64; 3]) -> Particle {
        Particle {
            id: 0,
            pos,
            vel: [0.0; 3],
        }
    }

    #[test]
    fn mass_is_conserved() {
        let sim = crate::particle::SynthSim::default();
        let snap = sim.snapshot(0);
        let g = DensityGrid::assign_cic(&snap.particles, 16);
        assert!((g.total_mass() - snap.particles.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn particle_at_cell_center_fills_one_cell() {
        // Cell centres sit at (i + 0.5)/n; a particle exactly there puts
        // all its mass in that cell.
        let n = 8;
        let pos = [2.5 / 8.0, 3.5 / 8.0, 4.5 / 8.0];
        let g = DensityGrid::assign_cic(&[particle_at(pos)], n);
        let idx = 2 + n * (3 + n * 4);
        assert!((g.cells()[idx] - 1.0).abs() < 1e-12);
        assert!((g.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn particle_between_centers_splits_mass() {
        // Exactly on a cell boundary along x: 50/50 split.
        let n = 8;
        let pos = [3.0 / 8.0, 2.5 / 8.0, 2.5 / 8.0];
        let g = DensityGrid::assign_cic(&[particle_at(pos)], n);
        let a = g.cells()[2 + n * (2 + n * 2)];
        let b = g.cells()[3 + n * (2 + n * 2)];
        assert!((a - 0.5).abs() < 1e-12, "a = {a}");
        assert!((b - 0.5).abs() < 1e-12, "b = {b}");
    }

    #[test]
    fn wrapping_across_the_box_edge() {
        let n = 8;
        // Very close to the origin corner: mass wraps to the far cells.
        let g = DensityGrid::assign_cic(&[particle_at([0.01, 0.01, 0.01])], n);
        assert!((g.total_mass() - 1.0).abs() < 1e-12);
        // The far corner cell (7,7,7) receives some share.
        assert!(g.cells()[7 + n * (7 + n * 7)] > 0.0);
    }

    #[test]
    fn uniform_lattice_gives_flat_density() {
        // One particle per cell centre → every cell holds exactly 1.
        let n = 4;
        let mut parts = Vec::new();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    parts.push(particle_at([
                        (x as f64 + 0.5) / n as f64,
                        (y as f64 + 0.5) / n as f64,
                        (z as f64 + 0.5) / n as f64,
                    ]));
                }
            }
        }
        let g = DensityGrid::assign_cic(&parts, n);
        for c in g.cells() {
            assert!((c - 1.0).abs() < 1e-9);
        }
        let delta = g.overdensity();
        assert!(delta.iter().all(|d| d.abs() < 1e-9));
    }

    #[test]
    fn overdensity_has_zero_mean() {
        let sim = crate::particle::SynthSim::default();
        let g = DensityGrid::assign_cic(&sim.snapshot(0).particles, 12);
        let delta = g.overdensity();
        let mean: f64 = delta.iter().sum::<f64>() / delta.len() as f64;
        assert!(mean.abs() < 1e-12);
        // Clustered input ⇒ real fluctuations.
        assert!(delta.iter().any(|d| d.abs() > 0.5));
    }

    #[test]
    fn to_array_round_trips() {
        let sim = crate::particle::SynthSim::default();
        let g = DensityGrid::assign_cic(&sim.snapshot(0).particles, 8);
        let a = g.to_array();
        assert_eq!(a.dims(), &[8, 8, 8]);
        assert_eq!(a.to_vec::<f64>().unwrap(), g.cells());
    }
}
