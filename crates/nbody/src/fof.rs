//! Friends-of-friends halo finding.
//!
//! "At each snapshot we need to compute the so-called halos, clusters of
//! particles identified by friends of friends (FOF) algorithms within a
//! certain distance." (§2.3) Implementation: hash particles into a grid of
//! cells no smaller than the linking length, union-find across the 27
//! neighboring cells with periodic wrapping.

use crate::particle::{periodic_distance, Particle};
use std::collections::HashMap;

/// One FOF halo: the member particle ids (sorted) and summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Halo {
    /// Member particle ids, ascending.
    pub members: Vec<i64>,
    /// Center of mass (periodic-aware).
    pub center: [f64; 3],
    /// Mean velocity.
    pub velocity: [f64; 3],
}

impl Halo {
    /// Number of member particles.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Runs FOF with linking length `b` (box units); groups smaller than
/// `min_members` are discarded. Returns halos sorted by descending size.
pub fn friends_of_friends(particles: &[Particle], b: f64, min_members: usize) -> Vec<Halo> {
    assert!(b > 0.0 && b < 0.5, "linking length must be in (0, 0.5)");
    let n = particles.len();
    if n == 0 {
        return Vec::new();
    }
    // Grid with cell edge >= b so friends are always in adjacent cells.
    let cells = ((1.0 / b).floor() as usize).clamp(1, 256);
    let cell_of = |pos: [f64; 3]| -> (usize, usize, usize) {
        let f = |v: f64| (((v.rem_euclid(1.0)) * cells as f64) as usize).min(cells - 1);
        (f(pos[0]), f(pos[1]), f(pos[2]))
    };
    let mut grid: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
    for (i, p) in particles.iter().enumerate() {
        grid.entry(cell_of(p.pos)).or_default().push(i);
    }

    let mut uf = UnionFind::new(n);
    for (&(cx, cy, cz), members) in &grid {
        // Pairs within the cell.
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                if periodic_distance(particles[i].pos, particles[j].pos) <= b {
                    uf.union(i, j);
                }
            }
        }
        // Pairs with half of the neighbor cells (each unordered cell pair
        // visited once).
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if (dx, dy, dz) <= (0, 0, 0) {
                        continue;
                    }
                    let nb = (
                        (cx as i64 + dx).rem_euclid(cells as i64) as usize,
                        (cy as i64 + dy).rem_euclid(cells as i64) as usize,
                        (cz as i64 + dz).rem_euclid(cells as i64) as usize,
                    );
                    if let Some(others) = grid.get(&nb) {
                        for &i in members {
                            for &j in others {
                                if periodic_distance(particles[i].pos, particles[j].pos) <= b {
                                    uf.union(i, j);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Collect groups.
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let root = uf.find(i);
        groups.entry(root).or_default().push(i);
    }
    let mut halos: Vec<Halo> = groups
        .into_values()
        .filter(|g| g.len() >= min_members)
        .map(|g| make_halo(particles, &g))
        .collect();
    halos.sort_by(|a, b| b.size().cmp(&a.size()).then(a.members.cmp(&b.members)));
    halos
}

/// Periodic-aware center of mass: average displacements relative to the
/// first member, then wrap.
fn make_halo(particles: &[Particle], idx: &[usize]) -> Halo {
    let anchor = particles[idx[0]].pos;
    let mut center = [0.0f64; 3];
    let mut velocity = [0.0f64; 3];
    for &i in idx {
        let p = &particles[i];
        for k in 0..3 {
            let mut d = p.pos[k] - anchor[k];
            if d > 0.5 {
                d -= 1.0;
            }
            if d < -0.5 {
                d += 1.0;
            }
            center[k] += d;
            velocity[k] += p.vel[k];
        }
    }
    let m = idx.len() as f64;
    for k in 0..3 {
        center[k] = (anchor[k] + center[k] / m).rem_euclid(1.0);
        velocity[k] /= m;
    }
    let mut members: Vec<i64> = idx.iter().map(|&i| particles[i].id).collect();
    members.sort_unstable();
    Halo {
        members,
        center,
        velocity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::SynthSim;

    fn p(id: i64, pos: [f64; 3]) -> Particle {
        Particle {
            id,
            pos,
            vel: [0.0; 3],
        }
    }

    #[test]
    fn two_clusters_are_separated() {
        let mut parts = Vec::new();
        for i in 0..5 {
            parts.push(p(i, [0.2 + i as f64 * 0.001, 0.2, 0.2]));
        }
        for i in 5..9 {
            parts.push(p(i, [0.8 + (i - 5) as f64 * 0.001, 0.8, 0.8]));
        }
        let halos = friends_of_friends(&parts, 0.01, 2);
        assert_eq!(halos.len(), 2);
        assert_eq!(halos[0].members, vec![0, 1, 2, 3, 4]);
        assert_eq!(halos[1].members, vec![5, 6, 7, 8]);
    }

    #[test]
    fn chain_percolates_into_one_group() {
        // A chain of particles each within b of the next: FOF links all.
        let parts: Vec<Particle> = (0..20)
            .map(|i| p(i, [0.1 + i as f64 * 0.009, 0.5, 0.5]))
            .collect();
        let halos = friends_of_friends(&parts, 0.01, 2);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].size(), 20);
    }

    #[test]
    fn linking_respects_periodic_wrap() {
        let parts = vec![p(0, [0.999, 0.5, 0.5]), p(1, [0.001, 0.5, 0.5])];
        let halos = friends_of_friends(&parts, 0.01, 2);
        assert_eq!(halos.len(), 1, "pair across the boundary must link");
        // Center of mass sits on the boundary, not at 0.5.
        let cx = halos[0].center[0];
        assert!(!(0.01..=0.99).contains(&cx), "center {cx}");
    }

    #[test]
    fn min_members_filters_field_particles() {
        let mut parts: Vec<Particle> = (0..10)
            .map(|i| p(i, [0.3 + i as f64 * 0.001, 0.3, 0.3]))
            .collect();
        parts.push(p(100, [0.9, 0.1, 0.5])); // isolated
        let halos = friends_of_friends(&parts, 0.01, 5);
        assert_eq!(halos.len(), 1);
        assert!(!halos[0].members.contains(&100));
    }

    #[test]
    fn finds_the_synthetic_halos() {
        let sim = SynthSim {
            halos: 6,
            halo_particles: 80,
            background: 200,
            halo_radius: 0.008,
            ..SynthSim::default()
        };
        let snap = sim.snapshot(0);
        let halos = friends_of_friends(&snap.particles, 0.02, 20);
        // The generator's halos are compact: FOF should recover roughly
        // that many groups of roughly that size.
        assert!(
            (4..=8).contains(&halos.len()),
            "found {} halos",
            halos.len()
        );
        assert!(halos[0].size() >= 60);
    }

    #[test]
    fn halos_sorted_by_size() {
        let mut parts = Vec::new();
        for i in 0..3 {
            parts.push(p(i, [0.1 + i as f64 * 0.001, 0.1, 0.1]));
        }
        for i in 10..16 {
            parts.push(p(i, [0.6 + (i - 10) as f64 * 0.001, 0.6, 0.6]));
        }
        let halos = friends_of_friends(&parts, 0.01, 2);
        assert_eq!(halos[0].size(), 6);
        assert_eq!(halos[1].size(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(friends_of_friends(&[], 0.01, 2).is_empty());
    }
}
