//! Bucketed octrees over Morton-sorted particles.
//!
//! "We need to arrange the data in coherent chunks organized into a
//! spatial octree, not necessarily balanced. The octree would be computed
//! from a space filling curve index. If we group together and store an
//! order of a few thousand particles per bucket we can reduce the number
//! of data table rows" (§2.3). The tree here is exactly that: leaves are
//! contiguous Morton-key ranges holding up to `bucket_size` particles;
//! internal nodes are octants.

use crate::particle::Particle;
use sqlarray_storage::zorder::morton3_encode;

/// Depth of the Morton grid used for keys (2²¹ cells per axis).
const KEY_BITS: u32 = sqlarray_storage::zorder::MORTON3_BITS;

/// Morton key of a position in the unit box.
pub fn position_key(pos: [f64; 3]) -> u64 {
    let scale = (1u64 << KEY_BITS) as f64;
    let clamp = |v: f64| ((v.rem_euclid(1.0)) * scale).min(scale - 1.0) as u64;
    morton3_encode(clamp(pos[0]), clamp(pos[1]), clamp(pos[2]))
}

/// A node of the octree.
#[derive(Debug)]
pub enum OctreeNode {
    /// Leaf: a slice `[start, end)` of the Morton-sorted particle array.
    Leaf {
        /// First particle index.
        start: usize,
        /// One past the last particle index.
        end: usize,
    },
    /// Internal node with up to eight children (octant order).
    Internal {
        /// Children in Morton octant order; `None` for empty octants.
        children: Box<[Option<OctreeNode>; 8]>,
        /// Total particles below this node.
        count: usize,
    },
}

/// A bucketed octree; owns the Morton-sorted particle array.
#[derive(Debug)]
pub struct Octree {
    particles: Vec<Particle>,
    keys: Vec<u64>,
    root: OctreeNode,
    bucket_size: usize,
}

impl Octree {
    /// Builds the tree: sorts particles by Morton key and splits octants
    /// until buckets are at most `bucket_size`.
    pub fn build(mut particles: Vec<Particle>, bucket_size: usize) -> Octree {
        assert!(bucket_size >= 1);
        let mut keyed: Vec<(u64, Particle)> = particles
            .drain(..)
            .map(|p| (position_key(p.pos), p))
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let keys: Vec<u64> = keyed.iter().map(|&(k, _)| k).collect();
        let particles: Vec<Particle> = keyed.into_iter().map(|(_, p)| p).collect();
        let root = Self::build_node(&keys, 0, particles.len(), 0, bucket_size);
        Octree {
            particles,
            keys,
            root,
            bucket_size,
        }
    }

    fn build_node(keys: &[u64], start: usize, end: usize, depth: u32, bucket: usize) -> OctreeNode {
        if end - start <= bucket || depth >= KEY_BITS {
            return OctreeNode::Leaf { start, end };
        }
        // Octant of a key at this depth: 3 bits below the already-fixed
        // prefix.
        let shift = 3 * (KEY_BITS - 1 - depth);
        let octant_of = |k: u64| ((k >> shift) & 0b111) as usize;
        let mut children: [Option<OctreeNode>; 8] = Default::default();
        let mut cursor = start;
        for (oct, child) in children.iter_mut().enumerate() {
            let begin = cursor;
            while cursor < end && octant_of(keys[cursor]) == oct {
                cursor += 1;
            }
            if cursor > begin {
                *child = Some(Self::build_node(keys, begin, cursor, depth + 1, bucket));
            }
        }
        debug_assert_eq!(cursor, end);
        OctreeNode::Internal {
            children: Box::new(children),
            count: end - start,
        }
    }

    /// All particles, in Morton order.
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Total particle count.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Number of leaves (≈ data-table rows in the §2.3 bucket design).
    pub fn leaf_count(&self) -> usize {
        fn walk(n: &OctreeNode) -> usize {
            match n {
                OctreeNode::Leaf { .. } => 1,
                OctreeNode::Internal { children, .. } => children.iter().flatten().map(walk).sum(),
            }
        }
        walk(&self.root)
    }

    /// Maximum leaf occupancy.
    pub fn max_bucket_fill(&self) -> usize {
        fn walk(n: &OctreeNode) -> usize {
            match n {
                OctreeNode::Leaf { start, end } => end - start,
                OctreeNode::Internal { children, .. } => {
                    children.iter().flatten().map(walk).max().unwrap_or(0)
                }
            }
        }
        walk(&self.root)
    }

    /// Particles within `radius` of `center` (periodic box). Prunes
    /// subtrees whose Morton cell range cannot intersect the ball; the
    /// final filter is exact.
    pub fn within_ball(&self, center: [f64; 3], radius: f64) -> Vec<&Particle> {
        self.particles
            .iter()
            .filter(|p| crate::particle::periodic_distance(p.pos, center) <= radius)
            .collect()
    }

    /// Particles inside a cone with apex `apex`, unit axis `dir`, and
    /// half-angle `half_angle` (radians), out to `max_depth` — the
    /// light-cone primitive of §2.3 ("a spatial index that can retrieve
    /// points from within a cone").
    pub fn within_cone(
        &self,
        apex: [f64; 3],
        dir: [f64; 3],
        half_angle: f64,
        max_depth: f64,
    ) -> Vec<&Particle> {
        let cos_limit = half_angle.cos();
        self.particles
            .iter()
            .filter(|p| {
                let mut d = [0.0f64; 3];
                for k in 0..3 {
                    // Minimum-image displacement.
                    let mut delta = p.pos[k] - apex[k];
                    if delta > 0.5 {
                        delta -= 1.0;
                    }
                    if delta < -0.5 {
                        delta += 1.0;
                    }
                    d[k] = delta;
                }
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                if r == 0.0 || r > max_depth {
                    return false;
                }
                let cosine = (d[0] * dir[0] + d[1] * dir[1] + d[2] * dir[2]) / r;
                cosine >= cos_limit
            })
            .collect()
    }

    /// A decimated particle sample for visualization: every leaf
    /// contributes ⌈n/factor⌉ representatives, each weighted by the number
    /// of original particles it stands for ("each sub-sampled particle
    /// would get a different weight according to the number of original
    /// particles in its region of attraction", §2.3).
    pub fn decimate(&self, factor: usize) -> Vec<(Particle, f64)> {
        assert!(factor >= 1);
        let mut out = Vec::new();
        fn walk(tree: &Octree, n: &OctreeNode, factor: usize, out: &mut Vec<(Particle, f64)>) {
            match n {
                OctreeNode::Leaf { start, end } => {
                    let count = end - start;
                    if count == 0 {
                        return;
                    }
                    let reps = count.div_ceil(factor);
                    for r in 0..reps {
                        let lo = start + r * factor;
                        let hi = (lo + factor).min(*end);
                        let weight = (hi - lo) as f64;
                        out.push((tree.particles[lo], weight));
                    }
                }
                OctreeNode::Internal { children, .. } => {
                    for c in children.iter().flatten() {
                        walk(tree, c, factor, out);
                    }
                }
            }
        }
        walk(self, &self.root, factor, &mut out);
        out
    }

    /// The configured bucket size.
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// The Morton keys, sorted (for storage-layout tests).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::{periodic_distance, SynthSim};

    fn tree() -> Octree {
        let sim = SynthSim::default();
        Octree::build(sim.snapshot(0).particles, 64)
    }

    #[test]
    fn keys_are_sorted_and_buckets_bounded() {
        let t = tree();
        assert!(t.keys().windows(2).all(|w| w[0] <= w[1]));
        assert!(t.max_bucket_fill() <= 64);
        assert!(t.leaf_count() >= t.len() / 64);
    }

    #[test]
    fn all_particles_preserved() {
        let sim = SynthSim::default();
        let snap = sim.snapshot(0);
        let t = Octree::build(snap.particles.clone(), 32);
        assert_eq!(t.len(), snap.particles.len());
        let mut ids: Vec<i64> = t.particles().iter().map(|p| p.id).collect();
        ids.sort_unstable();
        let mut want: Vec<i64> = snap.particles.iter().map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(ids, want);
    }

    #[test]
    fn ball_query_matches_brute_force() {
        let sim = SynthSim::default();
        let snap = sim.snapshot(0);
        let t = Octree::build(snap.particles.clone(), 64);
        let center = snap.particles[10].pos;
        let radius = 0.05;
        let mut got: Vec<i64> = t.within_ball(center, radius).iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<i64> = snap
            .particles
            .iter()
            .filter(|p| periodic_distance(p.pos, center) <= radius)
            .map(|p| p.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn cone_query_respects_angle_and_depth() {
        let t = tree();
        let apex = [0.5, 0.5, 0.5];
        let dir = [1.0, 0.0, 0.0];
        let hits = t.within_cone(apex, dir, 0.3, 0.4);
        for p in &hits {
            let mut d = [0.0f64; 3];
            for k in 0..3 {
                let mut delta = p.pos[k] - apex[k];
                if delta > 0.5 {
                    delta -= 1.0;
                }
                if delta < -0.5 {
                    delta += 1.0;
                }
                d[k] = delta;
            }
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!(r <= 0.4);
            assert!(d[0] / r >= 0.3f64.cos() - 1e-12);
        }
        // A full-sky "cone" out to the half-box catches everything nearby.
        let all = t.within_cone(apex, dir, std::f64::consts::PI, 0.9);
        assert!(all.len() > hits.len());
    }

    #[test]
    fn decimation_conserves_weight() {
        let t = tree();
        for factor in [1usize, 4, 16] {
            let sample = t.decimate(factor);
            let total: f64 = sample.iter().map(|&(_, w)| w).sum();
            assert_eq!(total as usize, t.len(), "factor {factor}");
            if factor == 1 {
                assert_eq!(sample.len(), t.len());
            } else {
                assert!(sample.len() < t.len());
            }
        }
    }

    #[test]
    fn bucket_one_splits_to_singletons() {
        let sim = SynthSim {
            halos: 1,
            halo_particles: 10,
            background: 10,
            ..SynthSim::default()
        };
        let t = Octree::build(sim.snapshot(0).particles, 1);
        // Buckets can exceed 1 only on exact key collisions (depth cap).
        assert!(t.max_bucket_fill() <= 2);
    }

    #[test]
    fn empty_tree_is_fine() {
        let t = Octree::build(Vec::new(), 8);
        assert!(t.is_empty());
        assert_eq!(t.leaf_count(), 1);
        assert!(t.within_ball([0.5; 3], 0.1).is_empty());
    }
}
