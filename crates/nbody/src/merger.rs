//! Merger-history linking.
//!
//! "These FOF halos need to be linked up between the different time steps
//! to determine the so called merger history. This can be best done by
//! comparing the particle labels in the halos at different time steps."
//! (§2.3)

use crate::fof::Halo;
use std::collections::HashMap;

/// A link between a halo at step `t` and one at step `t+1`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergerLink {
    /// Halo index in the earlier snapshot's halo list.
    pub from: usize,
    /// Halo index in the later snapshot's halo list.
    pub to: usize,
    /// Number of shared particle ids.
    pub shared: usize,
    /// Shared fraction of the progenitor's members.
    pub fraction: f64,
}

/// Links two halo catalogs by shared particle ids: each progenitor points
/// to the descendant holding the largest share of its members (above
/// `min_fraction`).
pub fn link_catalogs(earlier: &[Halo], later: &[Halo], min_fraction: f64) -> Vec<MergerLink> {
    // Map particle id -> descendant halo.
    let mut owner: HashMap<i64, usize> = HashMap::new();
    for (j, h) in later.iter().enumerate() {
        for &id in &h.members {
            owner.insert(id, j);
        }
    }
    let mut links = Vec::new();
    for (i, h) in earlier.iter().enumerate() {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &id in &h.members {
            if let Some(&j) = owner.get(&id) {
                *counts.entry(j).or_insert(0) += 1;
            }
        }
        if let Some((&j, &shared)) = counts.iter().max_by_key(|&(_, &c)| c) {
            let fraction = shared as f64 / h.size() as f64;
            if fraction >= min_fraction {
                links.push(MergerLink {
                    from: i,
                    to: j,
                    shared,
                    fraction,
                });
            }
        }
    }
    links
}

/// A merger tree across a sequence of snapshots' halo catalogs.
#[derive(Debug)]
pub struct MergerTree {
    /// `links[t]` connects catalog `t` to catalog `t+1`.
    pub links: Vec<Vec<MergerLink>>,
}

impl MergerTree {
    /// Builds the tree from consecutive catalogs.
    pub fn build(catalogs: &[Vec<Halo>], min_fraction: f64) -> MergerTree {
        let links = catalogs
            .windows(2)
            .map(|w| link_catalogs(&w[0], &w[1], min_fraction))
            .collect();
        MergerTree { links }
    }

    /// Follows a halo forward from `(step, halo_index)` as far as the
    /// links reach; returns the chain of halo indices including the start.
    pub fn descendants(&self, step: usize, halo: usize) -> Vec<usize> {
        let mut chain = vec![halo];
        let mut cur = halo;
        for t in step..self.links.len() {
            match self.links[t].iter().find(|l| l.from == cur) {
                Some(l) => {
                    chain.push(l.to);
                    cur = l.to;
                }
                None => break,
            }
        }
        chain
    }

    /// Progenitor count of each halo at `step + 1` (mergers have > 1).
    pub fn progenitor_counts(&self, step: usize) -> HashMap<usize, usize> {
        let mut counts = HashMap::new();
        for l in &self.links[step] {
            *counts.entry(l.to).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fof::friends_of_friends;
    use crate::particle::SynthSim;

    fn halo(ids: &[i64]) -> Halo {
        Halo {
            members: ids.to_vec(),
            center: [0.5; 3],
            velocity: [0.0; 3],
        }
    }

    #[test]
    fn identity_linking() {
        let a = vec![halo(&[1, 2, 3]), halo(&[10, 11, 12, 13])];
        let links = link_catalogs(&a, &a, 0.5);
        assert_eq!(links.len(), 2);
        assert!(links.iter().all(|l| l.from == l.to && l.fraction == 1.0));
    }

    #[test]
    fn merger_maps_two_progenitors_to_one_descendant() {
        let earlier = vec![halo(&[1, 2, 3]), halo(&[4, 5, 6])];
        let later = vec![halo(&[1, 2, 3, 4, 5, 6, 7])];
        let links = link_catalogs(&earlier, &later, 0.5);
        assert_eq!(links.len(), 2);
        assert!(links.iter().all(|l| l.to == 0));
        let tree = MergerTree { links: vec![links] };
        assert_eq!(tree.progenitor_counts(0)[&0], 2);
    }

    #[test]
    fn min_fraction_cuts_weak_links() {
        let earlier = vec![halo(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10])];
        let later = vec![halo(&[1, 2, 50, 51, 52])]; // only 20 % shared
        assert!(link_catalogs(&earlier, &later, 0.5).is_empty());
        assert_eq!(link_catalogs(&earlier, &later, 0.1).len(), 1);
    }

    #[test]
    fn descendant_chain_through_time() {
        let c0 = vec![halo(&[1, 2, 3, 4])];
        let c1 = vec![halo(&[90]), halo(&[1, 2, 3, 4, 5])];
        let c2 = vec![halo(&[1, 2, 3, 4, 5, 6])];
        let tree = MergerTree::build(&[c0, c1, c2], 0.5);
        assert_eq!(tree.descendants(0, 0), vec![0, 1, 0]);
    }

    #[test]
    fn synthetic_halos_link_across_snapshots() {
        let sim = SynthSim {
            halos: 5,
            halo_particles: 80,
            background: 150,
            halo_radius: 0.008,
            ..SynthSim::default()
        };
        let h0 = friends_of_friends(&sim.snapshot(0).particles, 0.02, 20);
        let h1 = friends_of_friends(&sim.snapshot(1).particles, 0.02, 20);
        let links = link_catalogs(&h0, &h1, 0.5);
        // The generator drifts halos coherently: almost every halo should
        // find its descendant with a high shared fraction.
        assert!(
            links.len() + 1 >= h0.len(),
            "{} links for {} halos",
            links.len(),
            h0.len()
        );
        assert!(links.iter().all(|l| l.fraction > 0.6));
    }
}
