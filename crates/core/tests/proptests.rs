//! Property-based tests for the array blob format and operations.

use proptest::prelude::*;
use sqlarray_core::ops::{cast, convert, reshape, subarray};
use sqlarray_core::prelude::*;

/// Strategy: a small shape (rank 1-4, dims 1-6) plus matching f64 data.
fn small_f64_array() -> impl Strategy<Value = (Vec<usize>, Vec<f64>)> {
    prop::collection::vec(1usize..=6, 1..=4).prop_flat_map(|dims| {
        let count: usize = dims.iter().product();
        (
            Just(dims),
            prop::collection::vec(-1e6f64..1e6, count..=count),
        )
    })
}

fn small_i32_array() -> impl Strategy<Value = (Vec<usize>, Vec<i32>)> {
    prop::collection::vec(1usize..=5, 1..=3).prop_flat_map(|dims| {
        let count: usize = dims.iter().product();
        (
            Just(dims),
            prop::collection::vec(any::<i32>(), count..=count),
        )
    })
}

proptest! {
    /// Encoding an array and decoding the blob yields the same array.
    #[test]
    fn blob_round_trip((dims, data) in small_f64_array()) {
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        let b = SqlArray::from_blob(a.as_blob().to_vec()).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(b.to_vec::<f64>().unwrap(), data);
    }

    /// Every element written is read back identically via multi-index.
    #[test]
    fn item_round_trip((dims, data) in small_i32_array()) {
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        for (lin, &v) in data.iter().enumerate() {
            let idx = a.shape().multi_index(lin);
            prop_assert_eq!(a.item(&idx).unwrap(), Scalar::I32(v));
        }
    }

    /// `Raw` followed by `Cast` reconstructs the array exactly.
    #[test]
    fn cast_raw_round_trip((dims, data) in small_f64_array()) {
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        let raw = cast::raw(&a);
        let b = cast::cast(&raw, a.class(), a.elem(), a.dims()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Reshape keeps the payload bytes untouched, in any factorization.
    #[test]
    fn reshape_preserves_payload((dims, data) in small_f64_array()) {
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        let flat = reshape::reshape(&a, &[a.count()]).unwrap();
        prop_assert_eq!(flat.payload(), a.payload());
        let back = reshape::reshape(&flat, &dims).unwrap();
        prop_assert_eq!(back, a);
    }

    /// A full-extent subarray is the identity; any subarray agrees with
    /// elementwise indexing.
    #[test]
    fn subarray_agrees_with_indexing(
        (dims, data) in small_f64_array(),
        seed in any::<u64>(),
    ) {
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        // Derive a deterministic in-bounds (offset, size) from the seed.
        let mut s = seed;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); s };
        let offset: Vec<usize> = dims.iter().map(|&d| (next() as usize) % d).collect();
        let size: Vec<usize> = dims
            .iter()
            .zip(&offset)
            .map(|(&d, &o)| 1 + (next() as usize) % (d - o))
            .collect();
        let sub = subarray::subarray(&a, &offset, &size, false).unwrap();
        prop_assert_eq!(sub.dims(), &size[..]);
        for lin in 0..sub.count() {
            let si = sub.shape().multi_index(lin);
            let ai: Vec<usize> = si.iter().zip(&offset).map(|(&i, &o)| i + o).collect();
            prop_assert_eq!(sub.item(&si).unwrap(), a.item(&ai).unwrap());
        }
    }

    /// Streamed subarray equals in-memory subarray and never reads more
    /// bytes than the whole blob.
    #[test]
    fn streamed_subarray_equivalence((dims, data) in small_f64_array()) {
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        let size: Vec<usize> = dims.iter().map(|&d| 1 + d / 2).collect();
        let offset: Vec<usize> = dims.iter().zip(&size).map(|(&d, &s)| (d - s) / 2).collect();
        let direct = subarray::subarray(&a, &offset, &size, false).unwrap();
        let mut reader = ArrayReader::open(a.as_blob()).unwrap();
        let streamed = reader.subarray(&offset, &size, false).unwrap();
        prop_assert_eq!(direct, streamed);
    }

    /// Type conversion int32 -> float64 -> int32 is lossless.
    #[test]
    fn int_float_conversion_round_trip((dims, data) in small_i32_array()) {
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        let f = convert::convert_type(&a, ElementType::Float64).unwrap();
        let back = convert::convert_type(&f, ElementType::Int32).unwrap();
        prop_assert_eq!(back.to_vec::<i32>().unwrap(), data);
    }

    /// Storage-class conversion short -> max -> short is the identity for
    /// arrays that fit in a page.
    #[test]
    fn class_conversion_round_trip(data in prop::collection::vec(-1e3f64..1e3, 1..64)) {
        let a = build::short_vector(&data).unwrap();
        let m = convert::convert_class(&a, StorageClass::Max).unwrap();
        let s = convert::convert_class(&m, StorageClass::Short).unwrap();
        prop_assert_eq!(a, s);
    }

    /// Text form round-trips for f64 vectors (display uses shortest-exact
    /// float formatting).
    #[test]
    fn string_round_trip(data in prop::collection::vec(-1e12f64..1e12, 1..20)) {
        let a = build::short_vector(&data).unwrap();
        let s = sqlarray_core::fmt::to_string(&a);
        let b: SqlArray = s.parse().unwrap();
        prop_assert_eq!(b.to_vec::<f64>().unwrap(), data);
    }

    /// Aggregates: sum of a concatenation equals the sum of the parts.
    #[test]
    fn sum_is_additive(
        left in prop::collection::vec(-1e6f64..1e6, 1..32),
        right in prop::collection::vec(-1e6f64..1e6, 1..32),
    ) {
        use sqlarray_core::ops::agg;
        let mut all = left.clone();
        all.extend_from_slice(&right);
        let la = build::short_vector(&left).unwrap();
        let ra = build::short_vector(&right).unwrap();
        let aa = build::short_vector(&all).unwrap();
        let ls = agg::sum(&la).unwrap().as_f64().unwrap();
        let rs = agg::sum(&ra).unwrap().as_f64().unwrap();
        let as_ = agg::sum(&aa).unwrap().as_f64().unwrap();
        prop_assert!((ls + rs - as_).abs() <= 1e-6 * (1.0 + as_.abs()));
    }

    /// Axis reduction: summing a matrix over axis 0 then summing the result
    /// equals the whole-array sum.
    #[test]
    fn axis_sum_consistent((dims, data) in small_f64_array()) {
        use sqlarray_core::ops::{agg, axis};
        let a = SqlArray::from_vec(StorageClass::Max, &dims, &data).unwrap();
        let mut reduced = a.clone();
        while reduced.rank() > 1 {
            reduced = axis::sum_axis(&reduced, 0).unwrap();
        }
        let total = agg::sum(&reduced).unwrap().as_f64().unwrap();
        let direct = agg::sum(&a).unwrap().as_f64().unwrap();
        prop_assert!((total - direct).abs() <= 1e-6 * (1.0 + direct.abs()));
    }

    /// Header probe length is always the actual header length.
    #[test]
    fn probe_matches_header((dims, data) in small_f64_array()) {
        for class in [StorageClass::Short, StorageClass::Max] {
            if class == StorageClass::Short && (dims.len() > 6 || data.len() * 8 + 24 > 8000) {
                continue;
            }
            let a = SqlArray::from_vec(class, &dims, &data).unwrap();
            let blob = a.as_blob();
            let probe = sqlarray_core::Header::probe_len(&blob[..8.min(blob.len())]).unwrap();
            prop_assert_eq!(probe, a.header().header_len());
        }
    }

    /// Corrupted headers never panic: decode either succeeds on equal bytes
    /// or returns an error.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = sqlarray_core::Header::decode(&bytes);
        let _ = SqlArray::from_blob(bytes);
    }
}
