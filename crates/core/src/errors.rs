//! Error type shared by all array operations.

use crate::element::ElementType;
use std::fmt;

/// Errors produced by constructing, decoding or manipulating array blobs.
///
/// The original library surfaced these as SQL errors raised from the CLR
/// functions; here they are a plain Rust error enum so that callers (the
/// query engine, the science crates, user code) can match on the cause.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields (`got`, `need`, ...) are self-describing
pub enum ArrayError {
    /// The buffer is smaller than the fixed part of the header.
    HeaderTooShort { got: usize, need: usize },
    /// The leading flag byte does not describe a known storage class/version.
    BadFlags(u8),
    /// The element-type code in the header is not one of the supported types.
    UnknownElementType(u8),
    /// The blob was passed to a function expecting a different element type.
    ///
    /// Mirrors the paper's runtime type-mismatch detection ("we can detect
    /// type mismatches at runtime when the blobs are passed to the wrong
    /// functions").
    TypeMismatch {
        expected: ElementType,
        got: ElementType,
    },
    /// The blob was passed to a function expecting the other storage class.
    StorageClassMismatch { expected_short: bool },
    /// Rank (number of dimensions) is invalid for the storage class.
    ///
    /// Short arrays support at most [`crate::header::SHORT_MAX_RANK`]
    /// dimensions; zero-dimensional arrays are rejected everywhere.
    BadRank { rank: usize, max: usize },
    /// A dimension size does not fit the index type of the storage class
    /// (`i16` for short arrays, `i32` for max arrays) or is zero.
    BadDimension { dim: usize, size: usize },
    /// The product of the dimensions does not match the element count stored
    /// in the header, or overflows.
    CountMismatch { dims_product: usize, count: usize },
    /// The payload length in bytes disagrees with `count * elem_size`.
    PayloadSizeMismatch { got: usize, need: usize },
    /// A short array would exceed the on-page byte budget (8000 bytes).
    ShortTooLarge { bytes: usize, limit: usize },
    /// An index tuple has the wrong arity for the array rank.
    IndexRankMismatch { got: usize, rank: usize },
    /// An index is out of bounds for its dimension.
    IndexOutOfBounds {
        axis: usize,
        index: usize,
        size: usize,
    },
    /// A subarray request (offset + size) exceeds the array bounds.
    SubarrayOutOfBounds {
        axis: usize,
        offset: usize,
        size: usize,
        dim: usize,
    },
    /// Reshape target has a different total element count.
    ///
    /// The paper's `Reshape` keeps the size fixed: "original and target
    /// sizes must not differ".
    ReshapeCountMismatch { from: usize, to: usize },
    /// Elementwise operation on arrays of different shapes.
    ShapeMismatch { left: Vec<usize>, right: Vec<usize> },
    /// A numeric conversion is not representable (e.g. complex → real with a
    /// non-zero imaginary part).
    BadConversion { from: ElementType, to: ElementType },
    /// Failure parsing an array from its string form.
    Parse(String),
    /// An aggregate that requires at least one element saw an empty array,
    /// or an axis argument was invalid.
    BadAxis { axis: usize, rank: usize },
    /// Underlying storage failed to deliver bytes (wraps the message of the
    /// storage-engine error to avoid a dependency cycle).
    Io(String),
    /// Raw payload handed to `Cast` has a length that is not a multiple of
    /// the element size.
    RawSizeNotAligned { len: usize, elem_size: usize },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::HeaderTooShort { got, need } => {
                write!(f, "array header too short: {got} bytes, need {need}")
            }
            ArrayError::BadFlags(b) => write!(f, "unrecognized array flag byte 0x{b:02x}"),
            ArrayError::UnknownElementType(c) => {
                write!(f, "unknown element type code 0x{c:02x}")
            }
            ArrayError::TypeMismatch { expected, got } => {
                write!(f, "element type mismatch: expected {expected}, got {got}")
            }
            ArrayError::StorageClassMismatch { expected_short } => {
                if *expected_short {
                    write!(f, "expected a short (in-page) array, got a max array")
                } else {
                    write!(f, "expected a max (out-of-page) array, got a short array")
                }
            }
            ArrayError::BadRank { rank, max } => {
                write!(f, "invalid rank {rank} (must be between 1 and {max})")
            }
            ArrayError::BadDimension { dim, size } => {
                write!(f, "dimension {dim} has invalid size {size}")
            }
            ArrayError::CountMismatch {
                dims_product,
                count,
            } => write!(
                f,
                "dimension product {dims_product} does not match element count {count}"
            ),
            ArrayError::PayloadSizeMismatch { got, need } => {
                write!(f, "payload is {got} bytes but {need} are required")
            }
            ArrayError::ShortTooLarge { bytes, limit } => write!(
                f,
                "short array needs {bytes} bytes, above the in-page limit of {limit}"
            ),
            ArrayError::IndexRankMismatch { got, rank } => {
                write!(
                    f,
                    "index has {got} components but the array has rank {rank}"
                )
            }
            ArrayError::IndexOutOfBounds { axis, index, size } => write!(
                f,
                "index {index} out of bounds for axis {axis} of size {size}"
            ),
            ArrayError::SubarrayOutOfBounds {
                axis,
                offset,
                size,
                dim,
            } => write!(
                f,
                "subarray [{offset}, {offset}+{size}) exceeds axis {axis} of size {dim}"
            ),
            ArrayError::ReshapeCountMismatch { from, to } => {
                write!(f, "reshape cannot change element count ({from} -> {to})")
            }
            ArrayError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            ArrayError::BadConversion { from, to } => {
                write!(f, "cannot convert {from} value to {to}")
            }
            ArrayError::Parse(msg) => write!(f, "array parse error: {msg}"),
            ArrayError::BadAxis { axis, rank } => {
                write!(f, "axis {axis} is invalid for rank {rank}")
            }
            ArrayError::Io(msg) => write!(f, "array I/O error: {msg}"),
            ArrayError::RawSizeNotAligned { len, elem_size } => write!(
                f,
                "raw payload of {len} bytes is not a multiple of the element size {elem_size}"
            ),
        }
    }
}

impl std::error::Error for ArrayError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ArrayError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArrayError::IndexOutOfBounds {
            axis: 2,
            index: 9,
            size: 4,
        };
        let s = e.to_string();
        assert!(s.contains("axis 2"));
        assert!(s.contains('9'));
        assert!(s.contains('4'));
    }

    #[test]
    fn type_mismatch_mentions_both_types() {
        let e = ArrayError::TypeMismatch {
            expected: ElementType::Float64,
            got: ElementType::Int32,
        };
        let s = e.to_string();
        assert!(s.contains("float"));
        assert!(s.contains("int"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ArrayError::BadFlags(3), ArrayError::BadFlags(3));
        assert_ne!(ArrayError::BadFlags(3), ArrayError::BadFlags(4));
    }
}
