//! Convenience constructors mirroring the T-SQL creation functions.
//!
//! The original library exposes `Vector_1 .. Vector_N` and `Matrix_N`
//! because T-SQL lacks variadic UDFs (§5.1). In Rust a slice covers all
//! arities, so [`vector`] replaces the whole numbered family; [`matrix`]
//! builds a 2-D array from row-major literal order (the natural order of a
//! T-SQL argument list), converting to the column-major storage layout.

use crate::array::SqlArray;
use crate::element::Element;
use crate::errors::Result;
use crate::header::StorageClass;

/// Creates a 1-D array (`Vector_N`).
pub fn vector<T: Element>(class: StorageClass, items: &[T]) -> Result<SqlArray> {
    SqlArray::from_vec(class, &[items.len()], items)
}

/// Creates a short-class vector; the most common case in the paper's
/// examples (`FloatArray.Vector_5(1.0, ..., 5.0)`).
pub fn short_vector<T: Element>(items: &[T]) -> Result<SqlArray> {
    vector(StorageClass::Short, items)
}

/// Creates a max-class vector.
pub fn max_vector<T: Element>(items: &[T]) -> Result<SqlArray> {
    vector(StorageClass::Max, items)
}

/// Creates an `rows × cols` matrix from items listed in *row-major* order
/// (the order a T-SQL caller writes them: `Matrix_2(0.1, 0.2, 0.3, 0.4)` is
/// the matrix [[0.1, 0.2], [0.3, 0.4]]). Storage is column-major.
pub fn matrix<T: Element>(
    class: StorageClass,
    rows: usize,
    cols: usize,
    row_major_items: &[T],
) -> Result<SqlArray> {
    use crate::errors::ArrayError;
    if rows * cols != row_major_items.len() {
        return Err(ArrayError::CountMismatch {
            dims_product: rows * cols,
            count: row_major_items.len(),
        });
    }
    SqlArray::from_fn(class, &[rows, cols], |idx| {
        row_major_items[idx[0] * cols + idx[1]]
    })
}

/// Creates a square matrix with `diag` on the diagonal and zeros elsewhere.
pub fn diagonal<T: Element>(class: StorageClass, diag: &[T]) -> Result<SqlArray> {
    let n = diag.len();
    SqlArray::from_fn(class, &[n, n], |idx| {
        if idx[0] == idx[1] {
            diag[idx[0]]
        } else {
            T::default()
        }
    })
}

/// Creates the `n × n` identity matrix.
pub fn identity(class: StorageClass, n: usize) -> Result<SqlArray> {
    diagonal(class, &vec![1.0f64; n])
}

/// Creates a vector of `n` evenly spaced doubles from `start` to `stop`
/// inclusive (wavelength grids, parameter sweeps).
pub fn linspace(class: StorageClass, start: f64, stop: f64, n: usize) -> Result<SqlArray> {
    let data: Vec<f64> = if n == 1 {
        vec![start]
    } else {
        (0..n)
            .map(|i| start + (stop - start) * i as f64 / (n - 1) as f64)
            .collect()
    };
    vector(class, &data)
}

/// Creates an integer range vector `[start, start+1, ..)` of length `n`.
pub fn range_i64(class: StorageClass, start: i64, n: usize) -> Result<SqlArray> {
    let data: Vec<i64> = (0..n as i64).map(|i| start + i).collect();
    vector(class, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn vector_matches_paper_example() {
        // FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0); Item_1(@a, 3) = 4.0
        // (zero indexed "third" element in the paper's wording).
        let a = short_vector(&[1.0f64, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a.item(&[3]).unwrap(), Scalar::F64(4.0));
        assert_eq!(a.dims(), &[5]);
    }

    #[test]
    fn matrix_matches_paper_example() {
        // FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4) builds a 2x2 from the
        // listed elements; Item_2(@m, 1, 0) is row 1, column 0 = 0.3.
        let m = matrix(StorageClass::Short, 2, 2, &[0.1f64, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(m.item(&[1, 0]).unwrap(), Scalar::F64(0.3));
        assert_eq!(m.item(&[0, 1]).unwrap(), Scalar::F64(0.2));
        // Storage itself is column-major: 0.1, 0.3, 0.2, 0.4.
        assert_eq!(m.to_vec::<f64>().unwrap(), vec![0.1, 0.3, 0.2, 0.4]);
    }

    #[test]
    fn matrix_rejects_wrong_item_count() {
        assert!(matrix(StorageClass::Short, 2, 2, &[1.0f64]).is_err());
    }

    #[test]
    fn identity_and_diagonal() {
        let i3 = identity(StorageClass::Short, 3).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert_eq!(i3.item(&[r, c]).unwrap(), Scalar::F64(expect));
            }
        }
        let d = diagonal(StorageClass::Short, &[2i32, 5]).unwrap();
        assert_eq!(d.item(&[1, 1]).unwrap(), Scalar::I32(5));
        assert_eq!(d.item(&[1, 0]).unwrap(), Scalar::I32(0));
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let a = linspace(StorageClass::Short, 0.0, 1.0, 5).unwrap();
        let v = a.to_vec::<f64>().unwrap();
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let single = linspace(StorageClass::Short, 3.0, 9.0, 1).unwrap();
        assert_eq!(single.to_vec::<f64>().unwrap(), vec![3.0]);
    }

    #[test]
    fn range_vector() {
        let r = range_i64(StorageClass::Short, 100, 3).unwrap();
        assert_eq!(r.to_vec::<i64>().unwrap(), vec![100, 101, 102]);
    }
}
