//! Element (base) types supported by the array library.
//!
//! The paper supports the signed integers `Int8..Int64`, `float`, `double`
//! and single/double complex (§3.4); fixed-precision decimals are
//! deliberately excluded because the target is scientific data. Elements are
//! stored little-endian, which is also the representation the original
//! library shares with LAPACK/FFTW buffers so that math libraries can be
//! called by reference without re-marshaling (§3.6).

use crate::complex::{Complex32, Complex64};
use crate::errors::{ArrayError, Result};
use std::fmt;

/// The base data type of an array, as encoded in the blob header.
///
/// The `u8` discriminants are the on-disk type codes; they are stable and
/// must never be renumbered (blobs written with one build must be readable
/// by another).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ElementType {
    /// `tinyint`-like signed 8-bit integer (the paper stores flag vectors
    /// as 8-bit integers).
    Int8 = 1,
    /// `smallint`: signed 16-bit integer.
    Int16 = 2,
    /// `int`: signed 32-bit integer.
    Int32 = 3,
    /// `bigint`: signed 64-bit integer.
    Int64 = 4,
    /// `real`: IEEE-754 single precision.
    Float32 = 5,
    /// `float`: IEEE-754 double precision.
    Float64 = 6,
    /// Single-precision complex.
    Complex32 = 7,
    /// Double-precision complex.
    Complex64 = 8,
}

impl ElementType {
    /// All supported element types, in type-code order.
    pub const ALL: [ElementType; 8] = [
        ElementType::Int8,
        ElementType::Int16,
        ElementType::Int32,
        ElementType::Int64,
        ElementType::Float32,
        ElementType::Float64,
        ElementType::Complex32,
        ElementType::Complex64,
    ];

    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            ElementType::Int8 => 1,
            ElementType::Int16 => 2,
            ElementType::Int32 => 4,
            ElementType::Int64 => 8,
            ElementType::Float32 => 4,
            ElementType::Float64 => 8,
            ElementType::Complex32 => 8,
            ElementType::Complex64 => 16,
        }
    }

    /// The on-disk type code.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a type code from a header.
    pub fn from_code(code: u8) -> Result<Self> {
        Ok(match code {
            1 => ElementType::Int8,
            2 => ElementType::Int16,
            3 => ElementType::Int32,
            4 => ElementType::Int64,
            5 => ElementType::Float32,
            6 => ElementType::Float64,
            7 => ElementType::Complex32,
            8 => ElementType::Complex64,
            other => return Err(ArrayError::UnknownElementType(other)),
        })
    }

    /// True for the integer family.
    #[inline]
    pub const fn is_integer(self) -> bool {
        matches!(
            self,
            ElementType::Int8 | ElementType::Int16 | ElementType::Int32 | ElementType::Int64
        )
    }

    /// True for `real`/`float`.
    #[inline]
    pub const fn is_float(self) -> bool {
        matches!(self, ElementType::Float32 | ElementType::Float64)
    }

    /// True for the complex family.
    #[inline]
    pub const fn is_complex(self) -> bool {
        matches!(self, ElementType::Complex32 | ElementType::Complex64)
    }

    /// The T-SQL schema-name stem the original library used for this type
    /// (`FloatArray`, `IntArray`, ...; the max-class schema appends `Max`).
    pub const fn schema_stem(self) -> &'static str {
        match self {
            ElementType::Int8 => "TinyIntArray",
            ElementType::Int16 => "SmallIntArray",
            ElementType::Int32 => "IntArray",
            ElementType::Int64 => "BigIntArray",
            ElementType::Float32 => "RealArray",
            ElementType::Float64 => "FloatArray",
            ElementType::Complex32 => "ComplexRealArray",
            ElementType::Complex64 => "ComplexArray",
        }
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ElementType::Int8 => "int8",
            ElementType::Int16 => "int16",
            ElementType::Int32 => "int32",
            ElementType::Int64 => "int64",
            ElementType::Float32 => "float32",
            ElementType::Float64 => "float64",
            ElementType::Complex32 => "complex32",
            ElementType::Complex64 => "complex64",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for ElementType {
    type Err = ArrayError;

    fn from_str(s: &str) -> Result<Self> {
        Ok(match s {
            "int8" | "tinyint" => ElementType::Int8,
            "int16" | "smallint" => ElementType::Int16,
            "int32" | "int" => ElementType::Int32,
            "int64" | "bigint" => ElementType::Int64,
            "float32" | "real" => ElementType::Float32,
            "float64" | "float" | "double" => ElementType::Float64,
            "complex32" => ElementType::Complex32,
            "complex64" | "complex" => ElementType::Complex64,
            other => return Err(ArrayError::Parse(format!("unknown element type `{other}`"))),
        })
    }
}

/// A Rust scalar type that can live inside an array blob.
///
/// Implementations provide fixed-width little-endian serialization. The
/// trait is sealed in spirit: the set of implementors is exactly the eight
/// SQL base types.
pub trait Element: Copy + PartialEq + Default + fmt::Debug + Send + Sync + 'static {
    /// The dynamic tag corresponding to `Self`.
    const TYPE: ElementType;
    /// `size_of::<Self>()` as stored on disk.
    const SIZE: usize;

    /// Serializes into exactly `Self::SIZE` bytes.
    fn write_le(self, out: &mut [u8]);
    /// Deserializes from exactly `Self::SIZE` bytes.
    fn read_le(buf: &[u8]) -> Self;
    /// Wraps into the dynamic [`Scalar`](crate::scalar::Scalar)-compatible
    /// f64 view used by real-valued aggregates; complex types return their
    /// real part only when the imaginary part is zero.
    fn to_f64_checked(self) -> Option<f64>;
    /// Builds `Self` from an `f64`, truncating toward zero for integers.
    fn from_f64(v: f64) -> Self;
}

macro_rules! int_element {
    ($t:ty, $tag:expr) => {
        impl Element for $t {
            const TYPE: ElementType = $tag;
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_le(buf: &[u8]) -> Self {
                let mut b = [0u8; Self::SIZE];
                b.copy_from_slice(&buf[..Self::SIZE]);
                <$t>::from_le_bytes(b)
            }

            #[inline]
            fn to_f64_checked(self) -> Option<f64> {
                Some(self as f64)
            }

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
        }
    };
}

int_element!(i8, ElementType::Int8);
int_element!(i16, ElementType::Int16);
int_element!(i32, ElementType::Int32);
int_element!(i64, ElementType::Int64);

impl Element for f32 {
    const TYPE: ElementType = ElementType::Float32;
    const SIZE: usize = 4;

    #[inline]
    fn write_le(self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        f32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]])
    }

    #[inline]
    fn to_f64_checked(self) -> Option<f64> {
        Some(self as f64)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl Element for f64 {
    const TYPE: ElementType = ElementType::Float64;
    const SIZE: usize = 8;

    #[inline]
    fn write_le(self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[..8]);
        f64::from_le_bytes(b)
    }

    #[inline]
    fn to_f64_checked(self) -> Option<f64> {
        Some(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
}

impl Element for Complex32 {
    const TYPE: ElementType = ElementType::Complex32;
    const SIZE: usize = 8;

    #[inline]
    fn write_le(self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.re.to_le_bytes());
        out[4..8].copy_from_slice(&self.im.to_le_bytes());
    }

    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        Complex32::new(f32::read_le(&buf[..4]), f32::read_le(&buf[4..8]))
    }

    #[inline]
    fn to_f64_checked(self) -> Option<f64> {
        (self.im == 0.0).then_some(self.re as f64)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        Complex32::new(v as f32, 0.0)
    }
}

impl Element for Complex64 {
    const TYPE: ElementType = ElementType::Complex64;
    const SIZE: usize = 16;

    #[inline]
    fn write_le(self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.re.to_le_bytes());
        out[8..16].copy_from_slice(&self.im.to_le_bytes());
    }

    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        Complex64::new(f64::read_le(&buf[..8]), f64::read_le(&buf[8..16]))
    }

    #[inline]
    fn to_f64_checked(self) -> Option<f64> {
        (self.im == 0.0).then_some(self.re)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        Complex64::new(v, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for t in ElementType::ALL {
            assert_eq!(ElementType::from_code(t.code()).unwrap(), t);
        }
    }

    #[test]
    fn unknown_code_is_rejected() {
        assert_eq!(
            ElementType::from_code(0).unwrap_err(),
            ArrayError::UnknownElementType(0)
        );
        assert_eq!(
            ElementType::from_code(99).unwrap_err(),
            ArrayError::UnknownElementType(99)
        );
    }

    #[test]
    fn sizes_match_rust_layout() {
        assert_eq!(ElementType::Int8.size(), 1);
        assert_eq!(ElementType::Int16.size(), 2);
        assert_eq!(ElementType::Int32.size(), 4);
        assert_eq!(ElementType::Int64.size(), 8);
        assert_eq!(ElementType::Float32.size(), 4);
        assert_eq!(ElementType::Float64.size(), 8);
        assert_eq!(ElementType::Complex32.size(), 8);
        assert_eq!(ElementType::Complex64.size(), 16);
    }

    #[test]
    fn family_predicates() {
        assert!(ElementType::Int8.is_integer());
        assert!(!ElementType::Int8.is_float());
        assert!(ElementType::Float32.is_float());
        assert!(ElementType::Complex64.is_complex());
        assert!(!ElementType::Complex64.is_integer());
    }

    #[test]
    fn string_round_trip_including_sql_names() {
        for t in ElementType::ALL {
            let parsed: ElementType = t.to_string().parse().unwrap();
            assert_eq!(parsed, t);
        }
        assert_eq!("bigint".parse::<ElementType>().unwrap(), ElementType::Int64);
        assert_eq!("real".parse::<ElementType>().unwrap(), ElementType::Float32);
        assert_eq!(
            "float".parse::<ElementType>().unwrap(),
            ElementType::Float64
        );
        assert!("decimal".parse::<ElementType>().is_err());
    }

    fn roundtrip<T: Element>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.write_le(&mut buf);
        assert_eq!(T::read_le(&buf), v);
    }

    #[test]
    fn element_serialization_round_trips() {
        roundtrip(-5i8);
        roundtrip(-3000i16);
        roundtrip(123_456_789i32);
        roundtrip(-9_876_543_210i64);
        roundtrip(1.5f32);
        roundtrip(-2.25e-300f64);
        roundtrip(Complex32::new(1.0, -2.0));
        roundtrip(Complex64::new(3.25, 4.5));
    }

    #[test]
    fn complex_to_f64_requires_zero_imaginary() {
        assert_eq!(Complex64::new(2.0, 0.0).to_f64_checked(), Some(2.0));
        assert_eq!(Complex64::new(2.0, 1.0).to_f64_checked(), None);
    }

    #[test]
    fn schema_stems_are_distinct() {
        let mut names: Vec<_> = ElementType::ALL.iter().map(|t| t.schema_stem()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
