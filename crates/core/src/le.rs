//! Fixed-width little-endian decoding from byte buffers.
//!
//! Every on-disk structure in the workspace — array headers, slotted-page
//! headers, row images, blob chunk tables, serialized aggregate state —
//! is a sequence of fixed-width little-endian fields read out of a buffer
//! whose overall length was validated once, up front. These accessors
//! replace the `buf[a..b].try_into().unwrap()` idiom at every such field:
//! one place owns the (already-guaranteed) length reasoning instead of a
//! scattering of per-field unwraps, and the decode sites stay free of
//! `unwrap` for the `L005` invariant lint.
//!
//! All accessors panic (via the slice bounds check) if `off` lies too
//! close to the end of `buf` — the same behavior the `try_into().unwrap()`
//! pattern had, with the same "validated once, up front" justification.

macro_rules! le_accessor {
    ($(#[$doc:meta] $name:ident -> $t:ty),+ $(,)?) => {$(
        #[$doc]
        #[inline]
        pub fn $name(buf: &[u8], off: usize) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut bytes = [0u8; N];
            bytes.copy_from_slice(&buf[off..off + N]);
            <$t>::from_le_bytes(bytes)
        }
    )+};
}

le_accessor! {
    /// Reads a little-endian `u16` at byte offset `off`.
    u16_at -> u16,
    /// Reads a little-endian `u32` at byte offset `off`.
    u32_at -> u32,
    /// Reads a little-endian `u64` at byte offset `off`.
    u64_at -> u64,
    /// Reads a little-endian `i16` at byte offset `off`.
    i16_at -> i16,
    /// Reads a little-endian `i32` at byte offset `off`.
    i32_at -> i32,
    /// Reads a little-endian `i64` at byte offset `off`.
    i64_at -> i64,
    /// Reads a little-endian IEEE-754 `f32` at byte offset `off`.
    f32_at -> f32,
    /// Reads a little-endian IEEE-754 `f64` at byte offset `off`.
    f64_at -> f64,
}

macro_rules! le_putter {
    ($(#[$doc:meta] $name:ident <- $t:ty),+ $(,)?) => {$(
        #[$doc]
        #[inline]
        pub fn $name(buf: &mut [u8], off: usize, v: $t) {
            const N: usize = std::mem::size_of::<$t>();
            buf[off..off + N].copy_from_slice(&v.to_le_bytes());
        }
    )+};
}

le_putter! {
    /// Writes a little-endian `u16` at byte offset `off`.
    put_u16 <- u16,
    /// Writes a little-endian `u32` at byte offset `off`.
    put_u32 <- u32,
    /// Writes a little-endian `u64` at byte offset `off`.
    put_u64 <- u64,
    /// Writes a little-endian `i64` at byte offset `off`.
    put_i64 <- i64,
}

macro_rules! le_appender {
    ($(#[$doc:meta] $name:ident <- $t:ty),+ $(,)?) => {$(
        #[$doc]
        #[inline]
        pub fn $name(out: &mut Vec<u8>, v: $t) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    )+};
}

le_appender! {
    /// Appends a little-endian `u16` to `out`.
    push_u16 <- u16,
    /// Appends a little-endian `u32` to `out`.
    push_u32 <- u32,
    /// Appends a little-endian `u64` to `out`.
    push_u64 <- u64,
    /// Appends a little-endian `i64` to `out`.
    push_i64 <- i64,
}

/// Appends a length-prefixed (`u32` LE) byte slice to `out` — the framing
/// every variable-width field in a WAL record or catalog image uses.
#[inline]
pub fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
    push_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Reads a length-prefixed (`u32` LE) byte slice at `off`, returning the
/// slice and the offset just past it, or `None` if `buf` is too short —
/// the checked counterpart of [`push_bytes`] for decoding images whose
/// length was *not* validated up front (WAL tails, recovered catalogs).
#[inline]
pub fn take_bytes(buf: &[u8], off: usize) -> Option<(&[u8], usize)> {
    if off + 4 > buf.len() {
        return None;
    }
    let len = u32_at(buf, off) as usize;
    let end = off.checked_add(4)?.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    Some((&buf[off + 4..end], end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_every_width_at_an_offset() {
        let mut buf = vec![0xAAu8; 3];
        buf.extend_from_slice(&0x1122u16.to_le_bytes());
        buf.extend_from_slice(&0x3344_5566u32.to_le_bytes());
        buf.extend_from_slice(&0x7788_99AA_BBCC_DDEEu64.to_le_bytes());
        buf.extend_from_slice(&(-5i16).to_le_bytes());
        buf.extend_from_slice(&(-6i32).to_le_bytes());
        buf.extend_from_slice(&(-7i64).to_le_bytes());
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.5f64).to_le_bytes());
        let mut off = 3;
        assert_eq!(u16_at(&buf, off), 0x1122);
        off += 2;
        assert_eq!(u32_at(&buf, off), 0x3344_5566);
        off += 4;
        assert_eq!(u64_at(&buf, off), 0x7788_99AA_BBCC_DDEE);
        off += 8;
        assert_eq!(i16_at(&buf, off), -5);
        off += 2;
        assert_eq!(i32_at(&buf, off), -6);
        off += 4;
        assert_eq!(i64_at(&buf, off), -7);
        off += 8;
        assert_eq!(f32_at(&buf, off), 1.5);
        off += 4;
        assert_eq!(f64_at(&buf, off), -2.5);
    }

    #[test]
    #[should_panic]
    fn short_buffer_panics_like_the_old_idiom() {
        let _ = u64_at(&[0u8; 7], 0);
    }
}
