//! # sqlarray-core
//!
//! A multidimensional array data type for relational databases, after
//! *"Array Requirements for Scientific Applications and an Implementation
//! for Microsoft SQL Server"* (Dobos et al., EDBT 2011).
//!
//! Arrays are self-describing binary blobs: a compact header (storage
//! class, element type, rank, element count, dimension sizes) followed by
//! the elements in **column-major** order, ready to hand to FORTRAN-layout
//! math libraries without re-marshaling. Two storage classes mirror the
//! 8 kB-page reality of the host database:
//!
//! * **short** — total blob ≤ 8000 bytes, rank ≤ 6, `i16` dimensions;
//!   stored in-row and manipulable with plain memory copies;
//! * **max** — unlimited rank, `i32` dimensions; stored out-of-page and
//!   accessed through a stream interface that supports *partial reads*
//!   ([`stream::ArrayReader`]), so subsetting never fetches the full blob.
//!
//! ## Quick start
//!
//! ```
//! use sqlarray_core::prelude::*;
//!
//! // DECLARE @a = FloatArray.Vector_5(1,2,3,4,5)
//! let a = build::short_vector(&[1.0f64, 2.0, 3.0, 4.0, 5.0])?;
//! // SELECT FloatArray.Item_1(@a, 3)
//! assert_eq!(a.item(&[3])?, Scalar::F64(4.0));
//!
//! // Subarray with squeeze, reshape, aggregate:
//! let m = ops::reshape::reshape(&a, &[5, 1])?;
//! let col = ops::subarray::subarray(&m, &[1, 0], &[3, 1], true)?;
//! assert_eq!(col.dims(), &[3]);
//! assert_eq!(ops::agg::sum(&col)?, Scalar::F64(9.0));
//! # Ok::<(), sqlarray_core::ArrayError>(())
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod batch;
pub mod build;
pub mod complex;
pub mod element;
pub mod env;
pub mod errors;
pub mod exact;
pub mod fmt;
pub mod header;
pub mod le;
pub mod lifecycle;
pub mod ops;
pub mod parallel;
pub mod rng;
pub mod scalar;
pub mod shape;
pub mod stream;
pub mod sync;
pub mod typed;

pub use array::SqlArray;
pub use complex::{Complex32, Complex64};
pub use element::{Element, ElementType};
pub use env::env_usize;
pub use errors::{ArrayError, Result};
pub use exact::ExactSum;
pub use header::{Header, StorageClass, SHORT_MAX_BYTES, SHORT_MAX_RANK};
pub use lifecycle::{CancelHandle, Interrupt, QueryCtx, QueryLimits};
pub use scalar::Scalar;
pub use shape::Shape;
pub use typed::TypedArray;

/// Everything most callers need, in one import.
pub mod prelude {
    pub use crate::array::SqlArray;
    pub use crate::build;
    pub use crate::complex::{Complex32, Complex64};
    pub use crate::element::{Element, ElementType};
    pub use crate::errors::{ArrayError, Result};
    pub use crate::header::StorageClass;
    pub use crate::ops;
    pub use crate::scalar::Scalar;
    pub use crate::stream::{ArrayReader, ArraySource};
    pub use crate::typed::TypedArray;
}
