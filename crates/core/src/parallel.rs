//! Degree-of-parallelism configuration and chunked fan-out helpers.
//!
//! The whole workspace derives its parallelism from one knob: the
//! `SQLARRAY_DOP` environment variable when set (clamped to ≥ 1), otherwise
//! the number of cores the OS reports. Query execution reads it through
//! `Session::set_dop` / the session default; the elementwise array kernels
//! read it directly via [`configured_dop`].
//!
//! [`partition_ranges`] is the one chunking rule used everywhere — by the
//! storage layer to split a leaf chain into scan partitions and by the
//! elementwise kernels to split an element range — so "how work divides"
//! has a single, property-tested definition: chunks are contiguous, cover
//! the range exactly, never number more than requested, and differ in
//! length by at most one.

use std::cell::Cell;
use std::ops::Range;

/// Environment variable overriding the default degree of parallelism.
pub const DOP_ENV_VAR: &str = "SQLARRAY_DOP";

thread_local! {
    /// True while this thread is already a parallel worker — kernels it
    /// calls must not fan out again.
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with [`configured_dop`] pinned to 1 on this thread.
///
/// A parallel scan worker is itself one lane of a fan-out; if the
/// expressions it evaluates call the chunked array kernels, letting those
/// kernels consult the global DOP would nest `dop × dop` threads and
/// oversubscribe the machine. The query executor wraps each worker's body
/// in this guard, so kernels inside a scan always run serially — the scan
/// is the parallel unit.
pub fn with_serial_kernels<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SERIAL.with(|s| {
        let prev = s.replace(true);
        let out = f();
        s.set(prev);
        out
    })
}

/// The configured degree of parallelism: 1 inside a
/// [`with_serial_kernels`] scope, else `SQLARRAY_DOP` if set and ≥ 1,
/// otherwise [`std::thread::available_parallelism`] (1 when unknown).
pub fn configured_dop() -> usize {
    if FORCE_SERIAL.with(|s| s.get()) {
        return 1;
    }
    if let Some(n) = crate::env::env_usize(DOP_ENV_VAR) {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over the contiguous chunks of `0..total` (at most `parts`,
/// chunked by [`partition_ranges`]) on [`std::thread::scope`] workers,
/// returning the per-chunk results in chunk order.
///
/// With one chunk — `parts == 1`, or `total` too small to split — no
/// thread is spawned and `f` runs inline, so serial callers pay nothing.
/// Chunk boundaries depend only on `(total, parts)`, so any chunk-wise
/// deterministic `f` yields results independent of scheduling. This is
/// the fan-out used by the value-producing parallel stages (bulk-load row
/// encoding, leaf-image building, scan workers); kernels that write into
/// disjoint sub-slices of a caller buffer use [`scoped_for_ranges_mut`]
/// (or [`scoped_try_for_ranges_mut`] when they can fail), the
/// disjoint-write duals.
pub fn scoped_map_ranges<T: Send>(
    total: usize,
    parts: usize,
    f: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    let ranges = partition_ranges(total, parts);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(move || f(r))).collect();
        handles
            .into_iter()
            // lint:allow(L005, reason = "join only fails when the worker panicked; re-raising the panic is the correct propagation, there is no error value to return")
            .map(|h| h.join().expect("scoped_map_ranges worker panicked"))
            .collect()
    })
}

/// Runs `f` over disjoint mutable chunks of `data` on
/// [`std::thread::scope`] workers.
///
/// `data` is viewed as `data.len() / item_len` fixed-size items stored
/// contiguously (columns of a column-major matrix, rows of a lattice —
/// any layout where item `i` occupies `data[i*item_len..(i+1)*item_len]`).
/// The items are split into at most `parts` contiguous ranges by
/// [`partition_ranges`], and each worker receives `(range, chunk)` where
/// `chunk` is **exactly** the sub-slice holding the items of `range` —
/// so `chunk[(i - range.start) * item_len ..]` addresses item `i`.
///
/// With one chunk no thread is spawned and `f` runs inline, so serial
/// callers pay nothing. Chunk boundaries depend only on
/// `(data.len() / item_len, parts)`; a chunk-wise deterministic `f`
/// therefore writes the same bytes at every `parts`. This is the
/// disjoint-write dual of [`scoped_map_ranges`]: use it when workers fill
/// slices of one caller-owned buffer instead of returning values (the
/// parallel linalg kernels fan output columns through it).
///
/// Panics if `item_len` is zero or does not divide `data.len()`.
pub fn scoped_for_ranges_mut<T: Send>(
    data: &mut [T],
    item_len: usize,
    parts: usize,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    assert!(item_len > 0, "item_len must be positive");
    assert_eq!(data.len() % item_len, 0, "data must hold whole items");
    let ranges = partition_ranges(data.len() / item_len, parts);
    scoped_for_given_ranges_mut(data, item_len, ranges, f);
}

/// Fallible [`scoped_for_ranges_mut`]: each worker returns
/// `Result<(), E>`, and the first error **in chunk order** (not
/// completion order) is returned, so the reported error is deterministic
/// at any `parts`. Every worker runs to completion even when an earlier
/// chunk fails — the write side stays identical to the infallible
/// helper; only the returned `Result` differs.
///
/// This is the sanctioned fan-out for kernels that both fill disjoint
/// slices of a caller buffer and can fail per element (the elementwise
/// array kernels evaluate user expressions that may divide by zero or
/// overflow a cast).
pub fn scoped_try_for_ranges_mut<T: Send, E: Send>(
    data: &mut [T],
    item_len: usize,
    parts: usize,
    f: impl Fn(Range<usize>, &mut [T]) -> Result<(), E> + Sync,
) -> Result<(), E> {
    assert!(item_len > 0, "item_len must be positive");
    assert_eq!(data.len() % item_len, 0, "data must hold whole items");
    let ranges = partition_ranges(data.len() / item_len, parts);
    if ranges.len() <= 1 {
        return match ranges.into_iter().next() {
            Some(r) => f(r, data),
            None => Ok(()),
        };
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut rest = data;
        let mut handles = Vec::with_capacity(ranges.len());
        for r in ranges {
            let (mine, tail) = rest.split_at_mut(r.len() * item_len);
            rest = tail;
            handles.push(s.spawn(move || f(r, mine)));
        }
        let mut first_err = Ok(());
        for h in handles {
            // lint:allow(L005, reason = "join only fails when the worker panicked; re-raising the panic is the correct propagation, there is no error value to return")
            let res = h.join().expect("scoped_try_for_ranges_mut worker panicked");
            if first_err.is_ok() {
                first_err = res;
            }
        }
        first_err
    })
}

/// [`scoped_for_ranges_mut`] with caller-supplied chunk boundaries, for
/// workloads where equal item counts are not equal work (e.g. the
/// triangular Gram build balances ranges by area). `ranges` must be
/// contiguous, start at item 0, and cover every item exactly; keep the
/// boundaries a pure function of the problem shape and the chunking
/// stays deterministic.
pub fn scoped_for_given_ranges_mut<T: Send>(
    data: &mut [T],
    item_len: usize,
    ranges: Vec<Range<usize>>,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    assert!(item_len > 0, "item_len must be positive");
    assert_eq!(data.len() % item_len, 0, "data must hold whole items");
    let total = data.len() / item_len;
    let mut expect = 0;
    for r in &ranges {
        assert_eq!(r.start, expect, "ranges must be contiguous from item 0");
        assert!(r.end >= r.start && r.end <= total, "range out of bounds");
        expect = r.end;
    }
    assert_eq!(expect, total, "ranges must cover every item");
    if ranges.len() <= 1 {
        if let Some(r) = ranges.into_iter().next() {
            f(r, data);
        }
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut rest = data;
        for r in ranges {
            let (mine, tail) = rest.split_at_mut(r.len() * item_len);
            rest = tail;
            s.spawn(move || f(r, mine));
        }
    });
}

/// Splits `0..total` into at most `parts` contiguous, non-empty ranges of
/// near-equal length (the first `total % parts` chunks get one extra
/// element). `total == 0` yields no ranges; `parts` is clamped to ≥ 1.
pub fn partition_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, total);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    assert_eq!(start, total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(total: usize, parts: usize) {
        let ranges = partition_ranges(total, parts);
        if total == 0 {
            assert!(ranges.is_empty());
            return;
        }
        assert!(!ranges.is_empty());
        assert!(ranges.len() <= parts.max(1));
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, total);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert!(lens.iter().all(|&l| l > 0));
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced: {lens:?}");
    }

    #[test]
    fn covers_edge_shapes() {
        check(0, 4);
        check(1, 4); // fewer items than parts
        check(3, 8);
        check(7, 3); // non-divisible
        check(8, 3);
        check(9, 3); // divisible
        check(1000, 7);
        check(5, 0); // parts clamped to 1
    }

    #[test]
    fn fewer_parts_than_requested_when_items_are_scarce() {
        assert_eq!(partition_ranges(2, 8).len(), 2);
        assert_eq!(partition_ranges(8, 8).len(), 8);
    }

    #[test]
    fn scoped_map_ranges_preserves_chunk_order() {
        for parts in [1usize, 2, 3, 8, 100] {
            let chunks = scoped_map_ranges(23, parts, |r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..23).collect::<Vec<_>>(), "parts {parts}");
        }
        assert!(scoped_map_ranges(0, 4, |r| r.len()).is_empty());
    }

    #[test]
    fn scoped_for_ranges_mut_covers_items_disjointly() {
        for parts in [1usize, 2, 3, 8, 100] {
            // 23 items of 3 elements each; each worker stamps its items
            // with the item index.
            let mut data = vec![0usize; 23 * 3];
            scoped_for_ranges_mut(&mut data, 3, parts, |range, chunk| {
                for (slot, item) in range.enumerate() {
                    for v in &mut chunk[slot * 3..(slot + 1) * 3] {
                        *v = item + 1;
                    }
                }
            });
            let expect: Vec<usize> = (0..23).flat_map(|i| [i + 1; 3]).collect();
            assert_eq!(data, expect, "parts {parts}");
        }
        // Empty data is a no-op for any item size.
        scoped_for_ranges_mut(&mut [] as &mut [u8], 4, 3, |_, _| panic!("no items"));
    }

    #[test]
    #[should_panic(expected = "whole items")]
    fn scoped_for_ranges_mut_rejects_ragged_items() {
        let mut data = [0u8; 7];
        scoped_for_ranges_mut(&mut data, 3, 2, |_, _| {});
    }

    #[test]
    fn scoped_for_given_ranges_mut_accepts_uneven_chunks() {
        // Work-balanced (uneven) boundaries: 1 + 6 + 3 items.
        let mut data = vec![0usize; 10 * 2];
        scoped_for_given_ranges_mut(&mut data, 2, vec![0..1, 1..7, 7..10], |range, chunk| {
            for (slot, item) in range.enumerate() {
                chunk[slot * 2] = item;
                chunk[slot * 2 + 1] = item;
            }
        });
        let expect: Vec<usize> = (0..10).flat_map(|i| [i, i]).collect();
        assert_eq!(data, expect);
    }

    #[test]
    #[should_panic(expected = "cover every item")]
    fn scoped_for_given_ranges_mut_rejects_partial_cover() {
        let mut data = [0u8; 6];
        let only_first: Vec<Range<usize>> = std::iter::once(0..2).collect();
        scoped_for_given_ranges_mut(&mut data, 2, only_first, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn scoped_for_given_ranges_mut_rejects_gaps() {
        let mut data = [0u8; 6];
        scoped_for_given_ranges_mut(&mut data, 2, vec![0..1, 2..3], |_, _| {});
    }

    #[test]
    fn dop_is_at_least_one() {
        assert!(configured_dop() >= 1);
    }

    #[test]
    fn serial_kernel_scope_pins_dop_and_restores() {
        let outer = configured_dop();
        let (inner, nested) =
            with_serial_kernels(|| (configured_dop(), with_serial_kernels(configured_dop)));
        assert_eq!(inner, 1);
        assert_eq!(nested, 1);
        assert_eq!(configured_dop(), outer, "guard must restore on exit");
        // The guard is per thread: a thread spawned inside the scope is
        // not serialized by it.
        let from_thread =
            with_serial_kernels(|| std::thread::scope(|s| s.spawn(configured_dop).join().unwrap()));
        assert_eq!(from_thread, outer);
    }
}
