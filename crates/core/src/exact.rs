//! An order-independent, exactly rounded `f64` accumulator.
//!
//! Parallel aggregation splits a reduction over workers, which changes the
//! shape of the floating-point reduction tree; with a naive `+=` the result
//! of `SUM(v1)` would then depend on the degree of parallelism. [`ExactSum`]
//! sidesteps the problem the way long-accumulator hardware proposals do
//! (Kulisch accumulation): every addend is expanded into a ~2200-bit
//! fixed-point register wide enough to hold any finite `f64` exactly, so
//! addition is genuinely associative and commutative. The final
//! [`value`](ExactSum::value) is the correctly rounded (nearest-even) `f64`
//! of the true sum — identical no matter how the inputs were partitioned.
//!
//! The engine's built-in `SUM`/`AVG` accumulate through this type, which is
//! what lets the executor promise bit-identical results for serial and
//! parallel plans.
//!
//! ```
//! use sqlarray_core::exact::ExactSum;
//!
//! let xs = [1e100, 1.0, -1e100, 1e-30];
//! let mut forward = ExactSum::new();
//! let mut backward = ExactSum::new();
//! for x in xs {
//!     forward.add(x);
//! }
//! for x in xs.iter().rev() {
//!     backward.add(*x);
//! }
//! // Naive summation loses the 1.0 in one of the two orders; the exact
//! // accumulator is order independent and correctly rounded.
//! assert_eq!(forward.value(), backward.value());
//! assert_eq!(forward.value(), 1.0 + 1e-30);
//! ```

/// Number of 64-bit limbs in the fixed-point register.
///
/// Finite `f64` values occupy bit positions `0` (2⁻¹⁰⁷⁴, the smallest
/// subnormal) through `2097` (the top mantissa bit of `f64::MAX`). Another
/// 64 bits of headroom absorb up to 2⁶⁴ worst-case addends before the sign
/// bit (the top bit of the last limb) could be disturbed; 34 limbs = 2176
/// bits covers both.
const LIMBS: usize = 34;

/// Bit position of 2⁰ inside the register: the exponent of the smallest
/// subnormal is −1074, so limb 0 / bit 0 represents 2⁻¹⁰⁷⁴.
const EXP_BIAS: i32 = 1074;

/// An exact accumulator for `f64` addends.
///
/// Internally a two's-complement fixed-point integer of 34 × 64 bits plus
/// out-of-band tracking for non-finite addends (infinities of either
/// sign, NaN). `Clone`-able, `Send`, and mergeable: [`merge`](Self::merge)
/// adds two accumulators exactly, so partial sums computed by parallel
/// workers combine without any rounding at the merge points.
#[derive(Debug, Clone)]
pub struct ExactSum {
    limbs: [u64; LIMBS],
    pos_inf: u64,
    neg_inf: u64,
    nan: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum::new()
    }
}

impl ExactSum {
    /// An empty accumulator (sum of zero addends = `+0.0`).
    pub fn new() -> ExactSum {
        ExactSum {
            limbs: [0u64; LIMBS],
            pos_inf: 0,
            neg_inf: 0,
            nan: false,
        }
    }

    /// Adds one `f64` addend, exactly.
    pub fn add(&mut self, x: f64) {
        if x == 0.0 {
            return;
        }
        if x.is_nan() {
            self.nan = true;
            return;
        }
        if x.is_infinite() {
            if x > 0.0 {
                self.pos_inf += 1;
            } else {
                self.neg_inf += 1;
            }
            return;
        }
        let bits = x.to_bits();
        let negative = bits >> 63 == 1;
        let exp_field = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        // Mantissa m and exponent e such that |x| = m · 2^(e), with the
        // register's bit 0 standing for 2^(−EXP_BIAS).
        let (mantissa, exp) = if exp_field == 0 {
            (frac, -EXP_BIAS) // subnormal
        } else {
            (frac | (1u64 << 52), exp_field - 1075)
        };
        let pos = (exp + EXP_BIAS) as usize; // bit position of mantissa bit 0
        let limb = pos / 64;
        let shift = pos % 64;
        let wide = (mantissa as u128) << shift; // ≤ 53 + 63 = 116 bits
        let lo = wide as u64;
        let hi = (wide >> 64) as u64;
        if negative {
            self.sub_at(limb, lo, hi);
        } else {
            self.add_at(limb, lo, hi);
        }
    }

    fn add_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (s, mut carry) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = s;
        let mut i = limb + 1;
        let mut add = hi;
        while (carry || add != 0) && i < LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(add);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            self.limbs[i] = s2;
            carry = c1 || c2;
            add = 0;
            i += 1;
        }
    }

    fn sub_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (s, mut borrow) = self.limbs[limb].overflowing_sub(lo);
        self.limbs[limb] = s;
        let mut i = limb + 1;
        let mut sub = hi;
        while (borrow || sub != 0) && i < LIMBS {
            let (s1, b1) = self.limbs[i].overflowing_sub(sub);
            let (s2, b2) = s1.overflowing_sub(borrow as u64);
            self.limbs[i] = s2;
            borrow = b1 || b2;
            sub = 0;
            i += 1;
        }
    }

    /// Adds another accumulator into this one, exactly. This is the
    /// parallel-combine step: limb-wise two's-complement addition commutes
    /// and associates, so any merge tree yields the same register.
    pub fn merge(&mut self, other: &ExactSum) {
        let mut carry = false;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            self.limbs[i] = s2;
            carry = c1 || c2;
        }
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
        self.nan |= other.nan;
    }

    /// The correctly rounded (round-to-nearest, ties-to-even) `f64` value
    /// of the accumulated sum.
    pub fn value(&self) -> f64 {
        if self.nan || (self.pos_inf > 0 && self.neg_inf > 0) {
            return f64::NAN;
        }
        if self.pos_inf > 0 {
            return f64::INFINITY;
        }
        if self.neg_inf > 0 {
            return f64::NEG_INFINITY;
        }
        // Read the two's-complement register: sign, then magnitude.
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mut mag = self.limbs;
        if negative {
            // mag = -register (two's complement negate).
            let mut carry = true;
            for limb in mag.iter_mut() {
                let (s, c) = (!*limb).overflowing_add(carry as u64);
                *limb = s;
                carry = c;
            }
        }
        // Highest set bit.
        let top = match (0..LIMBS).rev().find(|&i| mag[i] != 0) {
            Some(i) => i * 64 + 63 - mag[i].leading_zeros() as usize,
            None => return 0.0,
        };
        let exp = top as i32 - EXP_BIAS; // value ≈ 2^exp
        if top <= 52 {
            // Entirely within the subnormal/smallest-normal window: the
            // magnitude is exactly representable, no rounding needed.
            let v = f64::from_bits(mag[0]);
            return if negative { -v } else { v };
        }
        // Extract the 53-bit mantissa [top-52, top], the guard bit, and the
        // sticky OR of everything below the guard.
        let mantissa = extract_bits(&mag, top - 52, 53);
        let guard = extract_bits(&mag, top - 53, 1) == 1;
        let sticky = {
            let mut any = false;
            let low_bits = top - 53; // number of bits strictly below the guard
            let full = low_bits / 64;
            for limb in mag.iter().take(full) {
                any |= *limb != 0;
            }
            let rem = low_bits % 64;
            if rem > 0 {
                any |= mag[full] & ((1u64 << rem) - 1) != 0;
            }
            any
        };
        let mut q = mantissa;
        let mut e = exp;
        if guard && (sticky || q & 1 == 1) {
            q += 1;
            if q == 1u64 << 53 {
                q >>= 1;
                e += 1;
            }
        }
        if e > 1023 {
            return if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        let bits =
            ((negative as u64) << 63) | (((e + 1023) as u64) << 52) | (q & ((1u64 << 52) - 1));
        f64::from_bits(bits)
    }

    /// Size of the fixed-width serialization produced by
    /// [`to_bytes`](Self::to_bytes).
    pub const SERIALIZED_LEN: usize = LIMBS * 8 + 17;

    /// Serializes the full register (limbs LE, infinity counters, NaN
    /// flag) — aggregate states embed this so partial sums survive the
    /// serialize/merge round trips of the UDA contract without rounding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::SERIALIZED_LEN);
        for l in &self.limbs {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.extend_from_slice(&self.pos_inf.to_le_bytes());
        out.extend_from_slice(&self.neg_inf.to_le_bytes());
        out.push(self.nan as u8);
        out
    }

    /// Rebuilds an accumulator from [`to_bytes`](Self::to_bytes) output;
    /// `None` if `buf` is not exactly [`SERIALIZED_LEN`](Self::SERIALIZED_LEN)
    /// bytes.
    pub fn from_bytes(buf: &[u8]) -> Option<ExactSum> {
        if buf.len() != Self::SERIALIZED_LEN {
            return None;
        }
        let mut s = ExactSum::new();
        for (i, limb) in s.limbs.iter_mut().enumerate() {
            *limb = crate::le::u64_at(buf, i * 8);
        }
        let off = LIMBS * 8;
        s.pos_inf = crate::le::u64_at(buf, off);
        s.neg_inf = crate::le::u64_at(buf, off + 8);
        s.nan = buf[off + 16] != 0;
        Some(s)
    }

    /// True if no finite or non-finite addend has been folded in.
    pub fn is_zero(&self) -> bool {
        !self.nan && self.pos_inf == 0 && self.neg_inf == 0 && self.limbs.iter().all(|&l| l == 0)
    }
}

/// Reads `count` bits (≤ 64) starting at bit position `pos` from a
/// little-endian limb array.
fn extract_bits(limbs: &[u64; LIMBS], pos: usize, count: usize) -> u64 {
    assert!(count <= 64);
    let limb = pos / 64;
    let shift = pos % 64;
    let mut v = limbs[limb] >> shift;
    if shift != 0 && limb + 1 < LIMBS {
        v |= limbs[limb + 1]
            .checked_shl((64 - shift) as u32)
            .unwrap_or(0);
    }
    if count < 64 {
        v &= (1u64 << count) - 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_of(xs: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &x in xs {
            s.add(x);
        }
        s.value()
    }

    #[test]
    fn matches_naive_on_exact_cases() {
        assert_eq!(exact_of(&[]), 0.0);
        assert_eq!(exact_of(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(exact_of(&[0.5, 0.25, -0.75]), 0.0);
        let ints: Vec<f64> = (0..1000).map(|k| k as f64).collect();
        assert_eq!(exact_of(&ints), 499_500.0);
    }

    #[test]
    fn recovers_catastrophic_cancellation() {
        assert_eq!(exact_of(&[1e100, 1.0, -1e100]), 1.0);
        assert_eq!(exact_of(&[1.0, 1e100, -1e100]), 1.0);
        assert_eq!(exact_of(&[1e308, 1e308, -1e308, -1e308]), 0.0);
    }

    #[test]
    fn order_independent_under_permutation() {
        let xs: Vec<f64> = (0..500)
            .map(|k| {
                let t = (k as f64 * 0.7391).sin();
                t * 10f64.powi((k % 40) - 20)
            })
            .collect();
        let forward = exact_of(&xs);
        let mut rev = xs.clone();
        rev.reverse();
        assert_eq!(forward.to_bits(), exact_of(&rev).to_bits());
        // Interleaved order.
        let mut inter: Vec<f64> = Vec::new();
        for i in 0..xs.len() / 2 {
            inter.push(xs[i]);
            inter.push(xs[xs.len() - 1 - i]);
        }
        assert_eq!(forward.to_bits(), exact_of(&inter).to_bits());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..256)
            .map(|k| ((k * 37 % 101) as f64 - 50.0) * 1e-3)
            .collect();
        let total = exact_of(&xs);
        for split in [1usize, 7, 128, 255] {
            let mut a = ExactSum::new();
            let mut b = ExactSum::new();
            for &x in &xs[..split] {
                a.add(x);
            }
            for &x in &xs[split..] {
                b.add(x);
            }
            a.merge(&b);
            assert_eq!(a.value().to_bits(), total.to_bits(), "split {split}");
        }
    }

    #[test]
    fn subnormals_sum_exactly() {
        let tiny = f64::from_bits(3); // 3 · 2⁻¹⁰⁷⁴
        assert_eq!(exact_of(&[tiny, tiny]), f64::from_bits(6));
        assert_eq!(exact_of(&[tiny, -tiny]), 0.0);
        assert_eq!(exact_of(&[f64::MIN_POSITIVE, -tiny]).to_bits(), {
            f64::MIN_POSITIVE.to_bits() - 3
        });
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-53 rounds to 1 (tie to even); 1 + 2^-53 + 2^-100 must
        // round up because the sticky bit breaks the tie.
        let ulp_half = (2f64).powi(-53);
        assert_eq!(exact_of(&[1.0, ulp_half]), 1.0);
        assert_eq!(
            exact_of(&[1.0, ulp_half, (2f64).powi(-100)]),
            1.0 + 2.0 * ulp_half
        );
        // Tie with odd mantissa rounds up to the even neighbour.
        let odd = 1.0 + 2.0 * ulp_half; // mantissa ...01
        assert_eq!(exact_of(&[odd, ulp_half]), odd + 2.0 * ulp_half);
    }

    #[test]
    fn non_finite_addends() {
        assert!(exact_of(&[1.0, f64::NAN]).is_nan());
        assert_eq!(exact_of(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(exact_of(&[f64::NEG_INFINITY, 1e300]), f64::NEG_INFINITY);
        assert!(exact_of(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let mut s = ExactSum::new();
        for _ in 0..4 {
            s.add(f64::MAX);
        }
        assert_eq!(s.value(), f64::INFINITY);
        let mut n = ExactSum::new();
        for _ in 0..4 {
            n.add(-f64::MAX);
        }
        assert_eq!(n.value(), f64::NEG_INFINITY);
        // ...but cancelling the overflow recovers the exact remainder.
        s.merge(&n);
        assert_eq!(s.value(), 0.0);
        assert!(s.is_zero());
    }

    #[test]
    fn negative_totals_round_symmetrically() {
        let xs = [0.1, 0.2, 0.3];
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert_eq!(exact_of(&xs), -exact_of(&neg));
    }

    #[test]
    fn serialization_round_trips_the_register() {
        let mut s = ExactSum::new();
        for x in [1e-300, -2.5, 1e100, f64::INFINITY] {
            s.add(x);
        }
        let buf = s.to_bytes();
        assert_eq!(buf.len(), ExactSum::SERIALIZED_LEN);
        let back = ExactSum::from_bytes(&buf).unwrap();
        assert_eq!(back.value(), s.value());
        let mut merged = ExactSum::new();
        merged.merge(&back);
        merged.add(f64::NEG_INFINITY);
        assert!(merged.value().is_nan());
        assert!(ExactSum::from_bytes(&buf[1..]).is_none());
    }

    #[test]
    fn matches_serial_fold_for_integral_values() {
        // Integer-valued f64 sums are exact under naive folding too, so the
        // two must agree bit for bit.
        let xs: Vec<f64> = (0..10_000).map(|k| (k % 97) as f64).collect();
        let naive: f64 = xs.iter().sum();
        assert_eq!(exact_of(&xs).to_bits(), naive.to_bits());
    }
}
