//! The repo's one poison-handling policy for shared locks.
//!
//! Every `Mutex`/`RwLock` guard acquisition in the engine and storage
//! crates funnels through these helpers instead of ad-hoc
//! `unwrap_or_else(|e| e.into_inner())` at each site. The policy is
//! *recover*: a poisoned lock means some thread panicked while holding
//! the guard, and in this codebase that is always sound to continue from,
//! because no guarded structure is left half-mutated across a panic edge:
//!
//! * the **database lock** guards state whose durability semantics belong
//!   to the WAL, not the lock — readers only ever observe committed
//!   snapshots, and writers commit-or-discard through
//!   statement-autocommit (a panicked writer's work is bounded by the
//!   next recovery replay, exactly like a crash);
//! * **scheduler / plan-cache / accounting mutexes** guard counter
//!   arithmetic and map insert/evict operations that are individually
//!   complete before any fallible call runs;
//! * **scan-worker panics never reach a lock at all** — the executor
//!   catches them at the fan-out boundary (`catch_unwind` around the
//!   worker body) and converts them into typed errors, so poisoning via
//!   the parallel path is already structurally excluded. These helpers
//!   are the second layer for panics on serial paths.
//!
//! Centralizing the recovery makes the policy auditable: grep for
//! `lock_unpoisoned|read_unpoisoned|write_unpoisoned` and you have the
//! complete list of places a poisoned guard can be revived. If a future
//! structure ever needs propagate-on-poison semantics, it must NOT use
//! these helpers — take the `LockResult` explicitly and justify it at the
//! site.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Locks `m`, recovering from poison per the module policy.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-locks `l`, recovering from poison per the module policy.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-locks `l`, recovering from poison per the module policy.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// `Condvar::wait_timeout`, recovering from poison per the module policy.
/// Returns the re-acquired guard and whether the wait timed out.
pub fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(e) => {
            let (g, t) = e.into_inner();
            (g, t.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 42);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = Arc::new(RwLock::new(1));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*read_unpoisoned(&l), 1);
        *write_unpoisoned(&l) = 2;
        assert_eq!(*read_unpoisoned(&l), 2);
    }

    #[test]
    fn wait_timeout_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (_g, timed_out) = wait_timeout_unpoisoned(&cv, g, Duration::from_millis(1));
        assert!(timed_out);
    }
}
