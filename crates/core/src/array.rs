//! The dynamically typed array blob.
//!
//! A [`SqlArray`] owns exactly the bytes that the original library stored in
//! a `VARBINARY` column: the header (see [`crate::header`]) immediately
//! followed by the elements in column-major order. Every operation is
//! defined on that buffer, so an array can round-trip through the storage
//! engine, the wire, or a file without any re-encoding.

use crate::element::{Element, ElementType};
use crate::errors::{ArrayError, Result};
use crate::header::{Header, StorageClass, SHORT_MAX_BYTES, SHORT_MAX_RANK};
use crate::scalar::Scalar;
use crate::shape::Shape;
use std::borrow::Cow;

/// A multidimensional array stored as a self-describing binary blob.
///
/// Invariants (enforced by every constructor):
/// * the buffer begins with a valid encoded [`Header`];
/// * the buffer length equals `header_len + count * elem_size`;
/// * short-class constraints (rank ≤ 6, total ≤ 8000 bytes) hold.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlArray {
    header: Header,
    buf: Vec<u8>,
}

impl SqlArray {
    // ---------------------------------------------------------------
    // Construction
    // ---------------------------------------------------------------

    /// Builds an array from typed data in column-major element order.
    pub fn from_vec<T: Element>(
        class: StorageClass,
        dims: &[usize],
        data: &[T],
    ) -> Result<SqlArray> {
        let shape = Shape::new(dims)?;
        if shape.count() != data.len() {
            return Err(ArrayError::CountMismatch {
                dims_product: shape.count(),
                count: data.len(),
            });
        }
        let header = Header::new(class, T::TYPE, shape)?;
        let hlen = header.header_len();
        let mut buf = vec![0u8; header.blob_len()];
        header.encode(&mut buf);
        for (i, &v) in data.iter().enumerate() {
            v.write_le(&mut buf[hlen + i * T::SIZE..]);
        }
        Ok(SqlArray { header, buf })
    }

    /// Builds an array where every element is `value`.
    pub fn filled<T: Element>(class: StorageClass, dims: &[usize], value: T) -> Result<SqlArray> {
        let shape = Shape::new(dims)?;
        let header = Header::new(class, T::TYPE, shape)?;
        let hlen = header.header_len();
        let mut buf = vec![0u8; header.blob_len()];
        header.encode(&mut buf);
        for i in 0..header.shape.count() {
            value.write_le(&mut buf[hlen + i * T::SIZE..]);
        }
        Ok(SqlArray { header, buf })
    }

    /// Builds a zero-filled array of a dynamically chosen element type.
    pub fn zeros(class: StorageClass, elem: ElementType, dims: &[usize]) -> Result<SqlArray> {
        let shape = Shape::new(dims)?;
        let header = Header::new(class, elem, shape)?;
        let mut buf = vec![0u8; header.blob_len()];
        header.encode(&mut buf);
        Ok(SqlArray { header, buf })
    }

    /// Builds an array by evaluating `f` at every multi-index, in
    /// column-major order.
    pub fn from_fn<T: Element>(
        class: StorageClass,
        dims: &[usize],
        mut f: impl FnMut(&[usize]) -> T,
    ) -> Result<SqlArray> {
        let shape = Shape::new(dims)?;
        let header = Header::new(class, T::TYPE, shape)?;
        let hlen = header.header_len();
        let mut buf = vec![0u8; header.blob_len()];
        header.encode(&mut buf);
        for lin in 0..header.shape.count() {
            let idx = header.shape.multi_index(lin);
            f(&idx).write_le(&mut buf[hlen + lin * T::SIZE..]);
        }
        Ok(SqlArray { header, buf })
    }

    /// Adopts a raw blob (header + payload), validating it end to end.
    /// This is the path every blob read from storage takes.
    pub fn from_blob(buf: Vec<u8>) -> Result<SqlArray> {
        let header = Header::decode(&buf)?;
        let need = header.blob_len();
        if buf.len() != need {
            return Err(ArrayError::PayloadSizeMismatch {
                got: buf.len(),
                need,
            });
        }
        Ok(SqlArray { header, buf })
    }

    /// Chooses the storage class automatically: short if the blob fits the
    /// in-page budget and the short-class limits, max otherwise. Mirrors
    /// what a user of the original library would do when deciding between
    /// `FloatArray` and `FloatArrayMax` schemas.
    pub fn auto_class(elem: ElementType, dims: &[usize]) -> Result<StorageClass> {
        let shape = Shape::new(dims)?;
        let fits_short = shape.rank() <= SHORT_MAX_RANK
            && shape
                .dims()
                .iter()
                .all(|&d| d <= crate::header::SHORT_MAX_DIM)
            && Header::new(StorageClass::Short, elem, shape.clone())
                .map(|h| h.blob_len() <= SHORT_MAX_BYTES)
                .unwrap_or(false);
        Ok(if fits_short {
            StorageClass::Short
        } else {
            StorageClass::Max
        })
    }

    // ---------------------------------------------------------------
    // Introspection (the T-SQL dimension/size accessors)
    // ---------------------------------------------------------------

    /// The decoded header.
    #[inline]
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Storage class of this blob.
    #[inline]
    pub fn class(&self) -> StorageClass {
        self.header.class
    }

    /// Element base type.
    #[inline]
    pub fn elem(&self) -> ElementType {
        self.header.elem
    }

    /// Shape (per-dimension sizes).
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.header.shape
    }

    /// Number of dimensions (`Rank` in the T-SQL interface).
    #[inline]
    pub fn rank(&self) -> usize {
        self.header.shape.rank()
    }

    /// Per-dimension sizes (`Size_N`).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.header.shape.dims()
    }

    /// Total number of elements (`Count`).
    #[inline]
    pub fn count(&self) -> usize {
        self.header.shape.count()
    }

    // ---------------------------------------------------------------
    // Blob access
    // ---------------------------------------------------------------

    /// The full blob (header + payload) — what gets written to a
    /// `VARBINARY` column.
    #[inline]
    pub fn as_blob(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the array, returning the blob.
    #[inline]
    pub fn into_blob(self) -> Vec<u8> {
        self.buf
    }

    /// The payload bytes (elements only, header stripped). This is the
    /// T-SQL `Raw` function.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.buf[self.header.header_len()..]
    }

    /// Mutable payload bytes.
    #[inline]
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let h = self.header.header_len();
        &mut self.buf[h..]
    }

    /// Verifies the array carries elements of type `T`, the runtime check
    /// performed when a blob reaches a typed function schema.
    pub fn expect_type<T: Element>(&self) -> Result<()> {
        if self.elem() != T::TYPE {
            return Err(ArrayError::TypeMismatch {
                expected: T::TYPE,
                got: self.elem(),
            });
        }
        Ok(())
    }

    /// Borrows the payload as a typed slice when its address is already
    /// suitably aligned (the common case for heap buffers), copying
    /// otherwise. This is the "directly compatible with LAPACK" guarantee:
    /// math kernels receive the stored column-major data with no
    /// re-marshaling.
    pub fn elements<T: Element>(&self) -> Result<Cow<'_, [T]>> {
        self.expect_type::<T>()?;
        let payload = self.payload();
        assert_eq!(payload.len(), self.count() * T::SIZE);
        // SAFETY: `align_to` splits the byte slice into a maximal aligned
        // middle. All eight element types are plain-old-data with no
        // invalid bit patterns at the byte level (verified by the
        // round-trip property tests), so reinterpreting aligned bytes is
        // sound. Endianness: elements are stored little-endian, which is
        // the native order on every supported target (checked below).
        #[cfg(target_endian = "little")]
        {
            let (head, mid, tail) = unsafe { payload.align_to::<T>() };
            if head.is_empty() && tail.is_empty() && mid.len() == self.count() {
                return Ok(Cow::Borrowed(mid));
            }
        }
        let mut out = Vec::with_capacity(self.count());
        for i in 0..self.count() {
            out.push(T::read_le(&payload[i * T::SIZE..]));
        }
        Ok(Cow::Owned(out))
    }

    /// Copies the payload into a typed `Vec` — the `.NET` client-side
    /// conversion (`dr.SqlFloatArray(...)`), a "simple memory copy".
    pub fn to_vec<T: Element>(&self) -> Result<Vec<T>> {
        Ok(self.elements::<T>()?.into_owned())
    }

    // ---------------------------------------------------------------
    // Item access (`Item_N`, `UpdateItem_N`)
    // ---------------------------------------------------------------

    /// Reads the element at a multi-index, dynamically typed.
    pub fn item(&self, idx: &[usize]) -> Result<Scalar> {
        let lin = self.header.shape.linear_index(idx)?;
        Ok(self.item_linear(lin))
    }

    /// Reads the element at a linear (column-major) offset. The offset must
    /// be in bounds.
    #[inline]
    pub fn item_linear(&self, lin: usize) -> Scalar {
        let es = self.elem().size();
        Scalar::read_le(self.elem(), &self.payload()[lin * es..])
    }

    /// Reads a typed element at a multi-index.
    pub fn item_as<T: Element>(&self, idx: &[usize]) -> Result<T> {
        self.expect_type::<T>()?;
        let lin = self.header.shape.linear_index(idx)?;
        Ok(T::read_le(&self.payload()[lin * T::SIZE..]))
    }

    /// Typed linear read without bounds re-validation (offset must be in
    /// bounds, type must match — used by hot kernels after one up-front
    /// `expect_type`).
    #[inline]
    pub fn item_linear_as_unchecked<T: Element>(&self, lin: usize) -> T {
        T::read_le(&self.payload()[lin * T::SIZE..])
    }

    /// Overwrites the element at a multi-index. The value is cast to the
    /// array's element type (SQL assignment semantics); an impossible cast
    /// (complex → real with non-zero imaginary part) fails.
    pub fn update_item(&mut self, idx: &[usize], value: Scalar) -> Result<()> {
        let lin = self.header.shape.linear_index(idx)?;
        let v = value.cast_to(self.elem())?;
        let es = self.elem().size();
        let h = self.header.header_len();
        v.write_le(&mut self.buf[h + lin * es..]);
        Ok(())
    }

    /// Typed in-place write at a linear offset.
    pub fn set_linear<T: Element>(&mut self, lin: usize, value: T) -> Result<()> {
        self.expect_type::<T>()?;
        if lin >= self.count() {
            return Err(ArrayError::IndexOutOfBounds {
                axis: 0,
                index: lin,
                size: self.count(),
            });
        }
        let h = self.header.header_len();
        value.write_le(&mut self.buf[h + lin * T::SIZE..]);
        Ok(())
    }

    /// Iterates all elements as dynamically typed scalars, in storage
    /// (column-major) order.
    pub fn iter_scalars(&self) -> impl Iterator<Item = Scalar> + '_ {
        (0..self.count()).map(|lin| self.item_linear(lin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trip() {
        let a =
            SqlArray::from_vec(StorageClass::Short, &[5], &[1.0f64, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a.rank(), 1);
        assert_eq!(a.count(), 5);
        assert_eq!(a.elem(), ElementType::Float64);
        assert_eq!(a.to_vec::<f64>().unwrap(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn from_vec_count_mismatch() {
        let err = SqlArray::from_vec(StorageClass::Short, &[4], &[1.0f64, 2.0]);
        assert!(matches!(err, Err(ArrayError::CountMismatch { .. })));
    }

    #[test]
    fn blob_round_trip_preserves_bytes() {
        let a = SqlArray::from_vec(StorageClass::Max, &[2, 3], &[1i32, 2, 3, 4, 5, 6]).unwrap();
        let blob = a.as_blob().to_vec();
        let b = SqlArray::from_blob(blob.clone()).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.as_blob(), &blob[..]);
    }

    #[test]
    fn from_blob_rejects_wrong_length() {
        let a = SqlArray::from_vec(StorageClass::Short, &[3], &[1i16, 2, 3]).unwrap();
        let mut blob = a.into_blob();
        blob.push(0);
        assert!(matches!(
            SqlArray::from_blob(blob),
            Err(ArrayError::PayloadSizeMismatch { .. })
        ));
    }

    #[test]
    fn item_is_column_major() {
        // Matrix [[0.1, 0.3], [0.2, 0.4]] stored column-major as
        // 0.1, 0.2, 0.3, 0.4 — matches the paper's Matrix_2 example where
        // Item_2(@m, 1, 0) is the second stored element.
        let m = SqlArray::from_vec(StorageClass::Short, &[2, 2], &[0.1f64, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(m.item(&[1, 0]).unwrap(), Scalar::F64(0.2));
        assert_eq!(m.item(&[0, 1]).unwrap(), Scalar::F64(0.3));
    }

    #[test]
    fn item_errors() {
        let a = SqlArray::from_vec(StorageClass::Short, &[2, 2], &[1i32, 2, 3, 4]).unwrap();
        assert!(a.item(&[2, 0]).is_err());
        assert!(a.item(&[0]).is_err());
        assert!(a.item_as::<f64>(&[0, 0]).is_err()); // type mismatch
    }

    #[test]
    fn update_item_casts_value() {
        let mut a = SqlArray::from_vec(StorageClass::Short, &[3], &[1i32, 2, 3]).unwrap();
        a.update_item(&[1], Scalar::F64(7.9)).unwrap();
        assert_eq!(a.item(&[1]).unwrap(), Scalar::I32(7)); // truncated
        assert!(a
            .update_item(&[0], Scalar::C64(crate::complex::Complex64::I))
            .is_err());
    }

    #[test]
    fn elements_zero_copy_when_aligned() {
        let a = SqlArray::from_vec(StorageClass::Short, &[4], &[1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let view = a.elements::<f64>().unwrap();
        assert_eq!(&view[..], &[1.0, 2.0, 3.0, 4.0]);
        // Short header is 24 bytes and Vec allocations are ≥ 8-aligned, so
        // the borrow branch is virtually always taken; either way the data
        // must be identical.
        let owned = a.to_vec::<f64>().unwrap();
        assert_eq!(owned, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn filled_and_zeros() {
        let f = SqlArray::filled(StorageClass::Short, &[2, 2], 9i16).unwrap();
        assert!(f.iter_scalars().all(|s| s == Scalar::I16(9)));
        let z = SqlArray::zeros(StorageClass::Max, ElementType::Complex64, &[3]).unwrap();
        assert!(z
            .iter_scalars()
            .all(|s| s == Scalar::C64(crate::complex::Complex64::ZERO)));
    }

    #[test]
    fn from_fn_sees_multi_indices() {
        let a = SqlArray::from_fn(StorageClass::Short, &[3, 2], |idx| {
            (10 * idx[0] + idx[1]) as i32
        })
        .unwrap();
        assert_eq!(a.item(&[2, 1]).unwrap(), Scalar::I32(21));
        assert_eq!(a.item(&[0, 0]).unwrap(), Scalar::I32(0));
    }

    #[test]
    fn auto_class_picks_short_until_page_budget() {
        assert_eq!(
            SqlArray::auto_class(ElementType::Float64, &[100]).unwrap(),
            StorageClass::Short
        );
        assert_eq!(
            SqlArray::auto_class(ElementType::Float64, &[2000]).unwrap(),
            StorageClass::Max
        );
        // Rank 7 can never be short.
        assert_eq!(
            SqlArray::auto_class(ElementType::Int8, &[1, 1, 1, 1, 1, 1, 2]).unwrap(),
            StorageClass::Max
        );
    }

    #[test]
    fn set_linear_bounds_and_type() {
        let mut a = SqlArray::from_vec(StorageClass::Short, &[2], &[1.0f32, 2.0]).unwrap();
        a.set_linear(1, 5.0f32).unwrap();
        assert_eq!(a.item(&[1]).unwrap(), Scalar::F32(5.0));
        assert!(a.set_linear(2, 0.0f32).is_err());
        assert!(a.set_linear(0, 0.0f64).is_err());
    }

    #[test]
    fn payload_is_header_stripped() {
        let a = SqlArray::from_vec(StorageClass::Short, &[2], &[1i64, 2]).unwrap();
        assert_eq!(a.as_blob().len(), 24 + 16);
        assert_eq!(a.payload().len(), 16);
        assert_eq!(i64::read_le(a.payload()), 1);
    }
}
