//! Environment-variable parsing shared by every tuning knob.
//!
//! The workspace reads several `usize` knobs from the environment
//! (`SQLARRAY_DOP`, `SQLARRAY_BATCH_ROWS`, `SQLARRAY_WORKER_BUDGET`).
//! They all want the same semantics — set and parseable wins, anything
//! else falls through to the caller's default — so the parse lives here
//! once instead of being re-implemented per knob. Clamping (a DOP must be
//! ≥ 1, a batch size may be 0) stays with the caller: it is knob policy,
//! not parse policy.

/// Reads environment variable `name` as a `usize`.
///
/// Returns `Some(n)` when the variable is set and its trimmed value
/// parses as a `usize`; `None` when unset, empty, or malformed — the
/// caller supplies its own default and clamp.
pub fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse::<usize>().ok()
}

#[cfg(test)]
mod tests {
    use super::env_usize;

    // Each test uses a distinct variable name: the process environment is
    // shared across the test harness's threads, so tests must not race on
    // one name.

    #[test]
    fn unset_is_none() {
        assert_eq!(env_usize("SQLARRAY_TEST_ENV_UNSET"), None);
    }

    #[test]
    fn set_parses_with_whitespace() {
        std::env::set_var("SQLARRAY_TEST_ENV_WS", "  42\n");
        assert_eq!(env_usize("SQLARRAY_TEST_ENV_WS"), Some(42));
    }

    #[test]
    fn zero_is_some_zero() {
        // 0 is a meaningful value for some knobs (batch rows 0 = row
        // interpreter), so the parser must not conflate it with unset.
        std::env::set_var("SQLARRAY_TEST_ENV_ZERO", "0");
        assert_eq!(env_usize("SQLARRAY_TEST_ENV_ZERO"), Some(0));
    }

    #[test]
    fn malformed_is_none() {
        for (var, val) in [
            ("SQLARRAY_TEST_ENV_NEG", "-3"),
            ("SQLARRAY_TEST_ENV_WORD", "four"),
            ("SQLARRAY_TEST_ENV_EMPTY", ""),
            ("SQLARRAY_TEST_ENV_FLOAT", "2.5"),
        ] {
            std::env::set_var(var, val);
            assert_eq!(env_usize(var), None, "{var}={val:?}");
        }
    }
}
