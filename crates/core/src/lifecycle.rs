//! Per-statement lifecycle control: cancellation, deadlines, memory
//! budgets.
//!
//! A [`QueryCtx`] is minted once per statement by the session layer and
//! stamped down through the executor and the storage scan context, so a
//! single cheap [`QueryCtx::check`] call at every batch flush, leaf-walk
//! step, row-interpreter iteration and worker start can abort a runaway
//! statement within one batch worth of work. Three independent triggers
//! share the one check:
//!
//! * **cancellation** — a [`CancelHandle`] (an `Arc<AtomicBool>` shared
//!   with the owning session) flipped from any thread;
//! * **deadline** — a wall-clock instant computed from the statement
//!   timeout at mint time;
//! * **memory budget** — a cumulative allocation accountant charged by
//!   [`QueryCtx::charge`] for batch lane growth, aggregation state and
//!   LOB materialization.
//!
//! The context is also the *fault-injection* surface for the query
//! kill-matrix tests: [`QueryLimits::cancel_after_checks`] arms a
//! deterministic trip point — the N-th `check` anywhere in the pipeline
//! reports [`Interrupt::Cancelled`] — which lets a test enumerate every
//! cancellation point of a statement from a counting dry run, exactly the
//! way the WAL crash matrix enumerates its kill points from
//! `IoStats::wal_records`.
//!
//! The happy-path cost is one relaxed atomic load per check (plus an
//! `Instant::now()` only when a deadline is armed), so checks can sit in
//! per-row loops without showing up in profiles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a statement was interrupted. Carried inside typed storage/engine
/// errors; never stringly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The session's cancel handle was flipped.
    Cancelled,
    /// The statement ran past its deadline.
    Timeout {
        /// The statement timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// The statement's cumulative memory charges exceeded its budget.
    MemExceeded {
        /// Bytes charged so far (including the charge that tripped).
        used: u64,
        /// The configured budget in bytes.
        limit: u64,
    },
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "statement cancelled"),
            Interrupt::Timeout { timeout_ms } => {
                write!(f, "statement timeout ({timeout_ms} ms) exceeded")
            }
            Interrupt::MemExceeded { used, limit } => write!(
                f,
                "query memory budget exceeded: {used} bytes charged, limit {limit}"
            ),
        }
    }
}

/// A cloneable cancellation token for one session. Flipping it aborts the
/// statement currently running (or the next one to start) on that
/// session; the session clears the flag once a statement has consumed it.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// A fresh, unset handle.
    pub fn new() -> CancelHandle {
        CancelHandle::default()
    }

    /// Requests cancellation. Sticky until a statement consumes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation is currently requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Clears the request (the session does this after a statement
    /// reports [`Interrupt::Cancelled`], so the *next* statement runs).
    pub fn clear(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }
}

/// Mint-time limits for a [`QueryCtx`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryLimits {
    /// Statement timeout; `None` = no deadline.
    pub timeout_ms: Option<u64>,
    /// Memory budget in bytes; `0` = unlimited.
    pub mem_limit_bytes: u64,
    /// Deterministic trip point for kill-matrix tests: the N-th `check`
    /// (1-based, counted across all threads) reports `Cancelled`. Arming
    /// with `u64::MAX` counts checks without ever tripping (the dry-run
    /// mode that enumerates a statement's cancellation points).
    pub cancel_after_checks: Option<u64>,
}

#[derive(Debug)]
struct QueryInner {
    cancel: CancelHandle,
    deadline: Option<Instant>,
    timeout_ms: u64,
    mem_limit: u64,
    mem_used: AtomicU64,
    /// Checks observed so far; only counted while a trip point is armed,
    /// so the unarmed fast path is a single branch.
    checks: AtomicU64,
    /// 1-based check ordinal that trips, `u64::MAX` = count only, `0`
    /// (via `None`) = don't even count.
    trip_at: u64,
    count_checks: bool,
}

/// The per-statement lifecycle context. Cheap to clone (one `Arc`); every
/// layer of a statement's pipeline holds the same underlying state.
#[derive(Debug, Clone)]
pub struct QueryCtx {
    inner: Arc<QueryInner>,
}

impl QueryCtx {
    /// A context with no cancellation source, no deadline and no budget —
    /// `check` always passes. Used by internal scans (catalog walks,
    /// recovery) and as the default for [`crate::batch`]-free serial
    /// paths.
    pub fn unbounded() -> QueryCtx {
        QueryCtx::with_limits(CancelHandle::new(), &QueryLimits::default())
    }

    /// A context wired to `cancel` with `limits` applied. The deadline is
    /// computed *now*, so mint the context when the statement starts.
    pub fn with_limits(cancel: CancelHandle, limits: &QueryLimits) -> QueryCtx {
        QueryCtx {
            inner: Arc::new(QueryInner {
                cancel,
                deadline: limits
                    .timeout_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms)),
                timeout_ms: limits.timeout_ms.unwrap_or(0),
                mem_limit: limits.mem_limit_bytes,
                mem_used: AtomicU64::new(0),
                checks: AtomicU64::new(0),
                trip_at: limits.cancel_after_checks.unwrap_or(0),
                count_checks: limits.cancel_after_checks.is_some(),
            }),
        }
    }

    /// The one cancellation poll. Called at every batch flush, leaf-walk
    /// step, row-interpreter iteration and worker start. Relaxed-atomic
    /// cheap when nothing is armed.
    pub fn check(&self) -> Result<(), Interrupt> {
        let i = &*self.inner;
        if i.count_checks {
            let n = i.checks.fetch_add(1, Ordering::Relaxed) + 1;
            if n >= i.trip_at {
                return Err(Interrupt::Cancelled);
            }
        }
        if i.cancel.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        if let Some(d) = i.deadline {
            if Instant::now() >= d {
                return Err(Interrupt::Timeout {
                    timeout_ms: i.timeout_ms,
                });
            }
        }
        Ok(())
    }

    /// Charges `bytes` against the memory budget (cumulative, monotonic:
    /// the accountant tracks total allocation pressure, not live bytes,
    /// so charging is a single `fetch_add` with no free-side bookkeeping).
    pub fn charge(&self, bytes: u64) -> Result<(), Interrupt> {
        let used = self.inner.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if self.inner.mem_limit != 0 && used > self.inner.mem_limit {
            return Err(Interrupt::MemExceeded {
                used,
                limit: self.inner.mem_limit,
            });
        }
        Ok(())
    }

    /// Bytes charged so far.
    pub fn mem_used(&self) -> u64 {
        self.inner.mem_used.load(Ordering::Relaxed)
    }

    /// Checks observed so far. Zero unless `cancel_after_checks` armed
    /// counting; the kill matrix reads this off a `u64::MAX` dry run to
    /// enumerate trip points.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// The armed deadline, if any (the scheduler bounds its admission
    /// wait against it).
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// The statement timeout in milliseconds (0 when no deadline is
    /// armed) — error-payload companion to [`QueryCtx::deadline`].
    pub fn timeout_ms(&self) -> u64 {
        self.inner.timeout_ms
    }
}

impl Default for QueryCtx {
    fn default() -> Self {
        QueryCtx::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_always_passes() {
        let q = QueryCtx::unbounded();
        for _ in 0..1000 {
            assert_eq!(q.check(), Ok(()));
        }
        assert_eq!(q.checks(), 0, "unarmed checks are not counted");
    }

    #[test]
    fn cancel_handle_trips_check() {
        let h = CancelHandle::new();
        let q = QueryCtx::with_limits(h.clone(), &QueryLimits::default());
        assert_eq!(q.check(), Ok(()));
        h.cancel();
        assert_eq!(q.check(), Err(Interrupt::Cancelled));
        // Sticky until cleared.
        assert_eq!(q.check(), Err(Interrupt::Cancelled));
        h.clear();
        assert_eq!(q.check(), Ok(()));
    }

    #[test]
    fn deadline_trips_with_timeout_payload() {
        let q = QueryCtx::with_limits(
            CancelHandle::new(),
            &QueryLimits {
                timeout_ms: Some(0),
                ..QueryLimits::default()
            },
        );
        assert_eq!(q.check(), Err(Interrupt::Timeout { timeout_ms: 0 }));
    }

    #[test]
    fn budget_charges_cumulatively() {
        let q = QueryCtx::with_limits(
            CancelHandle::new(),
            &QueryLimits {
                mem_limit_bytes: 100,
                ..QueryLimits::default()
            },
        );
        assert_eq!(q.charge(60), Ok(()));
        assert_eq!(q.charge(40), Ok(()));
        assert_eq!(
            q.charge(1),
            Err(Interrupt::MemExceeded {
                used: 101,
                limit: 100
            })
        );
        assert_eq!(q.mem_used(), 101);
    }

    #[test]
    fn trip_point_fires_on_exact_check() {
        let q = QueryCtx::with_limits(
            CancelHandle::new(),
            &QueryLimits {
                cancel_after_checks: Some(3),
                ..QueryLimits::default()
            },
        );
        assert_eq!(q.check(), Ok(()));
        assert_eq!(q.check(), Ok(()));
        assert_eq!(q.check(), Err(Interrupt::Cancelled));
        assert_eq!(q.checks(), 3);
    }

    #[test]
    fn count_only_mode_never_trips() {
        let q = QueryCtx::with_limits(
            CancelHandle::new(),
            &QueryLimits {
                cancel_after_checks: Some(u64::MAX),
                ..QueryLimits::default()
            },
        );
        for _ in 0..100 {
            assert_eq!(q.check(), Ok(()));
        }
        assert_eq!(q.checks(), 100);
    }
}
