//! Columnar batches for vectorized query execution.
//!
//! The executor historically walked one row at a time through a per-row
//! callback, allocating a boxed value per column — the glue between scan
//! and kernel dominated, not the kernels. This module provides the shared
//! column-vector representation and the batch-level kernels the engine's
//! vectorized pipeline is built on:
//!
//! * [`ColVec`] — one typed column of a batch (`i64`/`i32`/`f64`/`f32`/
//!   `bool`, or blob cells as packed bytes + out-of-row LOB references);
//! * [`Batch`] — the clustered keys plus the decoded columns of ~1–4K rows;
//! * [`Validity`] — a null bitmap (one bit per row);
//! * selection vectors (`Vec<u32>` of in-batch row indices) produced by
//!   filters and consumed by every downstream kernel;
//! * arithmetic/comparison/gather/sum kernels with branch-light inner
//!   loops the compiler can autovectorize.
//!
//! Semantics are deliberately *identical* to the engine's row-at-a-time
//! interpreter: integer arithmetic wraps exactly like the row path's
//! `wrapping_*` calls, float comparisons report NaN operands to the caller
//! (the row path raises a typed error there), and every summing path goes
//! through [`ExactSum`] so results stay bit-identical at any degree of
//! parallelism.

use crate::exact::ExactSum;

/// Default number of rows per batch.
///
/// Batches flush at the first leaf-page boundary at or past this many rows,
/// so actual fill is slightly above (a leaf holds tens-to-hundreds of rows).
pub const DEFAULT_BATCH_ROWS: usize = 1024;

// ---------------------------------------------------------------------------
// Validity bitmaps
// ---------------------------------------------------------------------------

/// A null bitmap: one bit per row, set = valid (non-null).
///
/// Table columns in the engine are currently never null, but kernels accept
/// an optional validity so batch-producing sources with missing values (e.g.
/// future outer joins) reuse the same summing path.
#[derive(Debug, Clone, Default)]
pub struct Validity {
    bits: Vec<u64>,
    len: usize,
}

impl Validity {
    /// An empty bitmap.
    pub fn new() -> Validity {
        Validity::default()
    }

    /// Appends one row's validity bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if valid {
            self.bits[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Whether row `i` is valid (non-null).
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of rows tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap tracks zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (set) bits.
    pub fn count_valid(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Resets to zero rows, keeping capacity.
    pub fn clear(&mut self) {
        self.bits.clear();
        self.len = 0;
    }
}

// ---------------------------------------------------------------------------
// Byte cells
// ---------------------------------------------------------------------------

/// Variable-length byte cells packed end-to-end with an offsets directory.
///
/// Cell `i` lives at `data[offsets[i]..offsets[i + 1]]`; there is always one
/// more offset than cells. Appending never reallocates per cell beyond the
/// amortized growth of the two flat vectors.
#[derive(Debug, Clone)]
pub struct BytesVec {
    offsets: Vec<usize>,
    data: Vec<u8>,
}

impl Default for BytesVec {
    fn default() -> Self {
        BytesVec::new()
    }
}

impl BytesVec {
    /// An empty cell vector.
    pub fn new() -> BytesVec {
        BytesVec {
            offsets: vec![0],
            data: Vec::new(),
        }
    }

    /// Appends one cell.
    pub fn push(&mut self, cell: &[u8]) {
        self.data.extend_from_slice(cell);
        self.offsets.push(self.data.len());
    }

    /// Borrows cell `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether there are zero cells.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Resets to zero cells, keeping capacity.
    pub fn clear(&mut self) {
        self.offsets.truncate(1);
        self.data.clear();
    }

    /// Bytes of payload + offsets currently held (length-based, not
    /// capacity-based, so the figure is deterministic for a given row
    /// stream regardless of allocator growth policy).
    pub fn byte_size(&self) -> u64 {
        (self.data.len() + self.offsets.len() * std::mem::size_of::<usize>()) as u64
    }
}

// ---------------------------------------------------------------------------
// Columns and batches
// ---------------------------------------------------------------------------

/// An out-of-row blob reference: `(blob id, byte length)`.
pub type LobRef = (u64, u64);

/// One typed column of a [`Batch`].
#[derive(Debug, Clone)]
pub enum ColVec {
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit floats.
    F32(Vec<f32>),
    /// Booleans (no storage column type maps here; produced by kernels).
    Bool(Vec<bool>),
    /// Blob cells: inline payloads in `bytes`, out-of-row references in
    /// `lob`. Both sides always have one entry per row — an out-of-row cell
    /// has an empty `bytes` entry and `Some` in `lob`, an inline cell the
    /// reverse.
    Blob {
        /// Inline payloads (empty cell for out-of-row rows).
        bytes: BytesVec,
        /// Out-of-row references (`None` for inline rows).
        lob: Vec<Option<LobRef>>,
    },
}

impl ColVec {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColVec::I64(v) => v.len(),
            ColVec::I32(v) => v.len(),
            ColVec::F64(v) => v.len(),
            ColVec::F32(v) => v.len(),
            ColVec::Bool(v) => v.len(),
            ColVec::Blob { lob, .. } => lob.len(),
        }
    }

    /// Whether the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets to zero rows, keeping capacity.
    pub fn clear(&mut self) {
        match self {
            ColVec::I64(v) => v.clear(),
            ColVec::I32(v) => v.clear(),
            ColVec::F64(v) => v.clear(),
            ColVec::F32(v) => v.clear(),
            ColVec::Bool(v) => v.clear(),
            ColVec::Blob { bytes, lob } => {
                bytes.clear();
                lob.clear();
            }
        }
    }

    /// Bytes of lane data currently held. Length-based (see
    /// [`BytesVec::byte_size`]), so memory-budget charges derived from it
    /// are bit-reproducible for a given scan.
    pub fn byte_size(&self) -> u64 {
        match self {
            ColVec::I64(v) => (v.len() * 8) as u64,
            ColVec::I32(v) => (v.len() * 4) as u64,
            ColVec::F64(v) => (v.len() * 8) as u64,
            ColVec::F32(v) => (v.len() * 4) as u64,
            ColVec::Bool(v) => v.len() as u64,
            ColVec::Blob { bytes, lob } => {
                bytes.byte_size() + (lob.len() * std::mem::size_of::<Option<LobRef>>()) as u64
            }
        }
    }
}

/// A columnar batch: the clustered keys of ~1–4K rows plus the decoded
/// columns the active plan needs (in plan order, not schema order).
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Clustered-index key of each row, in scan order.
    pub keys: Vec<i64>,
    /// Decoded columns; every column has `keys.len()` rows.
    pub cols: Vec<ColVec>,
}

impl Batch {
    /// A batch with the given (empty) columns.
    pub fn new(cols: Vec<ColVec>) -> Batch {
        Batch {
            keys: Vec::new(),
            cols,
        }
    }

    /// Number of rows currently buffered.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the batch holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Resets to zero rows, keeping column types and capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        for c in &mut self.cols {
            c.clear();
        }
    }

    /// Bytes of keys + lane data currently buffered — what the executor
    /// charges against the per-query memory budget at each batch flush.
    pub fn byte_size(&self) -> u64 {
        let mut n = (self.keys.len() * 8) as u64;
        for c in &self.cols {
            n += c.byte_size();
        }
        n
    }
}

/// Fills `sel` with the identity selection `0..n` (all rows selected).
pub fn identity_selection(sel: &mut Vec<u32>, n: usize) {
    sel.clear();
    sel.extend(0..n as u32);
}

/// Keeps only the selected rows whose flag is set: `out` receives
/// `sel[i]` for every `i` with `flags[i]`. `flags` is aligned to `sel`
/// (one flag per *selected* row), not to the batch.
pub fn refine_selection(flags: &[bool], sel: &[u32], out: &mut Vec<u32>) {
    assert_eq!(flags.len(), sel.len());
    out.clear();
    for (&keep, &row) in flags.iter().zip(sel) {
        if keep {
            out.push(row);
        }
    }
}

// ---------------------------------------------------------------------------
// Gather / widen / splat kernels
// ---------------------------------------------------------------------------

macro_rules! gather_impl {
    ($name:ident, $t:ty) => {
        /// Copies `src[sel[i]]` into `out` for each selected row.
        pub fn $name(src: &[$t], sel: &[u32], out: &mut Vec<$t>) {
            out.clear();
            out.reserve(sel.len());
            for &i in sel {
                out.push(src[i as usize]);
            }
        }
    };
}

gather_impl!(gather_i64, i64);
gather_impl!(gather_i32, i32);
gather_impl!(gather_f64, f64);
gather_impl!(gather_f32, f32);
gather_impl!(gather_bool, bool);

/// Fills `out` with `n` copies of `v` (literal/variable broadcast).
pub fn splat<T: Copy>(v: T, n: usize, out: &mut Vec<T>) {
    out.clear();
    out.resize(n, v);
}

/// Widens `i32` lanes to `i64`.
pub fn widen_i32(src: &[i32], out: &mut Vec<i64>) {
    out.clear();
    out.reserve(src.len());
    for &x in src {
        out.push(x as i64);
    }
}

/// Converts `i64` lanes to `f64` (same rounding as a scalar `as f64` cast).
pub fn f64_from_i64(src: &[i64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(src.len());
    for &x in src {
        out.push(x as f64);
    }
}

/// Converts `i32` lanes to `f64` (exact).
pub fn f64_from_i32(src: &[i32], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(src.len());
    for &x in src {
        out.push(x as f64);
    }
}

/// Widens `f32` lanes to `f64` (exact).
pub fn f64_from_f32(src: &[f32], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(src.len());
    for &x in src {
        out.push(x as f64);
    }
}

/// Converts `bool` lanes to `f64` (`false` → 0.0, `true` → 1.0), matching
/// the row path's `Bool as i64 as f64` coercion.
pub fn f64_from_bool(src: &[bool], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(src.len());
    for &x in src {
        out.push(x as i64 as f64);
    }
}

// ---------------------------------------------------------------------------
// Arithmetic kernels
// ---------------------------------------------------------------------------

/// Arithmetic operator selector for [`arith_i64`] / [`arith_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition (wrapping on integers).
    Add,
    /// Subtraction (wrapping on integers).
    Sub,
    /// Multiplication (wrapping on integers).
    Mul,
    /// Division (integer zero divisor is reported, not computed).
    Div,
    /// Remainder (integer zero divisor is reported, not computed).
    Mod,
}

/// Lane-wise `i64` arithmetic with the row path's wrapping semantics.
///
/// Returns `false` — with `out` left in an unspecified state — if `op` is
/// `Div`/`Mod` and any `b` lane is zero; the caller raises the same typed
/// error the row-at-a-time interpreter does.
#[must_use]
pub fn arith_i64(op: ArithOp, a: &[i64], b: &[i64], out: &mut Vec<i64>) -> bool {
    assert_eq!(a.len(), b.len());
    out.clear();
    out.reserve(a.len());
    match op {
        ArithOp::Add => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x.wrapping_add(y));
            }
        }
        ArithOp::Sub => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x.wrapping_sub(y));
            }
        }
        ArithOp::Mul => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x.wrapping_mul(y));
            }
        }
        ArithOp::Div => {
            for (&x, &y) in a.iter().zip(b) {
                if y == 0 {
                    return false;
                }
                out.push(x / y);
            }
        }
        ArithOp::Mod => {
            for (&x, &y) in a.iter().zip(b) {
                if y == 0 {
                    return false;
                }
                out.push(x % y);
            }
        }
    }
    true
}

/// Lane-wise `f64` arithmetic (IEEE semantics; division by zero yields
/// infinities/NaN exactly like the row path's scalar ops).
pub fn arith_f64(op: ArithOp, a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    assert_eq!(a.len(), b.len());
    out.clear();
    out.reserve(a.len());
    match op {
        ArithOp::Add => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x + y);
            }
        }
        ArithOp::Sub => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x - y);
            }
        }
        ArithOp::Mul => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x * y);
            }
        }
        ArithOp::Div => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x / y);
            }
        }
        ArithOp::Mod => {
            for (&x, &y) in a.iter().zip(b) {
                out.push(x % y);
            }
        }
    }
}

macro_rules! neg_impl {
    ($name:ident, $t:ty, wrapping) => {
        /// Lane-wise negation (wrapping, like the row path).
        pub fn $name(a: &[$t], out: &mut Vec<$t>) {
            out.clear();
            out.reserve(a.len());
            for &x in a {
                out.push(x.wrapping_neg());
            }
        }
    };
    ($name:ident, $t:ty, float) => {
        /// Lane-wise negation.
        pub fn $name(a: &[$t], out: &mut Vec<$t>) {
            out.clear();
            out.reserve(a.len());
            for &x in a {
                out.push(-x);
            }
        }
    };
}

neg_impl!(neg_i64, i64, wrapping);
neg_impl!(neg_i32, i32, wrapping);
neg_impl!(neg_f64, f64, float);
neg_impl!(neg_f32, f32, float);

// ---------------------------------------------------------------------------
// Comparison / truthiness kernels
// ---------------------------------------------------------------------------

/// Comparison operator selector for [`cmp_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Lane-wise `f64` comparison.
///
/// Returns `false` if any lane had a NaN operand — the row path's
/// `partial_cmp` returns `None` there and the interpreter raises a typed
/// "NaN comparison" error, which the caller reproduces. The flag is
/// accumulated branch-free so the comparison loop stays vectorizable.
#[must_use]
pub fn cmp_f64(op: CmpOp, a: &[f64], b: &[f64], out: &mut Vec<bool>) -> bool {
    assert_eq!(a.len(), b.len());
    out.clear();
    out.reserve(a.len());
    let mut nan_seen = false;
    match op {
        CmpOp::Eq => {
            for (&x, &y) in a.iter().zip(b) {
                nan_seen |= x.is_nan() | y.is_nan();
                out.push(x == y);
            }
        }
        CmpOp::Ne => {
            for (&x, &y) in a.iter().zip(b) {
                nan_seen |= x.is_nan() | y.is_nan();
                out.push(x != y);
            }
        }
        CmpOp::Lt => {
            for (&x, &y) in a.iter().zip(b) {
                nan_seen |= x.is_nan() | y.is_nan();
                out.push(x < y);
            }
        }
        CmpOp::Le => {
            for (&x, &y) in a.iter().zip(b) {
                nan_seen |= x.is_nan() | y.is_nan();
                out.push(x <= y);
            }
        }
        CmpOp::Gt => {
            for (&x, &y) in a.iter().zip(b) {
                nan_seen |= x.is_nan() | y.is_nan();
                out.push(x > y);
            }
        }
        CmpOp::Ge => {
            for (&x, &y) in a.iter().zip(b) {
                nan_seen |= x.is_nan() | y.is_nan();
                out.push(x >= y);
            }
        }
    }
    !nan_seen
}

/// Lane-wise boolean NOT.
pub fn not_bool(a: &[bool], out: &mut Vec<bool>) {
    out.clear();
    out.reserve(a.len());
    for &x in a {
        out.push(!x);
    }
}

macro_rules! truthy_impl {
    ($name:ident, $t:ty, $zero:expr) => {
        /// Lane-wise truthiness: nonzero → `true` (row-path `is_true`).
        pub fn $name(a: &[$t], out: &mut Vec<bool>) {
            out.clear();
            out.reserve(a.len());
            for &x in a {
                out.push(x != $zero);
            }
        }
    };
}

truthy_impl!(truthy_i64, i64, 0i64);
truthy_impl!(truthy_i32, i32, 0i32);
truthy_impl!(truthy_f64, f64, 0.0f64);
truthy_impl!(truthy_f32, f32, 0.0f32);

// ---------------------------------------------------------------------------
// Summation
// ---------------------------------------------------------------------------

/// Accumulates every lane into `sum` through the exact summator.
///
/// This is the only summing kernel — there is deliberately no fast-path
/// naive `+=` variant, so batch `SUM`/`AVG` stay bit-identical to serial
/// row-at-a-time execution at any DOP.
pub fn sum_f64(vals: &[f64], sum: &mut ExactSum) {
    for &x in vals {
        sum.add(x);
    }
}

/// Like [`sum_f64`] but skips lanes whose validity bit is unset; returns
/// the number of lanes accumulated.
pub fn sum_f64_masked(vals: &[f64], validity: &Validity, sum: &mut ExactSum) -> usize {
    assert_eq!(vals.len(), validity.len());
    let mut n = 0usize;
    for (i, &x) in vals.iter().enumerate() {
        if validity.is_valid(i) {
            sum.add(x);
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_push_and_count() {
        let mut v = Validity::new();
        for i in 0..130 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(v.is_valid(0));
        assert!(!v.is_valid(1));
        assert!(v.is_valid(129));
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.count_valid(), 0);
    }

    #[test]
    fn bytes_vec_cells() {
        let mut b = BytesVec::new();
        assert!(b.is_empty());
        b.push(b"hello");
        b.push(b"");
        b.push(b"world!");
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), b"hello");
        assert_eq!(b.get(1), b"");
        assert_eq!(b.get(2), b"world!");
        b.clear();
        assert!(b.is_empty());
        b.push(b"x");
        assert_eq!(b.get(0), b"x");
    }

    #[test]
    fn batch_clear_keeps_column_types() {
        let mut batch = Batch::new(vec![
            ColVec::I64(Vec::new()),
            ColVec::Blob {
                bytes: BytesVec::new(),
                lob: Vec::new(),
            },
        ]);
        batch.keys.push(7);
        match &mut batch.cols[0] {
            ColVec::I64(v) => v.push(1),
            _ => unreachable!(),
        }
        match &mut batch.cols[1] {
            ColVec::Blob { bytes, lob } => {
                bytes.push(b"abc");
                lob.push(None);
            }
            _ => unreachable!(),
        }
        assert_eq!(batch.len(), 1);
        batch.clear();
        assert!(batch.is_empty());
        assert!(matches!(&batch.cols[0], ColVec::I64(v) if v.is_empty()));
    }

    #[test]
    fn selection_identity_and_refine() {
        let mut sel = Vec::new();
        identity_selection(&mut sel, 5);
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
        let flags = [true, false, false, true, true];
        let mut out = Vec::new();
        refine_selection(&flags, &sel, &mut out);
        assert_eq!(out, vec![0, 3, 4]);
        // Refining a refined selection keeps batch-row indices.
        let flags2 = [false, true, false];
        let mut out2 = Vec::new();
        refine_selection(&flags2, &out, &mut out2);
        assert_eq!(out2, vec![3]);
    }

    #[test]
    fn gather_and_widen() {
        let src = [10i64, 20, 30, 40];
        let mut out = Vec::new();
        gather_i64(&src, &[3, 1], &mut out);
        assert_eq!(out, vec![40, 20]);

        let mut wide = Vec::new();
        widen_i32(&[-1i32, i32::MAX], &mut wide);
        assert_eq!(wide, vec![-1i64, i32::MAX as i64]);

        let mut f = Vec::new();
        f64_from_bool(&[true, false], &mut f);
        assert_eq!(f, vec![1.0, 0.0]);
        f64_from_i64(&[1i64 << 60], &mut f);
        assert_eq!(f, vec![(1i64 << 60) as f64]);
        f64_from_f32(&[0.1f32], &mut f);
        assert_eq!(f, vec![0.1f32 as f64]);
        f64_from_i32(&[7], &mut f);
        assert_eq!(f, vec![7.0]);
    }

    #[test]
    fn splat_fills() {
        let mut out = Vec::new();
        splat(42i64, 3, &mut out);
        assert_eq!(out, vec![42, 42, 42]);
        splat(1i64, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn int_arith_wraps_and_flags_zero_divisor() {
        let mut out = Vec::new();
        assert!(arith_i64(ArithOp::Add, &[i64::MAX, 1], &[1, 2], &mut out));
        assert_eq!(out, vec![i64::MIN, 3]);
        assert!(arith_i64(ArithOp::Mul, &[1i64 << 62], &[4], &mut out));
        assert_eq!(out, vec![0]);
        assert!(arith_i64(ArithOp::Div, &[9, -7], &[2, 2], &mut out));
        assert_eq!(out, vec![4, -3]);
        assert!(arith_i64(ArithOp::Mod, &[9, -7], &[4, 4], &mut out));
        assert_eq!(out, vec![1, -3]);
        assert!(!arith_i64(ArithOp::Div, &[1], &[0], &mut out));
        assert!(!arith_i64(ArithOp::Mod, &[1], &[0], &mut out));
    }

    #[test]
    fn float_arith_matches_scalar_ops() {
        let mut out = Vec::new();
        arith_f64(ArithOp::Div, &[1.0, -1.0], &[0.0, 0.0], &mut out);
        assert_eq!(out[0], f64::INFINITY);
        assert_eq!(out[1], f64::NEG_INFINITY);
        arith_f64(ArithOp::Mod, &[7.5], &[2.0], &mut out);
        assert_eq!(out, vec![7.5 % 2.0]);
    }

    #[test]
    fn negation_kernels() {
        let mut i = Vec::new();
        neg_i64(&[5, i64::MIN], &mut i);
        assert_eq!(i, vec![-5, i64::MIN]);
        let mut i32s = Vec::new();
        neg_i32(&[5], &mut i32s);
        assert_eq!(i32s, vec![-5]);
        let mut f = Vec::new();
        neg_f64(&[1.5, -0.0], &mut f);
        assert_eq!(f, vec![-1.5, 0.0]);
        let mut f32s = Vec::new();
        neg_f32(&[2.0f32], &mut f32s);
        assert_eq!(f32s, vec![-2.0f32]);
    }

    #[test]
    fn cmp_kernel_and_nan_detection() {
        let mut out = Vec::new();
        assert!(cmp_f64(CmpOp::Lt, &[1.0, 3.0], &[2.0, 2.0], &mut out));
        assert_eq!(out, vec![true, false]);
        assert!(cmp_f64(CmpOp::Le, &[2.0], &[2.0], &mut out));
        assert_eq!(out, vec![true]);
        assert!(cmp_f64(CmpOp::Ne, &[2.0], &[2.0], &mut out));
        assert_eq!(out, vec![false]);
        assert!(cmp_f64(CmpOp::Ge, &[2.0], &[3.0], &mut out));
        assert_eq!(out, vec![false]);
        assert!(cmp_f64(CmpOp::Gt, &[4.0], &[3.0], &mut out));
        assert_eq!(out, vec![true]);
        assert!(cmp_f64(CmpOp::Eq, &[-0.0], &[0.0], &mut out));
        assert_eq!(out, vec![true]);
        // Any NaN lane reports failure, mirroring the row path's error.
        assert!(!cmp_f64(CmpOp::Eq, &[f64::NAN], &[1.0], &mut out));
        assert!(!cmp_f64(CmpOp::Lt, &[1.0], &[f64::NAN], &mut out));
    }

    #[test]
    fn truthiness_kernels() {
        let mut out = Vec::new();
        truthy_i64(&[0, 5, -1], &mut out);
        assert_eq!(out, vec![false, true, true]);
        truthy_f64(&[0.0, -0.0, 0.5], &mut out);
        assert_eq!(out, vec![false, false, true]);
        truthy_i32(&[0, 1], &mut out);
        assert_eq!(out, vec![false, true]);
        truthy_f32(&[0.0, 2.0], &mut out);
        assert_eq!(out, vec![false, true]);
        let mut notted = Vec::new();
        not_bool(&out, &mut notted);
        assert_eq!(notted, vec![true, false]);
    }

    #[test]
    fn sum_kernel_is_exact_and_order_independent() {
        let xs = [1e100, 1.0, -1e100, 1e-30];
        let mut forward = ExactSum::new();
        sum_f64(&xs, &mut forward);
        let rev: Vec<f64> = xs.iter().rev().copied().collect();
        let mut backward = ExactSum::new();
        sum_f64(&rev, &mut backward);
        assert_eq!(forward.value().to_bits(), backward.value().to_bits());
        assert_eq!(forward.value(), 1.0 + 1e-30);
    }

    #[test]
    fn masked_sum_skips_invalid_lanes() {
        let mut validity = Validity::new();
        validity.push(true);
        validity.push(false);
        validity.push(true);
        let mut sum = ExactSum::new();
        let n = sum_f64_masked(&[1.0, 100.0, 2.0], &validity, &mut sum);
        assert_eq!(n, 2);
        assert_eq!(sum.value(), 3.0);
    }
}
