//! Streamed (partial-read) access to array blobs.
//!
//! Max arrays "have to be read via the binary stream wrapper which has one
//! important benefit: it supports reading only parts of the binary data if
//! the whole array is not required. The latter can significantly speed up
//! certain array subsetting operations." (§3.3)
//!
//! [`ArraySource`] abstracts anything that can serve byte ranges of a blob
//! (an in-memory buffer here; the storage engine's LOB B-tree stream in
//! `sqlarray-storage`). [`ArrayReader`] decodes the header from a prefix
//! read and then plans minimal byte-range reads for `Item` and `Subarray`.

use crate::array::SqlArray;
use crate::errors::{ArrayError, Result};
use crate::header::Header;
use crate::scalar::Scalar;

/// A random-access byte source holding one array blob.
pub trait ArraySource {
    /// Total length of the blob in bytes.
    fn blob_len(&self) -> usize;

    /// Reads `buf.len()` bytes starting at `offset`. Must fill the whole
    /// buffer or fail.
    fn read_at(&mut self, offset: usize, buf: &mut [u8]) -> Result<()>;

    /// Vectored read: fills `out` with the bytes of `runs` (a sequence of
    /// `(offset, len)` ranges), run after run. `out` must be exactly the
    /// runs' total length.
    ///
    /// The default implementation issues one [`read_at`](Self::read_at)
    /// per run. Sources backed by paged storage override it to map the
    /// whole run set onto the minimal set of pages in one pass — this is
    /// the hook `Subarray` pushdown reads a region through.
    fn read_runs(&mut self, runs: &[(usize, usize)], out: &mut [u8]) -> Result<()> {
        let mut cursor = 0usize;
        for &(offset, len) in runs {
            let end = cursor + len;
            if end > out.len() {
                return Err(ArrayError::Io(format!(
                    "vectored read plans more than the {}-byte buffer",
                    out.len()
                )));
            }
            self.read_at(offset, &mut out[cursor..end])?;
            cursor = end;
        }
        if cursor != out.len() {
            return Err(ArrayError::Io(format!(
                "vectored read plans {cursor} bytes into a {}-byte buffer",
                out.len()
            )));
        }
        Ok(())
    }
}

/// The trivial in-memory source (a blob already fetched into RAM).
impl ArraySource for &[u8] {
    fn blob_len(&self) -> usize {
        self.len()
    }

    fn read_at(&mut self, offset: usize, buf: &mut [u8]) -> Result<()> {
        let end = offset + buf.len();
        if end > self.len() {
            return Err(ArrayError::Io(format!(
                "read past end of blob: {end} > {}",
                self.len()
            )));
        }
        buf.copy_from_slice(&self[offset..end]);
        Ok(())
    }
}

/// Streamed reader over an [`ArraySource`].
///
/// Tracks `bytes_read` so benchmarks can compare the I/O volume of partial
/// subsetting against fetching the entire blob (experiment E6).
pub struct ArrayReader<S: ArraySource> {
    source: S,
    header: Header,
    bytes_read: usize,
}

impl<S: ArraySource> ArrayReader<S> {
    /// Opens a blob: reads just enough leading bytes to decode the header.
    pub fn open(mut source: S) -> Result<Self> {
        // First probe: enough to classify and (for max blobs) learn rank.
        let mut probe = [0u8; 8];
        let probe_take = probe.len().min(source.blob_len());
        source.read_at(0, &mut probe[..probe_take])?;
        let header_len = Header::probe_len(&probe[..probe_take])?;
        let mut hbuf = vec![0u8; header_len];
        source.read_at(0, &mut hbuf)?;
        let header = Header::decode(&hbuf)?;
        Ok(ArrayReader {
            source,
            header,
            bytes_read: probe_take + header_len,
        })
    }

    /// The decoded header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Bytes fetched from the source so far (header probes included).
    pub fn bytes_read(&self) -> usize {
        self.bytes_read
    }

    /// Reads a single element without fetching the rest of the payload.
    pub fn item(&mut self, idx: &[usize]) -> Result<Scalar> {
        let lin = self.header.shape.linear_index(idx)?;
        let es = self.header.elem.size();
        let off = self.header.header_len() + lin * es;
        let mut buf = [0u8; 16];
        self.source.read_at(off, &mut buf[..es])?;
        self.bytes_read += es;
        Ok(Scalar::read_le(self.header.elem, &buf))
    }

    /// Extracts a rectangular subarray by reading only the contiguous runs
    /// that cover it. Returns a fully materialized array of the same
    /// element type and storage class (squeeze semantics as in
    /// [`crate::ops::subarray`]).
    ///
    /// The whole region is planned up front ([`Header::region_byte_runs`])
    /// and fetched in **one** vectored
    /// [`read_runs`](ArraySource::read_runs) call, so a paged source can
    /// coalesce the runs and touch each backing page once — the parent
    /// payload is never materialized.
    pub fn subarray(
        &mut self,
        offset: &[usize],
        size: &[usize],
        squeeze: bool,
    ) -> Result<SqlArray> {
        let out_shape = self.header.shape.validate_subarray(offset, size)?;
        let final_shape = if squeeze {
            out_shape.squeeze()
        } else {
            out_shape.clone()
        };

        let out_header = Header::new(self.header.class, self.header.elem, final_shape)?;
        let out_hlen = out_header.header_len();
        let mut out = vec![0u8; out_header.blob_len()];
        out_header.encode(&mut out);

        let runs = self.header.region_byte_runs(offset, size)?;
        self.source.read_runs(&runs, &mut out[out_hlen..])?;
        self.bytes_read += out.len() - out_hlen;
        SqlArray::from_blob(out)
    }

    /// Fetches the whole blob (the non-streamed path, for comparison and
    /// for operations that need every element).
    pub fn read_full(&mut self) -> Result<SqlArray> {
        let mut buf = vec![0u8; self.source.blob_len()];
        self.source.read_at(0, &mut buf)?;
        self.bytes_read += buf.len();
        SqlArray::from_blob(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::StorageClass;

    fn cube() -> SqlArray {
        // 8x8x8 max array of f64, value = linear index.
        SqlArray::from_fn(StorageClass::Max, &[8, 8, 8], |idx| {
            (idx[0] + 8 * idx[1] + 64 * idx[2]) as f64
        })
        .unwrap()
    }

    #[test]
    fn open_reads_only_header() {
        let a = cube();
        let blob = a.as_blob();
        let r = ArrayReader::open(blob).unwrap();
        assert_eq!(r.header().shape.dims(), &[8, 8, 8]);
        // 8-byte probe + 28-byte header, nowhere near the 4 KiB payload.
        assert!(r.bytes_read() < 64, "read {} bytes", r.bytes_read());
    }

    #[test]
    fn item_reads_one_element() {
        let a = cube();
        let mut r = ArrayReader::open(a.as_blob()).unwrap();
        let before = r.bytes_read();
        let v = r.item(&[3, 4, 5]).unwrap();
        assert_eq!(v, Scalar::F64((3 + 8 * 4 + 64 * 5) as f64));
        assert_eq!(r.bytes_read() - before, 8);
    }

    #[test]
    fn subarray_matches_in_memory_result() {
        let a = cube();
        let mut r = ArrayReader::open(a.as_blob()).unwrap();
        let offset = [1, 2, 3];
        let size = [4, 4, 2];
        let streamed = r.subarray(&offset, &size, false).unwrap();
        let direct = crate::ops::subarray::subarray(&a, &offset, &size, false).unwrap();
        assert_eq!(streamed, direct);
    }

    #[test]
    fn subarray_reads_fewer_bytes_than_full_blob() {
        let a = cube();
        let mut r = ArrayReader::open(a.as_blob()).unwrap();
        let sub = r.subarray(&[0, 0, 0], &[2, 2, 2], false).unwrap();
        assert_eq!(sub.count(), 8);
        // 8 elements * 8 bytes = 64 payload bytes vs 4096 for the full cube.
        assert!(r.bytes_read() < 256, "read {} bytes", r.bytes_read());
    }

    #[test]
    fn read_full_round_trips() {
        let a = cube();
        let mut r = ArrayReader::open(a.as_blob()).unwrap();
        let full = r.read_full().unwrap();
        assert_eq!(full, a);
        assert!(r.bytes_read() >= a.as_blob().len());
    }

    #[test]
    fn short_blob_streams_too() {
        let a = SqlArray::from_vec(StorageClass::Short, &[5], &[1i32, 2, 3, 4, 5]).unwrap();
        let mut r = ArrayReader::open(a.as_blob()).unwrap();
        assert_eq!(r.item(&[4]).unwrap(), Scalar::I32(5));
    }

    #[test]
    fn read_past_end_fails() {
        let a = SqlArray::from_vec(StorageClass::Short, &[2], &[1i32, 2]).unwrap();
        let blob = a.as_blob();
        let truncated = &blob[..blob.len() - 4];
        // Header decodes fine (it's intact), but the payload read fails.
        let mut r = ArrayReader::open(truncated).unwrap();
        assert!(r.item(&[1]).is_err());
    }
}
